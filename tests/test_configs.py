"""Tests for repro.configs: Table II production models and §V sweeps."""

import numpy as np
import pytest

from repro.configs import (
    BATCH_SWEEP_GPU,
    DENSE_SWEEP,
    EMBEDDING_DIM,
    HASH_SIZE_MAX,
    HASH_SIZE_MIN,
    PRODUCTION_MODELS,
    PRODUCTION_SETUPS,
    SPARSE_SWEEP,
    TEST_SUITE_TRUNCATION,
    build_m1,
    build_m2,
    build_m3,
    make_test_model,
)
from repro.core import InteractionType
from repro.hardware import BIG_BASIN, ZION, CapacityError
from repro.placement import plan_gpu_memory, plan_system_memory


class TestTableII:
    """The production models must match Table II's published aggregates."""

    def test_m1_aggregates(self):
        m = build_m1()
        assert m.num_sparse == 30
        assert m.num_dense == 800
        assert m.bottom_mlp.notation() == "512^1"
        assert m.top_mlp.notation() == "512^3"
        # mean lookups per table == 28
        assert m.mean_total_lookups / m.num_sparse == pytest.approx(28, rel=0.01)

    def test_m2_aggregates(self):
        m = build_m2()
        assert m.num_sparse == 13
        assert m.num_dense == 504
        assert m.top_mlp.notation() == "1024-1024-512"
        assert m.mean_total_lookups / m.num_sparse == pytest.approx(17, rel=0.01)

    def test_m3_aggregates(self):
        m = build_m3()
        assert m.num_sparse == 127
        assert m.num_dense == 809
        assert m.top_mlp.notation() == "512-256-512-256-512"
        assert m.mean_total_lookups / m.num_sparse == pytest.approx(49, rel=0.01)

    def test_embedding_size_orders_of_magnitude(self):
        """Table II: M1/M2 'tens of GB', M3 'hundreds of GB'."""
        m1, m2, m3 = build_m1(), build_m2(), build_m3()
        assert 10e9 < m1.embedding_bytes < 100e9
        assert 10e9 < m2.embedding_bytes < 100e9
        assert 100e9 < m3.embedding_bytes < 1000e9

    def test_mean_hash_sizes_match_fig6(self):
        """Figure 6: average hash sizes 5.7M / 7.3M / 3.7M."""
        for build, mean in ((build_m1, 5.7e6), (build_m2, 7.3e6), (build_m3, 3.7e6)):
            m = build()
            realized = np.mean([t.hash_size for t in m.tables])
            assert realized == pytest.approx(mean, rel=0.02)

    def test_hash_sizes_within_fig6_range(self):
        for build in (build_m1, build_m2, build_m3):
            for t in build().tables:
                assert HASH_SIZE_MIN <= t.hash_size <= HASH_SIZE_MAX

    def test_feature_lengths_power_law_skew(self):
        """Figure 7: a few tables are accessed far more than most."""
        m3 = build_m3()
        lengths = np.array([t.mean_lookups for t in m3.tables])
        assert lengths.max() > 4 * np.median(lengths)

    def test_fixed_embedding_dim(self):
        for build in (build_m1, build_m2, build_m3):
            assert build().embedding_dim == EMBEDDING_DIM

    def test_deterministic_under_seed(self):
        a, b = build_m1(), build_m1()
        assert [t.hash_size for t in a.tables] == [t.hash_size for t in b.tables]

    def test_registry_and_setups_aligned(self):
        assert set(PRODUCTION_MODELS) == set(PRODUCTION_SETUPS)
        for name, setup in PRODUCTION_SETUPS.items():
            assert setup.model_name == name


class TestCapacityStory:
    """The placement narrative of the paper must hold for these configs."""

    def test_m1_m2_fit_on_big_basin_gpus(self):
        for build in (build_m1, build_m2):
            plan = plan_gpu_memory(build(), BIG_BASIN)  # must not raise
            assert plan.gpus_used() >= 1

    def test_m3_does_not_fit_on_one_big_basin(self):
        with pytest.raises(CapacityError):
            plan_gpu_memory(build_m3(), BIG_BASIN)

    def test_m3_fits_in_zion_system_memory(self):
        plan = plan_system_memory(build_m3(), ZION)
        assert len(plan.shards) == 127


class TestSweeps:
    def test_sweep_bounds_match_section_v(self):
        assert min(DENSE_SWEEP) == 64 and max(DENSE_SWEEP) == 4096
        assert min(SPARSE_SWEEP) == 4 and max(SPARSE_SWEEP) == 128
        assert TEST_SUITE_TRUNCATION == 32

    def test_batch_sweep_monotone(self):
        assert list(BATCH_SWEEP_GPU) == sorted(BATCH_SWEEP_GPU)

    def test_make_test_model_defaults(self):
        m = make_test_model(256, 16)
        assert m.num_dense == 256
        assert m.num_sparse == 16
        assert all(t.hash_size == 100_000 for t in m.tables)
        assert all(t.truncation == 32 for t in m.tables)
        assert m.bottom_mlp.notation() == "512^3"
        assert m.interaction is InteractionType.CONCAT

    def test_make_test_model_custom_mlp(self):
        m = make_test_model(64, 4, mlp="128^2")
        assert m.bottom_mlp.layer_sizes == (128, 128)
        assert m.top_mlp.layer_sizes == (128, 128)
