"""Tests for the ShadowSync-style background synchronization trainer."""

import numpy as np
import pytest

from repro.core import evaluate
from repro.distributed import ShadowSyncTrainer


class TestShadowSync:
    def test_training_reduces_loss(self, tiny_config, tiny_generator):
        trainer = ShadowSyncTrainer(tiny_config, num_workers=3, lr=0.05, rng=0)
        history = trainer.train(tiny_generator.batches(64), max_examples=16000)
        assert np.mean(history[-5:]) < history[0]

    def test_center_model_learns(self, tiny_config, tiny_generator):
        trainer = ShadowSyncTrainer(tiny_config, num_workers=2, lr=0.05, rng=0)
        eval_batches = [tiny_generator.batch(512)]
        before = evaluate(trainer.center_dlrm(), eval_batches)["normalized_entropy"]
        trainer.train(tiny_generator.batches(64), max_examples=16000)
        after = evaluate(trainer.center_dlrm(), eval_batches)["normalized_entropy"]
        assert after < before

    def test_round_robin_sync_touches_all_workers(self, tiny_config, tiny_generator):
        trainer = ShadowSyncTrainer(tiny_config, num_workers=3, lr=0.05, rng=0)
        # after num_workers rounds every worker synced once
        for _ in range(3):
            trainer.round([tiny_generator.batch(16) for _ in range(3)])
        assert trainer.rounds == 3
        # no worker strayed unboundedly from the center
        for worker in trainer.workers:
            for p, c in zip(worker.dense_parameters(), trainer.center_state):
                assert np.linalg.norm(p.value - c) < 100

    def test_never_blocks_semantics(self, tiny_config, tiny_generator):
        """Exactly one background sync per round, regardless of workers."""
        trainer = ShadowSyncTrainer(tiny_config, num_workers=4, lr=0.05, rng=0)
        w_before = [w.get_dense_state() for w in trainer.workers]
        trainer.round([tiny_generator.batch(16) for _ in range(4)])
        # all four stepped (params changed), only worker 0 was pulled to center
        changed = [
            any(
                not np.array_equal(a, b.value)
                for a, b in zip(state, w.dense_parameters())
            )
            for state, w in zip(w_before, trainer.workers)
        ]
        assert all(changed)

    def test_shared_tables(self, tiny_config):
        trainer = ShadowSyncTrainer(tiny_config, num_workers=2, rng=0)
        assert (
            trainer.workers[0].embedding_tables()[0]
            is trainer.workers[1].embedding_tables()[0]
        )

    def test_validation(self, tiny_config, tiny_generator):
        with pytest.raises(ValueError):
            ShadowSyncTrainer(tiny_config, num_workers=0)
        with pytest.raises(ValueError):
            ShadowSyncTrainer(tiny_config, num_workers=2, mix=0.0)
        trainer = ShadowSyncTrainer(tiny_config, num_workers=2, rng=0)
        with pytest.raises(ValueError):
            trainer.round([tiny_generator.batch(8)])
        with pytest.raises(ValueError):
            trainer.train(tiny_generator.batches(8), max_examples=0)
