"""Tests for repro.core.training and repro.core.tuning."""

import numpy as np
import pytest

from repro.core import (
    Adagrad,
    DLRM,
    SGD,
    Trainer,
    bayesian_search,
    evaluate,
    grid_search,
    random_search,
)


def _trainer(config, lr=0.05, rng=0):
    model = DLRM(config, rng=rng)
    return Trainer(
        model,
        lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=lr),
    )


class TestTrainer:
    def test_train_step_returns_loss(self, tiny_config, tiny_generator):
        t = _trainer(tiny_config)
        loss = t.train_step(tiny_generator.batch(32))
        assert np.isfinite(loss) and loss > 0

    def test_train_respects_example_budget(self, tiny_config, tiny_generator):
        t = _trainer(tiny_config)
        result = t.train(tiny_generator.batches(32), max_examples=320)
        assert result.examples_seen == 320
        assert result.steps == 10

    def test_train_respects_step_budget(self, tiny_config, tiny_generator):
        t = _trainer(tiny_config)
        result = t.train(tiny_generator.batches(32), max_steps=5)
        assert result.steps == 5

    def test_larger_batches_take_fewer_steps(self, tiny_config, tiny_generator):
        small = _trainer(tiny_config).train(tiny_generator.batches(16), max_examples=640)
        big = _trainer(tiny_config).train(tiny_generator.batches(64), max_examples=640)
        assert small.steps == 4 * big.steps

    def test_no_budget_rejected(self, tiny_config, tiny_generator):
        with pytest.raises(ValueError):
            _trainer(tiny_config).train(tiny_generator.batches(16))

    def test_empty_stream_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            _trainer(tiny_config).train(iter([]), max_steps=5)

    def test_loss_decreases_on_teacher_data(self, tiny_config, tiny_generator):
        t = _trainer(tiny_config)
        result = t.train(tiny_generator.batches(64), max_steps=80)
        assert result.smoothed_final_loss < result.loss_history[0]

    def test_works_with_sgd(self, tiny_config, tiny_generator):
        model = DLRM(tiny_config, rng=0)
        t = Trainer(model, lambda m: SGD(m.dense_parameters(), m.embedding_tables(), lr=0.05))
        result = t.train(tiny_generator.batches(64), max_steps=40)
        assert np.isfinite(result.final_loss)


class TestTrainerBudgetAccounting:
    """The partial-final-batch and stream-exhaustion contracts."""

    def test_final_batch_counted_in_full(self, tiny_config, tiny_generator):
        # Budget 100 with batch 64: the second batch crosses the budget and
        # every example in it trained the model, so examples_seen reports
        # the true count (128), not the budget.
        result = _trainer(tiny_config).train(
            tiny_generator.batches(64), max_examples=100
        )
        assert result.steps == 2
        assert result.examples_seen == 128

    def test_examples_seen_never_undercounts(self, tiny_config, tiny_generator):
        result = _trainer(tiny_config).train(
            tiny_generator.batches(48), max_examples=100
        )
        assert result.examples_seen == 48 * result.steps
        assert result.examples_seen >= 100

    def test_early_exhaustion_names_budget(self, tiny_config, tiny_generator):
        # A finite stream that ends before the example budget must fail
        # loudly, naming the budget and the progress made.
        stream = [tiny_generator.batch(32) for _ in range(2)]
        with pytest.raises(ValueError, match=r"max_examples=320") as exc:
            _trainer(tiny_config).train(iter(stream), max_examples=320)
        assert "64 examples" in str(exc.value)
        assert "2 steps" in str(exc.value)

    def test_early_exhaustion_names_step_budget(self, tiny_config, tiny_generator):
        stream = [tiny_generator.batch(16)]
        with pytest.raises(ValueError, match=r"max_steps=9"):
            _trainer(tiny_config).train(iter(stream), max_steps=9)

    def test_stream_meeting_budget_exactly_is_fine(self, tiny_config, tiny_generator):
        stream = [tiny_generator.batch(32) for _ in range(3)]
        result = _trainer(tiny_config).train(iter(stream), max_examples=96)
        assert result.examples_seen == 96 and result.steps == 3

    def test_empty_stream_message_names_budget(self, tiny_config):
        with pytest.raises(ValueError, match=r"empty before the first step.*max_steps=5"):
            _trainer(tiny_config).train(iter([]), max_steps=5)


class TestEvaluate:
    def test_metrics_present(self, tiny_config, tiny_generator):
        model = DLRM(tiny_config, rng=0)
        metrics = evaluate(model, [tiny_generator.batch(128) for _ in range(2)])
        assert set(metrics) >= {"normalized_entropy", "log_loss", "num_examples"}
        assert metrics["num_examples"] == 256

    def test_trained_model_beats_untrained(self, tiny_config, tiny_generator):
        eval_batches = [tiny_generator.batch(256) for _ in range(2)]
        fresh = DLRM(tiny_config, rng=0)
        ne_before = evaluate(fresh, eval_batches)["normalized_entropy"]
        t = Trainer(
            fresh,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
        )
        t.train(tiny_generator.batches(64), max_steps=120)
        ne_after = evaluate(fresh, eval_batches)["normalized_entropy"]
        assert ne_after < ne_before

    def test_empty_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            evaluate(DLRM(tiny_config, rng=0), [])


class TestSearch:
    def _objective(self, lr: float) -> float:
        # smooth bowl in log-space with optimum at lr = 0.01
        return (np.log10(lr) + 2.0) ** 2

    def test_grid_search_finds_bowl(self):
        result = grid_search(self._objective, 1e-4, 1.0, num=9)
        assert result.num_trials == 9
        assert result.best.learning_rate == pytest.approx(0.01, rel=0.5)

    def test_random_search_deterministic_seed(self):
        a = random_search(self._objective, 1e-4, 1.0, num=5, rng=3)
        b = random_search(self._objective, 1e-4, 1.0, num=5, rng=3)
        assert [t.learning_rate for t in a.trials] == [t.learning_rate for t in b.trials]

    def test_bayesian_beats_or_matches_random_on_budget(self):
        bayes = bayesian_search(self._objective, 1e-4, 1.0, num=10, num_init=3, rng=1)
        assert bayes.num_trials == 10
        assert bayes.best.loss < 0.5  # found a near-optimal lr

    def test_bayesian_trials_within_bounds(self):
        result = bayesian_search(self._objective, 1e-3, 0.1, num=8, rng=0)
        for t in result.trials:
            assert 1e-3 * 0.999 <= t.learning_rate <= 0.1 * 1.001

    @pytest.mark.parametrize("func", [grid_search, random_search, bayesian_search])
    def test_bad_bounds_rejected(self, func):
        with pytest.raises(ValueError):
            func(self._objective, 1.0, 0.1)

    def test_grid_needs_two_points(self):
        with pytest.raises(ValueError):
            grid_search(self._objective, 0.01, 0.1, num=1)
