"""Tests for hot-row caching (repro.placement.cache + perf what-if)."""

import numpy as np
import pytest

from repro.configs import build_m2, make_test_model
from repro.hardware import BIG_BASIN
from repro.perf import cached_system_memory_throughput, gpu_server_throughput
from repro.placement import plan_cache, plan_system_memory, zipf_hit_rate


class TestZipfHitRate:
    def test_bounds(self):
        assert zipf_hit_rate(1000, 0) == 0.0
        assert zipf_hit_rate(1000, 1000) == 1.0
        assert zipf_hit_rate(1000, 2000) == 1.0

    def test_monotone_in_cache_size(self):
        rates = [zipf_hit_rate(100000, k) for k in (10, 100, 1000, 10000)]
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_skew_concentrates(self):
        # stronger skew -> same cache absorbs more traffic
        assert zipf_hit_rate(100000, 100, skew=1.2) > zipf_hit_rate(
            100000, 100, skew=0.8
        )

    def test_small_cache_outsized_hit_rate(self):
        # 1% of rows should absorb far more than 1% of Zipf(1.05) traffic
        assert zipf_hit_rate(1_000_000, 10_000, skew=1.05) > 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_hit_rate(0, 1)
        with pytest.raises(ValueError):
            zipf_hit_rate(10, -1)


class TestPlanCache:
    def test_budget_respected(self):
        model = make_test_model(64, 8, hash_size=1_000_000)
        plan = plan_cache(model, cache_budget_bytes=50e6)
        assert plan.cache_bytes <= 50e6
        assert 0 <= plan.absorbed_lookup_fraction <= 1

    def test_zero_budget(self):
        model = make_test_model(64, 8)
        plan = plan_cache(model, 0.0)
        assert plan.absorbed_lookup_fraction == 0.0
        assert all(v == 0 for v in plan.cached_rows.values())

    def test_hot_tables_prioritized(self):
        from repro.core import InteractionType, MLPSpec, ModelConfig, TableSpec

        tables = (
            TableSpec("hot", 1_000_000, dim=64, mean_lookups=50.0),
            TableSpec("cold", 1_000_000, dim=64, mean_lookups=0.5),
        )
        model = ModelConfig("m", 8, tables, MLPSpec((16,)), MLPSpec((16,)), InteractionType.CONCAT)
        # budget covers ~one table's 10% head only
        plan = plan_cache(model, cache_budget_bytes=30e6)
        assert plan.cached_rows["hot"] > 0
        assert plan.cached_rows["hot"] >= plan.cached_rows["cold"]

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            plan_cache(make_test_model(64, 4), -1.0)


class TestCachedSystemMemoryThroughput:
    def test_cache_speeds_up_big_basin_sysmem(self):
        """The paper's caching opportunity: a few GB of HBM cache recovers
        most of Big Basin's system-memory placement penalty."""
        m2 = build_m2()
        base = gpu_server_throughput(
            m2, 3200, BIG_BASIN, plan_system_memory(m2, BIG_BASIN)
        )
        cached, cache = cached_system_memory_throughput(m2, 3200, BIG_BASIN, 4e9)
        assert cache.absorbed_lookup_fraction > 0.3
        assert cached.throughput > 1.5 * base.throughput

    def test_zero_budget_matches_baseline(self):
        m2 = build_m2()
        base = gpu_server_throughput(
            m2, 3200, BIG_BASIN, plan_system_memory(m2, BIG_BASIN)
        )
        cached, _ = cached_system_memory_throughput(m2, 3200, BIG_BASIN, 0.0)
        assert cached.throughput == pytest.approx(base.throughput, rel=0.05)

    def test_diminishing_returns(self):
        m2 = build_m2()
        t = [
            cached_system_memory_throughput(m2, 3200, BIG_BASIN, b)[0].throughput
            for b in (1e9, 4e9, 16e9)
        ]
        assert t[1] >= t[0]
        gain_early = t[1] - t[0]
        gain_late = t[2] - t[1]
        assert gain_late <= gain_early + 1.0
