"""Unit tests for the unified benchmark harness (repro.bench)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import (
    GATE_FACTOR,
    SUITES,
    best_of,
    check,
    entry,
    render,
    run_suites,
    timed_infer,
    timed_train,
)
from repro.core import InteractionType, MLPSpec, ModelConfig, uniform_tables

from helpers import make_batch


# ---------------------------------------------------------------------------
# entry schema + timing protocol
# ---------------------------------------------------------------------------


def test_entry_schema_and_speedup():
    e = entry(2.0, 0.5, batch=64)
    assert e == {"old_s": 2.0, "new_s": 0.5, "speedup": 4.0,
                 "gate": True, "batch": 64}
    assert entry(1.0, 1.0, gate=False)["gate"] is False


def test_best_of_counts_calls_and_takes_min():
    calls = []

    def fn():
        calls.append(None)

    elapsed = best_of(fn, reps=3, warmup=2)
    assert len(calls) == 5  # 2 warmup + 3 timed
    assert elapsed >= 0.0


# ---------------------------------------------------------------------------
# regression gate
# ---------------------------------------------------------------------------


def _results(**benchmarks):
    return {"meta": {"mode": "quick", "suites": ["x"], "python": "3",
                     "numpy": np.__version__, "cpu_count": 1},
            "benchmarks": benchmarks}


def _write_baseline(tmp_path, results):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(results))
    return str(path)


def test_check_passes_within_gate_factor(tmp_path, capsys):
    baseline = _results(a=entry(1.0, 0.25))  # 4.0x
    # a drop to 3.3x is within the 1.25x allowance (floor = 3.2x)
    current = _results(a=entry(1.0, 1 / 3.3))
    assert check(current, _write_baseline(tmp_path, baseline)) == 0
    assert "passed" in capsys.readouterr().out


def test_check_fails_on_gated_ratio_regression(tmp_path, capsys):
    baseline = _results(a=entry(1.0, 0.25))  # 4.0x
    current = _results(a=entry(1.0, 0.5))  # 2.0x < 4.0/1.25 = 3.2x floor
    assert check(current, _write_baseline(tmp_path, baseline)) == 1
    assert "REGRESSION GATE FAILED" in capsys.readouterr().out


def test_check_ignores_ungated_and_unknown_entries(tmp_path):
    baseline = _results(a=entry(1.0, 0.25))
    current = _results(
        a=entry(1.0, 0.26),  # within gate
        b=entry(1.0, 10.0, gate=False),  # slowdown, but ungated
        c=entry(1.0, 10.0),  # gated but absent from baseline
    )
    assert check(current, _write_baseline(tmp_path, baseline)) == 0


def test_check_enforces_absolute_min_speedup(tmp_path, capsys):
    baseline = _results()
    current = _results(e2e=entry(1.0, 0.8, min_speedup=2.0))  # 1.25x < 2x
    assert check(current, _write_baseline(tmp_path, baseline)) == 1
    assert "absolute floor" in capsys.readouterr().out
    ok = _results(e2e=entry(1.0, 0.4, min_speedup=2.0))  # 2.5x >= 2x
    assert check(ok, _write_baseline(tmp_path, baseline)) == 0


def test_gate_factor_is_a_ratio_allowance():
    assert GATE_FACTOR > 1.0


# ---------------------------------------------------------------------------
# report rendering
# ---------------------------------------------------------------------------


def test_render_handles_all_entry_shapes():
    results = _results(
        kern=entry(0.002, 0.001),
        step=entry(0.2, 0.1, batch=512),
        be=entry(0.2, 0.1, backend="threaded", resolved="fused"),
        sweep={
            "serial_s": 4.0, "parallel4_cold_s": 2.0, "parallel4_warm_s": 0.1,
            "parallel_speedup": 2.0, "cached_speedup": 40.0, "speedup": 40.0,
            "min_speedup": 2.0, "gate": False,
        },
    )
    text = render(results)
    assert "kern" in text and "2.00x" in text
    assert "B=512" in text
    assert "-> fused" in text  # resolved-name tag for the threaded row
    assert "serial 4.00 s" in text


# ---------------------------------------------------------------------------
# suite registry + end-to-end timing helpers
# ---------------------------------------------------------------------------


def test_suite_registry_names():
    assert set(SUITES) == {"kernels", "dense", "backends", "mp", "tiering", "pipeline"}


def test_run_suites_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown suite"):
        run_suites(quick=True, names=["nope"])


def _tiny_config():
    return ModelConfig(
        name="bench-smoke",
        num_dense=4,
        tables=uniform_tables(2, 16, dim=4, mean_lookups=1.0),
        bottom_mlp=MLPSpec((6, 4)),
        top_mlp=MLPSpec((4,)),
        interaction=InteractionType.DOT,
    )


def test_timed_train_and_infer_smoke():
    config = _tiny_config()
    batches = [make_batch(config, 8, seed=s) for s in range(2)]
    train_s = timed_train(config, batches, "fused", reps=1, warmup=1)
    infer_s = timed_infer(config, batches, "fused", reps=1, warmup=1)
    assert train_s > 0 and infer_s > 0
