"""Tests for repro.core.optim: SGD and Adagrad, dense and sparse paths."""

import numpy as np
import pytest

from repro.core import (
    SGD,
    Adagrad,
    EmbeddingTable,
    Parameter,
    SparseGrad,
    TableSpec,
)

from helpers import simple_ragged


def _param(rng, shape=(3, 2)):
    return Parameter(rng.normal(size=shape))


def _table(rng, hash_size=10, dim=3):
    return EmbeddingTable(TableSpec("t", hash_size, dim=dim), rng)


class TestSGD:
    def test_dense_step(self, rng):
        p = _param(rng)
        before = p.value.copy()
        p.grad += 1.0
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.value, before - 0.1)

    def test_momentum_accumulates(self, rng):
        p = _param(rng)
        opt = SGD([p], lr=0.1, momentum=0.9)
        before = p.value.copy()
        p.grad[...] = 1.0
        opt.step()
        first_delta = (p.value - before).copy()
        p.grad[...] = 1.0
        opt.step()
        second_delta = p.value - before - first_delta
        # velocity grows: second step is larger
        assert np.all(np.abs(second_delta) > np.abs(first_delta))

    def test_weight_decay_shrinks(self, rng):
        p = Parameter(np.full((2, 2), 10.0))
        opt = SGD([p], lr=0.1, weight_decay=0.1)
        opt.step()  # grad is zero, only decay acts
        assert np.all(p.value < 10.0)

    def test_sparse_step_touches_only_rows(self, rng):
        table = _table(rng)
        before = table.weight.copy()
        table.forward(simple_ragged([[2, 5]]))
        table.backward(np.ones((1, 3)))
        SGD([], [table], lr=0.5).step()
        changed = np.where(np.any(table.weight != before, axis=1))[0]
        np.testing.assert_array_equal(changed, [2, 5])
        np.testing.assert_allclose(table.weight[2], before[2] - 0.5)

    def test_zero_grad_clears_both(self, rng):
        p = _param(rng)
        table = _table(rng)
        p.grad += 1
        table.forward(simple_ragged([[0]]))
        table.backward(np.ones((1, 3)))
        opt = SGD([p], [table], lr=0.1)
        opt.zero_grad()
        assert np.all(p.grad == 0)
        assert table.pop_grad() is None

    @pytest.mark.parametrize("kwargs", [
        {"lr": 0.0},
        {"lr": -1.0},
        {"lr": 0.1, "momentum": 1.0},
        {"lr": 0.1, "momentum": -0.1},
        {"lr": 0.1, "weight_decay": -1.0},
    ])
    def test_bad_hyperparams_rejected(self, rng, kwargs):
        with pytest.raises(ValueError):
            SGD([_param(rng)], **kwargs)


class TestAdagrad:
    def test_dense_first_step_is_lr_sign(self, rng):
        p = Parameter(np.zeros((2, 2)))
        p.grad[...] = 4.0
        Adagrad([p], lr=0.1).step()
        # update = lr * g / sqrt(g^2) = lr
        np.testing.assert_allclose(p.value, -0.1, rtol=1e-6)

    def test_effective_lr_decays(self, rng):
        p = Parameter(np.zeros((1, 1)))
        opt = Adagrad([p], lr=0.1)
        deltas = []
        for _ in range(3):
            before = p.value.copy()
            p.grad[...] = 1.0
            opt.step()
            deltas.append(float(np.abs(p.value - before).max()))
            p.zero_grad()
        assert deltas[0] > deltas[1] > deltas[2]

    def test_sparse_state_per_row(self, rng):
        table = _table(rng)
        opt = Adagrad([], [table], lr=0.1)
        # Hit row 1 twice, row 2 once: row 1's effective lr should decay.
        deltas = {}
        for step, rows in enumerate([[1], [1, 2]]):
            before = table.weight.copy()
            table.forward(simple_ragged([rows]))
            table.backward(np.ones((1, 3)))
            opt.step()
            deltas[step] = np.abs(table.weight - before)
        # second hit on row 1 moves less than the first hit on row 2
        assert np.all(deltas[1][1] < deltas[1][2])

    def test_untouched_rows_keep_state(self, rng):
        table = _table(rng)
        opt = Adagrad([], [table], lr=0.1)
        table.forward(simple_ragged([[0]]))
        table.backward(np.ones((1, 3)))
        opt.step()
        assert np.all(opt._table_state[0][1:] == 0)
        assert np.all(opt._table_state[0][0] > 0)

    def test_state_bytes_counts_everything(self, rng):
        p = _param(rng, (4, 4))
        table = _table(rng, hash_size=8, dim=2)
        opt = Adagrad([p], [table], lr=0.1)
        assert opt.state_bytes() == p.value.nbytes + table.weight.nbytes

    @pytest.mark.parametrize("kwargs", [
        {"lr": 0.0},
        {"lr": 0.1, "eps": 0.0},
        {"lr": 0.1, "initial_accumulator": -1.0},
    ])
    def test_bad_hyperparams_rejected(self, rng, kwargs):
        with pytest.raises(ValueError):
            Adagrad([_param(rng)], **kwargs)

    def test_convergence_on_quadratic(self, rng):
        # minimize ||x - 3||^2 with Adagrad
        p = Parameter(np.zeros(4))
        opt = Adagrad([p], lr=1.0)
        for _ in range(400):
            opt.zero_grad()
            p.grad += 2 * (p.value - 3.0)
            opt.step()
        np.testing.assert_allclose(p.value, 3.0, atol=0.05)
