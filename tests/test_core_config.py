"""Tests for repro.core.config: TableSpec, MLPSpec, ModelConfig."""

import pytest

from repro.core import (
    FP32_BYTES,
    InteractionType,
    MLPSpec,
    ModelConfig,
    TableSpec,
    uniform_tables,
)


class TestTableSpec:
    def test_basic_properties(self):
        spec = TableSpec("t", hash_size=1000, dim=16, mean_lookups=5.0)
        assert spec.num_parameters == 16000
        assert spec.size_bytes == 16000 * FP32_BYTES

    def test_truncation_caps_effective_lookups(self):
        spec = TableSpec("t", hash_size=10, dim=4, mean_lookups=50.0, truncation=32)
        assert spec.effective_mean_lookups == 32.0

    def test_truncation_does_not_raise_short_lookups(self):
        spec = TableSpec("t", hash_size=10, dim=4, mean_lookups=3.0, truncation=32)
        assert spec.effective_mean_lookups == 3.0

    def test_no_truncation_passthrough(self):
        spec = TableSpec("t", hash_size=10, dim=4, mean_lookups=50.0)
        assert spec.effective_mean_lookups == 50.0

    @pytest.mark.parametrize("field,value", [
        ("hash_size", 0),
        ("hash_size", -5),
        ("dim", 0),
        ("mean_lookups", -1.0),
        ("truncation", 0),
    ])
    def test_rejects_bad_values(self, field, value):
        kwargs = dict(name="t", hash_size=10, dim=4, mean_lookups=1.0, truncation=None)
        kwargs[field] = value
        with pytest.raises(ValueError):
            TableSpec(**kwargs)


class TestMLPSpec:
    def test_caret_notation(self):
        spec = MLPSpec.from_notation("512^3")
        assert spec.layer_sizes == (512, 512, 512)
        assert spec.depth == 3
        assert spec.out_features == 512

    def test_dash_notation(self):
        spec = MLPSpec.from_notation("512-256-512")
        assert spec.layer_sizes == (512, 256, 512)

    def test_notation_roundtrip_uniform(self):
        assert MLPSpec.from_notation("64^2").notation() == "64^2"

    def test_notation_roundtrip_mixed(self):
        assert MLPSpec.from_notation("512-256-512").notation() == "512-256-512"

    def test_num_parameters(self):
        spec = MLPSpec((4, 3))
        # 2->4: 8 + 4 bias; 4->3: 12 + 3 bias
        assert spec.num_parameters(2) == 8 + 4 + 12 + 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MLPSpec(())

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            MLPSpec((8, 0))

    def test_rejects_zero_depth_notation(self):
        with pytest.raises(ValueError):
            MLPSpec.from_notation("64^0")


class TestModelConfig:
    def _config(self, interaction=InteractionType.CONCAT, bottom=(8, 5)):
        return ModelConfig(
            name="m",
            num_dense=10,
            tables=uniform_tables(4, 100, dim=5, mean_lookups=2.0),
            bottom_mlp=MLPSpec(bottom),
            top_mlp=MLPSpec((6,)),
            interaction=interaction,
        )

    def test_counts(self):
        cfg = self._config()
        assert cfg.num_sparse == 4
        assert cfg.embedding_dim == 5
        assert cfg.embedding_parameters == 4 * 100 * 5

    def test_embedding_bytes(self):
        cfg = self._config()
        assert cfg.embedding_bytes == 4 * 100 * 5 * FP32_BYTES

    def test_mean_total_lookups(self):
        cfg = self._config()
        assert cfg.mean_total_lookups == pytest.approx(8.0)

    def test_concat_interaction_width(self):
        cfg = self._config()
        assert cfg.interaction_features == (4 + 1) * 5

    def test_dot_interaction_width(self):
        cfg = self._config(interaction=InteractionType.DOT, bottom=(8, 5))
        # d + (n+1)n/2 pairs with n = 4 sparse features
        assert cfg.interaction_features == 5 + 10

    def test_dot_requires_matching_bottom_width(self):
        with pytest.raises(ValueError, match="dot interaction"):
            self._config(interaction=InteractionType.DOT, bottom=(8, 7))

    def test_mixed_dims_rejected(self):
        tables = uniform_tables(2, 10, dim=4) + uniform_tables(1, 10, dim=8, prefix="x")
        with pytest.raises(ValueError, match="fixed embedding dim"):
            ModelConfig("m", 4, tables, MLPSpec((4,)), MLPSpec((4,)))

    def test_requires_tables(self):
        with pytest.raises(ValueError):
            ModelConfig("m", 4, (), MLPSpec((4,)), MLPSpec((4,)))

    def test_mlp_parameters_includes_scorer(self):
        cfg = self._config()
        bottom = cfg.bottom_mlp.num_parameters(10)
        top = cfg.top_mlp.num_parameters(cfg.interaction_features)
        scorer = 6 + 1
        assert cfg.mlp_parameters == bottom + top + scorer

    def test_describe_matches_table2_shape(self):
        desc = self._config().describe()
        assert desc["num_sparse"] == 4
        assert desc["num_dense"] == 10
        assert "embedding_gb" in desc and "top_mlp" in desc

    def test_total_parameters_consistency(self):
        cfg = self._config()
        assert cfg.total_parameters == cfg.embedding_parameters + cfg.mlp_parameters


class TestUniformTables:
    def test_builds_identical_specs(self):
        tables = uniform_tables(3, 64, dim=8, mean_lookups=4.0, truncation=16)
        assert len(tables) == 3
        assert {t.hash_size for t in tables} == {64}
        assert {t.truncation for t in tables} == {16}
        assert len({t.name for t in tables}) == 3

    def test_rejects_zero_tables(self):
        with pytest.raises(ValueError):
            uniform_tables(0, 64)
