"""Tests for repro.runtime: cache keying/storage and the sweep runner.

The two contracts pinned here:

* **Cache soundness** — a key changes whenever the namespace, the point
  function's code, or any parameter changes; values round-trip exactly.
* **Determinism** — ``SweepRunner`` returns results in input order and a
  parallel run is bit-identical to a serial one (the figure sweeps rely on
  this to keep golden numbers stable under ``--workers``).
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.core.config import InteractionType, MLPSpec, ModelConfig, uniform_tables
from repro.obs.registry import MetricsRegistry
from repro.resilience import RetryPolicy
from repro.runtime import (
    MISS,
    PointFailure,
    ResultCache,
    SweepPointError,
    SweepRunner,
    canonical_json,
    code_token,
    default_workers,
    derive_seed,
    fingerprint,
)

# Fork start method: cheap worker startup and inherited sys.modules, so the
# module-level point functions below are picklable into workers.
FORK = multiprocessing.get_context("fork")


def square_point(x: int) -> int:
    """Module-level, picklable grid point."""
    return x * x


def noisy_point(x: int, seed: int) -> float:
    """A point whose value depends only on its explicit seed (derive_seed)."""
    rng = np.random.default_rng(seed)
    return float(x + rng.standard_normal())


def _model() -> ModelConfig:
    return ModelConfig(
        name="rt",
        num_dense=6,
        tables=uniform_tables(2, 40, dim=4, mean_lookups=2.0),
        bottom_mlp=MLPSpec((8, 4)),
        top_mlp=MLPSpec((6,)),
        interaction=InteractionType.DOT,
    )


# ---------------------------------------------------------------------------
# canonicalization + keys
# ---------------------------------------------------------------------------


class TestCanonical:
    def test_dict_order_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_dataclass_and_enum_canonicalize(self):
        a = fingerprint({"model": _model()})
        b = fingerprint({"model": _model()})
        assert a == b

    def test_config_change_changes_key(self):
        import dataclasses

        other = dataclasses.replace(_model(), num_dense=7)
        assert fingerprint({"m": _model()}) != fingerprint({"m": other})

    def test_ndarray_content_keyed(self):
        x = np.arange(5)
        assert fingerprint(x) == fingerprint(np.arange(5))
        assert fingerprint(x) != fingerprint(np.arange(6))

    def test_numpy_scalars_match_python(self):
        assert fingerprint(np.int64(3)) == fingerprint(3)

    def test_uncanonicalizable_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonical_json(object())

    def test_code_token_tracks_source(self):
        assert code_token(square_point) == code_token(square_point)
        assert code_token(square_point) != code_token(noisy_point)

    def test_code_token_override(self):
        class Fn:
            __code_token__ = "stable-token"

            def __call__(self):  # pragma: no cover
                return 0

        assert code_token(Fn()) == "stable-token"


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "fig15", 128) == derive_seed(0, "fig15", 128)

    def test_sensitive_to_parts_and_base(self):
        seeds = {
            derive_seed(0, "a"),
            derive_seed(0, "b"),
            derive_seed(1, "a"),
            derive_seed(0, "a", 1),
        }
        assert len(seeds) == 4

    def test_fits_in_rng_seed_range(self):
        s = derive_seed(123, "x")
        assert 0 <= s < 2**48
        np.random.default_rng(s)  # must be a valid seed


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_roundtrip_exact_floats(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = {"ne": 0.1 + 0.2, "steps": 7}
        key = cache.key("ns", {"x": 1})
        cache.store("ns", key, value, params={"x": 1})
        loaded = cache.load("ns", key)
        assert loaded == value
        assert loaded["ne"] == value["ne"]  # bit-exact via repr round-trip

    def test_miss_sentinel(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("ns", cache.key("ns", {"x": 2})) is MISS

    def test_key_sensitivity(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key("ns", {"x": 1}, code="c1")
        assert cache.key("ns", {"x": 2}, code="c1") != base
        assert cache.key("other", {"x": 1}, code="c1") != base
        assert cache.key("ns", {"x": 1}, code="c2") != base

    def test_cached_none_distinct_from_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("ns", {})
        cache.store("ns", key, None)
        assert cache.load("ns", key) is None

    def test_disabled_cache_never_hits(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        key = cache.key("ns", {"x": 1})
        cache.store("ns", key, 42)
        assert cache.load("ns", key) is MISS
        assert cache.entries() == []

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        for x in range(3):
            cache.store("ns", cache.key("ns", {"x": x}), x)
        assert len(cache.entries()) == 3
        assert cache.size_bytes() > 0
        assert cache.clear() == 3
        assert cache.entries() == []
        stats = cache.stats()
        assert stats["stores"] == 3

    def test_namespace_with_separator_is_safe(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("a/b", {})
        cache.store("a/b", key, 1)
        assert cache.load("a/b", key) == 1
        assert all(tmp_path in p.parents or p.is_relative_to(tmp_path) for p in cache.entries())


# ---------------------------------------------------------------------------
# SweepRunner
# ---------------------------------------------------------------------------


class TestSweepRunner:
    def test_results_in_input_order(self):
        runner = SweepRunner(workers=1)
        out = runner.map(square_point, [{"x": x} for x in (3, 1, 2)])
        assert out == [9, 1, 4]

    def test_parallel_bit_identical_to_serial(self):
        points = [{"x": x, "seed": derive_seed(0, "noisy", x)} for x in range(8)]
        serial = SweepRunner(workers=1).map(noisy_point, points)
        parallel = SweepRunner(workers=4, mp_context=FORK).map(noisy_point, points)
        assert serial == parallel  # float equality: bit-identical

    def test_closure_falls_back_to_serial(self):
        registry = MetricsRegistry()
        runner = SweepRunner(workers=4, metrics=registry, mp_context=FORK)
        y = 10
        out = runner.map_values(lambda x: x + y, [1, 2, 3])
        assert out == [11, 12, 13]
        assert registry.get("runtime.sweep.serial_fallback").value == 1

    def test_cache_hits_skip_recompute(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=registry)
        runner = SweepRunner(workers=1, cache=cache, metrics=registry)
        points = [{"x": x} for x in range(5)]
        first = runner.map(square_point, points, namespace="sq")
        second = runner.map(square_point, points, namespace="sq")
        assert first == second == [0, 1, 4, 9, 16]
        assert registry.get("runtime.cache.stores").value == 5
        assert registry.get("runtime.cache.hits").value == 5
        # second map computed nothing
        assert registry.get("runtime.sweep.computed").value == 5

    def test_parallel_warm_cache_equivalence(self, tmp_path):
        points = [{"x": x, "seed": derive_seed(1, x)} for x in range(6)]
        serial = SweepRunner(workers=1).map(noisy_point, points)
        cache = ResultCache(tmp_path)
        par = SweepRunner(workers=3, cache=cache, mp_context=FORK)
        cold = par.map(noisy_point, points, namespace="warm")
        warm = par.map(noisy_point, points, namespace="warm")
        assert serial == cold == warm

    def test_use_cache_false_bypasses(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        runner.map(square_point, [{"x": 2}], use_cache=False)
        assert cache.entries() == []

    def test_metrics_and_span_emitted(self):
        from repro.obs import Tracer

        registry = MetricsRegistry()
        tracer = Tracer()
        runner = SweepRunner(workers=1, metrics=registry, tracer=tracer)
        runner.map(square_point, [{"x": x} for x in range(4)], namespace="m")
        assert registry.get("runtime.sweep.points").value == 4
        labeled = registry.get("runtime.sweep.points").labels(namespace="m")
        assert labeled.value == 4
        spans = [s for s in tracer.spans if s.category == "runtime"]
        assert len(spans) == 1 and spans[0].name == "sweep:m"

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=-1)

    def test_default_workers(self):
        assert default_workers(1) == 1
        assert 1 <= default_workers() <= 256
        assert default_workers(10**9) == default_workers()


# ---------------------------------------------------------------------------
# figure sweeps through the runner (the contract the goldens rely on)
# ---------------------------------------------------------------------------


class TestFigureParity:
    def test_fig11_runner_matches_serial(self, tmp_path):
        from repro.experiments import fig11_batch_scaling as f11

        serial = f11.run()
        runner = SweepRunner(workers=2, cache=ResultCache(tmp_path), mp_context=FORK)
        cold = f11.run(runner=runner)
        warm = f11.run(runner=runner)
        assert serial == cold == warm

    def test_fig13_runner_matches_serial(self, tmp_path):
        from repro.experiments import fig13_mlp_dims as f13

        serial = f13.run()
        runner = SweepRunner(workers=2, cache=ResultCache(tmp_path), mp_context=FORK)
        assert serial == f13.run(runner=runner) == f13.run(runner=runner)

    def test_fig15_micro_parity(self, tmp_path):
        from repro.experiments import fig15_accuracy as f15

        kw = dict(
            baseline_batch=64,
            gpu_batches=(128,),
            example_budget=1536,
            tuning_trials=2,
            num_seeds=1,
            seed=0,
        )
        serial = f15.run(**kw)
        runner = SweepRunner(workers=2, cache=ResultCache(tmp_path), mp_context=FORK)
        cold = f15.run(**kw, runner=runner)
        warm = f15.run(**kw, runner=runner)
        assert serial == cold == warm

    def test_tuning_runner_parity(self):
        from repro.core.tuning import grid_search

        serial = grid_search(square_point, 1e-2, 1.0, num=5)
        parallel = grid_search(
            square_point, 1e-2, 1.0, num=5, runner=SweepRunner(workers=2, mp_context=FORK)
        )
        assert serial == parallel


# ---------------------------------------------------------------------------
# corrupt-entry eviction


class TestCacheCorruption:
    def _entry_path(self, cache, ns, key):
        return cache._path(ns, key)

    def test_unparseable_json_is_evicted_and_counted(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=registry)
        key = cache.key("ns", {"x": 1})
        cache.store("ns", key, 42)
        path = self._entry_path(cache, "ns", key)
        path.write_text("{not json", encoding="utf-8")
        assert cache.load("ns", key) is MISS
        assert not path.exists()  # evicted
        assert registry.get("runtime.cache.corrupt").value == 1
        assert registry.get("runtime.cache.misses").value == 1

    def test_json_without_value_key_is_corrupt(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=registry)
        key = cache.key("ns", {"x": 2})
        cache.store("ns", key, 7)
        path = self._entry_path(cache, "ns", key)
        path.write_text('{"key": "orphan", "namespace": "ns"}', encoding="utf-8")
        assert cache.load("ns", key) is MISS
        assert not path.exists()
        assert registry.get("runtime.cache.corrupt").value == 1

    def test_non_dict_json_is_corrupt(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=registry)
        key = cache.key("ns", {"x": 3})
        path = self._entry_path(cache, "ns", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]", encoding="utf-8")
        assert cache.load("ns", key) is MISS
        assert registry.get("runtime.cache.corrupt").value == 1

    def test_recompute_after_eviction_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache)
        points = [{"x": i} for i in range(3)]
        first = runner.map(square_point, points, namespace="sq")
        # corrupt one stored entry behind the cache's back
        victim = cache.entries()[0]
        victim.write_text("garbage", encoding="utf-8")
        again = runner.map(square_point, points, namespace="sq")
        assert again == first
        assert cache.stats()["corrupt"] == 1

    def test_stats_include_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.stats()["corrupt"] == 0.0


# ---------------------------------------------------------------------------
# worker-crash recovery

_CRASH_SENTINEL_ENV = "REPRO_TEST_CRASH_SENTINEL"

#: zero-delay retries: tests should not sleep
FAST_RETRY = RetryPolicy(
    max_attempts=3, base_delay_s=0.0, multiplier=1.0, max_delay_s=0.0,
    jitter=0.0, deadline_s=1.0,
)


def crash_once_point(x: int) -> int:
    """Hard-kills its worker process the first time x == 2 (sentinel file
    marks the crash), succeeds on retry — a transient OOM-kill stand-in."""
    sentinel = os.environ.get(_CRASH_SENTINEL_ENV)
    if x == 2 and sentinel and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(13)
    return x * 10


def always_failing_point(x: int) -> int:
    if x == 2:
        raise ValueError("deterministically bad point")
    return x + 100


class TestSweepCrashRecovery:
    def test_transient_worker_crash_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_CRASH_SENTINEL_ENV, str(tmp_path / "crashed"))
        registry = MetricsRegistry()
        runner = SweepRunner(
            workers=2, metrics=registry, mp_context=FORK, retry=FAST_RETRY
        )
        out = runner.map(
            crash_once_point, [{"x": i} for i in range(5)], use_cache=False
        )
        # the sweep completed: the crashed point was retried on a fresh pool
        assert out == [0, 10, 20, 30, 40]
        assert (tmp_path / "crashed").exists()
        assert registry.get("runtime.sweep.pool_restarts").value >= 1
        assert registry.get("runtime.sweep.point_retries").value >= 1

    def test_permanent_failure_raises_named_error(self):
        runner = SweepRunner(workers=2, mp_context=FORK, retry=FAST_RETRY)
        with pytest.raises(SweepPointError) as err:
            runner.map(
                always_failing_point, [{"x": i} for i in range(4)], use_cache=False
            )
        failure = err.value.failure
        assert failure.params == {"x": 2}
        assert failure.index == 2
        assert failure.attempts == FAST_RETRY.max_attempts
        assert failure.error_type == "ValueError"

    def test_partial_mode_keeps_successes(self):
        registry = MetricsRegistry()
        runner = SweepRunner(
            workers=2, metrics=registry, mp_context=FORK, retry=FAST_RETRY
        )
        out = runner.map(
            always_failing_point,
            [{"x": i} for i in range(4)],
            use_cache=False,
            on_error="partial",
        )
        assert out[0] == 100 and out[1] == 101 and out[3] == 103
        assert isinstance(out[2], PointFailure)
        assert "x': 2" in out[2].describe()
        assert registry.get("runtime.sweep.point_failures").value == 1

    def test_partial_mode_serial_path(self):
        runner = SweepRunner(workers=1, retry=FAST_RETRY)
        out = runner.map(
            always_failing_point,
            [{"x": i} for i in range(4)],
            use_cache=False,
            on_error="partial",
        )
        assert isinstance(out[2], PointFailure)
        assert out[3] == 103

    def test_failures_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(
            workers=1, cache=cache, retry=FAST_RETRY
        )
        runner.map(
            always_failing_point,
            [{"x": i} for i in range(4)],
            namespace="boom",
            on_error="partial",
        )
        bad_key = cache.key_for(always_failing_point, {"x": 2}, namespace="boom")
        good_key = cache.key_for(always_failing_point, {"x": 0}, namespace="boom")
        assert cache.load("boom", bad_key) is MISS
        assert cache.load("boom", good_key) == 100

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner().map(square_point, [{"x": 1}], on_error="ignore")
