"""Tests for learning-rate schedules and the scheduled-optimizer wrapper."""

import numpy as np
import pytest

from repro.core import (
    Adagrad,
    ConstantLR,
    DLRM,
    PolynomialDecayLR,
    ScheduledOptimizer,
    Trainer,
    WarmupLR,
)


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.1)
        assert s.at(0) == s.at(1000) == 0.1

    def test_warmup_ramps_then_flat(self):
        s = WarmupLR(0.1, warmup_steps=10, start_factor=0.1)
        assert s.at(0) == pytest.approx(0.01)
        assert s.at(5) == pytest.approx(0.055)
        assert s.at(10) == 0.1
        assert s.at(100) == 0.1

    def test_warmup_monotone(self):
        s = WarmupLR(0.2, warmup_steps=50)
        values = [s.at(i) for i in range(60)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_polynomial_linear_decay(self):
        s = PolynomialDecayLR(0.1, total_steps=10, end_lr=0.0, power=1.0)
        assert s.at(0) == pytest.approx(0.1)
        assert s.at(5) == pytest.approx(0.05)
        assert s.at(10) == 0.0
        assert s.at(99) == 0.0

    def test_polynomial_power_shapes(self):
        sqrtish = PolynomialDecayLR(0.1, 100, power=0.5)
        quad = PolynomialDecayLR(0.1, 100, power=2.0)
        # at midpoint, higher power decays faster
        assert quad.at(50) < sqrtish.at(50)

    @pytest.mark.parametrize("make", [
        lambda: ConstantLR(0.0),
        lambda: WarmupLR(0.1, warmup_steps=0),
        lambda: WarmupLR(0.1, 10, start_factor=0.0),
        lambda: PolynomialDecayLR(0.1, 0),
        lambda: PolynomialDecayLR(0.1, 10, end_lr=0.5),
        lambda: PolynomialDecayLR(0.1, 10, power=0.0),
    ])
    def test_bad_params_rejected(self, make):
        with pytest.raises(ValueError):
            make()

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            ConstantLR(0.1).at(-1)


class TestScheduledOptimizer:
    def test_lr_follows_schedule(self, tiny_config, tiny_generator):
        model = DLRM(tiny_config, rng=0)
        inner = Adagrad(model.dense_parameters(), model.embedding_tables(), lr=1.0)
        sched = ScheduledOptimizer(inner, WarmupLR(0.1, warmup_steps=5))
        trainer = Trainer(model, lambda m: sched)
        trainer.train(tiny_generator.batches(32), max_steps=8)
        assert sched.step_count == 8
        assert inner.lr == pytest.approx(0.1)  # past warm-up

    def test_warmup_helps_or_matches_at_high_lr(self, tiny_config):
        """With an aggressive LR, warm-up should not hurt final loss."""
        from repro.data import SyntheticDataGenerator

        results = {}
        for warmup in (False, True):
            gen = SyntheticDataGenerator(tiny_config, rng=9, seed_teacher=True)
            model = DLRM(tiny_config, rng=2)
            inner = Adagrad(model.dense_parameters(), model.embedding_tables(), lr=0.5)
            schedule = WarmupLR(0.5, warmup_steps=20) if warmup else ConstantLR(0.5)
            trainer = Trainer(model, lambda m: ScheduledOptimizer(inner, schedule))
            r = trainer.train(gen.batches(64), max_steps=100)
            results[warmup] = r.smoothed_final_loss
        assert results[True] <= results[False] + 0.05
