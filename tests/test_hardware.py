"""Tests for repro.hardware: specs, roofline, interconnects, memory, power."""

import numpy as np
import pytest

from repro.hardware import (
    BIG_BASIN,
    BIG_BASIN_16GB,
    DUAL_SOCKET_CPU,
    GB,
    PLATFORMS,
    TB,
    ZION,
    CapacityError,
    ClusterPower,
    DeviceSpec,
    LinkSpec,
    MemoryPool,
    OpCost,
    allreduce_time,
    alltoall_time,
    arithmetic_intensity,
    broadcast_time,
    gather_time,
    op_time,
    perf_per_watt,
    ridge_point,
    transfer_time,
    usable_capacity,
)


class TestTableIPlatforms:
    """Table I constants must match the published platform details."""

    def test_cpu_platform(self):
        assert DUAL_SOCKET_CPU.num_cpu_sockets == 2
        assert DUAL_SOCKET_CPU.system_memory == 256 * GB
        assert DUAL_SOCKET_CPU.num_gpus == 0
        assert DUAL_SOCKET_CPU.nic.bandwidth == pytest.approx(25e9 / 8)

    def test_big_basin(self):
        assert BIG_BASIN.num_gpus == 8
        assert BIG_BASIN.gpu.peak_flops == pytest.approx(15.7e12)
        assert BIG_BASIN.gpu.mem_bandwidth == pytest.approx(900 * GB)
        assert BIG_BASIN.gpu.mem_capacity == 32 * GB
        assert BIG_BASIN_16GB.gpu.mem_capacity == 16 * GB
        assert BIG_BASIN.system_memory == 256 * GB
        assert BIG_BASIN.nic.bandwidth == pytest.approx(100e9 / 8)
        assert BIG_BASIN.gpu_peer_direct

    def test_zion(self):
        assert ZION.num_cpu_sockets == 8
        assert ZION.system_memory == 2 * TB
        # ~1 TB/s aggregate memory bandwidth
        assert ZION.system_mem_bandwidth == pytest.approx(1e12, rel=0.05)
        assert not ZION.gpu_peer_direct
        assert ZION.nic.bandwidth == pytest.approx(4 * 100e9 / 8)

    def test_big_basin_power_ratio(self):
        """§V-A: Big Basin needs 7.3x the CPU server's power capacity."""
        ratio = BIG_BASIN.nameplate_watts / DUAL_SOCKET_CPU.nameplate_watts
        assert ratio == pytest.approx(7.3)

    def test_registry(self):
        assert set(PLATFORMS) == {"DualSocketCPU", "BigBasin-16GB", "BigBasin", "Zion"}

    def test_gpu_memory_totals(self):
        assert BIG_BASIN.total_gpu_memory == 256 * GB
        assert BIG_BASIN_16GB.total_gpu_memory == 128 * GB
        assert DUAL_SOCKET_CPU.total_gpu_memory == 0


class TestRoofline:
    def test_compute_bound(self):
        dev = DeviceSpec("d", peak_flops=1e12, mem_bandwidth=1e11, mem_capacity=1e9,
                         launch_overhead_s=0.0, compute_efficiency=1.0, bandwidth_efficiency=1.0)
        cost = OpCost(flops=1e12, bytes=1.0, kernels=0)
        assert op_time(dev, cost) == pytest.approx(1.0)

    def test_bandwidth_bound(self):
        dev = DeviceSpec("d", peak_flops=1e12, mem_bandwidth=1e11, mem_capacity=1e9,
                         launch_overhead_s=0.0, compute_efficiency=1.0, bandwidth_efficiency=1.0)
        cost = OpCost(flops=1.0, bytes=1e11, kernels=0)
        assert op_time(dev, cost) == pytest.approx(1.0)

    def test_launch_overhead_added(self):
        dev = DeviceSpec("d", 1e12, 1e11, 1e9, launch_overhead_s=1e-5,
                         compute_efficiency=1.0, bandwidth_efficiency=1.0)
        assert op_time(dev, OpCost(0.0, 0.0, kernels=10)) == pytest.approx(1e-4)

    def test_opcost_add_and_scale(self):
        a = OpCost(10, 20, 1) + OpCost(5, 5, 2)
        assert (a.flops, a.bytes, a.kernels) == (15, 25, 3)
        s = a.scaled(2.0)
        assert (s.flops, s.bytes, s.kernels) == (30, 50, 3)  # kernels unscaled

    def test_ridge_point_and_intensity(self):
        dev = DeviceSpec("d", 1e12, 1e11, 1e9, 0.0, 1.0, 1.0)
        assert ridge_point(dev) == pytest.approx(10.0)
        assert arithmetic_intensity(OpCost(100, 10)) == pytest.approx(10.0)
        assert arithmetic_intensity(OpCost(100, 0)) == float("inf")

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            OpCost(flops=-1)


class TestInterconnect:
    LINK = LinkSpec("test", bandwidth=1e9, latency_s=1e-5)

    def test_transfer(self):
        assert transfer_time(self.LINK, 1e9) == pytest.approx(1.0 + 1e-5)
        assert transfer_time(self.LINK, 0) == 0.0

    def test_allreduce_single_rank_free(self):
        assert allreduce_time(self.LINK, 1e6, 1) == 0.0

    def test_allreduce_volume_scales(self):
        t2 = allreduce_time(self.LINK, 1e9, 2)
        t8 = allreduce_time(self.LINK, 1e9, 8)
        # 2(n-1)/n volume: 1.0 for n=2, 1.75 for n=8
        assert t8 > t2
        assert t8 == pytest.approx(1.75 + 14e-5, rel=1e-3)

    def test_alltoall(self):
        t = alltoall_time(self.LINK, 8e8, 8)
        assert t == pytest.approx(0.7 + 7e-5, rel=1e-3)
        assert alltoall_time(self.LINK, 8e8, 1) == 0.0

    def test_broadcast_and_gather(self):
        assert broadcast_time(self.LINK, 1e9, 8) == pytest.approx(1.0 + 3e-5, rel=1e-3)
        assert gather_time(self.LINK, 1e8, 5) == pytest.approx(4 * (0.1 + 1e-5), rel=1e-3)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            transfer_time(self.LINK, -1)


class TestMemoryPool:
    def test_allocate_free_cycle(self):
        pool = MemoryPool("p", capacity=100.0)
        pool.allocate("a", 60.0)
        assert pool.used == 60.0 and pool.available == 40.0
        assert pool.utilization == pytest.approx(0.6)
        assert pool.free("a") == 60.0
        assert pool.used == 0.0

    def test_overflow_raises_capacity_error(self):
        pool = MemoryPool("p", capacity=100.0)
        pool.allocate("a", 80.0)
        with pytest.raises(CapacityError) as err:
            pool.allocate("b", 30.0)
        assert err.value.pool is pool

    def test_duplicate_tag_rejected(self):
        pool = MemoryPool("p", capacity=100.0)
        pool.allocate("a", 10.0)
        with pytest.raises(ValueError):
            pool.allocate("a", 10.0)

    def test_free_unknown_rejected(self):
        with pytest.raises(KeyError):
            MemoryPool("p", 10.0).free("nope")

    def test_reset(self):
        pool = MemoryPool("p", capacity=100.0)
        pool.allocate("a", 10.0)
        pool.reset()
        assert pool.used == 0.0

    def test_usable_capacity(self):
        assert usable_capacity(100.0, headroom=0.9) == pytest.approx(90.0)
        with pytest.raises(ValueError):
            usable_capacity(100.0, headroom=1.5)


class TestPower:
    def test_cluster_power_sums(self):
        power = ClusterPower()
        power.add(DUAL_SOCKET_CPU, 4, role="trainer")
        power.add(DUAL_SOCKET_CPU, 2, role="ps")
        assert power.total_servers == 6
        assert power.nameplate_watts == pytest.approx(6 * 500.0)
        assert power.by_role() == {"trainer": 2000.0, "ps": 1000.0}

    def test_drawn_less_than_nameplate_at_partial_utilization(self):
        power = ClusterPower().add(BIG_BASIN, 1, utilization=0.5)
        assert power.drawn_watts < power.nameplate_watts

    def test_utilization_scaling(self):
        idle = DUAL_SOCKET_CPU.power_at_utilization(0.0)
        full = DUAL_SOCKET_CPU.power_at_utilization(1.0)
        assert idle == pytest.approx(0.3 * 500.0)
        assert full == pytest.approx(500.0)
        with pytest.raises(ValueError):
            DUAL_SOCKET_CPU.power_at_utilization(1.5)

    def test_perf_per_watt(self):
        assert perf_per_watt(1000.0, 500.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            perf_per_watt(1.0, 0.0)
