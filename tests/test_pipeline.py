"""Prefetch pipeline: the bit-identity contract and its supporting parts.

The pipelined data path (:mod:`repro.pipeline`) claims that moving batch
generation and lookup planning onto a background thread changes *nothing*
about training — losses and every parameter bit-identical to the inline
loop.  These tests pin that property-style (random architectures, dtypes
and batch shapes), plus the pieces it is built from: plan-ahead coalesce
kernels, ``touched_rows`` == ``pop_grad`` rows, the stall ledger, core
reservation, error propagation with stage attribution, and the reducer's
FIFO comm-job lane.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DLRM,
    Adagrad,
    EmbeddingTable,
    RaggedIndices,
    TableSpec,
    Trainer,
)
from repro.core import kernels
from repro.core.config import InteractionType, MLPSpec, ModelConfig, uniform_tables
from repro.data import SyntheticDataGenerator
from repro.distributed.mp.allreduce import GradReducer
from repro.distributed.mp.channels import ChannelClosed
from repro.pipeline import (
    PipelineConfig,
    PrefetchPipeline,
    as_pipeline_config,
)
from repro.runtime import reserved_cores

common = settings(
    max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

# ---------------------------------------------------------------------------
# plan-ahead kernels: coalesce_plan/apply must equal the inline fused forms
# ---------------------------------------------------------------------------

index_streams = st.lists(
    st.integers(min_value=0, max_value=15), min_size=0, max_size=60
)


class TestPlanKernels:
    @common
    @given(index_streams, st.integers(min_value=1, max_value=6))
    def test_plan_apply_matches_coalesce_rows(self, idx, dim):
        indices = np.asarray(idx, dtype=np.int64)
        grads = np.random.default_rng(len(idx)).normal(size=(len(idx), dim))
        plan = kernels.coalesce_plan(indices)
        rows_ref, vals_ref = kernels.coalesce_rows(indices, grads)
        assert np.array_equal(plan.rows, rows_ref)
        assert np.array_equal(kernels.coalesce_apply(plan, grads), vals_ref)

    @common
    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=6),
    )
    def test_expand_apply_matches_expand_coalesce(self, lengths, dim):
        lengths = np.asarray(lengths, dtype=np.int64)
        total = int(lengths.sum())
        rng = np.random.default_rng(total + dim)
        indices = rng.integers(0, 16, size=total)
        grad_out = rng.normal(size=(len(lengths), dim))
        plan = kernels.coalesce_plan(indices)
        rows_ref, vals_ref = kernels.expand_coalesce(indices, lengths, grad_out)
        assert np.array_equal(plan.rows, rows_ref)
        assert np.array_equal(
            kernels.expand_apply(plan, lengths, grad_out), vals_ref
        )

    @common
    @given(index_streams)
    def test_plan_is_pure_function_of_indices(self, idx):
        a = kernels.coalesce_plan(np.asarray(idx, dtype=np.int64))
        b = kernels.coalesce_plan(np.asarray(idx, dtype=np.int64))
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.order, b.order)
        assert np.array_equal(a.indptr, b.indptr)


# ---------------------------------------------------------------------------
# touched_rows: the weight-independent id plan must name pop_grad's rows
# ---------------------------------------------------------------------------

ragged_features = st.lists(  # one entry per feature: per-sample index lists
    st.lists(
        st.lists(st.integers(min_value=0, max_value=31), max_size=4),
        min_size=3,
        max_size=3,
    ),
    min_size=1,
    max_size=3,
)


class TestTouchedRows:
    @common
    @given(ragged_features)
    def test_touched_rows_equals_pop_grad_rows(self, per_feature):
        spec = TableSpec("t", hash_size=32, dim=4, mean_lookups=1.0)
        table = EmbeddingTable(spec, rng=np.random.default_rng(0))
        features = [RaggedIndices.from_lists(f) for f in per_feature]
        plan = table.plan_forward(features)
        outs = table.forward_batched(features, plan=plan)
        for out in reversed(outs):  # saved contexts pop in reverse order
            table.backward(np.ones_like(out))
        grad = table.pop_grad()
        touched = plan.touched_rows()
        if grad is None:
            assert len(touched) == 0
        else:
            assert np.array_equal(touched, grad.rows)


# ---------------------------------------------------------------------------
# the headline property: pipelined Trainer == inline Trainer, bit for bit
# ---------------------------------------------------------------------------


def _arch(draw):
    num_tables = draw(st.integers(min_value=1, max_value=3))
    return ModelConfig(
        name="pipe-test",
        num_dense=draw(st.sampled_from([2, 5])),
        tables=uniform_tables(
            num_tables,
            hash_size=draw(st.sampled_from([16, 64])),
            dim=4,
            mean_lookups=draw(st.sampled_from([1.0, 3.0])),
        ),
        bottom_mlp=MLPSpec((8, 4)),
        top_mlp=MLPSpec((8,)),
        interaction=draw(st.sampled_from([InteractionType.DOT, InteractionType.CONCAT])),
        compute_dtype=draw(st.sampled_from(["float64", "float32"])),
    )


def _train_state(config, batches, *, pipeline):
    model = DLRM(config, rng=0)
    trainer = Trainer(
        model,
        lambda m: Adagrad(
            m.dense_parameters(), m.embedding_tables(), lr=0.05, backend=m.backend
        ),
        pipeline=pipeline,
    )
    result = trainer.train(iter(batches), max_steps=len(batches))
    params = [np.array(p.value, copy=True) for p in model.dense_parameters()]
    tables = {
        t.spec.name: np.array(t.weight, copy=True) for t in model.embedding_tables()
    }
    return result, params, tables


class TestTrainerBitIdentity:
    @settings(
        max_examples=8,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(st.data())
    def test_pipelined_equals_inline_bitwise(self, data):
        config = _arch(data.draw)
        batch_size = data.draw(st.sampled_from([3, 8]))
        steps = data.draw(st.integers(min_value=1, max_value=4))
        seed = data.draw(st.integers(min_value=0, max_value=10_000))
        gen = SyntheticDataGenerator(config, rng=seed, seed_teacher=True)
        batches = [gen.batch(batch_size) for _ in range(steps)]

        inline, params_i, tables_i = _train_state(config, batches, pipeline=False)
        piped, params_p, tables_p = _train_state(config, batches, pipeline=True)

        assert inline.loss_history == piped.loss_history
        assert inline.final_loss == piped.final_loss
        for a, b in zip(params_i, params_p):
            assert np.array_equal(a, b)
        assert tables_i.keys() == tables_p.keys()
        for name in tables_i:
            assert np.array_equal(tables_i[name], tables_p[name])
        assert inline.pipeline is None
        assert piped.pipeline is not None


# ---------------------------------------------------------------------------
# stall ledger, lifecycle, error propagation
# ---------------------------------------------------------------------------


def _tiny_config(dtype="float64"):
    return ModelConfig(
        name="pipe-tiny",
        num_dense=4,
        tables=uniform_tables(2, hash_size=16, dim=4, mean_lookups=2.0),
        bottom_mlp=MLPSpec((8, 4)),
        top_mlp=MLPSpec((8,)),
        interaction=InteractionType.DOT,
        compute_dtype=dtype,
    )


class TestStallLedger:
    def test_ledger_shape_and_bounds(self):
        config = _tiny_config()
        gen = SyntheticDataGenerator(config, rng=3, seed_teacher=True)
        model = DLRM(config, rng=0)
        trainer = Trainer(
            model,
            lambda m: Adagrad(
                m.dense_parameters(), m.embedding_tables(), lr=0.05, backend=m.backend
            ),
            pipeline=True,
        )
        result = trainer.train(gen.batches(8, 5), max_steps=5)
        ledger = result.pipeline
        assert ledger is not None
        assert ledger == trainer.pipeline_stats.as_dict()
        assert ledger["batches"] == 5
        assert ledger["prep_busy_s"] > 0.0
        assert ledger["prep_stall_s"] >= 0.0
        assert ledger["compute_stall_s"] >= 0.0
        assert 0.0 <= ledger["overlap_fraction"] <= 1.0

    def test_inline_run_has_no_ledger(self):
        config = _tiny_config()
        gen = SyntheticDataGenerator(config, rng=3, seed_teacher=True)
        model = DLRM(config, rng=0)
        trainer = Trainer(
            model,
            lambda m: Adagrad(
                m.dense_parameters(), m.embedding_tables(), lr=0.05, backend=m.backend
            ),
        )
        result = trainer.train(gen.batches(8, 2), max_steps=2)
        assert result.pipeline is None
        assert trainer.pipeline_stats is None


class TestLifecycle:
    def test_core_reservation_paired_with_lifetime(self):
        before = reserved_cores()
        pipe = PrefetchPipeline(iter([]))
        assert reserved_cores() == before  # not started yet
        with pipe:
            assert reserved_cores() == before + 1
        assert reserved_cores() == before

    def test_yields_source_order_with_seq(self):
        with PrefetchPipeline(iter(range(7))) as pipe:
            got = [(p.seq, p.batch) for p in pipe]
        assert got == [(i, i) for i in range(7)]
        assert pipe.stats.batches == 7

    def test_close_is_idempotent_and_early(self):
        pipe = PrefetchPipeline(iter(range(100)), config=PipelineConfig(depth=2))
        pipe.start()
        next(pipe)
        pipe.close()
        pipe.close()
        assert reserved_cores() == 0

    def test_depth_validated(self):
        with pytest.raises(ValueError, match="depth"):
            PipelineConfig(depth=0)

    def test_as_pipeline_config_normalization(self):
        assert as_pipeline_config(None) is None
        assert as_pipeline_config(False) is None
        assert as_pipeline_config(True) == PipelineConfig()
        cfg = PipelineConfig(depth=3)
        assert as_pipeline_config(cfg) is cfg
        with pytest.raises(TypeError, match="pipeline"):
            as_pipeline_config(3)


class TestErrorPropagation:
    def test_source_error_surfaces_in_stream_order_with_stage_note(self):
        def source():
            yield 1
            yield 2
            raise RuntimeError("generator exploded")

        with PrefetchPipeline(source(), stage="prep") as pipe:
            assert next(pipe).batch == 1
            assert next(pipe).batch == 2
            with pytest.raises(RuntimeError, match="generator exploded") as ei:
                next(pipe)
        assert any("stage='prep'" in n for n in getattr(ei.value, "__notes__", []))

    def test_plan_fn_error_surfaces(self):
        def bad_plan(_batch):
            raise ValueError("bad plan")

        with PrefetchPipeline(iter([1]), plan_fn=bad_plan) as pipe:
            with pytest.raises(ValueError, match="bad plan"):
                next(pipe)


# ---------------------------------------------------------------------------
# the reducer's comm-job lane (carries the pipelined sparse exchanges)
# ---------------------------------------------------------------------------


class TestSubmitJob:
    def test_fifo_with_flush(self):
        red = GradReducer(0, 2, None, None)
        try:
            order: list[int] = []
            for i in range(20):
                red.submit_job(lambda i=i: order.append(i), stage="idplan_exchange")
            red.flush()
            assert order == list(range(20))
        finally:
            red.shutdown()

    def test_single_world_runs_inline(self):
        red = GradReducer(0, 1, None, None)
        ran: list[int] = []
        red.submit_job(lambda: ran.append(1))
        assert ran == [1]  # no thread: executed synchronously

    def test_channel_closed_tagged_with_stage(self):
        def die():
            raise ChannelClosed("wire died", peer=1)

        red = GradReducer(0, 2, None, None)
        try:
            red.submit_job(die, stage="sparse_values")
            with pytest.raises(ChannelClosed) as ei:
                red.flush()
            assert ei.value.stage == "sparse_values"
            assert ei.value.peer == 1
            assert "sparse_values" in str(ei.value)
        finally:
            red.shutdown()

    def test_generic_error_noted_with_stage(self):
        def die():
            raise ValueError("job exploded")

        red = GradReducer(0, 2, None, None)
        try:
            red.submit_job(die, stage="idplan_exchange")
            with pytest.raises(ValueError, match="job exploded") as ei:
                red.flush()
            assert any(
                "idplan_exchange" in n for n in getattr(ei.value, "__notes__", [])
            )
        finally:
            red.shutdown()


# ---------------------------------------------------------------------------
# batch_stream: the lazy, rng-faithful source the hybrid workers prefetch from
# ---------------------------------------------------------------------------


class TestBatchStream:
    @pytest.mark.parametrize("skip", [0, 2])
    def test_stream_matches_eager_generation(self, skip):
        config = _tiny_config()
        eager_gen = SyntheticDataGenerator(config, rng=9, seed_teacher=True)
        eager = [eager_gen.batch(6) for _ in range(5)][skip:]
        lazy_gen = SyntheticDataGenerator(config, rng=9, seed_teacher=True)
        lazy = list(lazy_gen.batch_stream(6, 5, skip=skip))
        assert len(eager) == len(lazy)
        for a, b in zip(eager, lazy):
            assert np.array_equal(a.dense, b.dense)
            assert np.array_equal(a.labels, b.labels)
            assert a.sparse.keys() == b.sparse.keys()
            for name in a.sparse:
                assert np.array_equal(a.sparse[name].values, b.sparse[name].values)
                assert np.array_equal(a.sparse[name].offsets, b.sparse[name].offsets)

    def test_negative_skip_rejected(self):
        gen = SyntheticDataGenerator(_tiny_config(), rng=0)
        with pytest.raises(ValueError, match="skip"):
            next(gen.batch_stream(4, 2, skip=-1))
