"""Tests for repro.fleet: workload populations and utilization telemetry."""

import collections

import numpy as np
import pytest

from repro.configs import make_test_model
from repro.fleet import (
    WORKLOAD_FAMILIES,
    UtilizationSamples,
    collect_utilization_samples,
    jitter_model,
    sample_fleet_runs,
    sample_ranking_model,
    sample_server_counts,
)
from repro.placement import model_embedding_footprint


class TestWorkloadFamilies:
    def test_recommendation_most_frequent(self):
        """Figure 2: recommendation models are the most frequently trained."""
        by_kind = collections.defaultdict(float)
        for fam in WORKLOAD_FAMILIES:
            by_kind[fam.model_kind] += fam.runs_per_day_mean
        assert by_kind["recommendation"] > by_kind["rnn"]
        assert by_kind["recommendation"] > by_kind["cnn"]

    def test_translation_longest_runs(self):
        durations = {f.name: f.duration_hours_mean for f in WORKLOAD_FAMILIES}
        assert durations["language_translation"] == max(durations.values())


class TestFleetRuns:
    def test_volume_tracks_frequency(self):
        runs = sample_fleet_runs(0, num_days=7)
        by_family = collections.Counter(r.family for r in runs)
        assert by_family["news_feed"] > by_family["language_translation"]
        assert by_family["news_feed"] > by_family["facer"]

    def test_deterministic_under_seed(self):
        a = sample_fleet_runs(1, num_days=2)
        b = sample_fleet_runs(1, num_days=2)
        assert len(a) == len(b)
        assert a[0].duration_hours == b[0].duration_hours

    def test_durations_positive(self):
        assert all(r.duration_hours > 0 for r in sample_fleet_runs(0, num_days=1))

    def test_bad_days_rejected(self):
        with pytest.raises(ValueError):
            sample_fleet_runs(0, num_days=0)


class TestRankingModelSampling:
    def test_within_production_ranges(self, rng):
        for _ in range(10):
            m = sample_ranking_model(rng)
            assert 8 <= m.num_sparse <= 128
            assert 128 <= m.num_dense <= 1200
            assert all(t.hash_size >= 30 for t in m.tables)

    def test_diversity(self, rng):
        sizes = {sample_ranking_model(rng).num_sparse for _ in range(20)}
        assert len(sizes) > 5


class TestServerCounts:
    def test_trainer_counts_concentrated(self, rng):
        """Figure 9: >40% of workflows share the modal trainer count."""
        counts = [
            sample_server_counts(rng, sample_ranking_model(rng)) for _ in range(300)
        ]
        hist = collections.Counter(c.trainers for c in counts)
        modal_share = hist.most_common(1)[0][1] / len(counts)
        assert modal_share > 0.35

    def test_ps_counts_wide(self, rng):
        """Figure 9: PS counts vary greatly with memory requirements."""
        counts = [
            sample_server_counts(rng, sample_ranking_model(rng)) for _ in range(300)
        ]
        ps = [c.parameter_servers for c in counts]
        trainer_distinct = len(set(c.trainers for c in counts))
        assert len(set(ps)) > trainer_distinct

    def test_ps_tracks_footprint(self, rng):
        small = make_test_model(64, 4, hash_size=100_000)
        big = make_test_model(64, 64, hash_size=10_000_000)
        s = sample_server_counts(rng, small)
        b = sample_server_counts(rng, big)
        assert b.sparse_ps >= s.sparse_ps
        assert (
            b.sparse_ps
            >= model_embedding_footprint(big) / 230e9
        )


class TestJitterModel:
    def test_preserves_architecture(self, rng):
        m = make_test_model(128, 8)
        j = jitter_model(m, rng, sigma=0.3)
        assert j.num_sparse == m.num_sparse
        assert j.num_dense == m.num_dense
        assert [t.hash_size for t in j.tables] == [t.hash_size for t in m.tables]

    def test_changes_lookups(self, rng):
        m = make_test_model(128, 8)
        j = jitter_model(m, rng, sigma=0.3)
        assert any(
            a.mean_lookups != b.mean_lookups for a, b in zip(m.tables, j.tables)
        )

    def test_zero_sigma_near_identity(self, rng):
        m = make_test_model(128, 8)
        j = jitter_model(m, rng, sigma=0.0)
        assert all(
            a.mean_lookups == pytest.approx(b.mean_lookups)
            for a, b in zip(m.tables, j.tables)
        )

    def test_negative_sigma_rejected(self, rng):
        with pytest.raises(ValueError):
            jitter_model(make_test_model(64, 4), rng, sigma=-1)


class TestUtilizationCollection:
    @pytest.fixture(scope="class")
    def samples(self) -> UtilizationSamples:
        model = make_test_model(512, 16)
        return collect_utilization_samples(
            model,
            num_runs=8,
            num_trainers=4,
            num_sparse_ps=3,
            num_dense_ps=1,
            horizon_s=0.3,
            seed=1,
        )

    def test_sample_counts(self, samples):
        assert len(samples.trainer_cpu) == 8 * 4
        assert len(samples.sparse_ps_mem) == 8 * 3
        assert len(samples.dense_ps_nic) == 8 * 1

    def test_all_in_unit_interval(self, samples):
        for arr in samples.as_dict().values():
            assert np.all((arr >= 0) & (arr <= 1))

    def test_fig5_shape_trainers_high_ps_lower(self, samples):
        """Figure 5: trainer utilization high/narrow, PS lower mean."""
        trainer_mean = np.mean(samples.trainer_cpu)
        ps_nic_mean = np.mean(samples.sparse_ps_nic)
        assert trainer_mean > ps_nic_mean

    def test_run_to_run_variability_exists(self, samples):
        assert np.std(samples.trainer_cpu) > 0.005

    def test_bad_run_count_rejected(self):
        with pytest.raises(ValueError):
            collect_utilization_samples(make_test_model(64, 4), num_runs=0)
