"""Real-process fault tolerance: sharded checkpoints, drain, restart.

The contracts under test, in rough order of appearance:

* shard files round-trip arbitrary arrays **bit-exactly** across dtypes
  (hypothesis: NaN payloads, infinities, signed zeros included);
* checkpoint commits are atomic — a writer killed between temp-write and
  rename leaves the previous manifest current, and
  ``latest_valid_manifest`` falls back past torn or corrupt commits;
* a W=2 run SIGKILLed mid-training and restarted from its newest
  manifest finishes **bit-identical** (losses, dense digest, every table
  digest) to an uninterrupted reference — in float64 and float32;
* on a worker death the survivors drain within ``drain_timeout_s``
  instead of hanging out ``collect_timeout_s``;
* :class:`RestartPolicy` caps respawns and raises ``RetriesExhausted``;
* the goodput ledger's accounting matches the injected fault timeline.
"""

from __future__ import annotations

import pathlib
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.config import InteractionType, MLPSpec, ModelConfig, uniform_tables
from repro.distributed.mp import (
    HybridRunConfig,
    KillSpec,
    MpTimeouts,
    RestartPolicy,
    WorkerCrashError,
    build_resume,
    kills_from_plan,
    latest_valid_manifest,
    run_hybrid,
    run_hybrid_ft,
)
from repro.distributed.mp import ckpt
from repro.distributed.mp.timeouts import get_timeouts, set_timeouts
from repro.resilience.faults import ComponentKind, FaultEvent, FaultPlan
from repro.resilience.retry import RetriesExhausted


def small_config(dtype: str = "float64") -> ModelConfig:
    return ModelConfig(
        name="mp-ft-test",
        num_dense=8,
        tables=uniform_tables(4, hash_size=64, dim=8, mean_lookups=2.0),
        bottom_mlp=MLPSpec((16, 8)),
        top_mlp=MLPSpec((16,)),
        interaction=InteractionType.DOT,
        compute_dtype=dtype,
    )


def run_config(tmp_path=None, **overrides) -> HybridRunConfig:
    base = dict(workers=2, steps=6, batch_size=32, lr=0.05, seed=7)
    if tmp_path is not None:
        base.update(checkpoint_every=2, checkpoint_dir=str(tmp_path))
    base.update(overrides)
    return HybridRunConfig(**base)


# ---------------------------------------------------------------------------
# shard serialization: bit-exact round trips
# ---------------------------------------------------------------------------

shard_arrays = st.dictionaries(
    st.text(
        alphabet=st.characters(whitelist_categories=("L", "N")),
        min_size=1,
        max_size=8,
    ).map(lambda s: f"weight/{s}"),
    st.sampled_from([np.float64, np.float32, np.int64, np.int32]).flatmap(
        lambda dt: hnp.arrays(
            dtype=dt,
            shape=hnp.array_shapes(max_dims=2, max_side=8),
            elements=(
                st.floats(
                    allow_nan=True,
                    allow_infinity=True,
                    width=32 if dt == np.float32 else 64,
                )
                if np.issubdtype(dt, np.floating)
                else st.integers(min_value=-(2**31), max_value=2**31 - 1)
            ),
        )
    ),
    min_size=1,
    max_size=4,
)


class TestShardRoundTrip:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(arrays=shard_arrays)
    def test_bit_exact_across_dtypes(self, arrays, tmp_path_factory):
        """NaNs, infinities and -0.0 must survive byte-for-byte — the
        restore path cannot tolerate any canonicalization."""
        path = tmp_path_factory.mktemp("shards") / "shard.npz"
        sha = ckpt.save_shard_file(path, arrays)
        assert len(sha) == 64
        loaded = ckpt.load_shard_file(path)
        assert set(loaded) == set(arrays)
        for key, want in arrays.items():
            got = loaded[key]
            assert got.dtype == want.dtype
            assert got.shape == want.shape
            assert got.tobytes() == want.tobytes()

    def test_signed_zero_and_nan_payloads(self, tmp_path):
        a = np.array([-0.0, 0.0, np.nan, -np.inf], dtype=np.float64)
        b = np.float32(np.nan).view(np.uint32)  # a specific NaN payload
        arrays = {
            "edge": a,
            "payload": np.array([b], dtype=np.uint32).view(np.float32),
        }
        ckpt.save_shard_file(tmp_path / "s.npz", arrays)
        loaded = ckpt.load_shard_file(tmp_path / "s.npz")
        assert loaded["edge"].tobytes() == a.tobytes()
        assert loaded["payload"].view(np.uint32)[0] == b


# ---------------------------------------------------------------------------
# manifest atomicity and fallback
# ---------------------------------------------------------------------------


class TestManifestAtomicity:
    def _commit(self, directory: pathlib.Path, step: int, world: int = 1):
        entries = []
        for rank in range(world):
            fname = ckpt.shard_filename(rank, step)
            sha = ckpt.save_shard_file(
                directory / fname, {"losses": np.arange(step, dtype=np.float64)}
            )
            entries.append(ckpt.ShardEntry(rank, fname, sha, (f"t{rank}",)))
        manifest = ckpt.Manifest(
            step=step, world=world, total_steps=8, batch_size=32, seed=0,
            reduction="ordered", dtype="float64", shards=tuple(entries),
        )
        ckpt.write_manifest(directory, manifest)
        return manifest

    def test_latest_valid_picks_newest(self, tmp_path):
        self._commit(tmp_path, 2)
        self._commit(tmp_path, 4)
        found = latest_valid_manifest(tmp_path)
        assert found is not None and found.step == 4

    def test_kill_between_write_and_rename_falls_back(self, tmp_path):
        """The torn-commit window: the step-4 manifest's temp file exists
        but was never renamed, so restore lands on step 2."""
        self._commit(tmp_path, 2)
        manifest = self._commit(tmp_path, 4)

        class Killed(BaseException):
            pass

        def die():
            raise Killed()

        with pytest.raises(Killed):
            ckpt.write_manifest(
                tmp_path, ckpt.Manifest(
                    step=6, world=1, total_steps=8, batch_size=32, seed=0,
                    reduction="ordered", dtype="float64",
                    shards=manifest.shards,
                ),
                kill_hook=die,
            )
        assert (tmp_path / "manifest-s6.json.tmp").exists()
        found = latest_valid_manifest(tmp_path)
        assert found is not None and found.step == 4

    def test_manifest_naming_missing_shard_is_skipped(self, tmp_path):
        self._commit(tmp_path, 2)
        m4 = self._commit(tmp_path, 4)
        (tmp_path / m4.shards[0].file).unlink()  # torn: shard never renamed
        found = latest_valid_manifest(tmp_path)
        assert found is not None and found.step == 2

    def test_corrupt_shard_hash_is_skipped(self, tmp_path):
        self._commit(tmp_path, 2)
        m4 = self._commit(tmp_path, 4)
        (tmp_path / m4.shards[0].file).write_bytes(b"garbage")
        found = latest_valid_manifest(tmp_path)
        assert found is not None and found.step == 2

    def test_world_mismatch_is_skipped(self, tmp_path):
        self._commit(tmp_path, 2, world=1)
        assert latest_valid_manifest(tmp_path, world=2) is None
        assert latest_valid_manifest(tmp_path, world=1).step == 2

    def test_empty_or_missing_directory(self, tmp_path):
        assert latest_valid_manifest(tmp_path) is None
        assert latest_valid_manifest(tmp_path / "nope") is None

    def test_real_checkpoint_phase_kill_falls_back(self, tmp_path):
        """End to end: rank 0 SIGKILLed between the manifest temp-write
        and its rename leaves the previous checkpoint current."""
        with pytest.raises(WorkerCrashError):
            run_hybrid(
                small_config(),
                run_config(tmp_path),
                kills=[KillSpec(rank=0, step=3, phase="checkpoint")],
            )
        # step-2 checkpoint committed; step-4 manifest is torn (temp only)
        found = latest_valid_manifest(tmp_path, world=2)
        assert found is not None and found.step == 2
        assert (tmp_path / "manifest-s4.json.tmp").exists()
        assert not (tmp_path / "manifest-s4.json").exists()

    def test_shard_phase_kill_on_nonzero_rank(self, tmp_path):
        """Rank 1 killed between its shard temp-write and rename: rank 0
        never receives the digest, no step-4 manifest is committed."""
        with pytest.raises(WorkerCrashError):
            run_hybrid(
                small_config(),
                run_config(tmp_path),
                kills=[KillSpec(rank=1, step=3, phase="checkpoint")],
            )
        found = latest_valid_manifest(tmp_path, world=2)
        assert found is not None and found.step == 2
        assert not (tmp_path / "manifest-s4.json").exists()


# ---------------------------------------------------------------------------
# the headline contract: kill + restart is bit-identical
# ---------------------------------------------------------------------------


class TestKillRestartBitIdentity:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_sigkill_resume_matches_uninterrupted(self, dtype, tmp_path):
        config = small_config(dtype)
        reference = run_hybrid(config, run_config())
        rc = run_config(tmp_path)
        with pytest.raises(WorkerCrashError) as exc_info:
            run_hybrid(config, rc, kills=[KillSpec(rank=1, step=3)])
        err = exc_info.value
        assert err.checkpoints and err.checkpoints[0][0] == 2
        manifest = latest_valid_manifest(tmp_path, world=2)
        assert manifest.step == 2
        resumed = run_hybrid(
            config, rc, resume=build_resume(manifest, tmp_path)
        )
        assert resumed.resumed_from == 2
        assert resumed.losses == reference.losses
        assert resumed.dense_digest == reference.dense_digest
        assert resumed.table_digests == reference.table_digests

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_ft_orchestrator_end_to_end(self, dtype, tmp_path):
        """The full loop — kill inside the allreduce, drain, backoff,
        respawn, finish — through :func:`run_hybrid_ft`."""
        config = small_config(dtype)
        reference = run_hybrid(config, run_config())
        ft = run_hybrid_ft(
            config,
            run_config(tmp_path),
            policy=RestartPolicy(max_restarts=1),
            kills=[KillSpec(rank=1, step=3, phase="allreduce")],
        )
        assert ft.restarts_used == 1
        assert len(ft.crashes) == 1
        assert ft.crashes[0].rank == 1
        assert ft.crashes[0].resumed_step == 2
        assert ft.result.losses == reference.losses
        assert ft.result.state_digest() == reference.state_digest()

    def test_resume_replays_loss_history(self, tmp_path):
        config = small_config()
        rc = run_config(tmp_path)
        with pytest.raises(WorkerCrashError):
            run_hybrid(config, rc, kills=[KillSpec(rank=0, step=4)])
        manifest = latest_valid_manifest(tmp_path, world=2)
        assert manifest.step == 4
        resume = build_resume(manifest, tmp_path)
        assert all(len(h) == 4 for h in resume.per_rank_losses)
        resumed = run_hybrid(config, rc, resume=resume)
        # the stitched history covers all steps, prefix from the manifest
        assert len(resumed.losses) == rc.steps
        assert all(len(h) == rc.steps for h in resumed.per_rank_losses)


# ---------------------------------------------------------------------------
# drain: survivors exit promptly, never hanging out collect_timeout_s
# ---------------------------------------------------------------------------


class TestDrain:
    def test_survivors_drain_fast(self):
        """With a 600 s collect timeout, a kill must still surface in
        seconds: the poison/drain path, not the backstop, fires."""
        rc = run_config(None, collect_timeout_s=600.0, drain_timeout_s=20.0)
        t0 = time.monotonic()
        with pytest.raises(WorkerCrashError) as exc_info:
            run_hybrid(small_config(), rc, kills=[KillSpec(rank=1, step=2)])
        elapsed = time.monotonic() - t0
        assert elapsed < 60.0, f"drain took {elapsed:.1f}s — backstop fired?"
        err = exc_info.value
        assert err.rank == 1
        assert 0 in err.drained or err.dead  # survivor filed a drain report
        assert err.drain_s < 20.0

    def test_progress_and_drain_metadata(self, tmp_path):
        with pytest.raises(WorkerCrashError) as exc_info:
            run_hybrid(
                small_config(),
                run_config(tmp_path),
                kills=[KillSpec(rank=1, step=3)],
            )
        err = exc_info.value
        assert err.progress[0] >= 2  # survivor got at least to the kill step
        assert err.checkpoints == [(2, err.checkpoints[0][1])]


# ---------------------------------------------------------------------------
# restart policy: caps and exhaustion
# ---------------------------------------------------------------------------


class TestRestartPolicy:
    def test_zero_restarts_raises_immediately(self, tmp_path):
        with pytest.raises(RetriesExhausted):
            run_hybrid_ft(
                small_config(),
                run_config(tmp_path),
                policy=RestartPolicy(max_restarts=0),
                kills=[KillSpec(rank=1, step=2)],
            )

    def test_restarts_exhausted_after_cap(self, tmp_path):
        """Two kills on successive attempts, one restart allowed."""
        kills = [
            KillSpec(rank=1, step=2, attempt=0),
            KillSpec(rank=0, step=3, attempt=1),
        ]
        with pytest.raises(RetriesExhausted):
            run_hybrid_ft(
                small_config(),
                run_config(tmp_path),
                policy=RestartPolicy(max_restarts=1),
                kills=kills,
            )

    def test_two_crashes_two_restarts(self, tmp_path):
        config = small_config()
        reference = run_hybrid(config, run_config())
        kills = [
            KillSpec(rank=1, step=2, attempt=0),
            KillSpec(rank=0, step=4, attempt=1),
        ]
        ft = run_hybrid_ft(
            config,
            run_config(tmp_path),
            policy=RestartPolicy(max_restarts=2),
            kills=kills,
        )
        assert ft.restarts_used == 2
        assert [c.rank for c in ft.crashes] == [1, 0]
        assert ft.result.losses == reference.losses
        assert ft.result.state_digest() == reference.state_digest()
        assert ft.ledger.crashes == 2
        # every step's examples were eventually credited usefully
        assert ft.ledger.useful_examples == run_config().steps * 32

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)


# ---------------------------------------------------------------------------
# the FaultPlan bridge
# ---------------------------------------------------------------------------


class TestKillsFromPlan:
    def test_scheduled_trainer_events_map_to_kills(self):
        plan = FaultPlan(scheduled_crashes=(
            FaultEvent(ComponentKind.TRAINER, 1, 2.0),
            FaultEvent(ComponentKind.TRAINER, 0, 4.7),
            FaultEvent(ComponentKind.SPARSE_PS, 0, 1.0),  # ignored
        ))
        kills = kills_from_plan(plan, world=2, steps=8)
        assert [(k.rank, k.step, k.attempt) for k in kills] == [
            (1, 2, 0), (0, 4, 1),
        ]

    def test_fractional_times_and_rank_wrap(self):
        """``time_s`` is truncated to a step index; events past the run's
        horizon are dropped by the injector, and component indexes beyond
        the worker count wrap onto real ranks."""
        plan = FaultPlan(scheduled_crashes=(
            FaultEvent(ComponentKind.TRAINER, 5, 3.9),
            FaultEvent(ComponentKind.TRAINER, 0, 99.0),  # beyond horizon
        ))
        (kill,) = kills_from_plan(plan, world=2, steps=4)
        assert kill.rank == 1  # 5 % 2
        assert kill.step == 3

    def test_sampled_kills_are_deterministic(self):
        plan = FaultPlan(trainer_mtbf_s=3.0, seed=11)
        a = kills_from_plan(plan, world=2, steps=8)
        b = kills_from_plan(plan, world=2, steps=8)
        assert a == b


# ---------------------------------------------------------------------------
# config knobs
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_checkpoint_every_requires_dir(self):
        with pytest.raises(ValueError):
            HybridRunConfig(checkpoint_every=2)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            HybridRunConfig(checkpoint_every=-1)
        with pytest.raises(ValueError):
            HybridRunConfig(drain_timeout_s=0.0)

    def test_kill_spec_validation(self):
        with pytest.raises(ValueError):
            KillSpec(rank=-1, step=0)
        with pytest.raises(ValueError):
            KillSpec(rank=0, step=0, phase="warp")
        with pytest.raises(ValueError):
            KillSpec(rank=0, step=0, action="segfault")

    def test_resume_step_out_of_range(self, tmp_path):
        state = ckpt.ResumeState(step=99)
        with pytest.raises(ValueError):
            run_hybrid(small_config(), run_config(), resume=state)


class TestMpTimeouts:
    def test_defaults_and_scaling(self):
        t = MpTimeouts()
        assert (t.join_s, t.probe_s, t.reap_s) == (30.0, 60.0, 5.0)
        doubled = t.scaled(2.0)
        assert doubled.join_s == 60.0 and doubled.reap_s == 10.0

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_TIMEOUT_SCALE", "3")
        assert MpTimeouts.from_env().join_s == 90.0

    def test_override(self):
        custom = MpTimeouts(join_s=1.0, probe_s=2.0, reap_s=0.5)
        set_timeouts(custom)
        try:
            assert get_timeouts() is custom
        finally:
            set_timeouts(None)
        assert get_timeouts().join_s == 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MpTimeouts(join_s=0.0)
        with pytest.raises(ValueError):
            MpTimeouts(join_s=1.0).scaled(-1.0)
