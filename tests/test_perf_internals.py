"""Tests for performance-model internals: breakdowns, utilizations, power
roles, and behaviors not covered by the shape-pinning tests."""

import pytest

from repro.configs import build_m3, make_test_model
from repro.hardware import BIG_BASIN, DUAL_SOCKET_CPU, ZION
from repro.perf import (
    DEFAULT_CALIBRATION,
    Calibration,
    cpu_cluster_throughput,
    gpu_server_throughput,
)
from repro.perf.pipeline import READER_EXAMPLES_PER_SEC, _cache_penalty
from repro.placement import PlacementStrategy, plan_gpu_memory, plan_placement


class TestBreakdowns:
    def test_gpu_components_sum_to_iteration(self):
        m = make_test_model(512, 16)
        plan = plan_gpu_memory(m, BIG_BASIN)
        r = gpu_server_throughput(m, 1600, BIG_BASIN, plan)
        assert r.breakdown.total == pytest.approx(r.iteration_time_s)
        assert r.breakdown.bottleneck in r.breakdown.components

    def test_gpu_memory_plan_has_no_host_excess_for_small_model(self):
        m = make_test_model(256, 8)
        plan = plan_gpu_memory(m, BIG_BASIN)
        r = gpu_server_throughput(m, 1600, BIG_BASIN, plan)
        assert "host_pipeline_excess" not in r.breakdown.components
        assert "host_pipeline" in r.breakdown.hidden

    def test_remote_plan_charges_rpc_overhead(self):
        m = build_m3()
        plan = plan_placement(
            m, BIG_BASIN, PlacementStrategy.REMOTE_CPU,
            num_ps=18, ps_platform=DUAL_SOCKET_CPU,
        )
        r = gpu_server_throughput(m, 800, BIG_BASIN, plan)
        assert "remote_rpc" in r.breakdown.components
        assert r.breakdown.components["remote_rpc"] == pytest.approx(
            DEFAULT_CALIBRATION.remote_iteration_overhead_s
        )

    def test_replicated_component_for_small_tables(self):
        m = make_test_model(256, 8, hash_size=100_000)
        plan = plan_gpu_memory(m, BIG_BASIN)
        r = gpu_server_throughput(m, 1600, BIG_BASIN, plan)
        assert "emb_replicated" in r.breakdown.components
        assert "emb_alltoall" not in r.breakdown.components


class TestPowerAccounting:
    def test_cpu_power_roles(self):
        m = make_test_model(512, 16)
        r = cpu_cluster_throughput(m, 200, 4, 2, 1)
        roles = r.power.by_role()
        assert set(roles) == {"trainer", "sparse_ps", "dense_ps", "reader"}
        assert roles["trainer"] == pytest.approx(4 * 500.0)

    def test_explicit_reader_count_honored(self):
        m = make_test_model(512, 16)
        r = cpu_cluster_throughput(m, 200, 4, 2, 1, num_readers=7)
        assert r.power.by_role()["reader"] == pytest.approx(7 * 500.0)

    def test_auto_readers_scale_with_throughput(self):
        m = make_test_model(64, 4)
        slow = cpu_cluster_throughput(m, 200, 1, 1, 1)
        fast = cpu_cluster_throughput(m, 200, 16, 8, 4)
        expected = -(-fast.throughput // READER_EXAMPLES_PER_SEC)
        assert fast.power.by_role()["reader"] == pytest.approx(expected * 500.0)
        assert fast.power.by_role()["reader"] >= slow.power.by_role()["reader"]

    def test_gpu_remote_counts_ps_power(self):
        m = build_m3()
        plan = plan_placement(
            m, BIG_BASIN, PlacementStrategy.REMOTE_CPU,
            num_ps=18, ps_platform=DUAL_SOCKET_CPU,
        )
        r = gpu_server_throughput(m, 800, BIG_BASIN, plan)
        roles = r.power.by_role()
        assert roles["sparse_ps"] == pytest.approx(18 * 500.0)
        assert roles["gpu_trainer"] == pytest.approx(BIG_BASIN.nameplate_watts)


class TestUtilizations:
    def test_cpu_utilizations_complete_and_bounded(self):
        m = make_test_model(512, 16)
        r = cpu_cluster_throughput(m, 200, 4, 2, 1)
        expected_keys = {
            "trainer_cpu", "trainer_nic", "trainer_mem_bw",
            "sparse_ps_mem_bw", "sparse_ps_nic", "dense_ps_nic",
        }
        assert set(r.utilizations) == expected_keys
        assert all(0 <= v <= 1 for v in r.utilizations.values())

    def test_gpu_utilizations_bounded(self):
        m = make_test_model(512, 16)
        plan = plan_gpu_memory(m, BIG_BASIN)
        r = gpu_server_throughput(m, 1600, BIG_BASIN, plan)
        assert all(0 <= v <= 1 for v in r.utilizations.values())
        assert r.utilizations["gpu_compute"] > 0


class TestCachePenalty:
    def test_no_penalty_below_llc(self):
        m = make_test_model(64, 4)
        assert _cache_penalty(m, 50, DEFAULT_CALIBRATION) == 1.0

    def test_penalty_grows_with_batch(self):
        m = make_test_model(4096, 64)
        p_small = _cache_penalty(m, 200, DEFAULT_CALIBRATION)
        p_big = _cache_penalty(m, 3200, DEFAULT_CALIBRATION)
        assert p_big > p_small >= 1.0

    def test_llc_knob(self):
        m = make_test_model(4096, 64)
        small_llc = Calibration(cpu_llc_bytes=1e6)
        big_llc = Calibration(cpu_llc_bytes=1e9)
        assert _cache_penalty(m, 800, small_llc) > _cache_penalty(m, 800, big_llc)


class TestEasgdKnob:
    def test_longer_sync_period_raises_dense_cap(self):
        m = make_test_model(2048, 4)
        rare = Calibration(easgd_sync_period=64)
        frequent = Calibration(easgd_sync_period=1)
        thr_rare = cpu_cluster_throughput(m, 200, 20, 2, 1, calib=rare).throughput
        thr_freq = cpu_cluster_throughput(m, 200, 20, 2, 1, calib=frequent).throughput
        assert thr_rare >= thr_freq


class TestZionSpecifics:
    def test_zion_sync_staged_through_host(self):
        """Zion system-memory placement syncs dense params over PCIe,
        not a GPU collective (no peer-direct path)."""
        m = make_test_model(512, 16)
        bb_plan = plan_placement(m, BIG_BASIN, PlacementStrategy.SYSTEM_MEMORY)
        zion_plan = plan_placement(m, ZION, PlacementStrategy.SYSTEM_MEMORY)
        bb = gpu_server_throughput(m, 1600, BIG_BASIN, bb_plan)
        zion = gpu_server_throughput(m, 1600, ZION, zion_plan)
        assert "dense_sync" in bb.breakdown.components
        assert "dense_sync" in zion.breakdown.components
        # both finite and small relative to the iteration
        assert zion.breakdown.components["dense_sync"] < zion.iteration_time_s
