"""Tests for repro.distributed: DES core, cluster sim, sync algorithms."""

import numpy as np
import pytest

from repro.configs import make_test_model
from repro.core import evaluate
from repro.data import SyntheticDataGenerator
from repro.distributed import (
    ClusterConfig,
    DelayedGradientTrainer,
    EASGDConfig,
    EASGDTrainer,
    Resource,
    Simulator,
    SyncSGDTrainer,
    simulate_cpu_cluster,
)
from repro.perf import cpu_cluster_throughput


class TestSimulatorCore:
    def test_events_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.2, lambda: order.append("b"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.3, lambda: order.append("c"))
        sim.run(until=1.0)
        assert order == ["a", "b", "c"]
        assert sim.now == 1.0
        assert sim.events_processed == 3

    def test_ties_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(0.5, lambda t=tag: order.append(t))
        sim.run(1.0)
        assert order == ["a", "b", "c"]

    def test_horizon_respected(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(1))
        sim.run(until=1.0)
        assert not fired

    def test_chained_scheduling(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                sim.schedule(0.1, tick)

        sim.schedule(0.0, tick)
        sim.run(until=10.0)
        assert count[0] == 5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_past_schedule_at_rejected(self):
        sim = Simulator()
        sim.run(1.0)
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)


class TestResource:
    def test_service_time(self):
        r = Resource("r", rate=100.0)
        done = r.submit(now=0.0, size_bytes=50.0)
        assert done == pytest.approx(0.5)

    def test_fifo_queueing(self):
        r = Resource("r", rate=100.0)
        first = r.submit(0.0, 100.0)
        second = r.submit(0.0, 100.0)  # arrives while busy
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_idle_gap_not_counted_busy(self):
        r = Resource("r", rate=100.0)
        r.submit(0.0, 50.0)
        r.submit(10.0, 50.0)
        assert r.busy_time == pytest.approx(1.0)
        assert r.utilization(20.0) == pytest.approx(0.05)

    def test_extra_latency(self):
        r = Resource("r", rate=100.0)
        assert r.submit(0.0, 100.0, extra_latency=0.5) == pytest.approx(1.5)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            Resource("r", rate=0.0)


class TestClusterSimulation:
    @pytest.fixture(scope="class")
    def model(self):
        return make_test_model(512, 16)

    def test_throughput_close_to_analytic(self, model):
        cfg = ClusterConfig(num_trainers=4, num_sparse_ps=2, num_dense_ps=1, seed=0)
        des = simulate_cpu_cluster(model, cfg, horizon_s=1.0)
        analytic = cpu_cluster_throughput(model, 200, 4, 2, 1)
        assert des.throughput == pytest.approx(analytic.throughput, rel=0.5)

    def test_scaling_with_trainers(self, model):
        small = simulate_cpu_cluster(
            model, ClusterConfig(2, 2, 1, seed=0), horizon_s=1.0
        )
        big = simulate_cpu_cluster(
            model, ClusterConfig(6, 2, 1, seed=0), horizon_s=1.0
        )
        assert big.throughput > 1.8 * small.throughput

    def test_utilizations_bounded(self, model):
        cfg = ClusterConfig(4, 2, 1, jitter_sigma=0.2, seed=3)
        r = simulate_cpu_cluster(model, cfg, horizon_s=0.5)
        for values in (
            r.trainer_cpu_utilization,
            r.sparse_ps_mem_utilization,
            r.dense_ps_nic_utilization,
        ):
            assert all(0 <= v <= 1 for v in values)

    def test_jitter_creates_spread(self, model):
        cfg = ClusterConfig(8, 4, 1, jitter_sigma=0.3, seed=1)
        r = simulate_cpu_cluster(model, cfg, horizon_s=0.5)
        assert np.std(r.sparse_ps_mem_utilization) > 0.01

    def test_summary_keys(self, model):
        r = simulate_cpu_cluster(model, ClusterConfig(2, 1, 1), horizon_s=0.2)
        assert set(r.utilization_summary()) == {
            "trainer_cpu",
            "trainer_nic",
            "sparse_ps_mem",
            "sparse_ps_nic",
            "dense_ps_nic",
        }

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(0, 1, 1)
        with pytest.raises(ValueError):
            ClusterConfig(1, 1, 1, batch_per_trainer=0)


class TestEASGD:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EASGDConfig(num_workers=0)
        with pytest.raises(ValueError):
            EASGDConfig(alpha=1.5)
        with pytest.raises(ValueError):
            EASGDConfig(tau=0)

    def test_training_reduces_loss(self, tiny_config, tiny_generator):
        trainer = EASGDTrainer(tiny_config, EASGDConfig(num_workers=2, tau=2), lr=0.05, rng=0)
        history = trainer.train(tiny_generator.batches(64), max_examples=16000)
        assert np.mean(history[-5:]) < history[0]

    def test_center_model_learns(self, tiny_config, tiny_generator):
        trainer = EASGDTrainer(tiny_config, EASGDConfig(num_workers=2, tau=2), lr=0.05, rng=0)
        eval_batches = [tiny_generator.batch(512)]
        ne_before = evaluate(trainer.center_dlrm(), eval_batches)["normalized_entropy"]
        trainer.train(tiny_generator.batches(64), max_examples=16000)
        ne_after = evaluate(trainer.center_dlrm(), eval_batches)["normalized_entropy"]
        assert ne_after < ne_before

    def test_elastic_sync_pulls_workers_together(self, tiny_config, tiny_generator):
        trainer = EASGDTrainer(tiny_config, EASGDConfig(num_workers=2, tau=1, alpha=0.5), lr=0.05, rng=0)
        trainer.train(tiny_generator.batches(32), max_examples=4000)
        w0 = trainer.workers[0].get_dense_state()
        w1 = trainer.workers[1].get_dense_state()
        center = trainer.center_state
        for a, b, c in zip(w0, w1, center):
            # workers stay within a bounded distance of the center
            assert np.linalg.norm(a - c) < 10 * np.sqrt(c.size) + 1
            assert np.linalg.norm(b - c) < 10 * np.sqrt(c.size) + 1

    def test_workers_share_embedding_tables(self, tiny_config):
        trainer = EASGDTrainer(tiny_config, EASGDConfig(num_workers=2), rng=0)
        t0 = trainer.workers[0].embedding_tables()[0]
        t1 = trainer.workers[1].embedding_tables()[0]
        assert t0 is t1

    def test_round_requires_matching_batches(self, tiny_config, tiny_generator):
        trainer = EASGDTrainer(tiny_config, EASGDConfig(num_workers=2), rng=0)
        with pytest.raises(ValueError):
            trainer.round([tiny_generator.batch(8)])


class TestDelayedGradient:
    def test_staleness_zero_equals_sequential(self, tiny_config, tiny_generator):
        trainer = DelayedGradientTrainer(tiny_config, staleness=0, lr=0.05, rng=0)
        history = trainer.train(tiny_generator.batches(64), max_examples=8000)
        assert np.mean(history[-5:]) < history[0]

    def test_stale_gradients_still_converge(self, tiny_config, tiny_generator):
        trainer = DelayedGradientTrainer(tiny_config, staleness=3, lr=0.05, rng=0)
        history = trainer.train(tiny_generator.batches(64), max_examples=16000)
        assert np.mean(history[-5:]) < history[0]

    def test_higher_staleness_no_better(self, tiny_config):
        """Asynchrony is a quality trade-off: heavy staleness should not
        beat the sequential baseline on the same budget."""
        results = {}
        for staleness in (0, 8):
            gen = SyntheticDataGenerator(tiny_config, rng=3, seed_teacher=True)
            trainer = DelayedGradientTrainer(tiny_config, staleness=staleness, lr=0.05, rng=0)
            trainer.train(gen.batches(64), max_examples=12000)
            eval_gen = SyntheticDataGenerator(tiny_config, rng=3, seed_teacher=True)
            results[staleness] = evaluate(trainer.model, [eval_gen.batch(1024)])[
                "normalized_entropy"
            ]
        assert results[8] >= results[0] - 0.01

    def test_negative_staleness_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            DelayedGradientTrainer(tiny_config, staleness=-1)


class TestSyncSGD:
    def test_converges(self, tiny_config, tiny_generator):
        trainer = SyncSGDTrainer(tiny_config, num_workers=2, lr=0.05, rng=0)
        history = trainer.train(tiny_generator.batches(32), max_examples=12000)
        assert np.mean(history[-5:]) < history[0]

    def test_equivalent_to_big_batch(self, tiny_config):
        """Averaging K batches == one K-times-larger batch (same grads)."""
        gen_a = SyntheticDataGenerator(tiny_config, rng=5, seed_teacher=True)
        sync = SyncSGDTrainer(tiny_config, num_workers=2, lr=0.05, rng=9)
        b1, b2 = gen_a.batch(16), gen_a.batch(16)
        sync.step([b1, b2])

        from repro.core import Adagrad, BCEWithLogitsLoss, Batch, DLRM, RaggedIndices

        solo = DLRM(tiny_config, rng=9)
        opt = Adagrad(solo.dense_parameters(), solo.embedding_tables(), lr=0.05)
        merged_sparse = {}
        for name in b1.sparse:
            r1, r2 = b1.sparse[name], b2.sparse[name]
            merged_sparse[name] = RaggedIndices(
                values=np.concatenate([r1.values, r2.values]),
                offsets=np.concatenate([r1.offsets, r2.offsets[1:] + r1.offsets[-1]]),
            )
        merged = Batch(
            np.vstack([b1.dense, b2.dense]),
            merged_sparse,
            np.concatenate([b1.labels, b2.labels]),
        )
        crit = BCEWithLogitsLoss()
        opt.zero_grad()
        crit.forward(solo.forward(merged), merged.labels)
        solo.backward(crit.backward())
        opt.step()
        for p_sync, p_solo in zip(
            sync.model.dense_parameters(), solo.dense_parameters()
        ):
            np.testing.assert_allclose(p_sync.value, p_solo.value, rtol=1e-8, atol=1e-10)

    def test_bad_worker_count_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            SyncSGDTrainer(tiny_config, num_workers=0)


class TestStragglerInjection:
    """'The tail at scale': one slow PS gates synchronous lookups (§III)."""

    def test_one_straggler_caps_throughput(self):
        m = make_test_model(64, 64, hash_size=1_000_000)
        healthy = simulate_cpu_cluster(
            m, ClusterConfig(8, 4, 1, seed=2), horizon_s=0.5
        )
        degraded = simulate_cpu_cluster(
            m,
            ClusterConfig(8, 4, 1, straggler_fraction=0.25, straggler_slowdown=4.0, seed=2),
            horizon_s=0.5,
        )
        assert degraded.throughput < 0.7 * healthy.throughput

    def test_straggler_shows_in_utilization_spread(self):
        m = make_test_model(64, 64, hash_size=1_000_000)
        r = simulate_cpu_cluster(
            m,
            ClusterConfig(8, 4, 1, straggler_fraction=0.25, straggler_slowdown=4.0, seed=2),
            horizon_s=0.5,
        )
        utils = r.sparse_ps_mem_utilization
        # the straggler is visibly busier than its healthy peers
        assert max(utils) > 1.5 * min(utils)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(1, 1, 1, straggler_fraction=1.5)
        with pytest.raises(ValueError):
            ClusterConfig(1, 1, 1, straggler_slowdown=0.5)


class TestGpuServerSimulation:
    def test_close_to_analytic(self):
        from repro.distributed import simulate_gpu_server
        from repro.hardware import BIG_BASIN
        from repro.perf import gpu_server_throughput
        from repro.placement import PlacementStrategy, plan_placement

        m = make_test_model(512, 32, hash_size=2_000_000)
        plan = plan_placement(m, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
        analytic = gpu_server_throughput(m, 1600, BIG_BASIN, plan).throughput
        des = simulate_gpu_server(m, 1600, BIG_BASIN, plan, num_iterations=20)
        assert 0.5 < des.throughput / analytic < 2.0

    def test_jitter_slows_lockstep_iterations(self):
        from repro.distributed import simulate_gpu_server
        from repro.hardware import BIG_BASIN
        from repro.placement import plan_gpu_memory

        m = make_test_model(512, 32, hash_size=2_000_000)
        plan = plan_gpu_memory(m, BIG_BASIN)
        calm = simulate_gpu_server(m, 1600, BIG_BASIN, plan, num_iterations=30, seed=3)
        noisy = simulate_gpu_server(
            m, 1600, BIG_BASIN, plan, num_iterations=30, gpu_jitter_sigma=0.3, seed=3
        )
        # waiting for the slowest of 8 jittered GPUs costs throughput
        assert noisy.throughput < calm.throughput

    def test_gpu_busy_fractions_bounded(self):
        from repro.distributed import simulate_gpu_server
        from repro.hardware import BIG_BASIN
        from repro.placement import plan_gpu_memory

        m = make_test_model(512, 32, hash_size=2_000_000)
        plan = plan_gpu_memory(m, BIG_BASIN)
        r = simulate_gpu_server(m, 1600, BIG_BASIN, plan, num_iterations=10)
        assert len(r.gpu_busy_fraction) == 8
        assert all(0 <= b <= 1 for b in r.gpu_busy_fraction)
        assert 0 <= r.host_busy_fraction <= 1
        assert r.gpu_imbalance >= 1.0

    def test_hot_table_creates_imbalance(self):
        from repro.core import InteractionType, MLPSpec, ModelConfig, TableSpec
        from repro.distributed import simulate_gpu_server
        from repro.hardware import BIG_BASIN
        from repro.placement import PlannerConfig, plan_gpu_memory

        tables = (TableSpec("hot", 4_000_000, dim=64, mean_lookups=200.0),) + tuple(
            TableSpec(f"cold{i}", 4_000_000, dim=64, mean_lookups=2.0)
            for i in range(7)
        )
        m = ModelConfig("hot", 64, tables, MLPSpec((128,)), MLPSpec((128,)),
                        InteractionType.CONCAT)
        table_wise = plan_gpu_memory(m, BIG_BASIN)
        row_wise = plan_gpu_memory(m, BIG_BASIN, cfg=PlannerConfig(partitioning="row_wise"))
        imb_t = simulate_gpu_server(m, 1600, BIG_BASIN, table_wise, 10).gpu_imbalance
        imb_r = simulate_gpu_server(m, 1600, BIG_BASIN, row_wise, 10).gpu_imbalance
        assert imb_t > imb_r

    def test_validation(self):
        from repro.distributed import simulate_gpu_server
        from repro.hardware import BIG_BASIN, DUAL_SOCKET_CPU
        from repro.placement import plan_gpu_memory

        m = make_test_model(64, 4)
        plan = plan_gpu_memory(m, BIG_BASIN)
        with pytest.raises(ValueError):
            simulate_gpu_server(m, 1600, BIG_BASIN, plan, num_iterations=0)
        with pytest.raises(ValueError):
            simulate_gpu_server(m, 0, BIG_BASIN, plan)
        with pytest.raises(ValueError):
            simulate_gpu_server(m, 1600, DUAL_SOCKET_CPU, plan)


class TestReaderTier:
    """§IV-B.2: readers are scaled so data loading never stalls training;
    under-provisioning them must visibly cap throughput."""

    def test_ample_readers_do_not_stall(self):
        m = make_test_model(512, 16)
        base = simulate_cpu_cluster(m, ClusterConfig(6, 3, 1, seed=0), horizon_s=0.5)
        with_readers = simulate_cpu_cluster(
            m, ClusterConfig(6, 3, 1, num_readers=20, seed=0), horizon_s=0.5
        )
        assert with_readers.throughput == pytest.approx(base.throughput, rel=0.1)

    def test_starved_readers_cap_throughput(self):
        m = make_test_model(512, 16)
        base = simulate_cpu_cluster(m, ClusterConfig(6, 3, 1, seed=0), horizon_s=0.5)
        starved = simulate_cpu_cluster(
            m,
            ClusterConfig(6, 3, 1, num_readers=1, reader_examples_per_s=20_000, seed=0),
            horizon_s=0.5,
        )
        assert starved.throughput < 0.5 * base.throughput
        # the cap is the reader tier's aggregate rate
        assert starved.throughput <= 20_000 * 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(1, 1, 1, num_readers=0)
        with pytest.raises(ValueError):
            ClusterConfig(1, 1, 1, reader_examples_per_s=0)


class TestDegradationWindows:
    """Soft failures via FaultPlan.degradations: a component running N-times
    slower for a window (the resilience-layer route to stragglers)."""

    def test_degraded_ps_costs_throughput(self):
        from repro.resilience import ComponentKind, DegradationWindow, FaultPlan

        m = make_test_model(64, 64, hash_size=1_000_000)
        healthy = simulate_cpu_cluster(
            m, ClusterConfig(8, 4, 1, seed=2), horizon_s=0.5
        )
        plan = FaultPlan(
            degradations=(
                DegradationWindow(
                    ComponentKind.SPARSE_PS, 0, start_s=0.0, duration_s=0.5,
                    slowdown=4.0,
                ),
            )
        )
        degraded = simulate_cpu_cluster(
            m, ClusterConfig(8, 4, 1, seed=2, fault_plan=plan), horizon_s=0.5
        )
        assert degraded.throughput < 0.85 * healthy.throughput

    def test_window_end_restores_service(self):
        from repro.resilience import ComponentKind, DegradationWindow, FaultPlan

        m = make_test_model(64, 64, hash_size=1_000_000)

        def run(duration):
            plan = FaultPlan(
                degradations=(
                    DegradationWindow(
                        ComponentKind.SPARSE_PS, 0, start_s=0.0,
                        duration_s=duration, slowdown=8.0,
                    ),
                )
            )
            return simulate_cpu_cluster(
                m, ClusterConfig(8, 4, 1, seed=2, fault_plan=plan), horizon_s=0.5
            ).throughput

        # a window covering 20% of the horizon hurts less than one covering
        # all of it (service rates are restored at end_s)
        assert run(0.1) > run(0.5)

    def test_degraded_trainer_only_slows_itself(self):
        from repro.resilience import ComponentKind, DegradationWindow, FaultPlan

        m = make_test_model(512, 16)
        plan = FaultPlan(
            degradations=(
                DegradationWindow(
                    ComponentKind.TRAINER, 0, start_s=0.0, duration_s=0.5,
                    slowdown=4.0,
                ),
            )
        )
        r = simulate_cpu_cluster(
            m, ClusterConfig(4, 2, 1, seed=0, fault_plan=plan), horizon_s=0.5
        )
        base = simulate_cpu_cluster(
            m, ClusterConfig(4, 2, 1, seed=0), horizon_s=0.5
        )
        # async cluster: one slow trainer dents aggregate throughput by
        # roughly its own share, not 4x
        assert 0.6 * base.throughput < r.throughput < base.throughput


class TestEASGDMembership:
    """Worker dropout/rejoin (§III-A.6): async training degrades gracefully."""

    def test_drop_and_continue_on_survivors(self, tiny_config, tiny_generator):
        trainer = EASGDTrainer(
            tiny_config, EASGDConfig(num_workers=3, tau=2), lr=0.05, rng=0
        )
        stream = tiny_generator.batches(16)
        trainer.round([next(stream) for _ in range(3)])
        trainer.drop_worker(1)
        assert trainer.active_workers() == [0, 2]
        loss = trainer.round([next(stream) for _ in range(2)])
        assert np.isfinite(loss)
        assert trainer.drops == 1

    def test_round_batch_count_follows_membership(self, tiny_config, tiny_generator):
        trainer = EASGDTrainer(
            tiny_config, EASGDConfig(num_workers=3), lr=0.05, rng=0
        )
        trainer.drop_worker(0)
        stream = tiny_generator.batches(8)
        with pytest.raises(ValueError):
            trainer.round([next(stream) for _ in range(3)])

    def test_train_keeps_learning_after_dropout(self, tiny_config, tiny_generator):
        trainer = EASGDTrainer(
            tiny_config, EASGDConfig(num_workers=3, tau=2), lr=0.05, rng=0
        )
        stream = tiny_generator.batches(64)
        trainer.train(stream, max_examples=6000)
        trainer.drop_worker(2)
        history = trainer.train(stream, max_examples=16000)
        assert np.mean(history[-5:]) < np.mean(history[:5]) + 0.05

    def test_rejoin_restores_from_center(self, tiny_config, tiny_generator):
        trainer = EASGDTrainer(
            tiny_config, EASGDConfig(num_workers=2, tau=1), lr=0.05, rng=0
        )
        stream = tiny_generator.batches(16)
        trainer.round([next(stream) for _ in range(2)])
        trainer.drop_worker(1)
        trainer.round([next(stream)])
        trainer.rejoin_worker(1)
        assert trainer.active_workers() == [0, 1]
        assert trainer.rejoins == 1
        # the rejoined replica restarted from the center copy, bit for bit
        for p, center in zip(
            trainer.workers[1].dense_parameters(), trainer.center_state
        ):
            assert np.array_equal(p.value, center)

    def test_membership_validation(self, tiny_config):
        trainer = EASGDTrainer(tiny_config, EASGDConfig(num_workers=2), rng=0)
        with pytest.raises(ValueError):
            trainer.drop_worker(5)
        with pytest.raises(ValueError):
            trainer.rejoin_worker(0)  # not down
        trainer.drop_worker(0)
        with pytest.raises(ValueError):
            trainer.drop_worker(0)  # already down
        with pytest.raises(ValueError):
            trainer.drop_worker(1)  # last active worker


class TestSyncSGDStall:
    """The synchronous counterpoint: one failed worker stalls every step."""

    def test_step_raises_while_worker_down(self, tiny_config, tiny_generator):
        from repro.distributed import ClusterStalledError

        trainer = SyncSGDTrainer(tiny_config, num_workers=2, lr=0.05, rng=0)
        stream = tiny_generator.batches(16)
        trainer.step([next(stream), next(stream)])
        trainer.drop_worker(0)
        with pytest.raises(ClusterStalledError) as err:
            trainer.step([next(stream), next(stream)])
        assert err.value.dropped == [0]
        assert trainer.stalled_steps == 1

    def test_restore_clears_the_barrier(self, tiny_config, tiny_generator):
        from repro.distributed import ClusterStalledError

        trainer = SyncSGDTrainer(tiny_config, num_workers=2, lr=0.05, rng=0)
        stream = tiny_generator.batches(16)
        trainer.drop_worker(1)
        with pytest.raises(ClusterStalledError):
            trainer.step([next(stream), next(stream)])
        trainer.restore_worker(1)
        loss = trainer.step([next(stream), next(stream)])
        assert np.isfinite(loss)
        assert trainer.dropped_workers() == []

    def test_membership_validation(self, tiny_config):
        trainer = SyncSGDTrainer(tiny_config, num_workers=2, rng=0)
        with pytest.raises(ValueError):
            trainer.drop_worker(9)
        with pytest.raises(ValueError):
            trainer.restore_worker(0)  # not down
        trainer.drop_worker(0)
        with pytest.raises(ValueError):
            trainer.drop_worker(0)
