"""Tests for the calibration-fitting tool."""

from dataclasses import replace

import pytest

from repro.perf import DEFAULT_CALIBRATION, fit_calibration, table3_ratio_loss
from repro.perf.fitting import TABLE3_TARGETS


class TestObjective:
    def test_shipped_calibration_close_to_targets(self):
        """The shipped calibration must sit near the Table III targets:
        log-loss below (0.25)^2 per model on average."""
        loss = table3_ratio_loss(DEFAULT_CALIBRATION)
        assert loss < 3 * 0.25**2

    def test_targets_match_setups(self):
        assert TABLE3_TARGETS == {
            "M1_prod": 2.25,
            "M2_prod": 0.85,
            "M3_prod": 0.67,
        }

    def test_perturbation_hurts(self):
        """Breaking a fitted knob far from its value must raise the loss."""
        broken = replace(DEFAULT_CALIBRATION, ps_service_efficiency=0.1)
        assert table3_ratio_loss(broken) > table3_ratio_loss(DEFAULT_CALIBRATION)


class TestFitCalibration:
    def test_recovers_from_perturbation(self):
        """Start from a deliberately detuned calibration; the fitter must
        reduce the loss substantially toward the shipped value."""
        detuned = replace(
            DEFAULT_CALIBRATION,
            remote_iteration_overhead_s=DEFAULT_CALIBRATION.remote_iteration_overhead_s * 3,
        )
        start_loss = table3_ratio_loss(detuned)
        result = fit_calibration(
            knobs=("remote_iteration_overhead_s",), start=detuned, rounds=4
        )
        assert result.improved
        assert result.loss < 0.5 * start_loss
        assert result.evaluations > 1

    def test_noop_when_already_optimal_on_cheap_objective(self):
        """With a synthetic objective minimized at the start point, the
        fitter returns the start unchanged."""
        calls = []

        def objective(c):
            calls.append(1)
            return abs(c.host_input_per_table_s - DEFAULT_CALIBRATION.host_input_per_table_s)

        result = fit_calibration(
            knobs=("host_input_per_table_s",),
            objective=objective,
            rounds=2,
        )
        assert result.calibration.host_input_per_table_s == pytest.approx(
            DEFAULT_CALIBRATION.host_input_per_table_s
        )
        assert not result.improved

    def test_fraction_fields_clamped(self):
        def objective(c):
            # rewards pushing the fraction up; must clamp at 1.0
            return 1.0 - c.ps_service_efficiency

        result = fit_calibration(
            knobs=("ps_service_efficiency",), objective=objective, rounds=3
        )
        assert result.calibration.ps_service_efficiency <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_calibration(knobs=("not_a_field",))
        with pytest.raises(ValueError):
            fit_calibration(rounds=0)
        with pytest.raises(ValueError):
            fit_calibration(step_factor=1.0)
