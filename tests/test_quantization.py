"""Tests for repro.core.quantization and the quantization what-ifs."""

import numpy as np
import pytest

from repro.core import (
    EmbeddingTable,
    QuantizedEmbeddingTable,
    TableSpec,
    dequantize_rows,
    quantization_error,
    quantize_rows,
    quantized_table_bytes,
)
from repro.hardware import BIG_BASIN
from repro.perf import quantized_capacity_report

from helpers import simple_ragged


class TestQuantizeRows:
    def test_roundtrip_within_step(self, rng):
        w = rng.normal(size=(20, 8))
        codes, scales = quantize_rows(w, bits=8)
        recon = dequantize_rows(codes, scales)
        # error bounded by half a quantization step per row
        steps = scales[:, None]
        assert np.all(np.abs(recon - w) <= 0.5 * steps + 1e-12)

    def test_code_range(self, rng):
        w = rng.normal(size=(10, 4))
        for bits in (2, 4, 8):
            codes, _ = quantize_rows(w, bits)
            qmax = 2 ** (bits - 1) - 1
            assert codes.min() >= -qmax and codes.max() <= qmax

    def test_zero_row_safe(self):
        w = np.zeros((3, 4))
        codes, scales = quantize_rows(w, 8)
        np.testing.assert_array_equal(dequantize_rows(codes, scales), w)

    def test_error_decreases_with_bits(self, rng):
        w = rng.normal(size=(50, 16))
        errors = [quantization_error(w, bits) for bits in (2, 4, 8)]
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 0.01  # int8 is nearly lossless in RMS terms

    def test_unsupported_bits_rejected(self, rng):
        with pytest.raises(ValueError):
            quantize_rows(rng.normal(size=(2, 2)), bits=3)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            quantize_rows(np.zeros(5), 8)


class TestQuantizedTableBytes:
    def test_compression_ratio(self):
        spec = TableSpec("t", hash_size=1000, dim=64)
        fp32 = spec.size_bytes
        q8 = quantized_table_bytes(spec, 8)
        q4 = quantized_table_bytes(spec, 4)
        assert q8 < fp32 / 3  # ~4x minus scale overhead
        assert q4 < q8


class TestQuantizedEmbeddingTable:
    def test_lookup_close_to_fp32(self, rng):
        spec = TableSpec("t", hash_size=100, dim=8, mean_lookups=3)
        table = EmbeddingTable(spec, rng)
        q = QuantizedEmbeddingTable(table, bits=8)
        ragged = simple_ragged([[1, 2, 3], [50]])
        exact = table.forward(ragged)
        table._saved.clear()
        approx = q.forward(ragged)
        rel = np.abs(approx - exact).max() / (np.abs(exact).max() + 1e-12)
        assert rel < 0.02

    def test_storage_smaller(self, rng):
        spec = TableSpec("t", hash_size=1000, dim=64)
        table = EmbeddingTable(spec, rng)
        q = QuantizedEmbeddingTable(table, bits=4)
        assert q.storage_bytes < spec.size_bytes / 4

    def test_out_of_range_rejected(self, rng):
        spec = TableSpec("t", hash_size=10, dim=4)
        q = QuantizedEmbeddingTable(EmbeddingTable(spec, rng), bits=8)
        with pytest.raises(IndexError):
            q.forward(simple_ragged([[99]]))


class TestQuantizedCapacityReport:
    def test_m3_story(self):
        """FP32 M3 does not fit one Big Basin; int8/int4 do — the paper's
        compression opportunity quantified."""
        from repro.configs import build_m3

        rows = {r.bits: r for r in quantized_capacity_report(build_m3(), BIG_BASIN)}
        assert not rows[32].fits_gpu_memory
        assert rows[8].fits_gpu_memory
        assert rows[4].fits_gpu_memory
        assert rows[4].min_gpus <= rows[8].min_gpus <= rows[32].min_gpus

    def test_cpu_platform_rejected(self):
        from repro.configs import make_test_model
        from repro.hardware import DUAL_SOCKET_CPU

        with pytest.raises(ValueError):
            quantized_capacity_report(make_test_model(64, 4), DUAL_SOCKET_CPU)
