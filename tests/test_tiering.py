"""Tests for the tiered embedding store (repro.tiering)."""

import numpy as np
import pytest

from repro.core import DLRM, Adagrad, MLPSpec, ModelConfig, Trainer, uniform_tables
from repro.core.config import InteractionType, TableSpec
from repro.core.embedding import EmbeddingTable
from repro.core.quantization import QuantizedEmbeddingTable
from repro.data import SyntheticDataGenerator
from repro.hardware import DRAM_TIER, NVME_TIER, SCM_TIER, MemoryTierSpec
from repro.obs import MetricsRegistry
from repro.tiering import (
    FreqStats,
    PolicyCache,
    TierCostModel,
    TieredEmbeddingTable,
    TieredStoreConfig,
    TierStats,
    policy_hit_rate_pmf,
)


# ---------------------------------------------------------------------------
# MemoryTierSpec / TierCostModel
# ---------------------------------------------------------------------------


class TestTierSpecs:
    def test_access_time_is_latency_plus_transfer(self):
        tier = MemoryTierSpec("t", bandwidth=1e9, latency_s=1e-6)
        assert tier.access_s(0) == pytest.approx(1e-6)
        assert tier.access_s(1e9) == pytest.approx(1e-6 + 1.0)

    def test_builtin_tiers_ordered_by_speed(self):
        row = 256.0
        assert DRAM_TIER.access_s(row) < SCM_TIER.access_s(row)
        assert SCM_TIER.access_s(row) < NVME_TIER.access_s(row)

    @pytest.mark.parametrize("kw", [
        dict(bandwidth=0.0, latency_s=1e-6),
        dict(bandwidth=-1.0, latency_s=1e-6),
        dict(bandwidth=1e9, latency_s=-1e-9),
    ])
    def test_invalid_specs_rejected(self, kw):
        with pytest.raises(ValueError):
            MemoryTierSpec("bad", **kw)

    def test_cost_model_components(self):
        m = TierCostModel(hot=DRAM_TIER, cold=SCM_TIER)
        row_b, chunk_b = 64.0, 512.0
        assert m.miss_penalty_s(row_b) == pytest.approx(
            m.cold_access_s(row_b) - m.hot_access_s(row_b)
        )
        assert m.chunk_move_s(chunk_b) == pytest.approx(
            SCM_TIER.access_s(chunk_b) + DRAM_TIER.access_s(chunk_b)
        )

    def test_predicted_overhead_formula(self):
        m = TierCostModel()
        row_b, chunk_b = 64.0, 512.0
        got = m.predicted_overhead_s(1000, 0.9, row_b, chunk_b, moves_per_miss=1.0)
        misses = 1000 * 0.1
        want = misses * (m.miss_penalty_s(row_b) + m.chunk_move_s(chunk_b))
        assert got == pytest.approx(want)
        # freq-style steady state: no movements, only the miss penalty.
        got0 = m.predicted_overhead_s(1000, 0.9, row_b, chunk_b, moves_per_miss=0.0)
        assert got0 == pytest.approx(misses * m.miss_penalty_s(row_b))

    def test_predicted_overhead_rejects_bad_hit_rate(self):
        with pytest.raises(ValueError):
            TierCostModel().predicted_overhead_s(10, 1.5, 64, 512, 1.0)


# ---------------------------------------------------------------------------
# PolicyCache
# ---------------------------------------------------------------------------


class TestPolicyCache:
    def test_lru_evicts_least_recently_used(self):
        c = PolicyCache(2, "lru")
        c.access(np.array([1, 2]))
        c.access(np.array([1]))       # 1 is now more recent than 2
        c.access(np.array([3]))       # evicts 2
        assert 1 in c and 3 in c and 2 not in c
        assert c.evictions == 1

    def test_lfu_evicts_least_frequent(self):
        c = PolicyCache(2, "lfu")
        c.access(np.array([1, 1, 1, 2]))
        c.access(np.array([3]))       # 2 has count 1 < 1's count 3
        assert 1 in c and 3 in c and 2 not in c

    def test_freq_admission_rejects_cold_keys(self):
        scores = {1: 5.0, 2: 4.0, 3: 1.0, 4: 9.0}
        scorer = lambda ks: np.array([scores[int(k)] for k in ks])
        c = PolicyCache(2, "freq", scorer=scorer)
        c.access(np.array([1, 2]))    # fills
        c.access(np.array([3]))       # score 1 < victim score 4 -> rejected
        assert 3 not in c and c.rejections == 1
        c.access(np.array([4]))       # score 9 > victim (2 @ 4.0) -> admitted
        assert 4 in c and 2 not in c
        assert c.insertions == 3 and c.evictions == 1

    def test_capacity_zero_never_admits(self):
        c = PolicyCache(0, "lru")
        hits = c.access(np.array([1, 1, 1]))
        assert hits == 0 and len(c) == 0 and c.misses == 3

    def test_hit_rate_bracket(self):
        c = PolicyCache(4, "lru")
        c.access(np.array([1, 2, 3, 1, 2, 3, 1, 2, 3]))
        # 3 compulsory cold fills, 6 warm hits.
        assert c.hits == 6 and c.compulsory_misses == 3
        assert c.hit_rate == pytest.approx(6 / 9)
        assert c.warm_hit_rate == pytest.approx(1.0)
        assert c.hit_rate <= c.warm_hit_rate

    def test_invalidate_keeps_counters(self):
        c = PolicyCache(2, "lru")
        c.access(np.array([1, 1]))
        c.invalidate()
        assert len(c) == 0 and c.hits == 1 and c.misses == 1

    def test_freq_requires_scorer(self):
        with pytest.raises(ValueError, match="scorer"):
            PolicyCache(2, "freq")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            PolicyCache(2, "mru")


# ---------------------------------------------------------------------------
# FreqStats (basics; stream-invariance properties live in test_tiering_freq)
# ---------------------------------------------------------------------------


class TestFreqStats:
    def test_counts_and_window(self):
        f = FreqStats(8, decay=0.9, window=4)
        f.record(np.array([0, 1, 1, 2, 3, 3]))
        np.testing.assert_array_equal(f.counts[:4], [1, 2, 1, 2])
        # Window holds the last 4 accesses: 1, 2, 3, 3.
        np.testing.assert_array_equal(f.win_counts[:4], [0, 1, 1, 2])
        assert f.pos == 6

    def test_scores_decay_toward_recent(self):
        f = FreqStats(4, decay=0.5, window=8)
        f.record(np.array([0, 1]))
        s = f.scores()
        # 0 was accessed one step before 1, so its score decayed once more.
        assert s[1] == pytest.approx(1.0)
        assert s[0] == pytest.approx(0.5)
        assert s[2] == 0.0

    def test_topk_breaks_ties_by_id(self):
        f = FreqStats(4, decay=1.0, window=8)
        f.record(np.array([3, 1]))  # decay 1.0: both score exactly 1
        np.testing.assert_array_equal(f.topk(2), [1, 3])

    def test_out_of_range_rejected(self):
        f = FreqStats(4)
        with pytest.raises(IndexError):
            f.record(np.array([4]))
        with pytest.raises(IndexError):
            f.record(np.array([-1]))


# ---------------------------------------------------------------------------
# bytes_per_row — the tier-capacity pricing contract
# ---------------------------------------------------------------------------


class TestBytesPerRow:
    def _table(self, dtype):
        spec = TableSpec("t", hash_size=32, dim=16, mean_lookups=2.0)
        return EmbeddingTable(spec, np.random.default_rng(0), dtype=dtype)

    def test_flat_tables_priced_by_dtype(self):
        assert self._table(np.float64).bytes_per_row() == 16 * 8
        assert self._table(np.float32).bytes_per_row() == 16 * 4

    @pytest.mark.parametrize("bits,want", [(8, 16 + 4), (4, 8 + 4), (2, 4 + 4)])
    def test_quantized_tables_priced_by_bits(self, bits, want):
        q = QuantizedEmbeddingTable(self._table(np.float64), bits)
        assert q.bytes_per_row() == pytest.approx(want)

    def test_hot_bytes_capacity_uses_row_width(self):
        cfg = TieredStoreConfig(hot_fraction=None, hot_bytes=1024.0, chunk_rows=2)
        # f64 rows are 128 B -> 8 rows -> 4 chunks; f32 rows 64 B -> 8 chunks.
        assert cfg.capacity_chunks(32, 128.0) == 4
        assert cfg.capacity_chunks(32, 64.0) == 8
        # Quantized int8 rows (dim 16 -> 20 B) pack far more rows per byte.
        assert cfg.capacity_chunks(1024, 20.0) == 25


# ---------------------------------------------------------------------------
# TieredStoreConfig validation
# ---------------------------------------------------------------------------


class TestTieredStoreConfig:
    @pytest.mark.parametrize("kw", [
        dict(hot_fraction=None, hot_bytes=None),
        dict(hot_fraction=1.5),
        dict(hot_fraction=-0.1),
        dict(hot_bytes=-1.0),
        dict(chunk_rows=0),
        dict(policy="mru"),
    ])
    def test_invalid_configs_rejected(self, kw):
        with pytest.raises(ValueError):
            TieredStoreConfig(**kw)

    def test_capacity_whole_chunks_capped_at_table(self):
        cfg = TieredStoreConfig(hot_fraction=1.0, chunk_rows=8)
        # 100 rows hold 12 whole 8-row chunks (the budget buys whole chunks).
        assert cfg.capacity_chunks(100, 64.0) == 12
        # chunk_rows=1: a full hot fraction covers every chunk exactly.
        assert TieredStoreConfig(hot_fraction=1.0, chunk_rows=1).capacity_chunks(
            100, 64.0
        ) == 100


# ---------------------------------------------------------------------------
# TieredEmbeddingTable: accounting + bit identity
# ---------------------------------------------------------------------------


def _small_config(dtype="float64"):
    return ModelConfig(
        name="tiny-tier",
        num_dense=4,
        tables=uniform_tables(3, 200, dim=8, mean_lookups=3.0),
        bottom_mlp=MLPSpec((8, 4)),
        top_mlp=MLPSpec((8,)),
        interaction=InteractionType.CONCAT,
        compute_dtype=dtype,
    )


def _train(model, config, steps=4, batch=32, seed=0, metrics=None):
    gen = SyntheticDataGenerator(config, rng=seed, seed_teacher=True)
    trainer = Trainer(
        model,
        lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
        metrics=metrics,
    )
    return [trainer.train_step(gen.batch(batch)) for _ in range(steps)]


class TestTieredTable:
    def test_accounting_invariants(self):
        spec = TableSpec("t", hash_size=64, dim=4, mean_lookups=2.0)
        table = TieredEmbeddingTable(
            spec, np.random.default_rng(0),
            tiering=TieredStoreConfig(hot_fraction=0.25, chunk_rows=4, policy="lru"),
        )
        rows = np.random.default_rng(1).integers(0, 64, size=500)
        table.record_accesses(rows)
        s = table.stats
        assert s.accesses == 500
        assert s.hot_hits + s.cold_misses == 500
        assert s.promotions <= s.cold_misses
        assert len(table.hot) <= table.capacity_chunks
        assert s.total_time_s > 0 and s.overhead_s >= 0
        assert table.freq.pos == 500

    def test_freq_policy_rejections_skip_movement(self):
        spec = TableSpec("t", hash_size=64, dim=4, mean_lookups=2.0)
        table = TieredEmbeddingTable(
            spec, np.random.default_rng(0),
            tiering=TieredStoreConfig(hot_fraction=0.125, chunk_rows=4, policy="freq"),
        )
        # Skewed stream: a few hot rows dominate; the tail gets rejected.
        rng = np.random.default_rng(2)
        hot = rng.integers(0, 8, size=400)
        tail = rng.integers(8, 64, size=100)
        table.record_accesses(np.concatenate([hot, tail]))
        s = table.stats
        assert s.rejected > 0
        assert s.promotions + s.rejected == s.cold_misses
        # Rejected misses charge no move time.
        assert s.move_time_s == pytest.approx(
            s.promotions * table.cost_model.chunk_move_s(
                table.bytes_per_row() * table.chunk_rows
            )
        )

    def test_stats_delta_roundtrip(self):
        s = TierStats(hot_hits=10, cold_misses=5, promotions=2,
                      hot_time_s=1.0, cold_time_s=2.0, move_time_s=0.5)
        snap = s.snapshot()
        s.hot_hits += 3
        s.cold_misses += 1
        d = s.delta(snap)
        assert d.hot_hits == 3 and d.cold_misses == 1 and d.promotions == 0

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("hot_fraction", [0.0, 0.1, 1.0])
    def test_bit_identical_to_flat_table(self, dtype, hot_fraction):
        config = _small_config(dtype)
        flat = DLRM(config, rng=7)
        tiered = DLRM(
            config, rng=7,
            tiering=TieredStoreConfig(hot_fraction=hot_fraction, chunk_rows=4),
        )
        flat_losses = _train(flat, config, seed=3)
        tiered_losses = _train(tiered, config, seed=3)
        assert flat_losses == tiered_losses
        for ft, tt in zip(flat.embedding_tables(), tiered.embedding_tables()):
            np.testing.assert_array_equal(ft.weight, tt.weight)
        for fp, tp in zip(flat.dense_parameters(), tiered.dense_parameters()):
            np.testing.assert_array_equal(fp.value, tp.value)

    def test_inference_forward_not_accounted(self):
        config = _small_config()
        model = DLRM(config, rng=0, tiering=TieredStoreConfig(hot_fraction=0.1))
        gen = SyntheticDataGenerator(config, rng=0)
        model.predict_proba(gen.batch(16))
        for t in model.embedding_tables():
            assert t.stats.accesses == 0


# ---------------------------------------------------------------------------
# Trainer integration: tier metrics + spans
# ---------------------------------------------------------------------------


class TestTrainerTierMetrics:
    def test_counters_and_gauges_published(self):
        config = _small_config()
        model = DLRM(config, rng=0, tiering=TieredStoreConfig(hot_fraction=0.1))
        metrics = MetricsRegistry()
        _train(model, config, steps=3, metrics=metrics)
        hits = sum(
            c.value for c in metrics.get("tier_hot_hits").children().values()
        )
        misses = sum(
            c.value for c in metrics.get("tier_cold_misses").children().values()
        )
        total = sum(t.stats.accesses for t in model.embedding_tables())
        assert hits + misses == total > 0
        assert len(metrics.get("tier_hit_rate").children()) == len(config.tables)

    def test_flat_model_publishes_nothing(self):
        config = _small_config()
        model = DLRM(config, rng=0)
        metrics = MetricsRegistry()
        _train(model, config, steps=2, metrics=metrics)
        with pytest.raises(KeyError):
            metrics.get("tier_hot_hits")

    def test_tier_spans_emitted(self):
        from repro.obs import Tracer

        config = _small_config()
        model = DLRM(config, rng=0, tiering=TieredStoreConfig(hot_fraction=0.1))
        tracer = Tracer()
        trainer = Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
            tracer=tracer,
        )
        gen = SyntheticDataGenerator(config, rng=0)
        trainer.train_step(gen.batch(16))
        tier_spans = [s for s in tracer.spans if s.name == "tier"]
        assert len(tier_spans) == len(config.tables)


# ---------------------------------------------------------------------------
# measured vs analytic cross-validation (small; the full sweep is the CLI)
# ---------------------------------------------------------------------------


class TestMeasuredVsAnalytic:
    def test_sweep_point_within_gate(self):
        from repro.experiments.ext_tiering import run_sweep

        points = run_sweep(
            hot_fractions=(0.05,), skews=(1.05,), policies=("freq",),
            num_rows=2048, chunk_rows=4, warmup=6000, measure=12000,
        )
        assert len(points) == 1
        p = points[0]
        assert 0.0 < p.measured_hit_rate < 1.0
        assert p.rel_err < 0.25

    def test_train_experiment_bit_identity(self):
        from repro.experiments.ext_tiering import run_train

        r = run_train(hot_fraction=0.05, policy="freq", steps=3, batch=32,
                      dtype="float32")
        assert r.bit_identical
        assert r.tier_stats["hot_hits"] + r.tier_stats["cold_misses"] > 0

    def test_chunk_popularity_is_pmf(self):
        from repro.experiments.ext_tiering import chunk_popularity

        p = chunk_popularity(num_rows=1000, chunk_rows=8, skew=1.05)
        assert len(p) == 125
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()
        # Sanity link to the analytic layer: a pmf-general hit rate over
        # these chunks is a valid probability.
        h = policy_hit_rate_pmf("lru", p, 12)
        assert 0.0 < h < 1.0


# ---------------------------------------------------------------------------
# CLI smoke
# ---------------------------------------------------------------------------


class TestTierCLI:
    def test_tier_train_json(self, capsys):
        import json

        from repro.cli import main

        rc = main(["tier", "train", "--steps", "2", "--batch", "16", "--json"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert [r["bit_identical"] for r in out] == [True, True]

    def test_tier_sweep_json(self, capsys):
        import json

        from repro.cli import main

        rc = main([
            "tier", "sweep", "--hot-fractions", "0.05", "--skews", "1.05",
            "--policies", "freq", "--rows", "2048", "--warmup", "4000",
            "--measure", "8000", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["max_rel_err"] == 0.25
        assert all(p["rel_err"] < 0.25 for p in out["points"])
