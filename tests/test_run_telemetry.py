"""Tests for per-run training telemetry."""

import numpy as np
import pytest

from repro.core import (
    Adagrad,
    DLRM,
    InstrumentedTrainer,
    MetricsLogger,
    MetricSeries,
    Trainer,
)


class TestMetricSeries:
    def test_record_and_latest(self):
        s = MetricSeries("loss")
        s.record(0, 1.0)
        s.record(1, 0.5)
        assert len(s) == 2
        assert s.latest() == 0.5

    def test_smoothed_window(self):
        s = MetricSeries("loss")
        for i in range(20):
            s.record(i, float(i))
        assert s.smoothed(window=5) == pytest.approx(np.mean([15, 16, 17, 18, 19]))

    def test_out_of_order_rejected(self):
        s = MetricSeries("loss")
        s.record(5, 1.0)
        with pytest.raises(ValueError):
            s.record(3, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricSeries("x").latest()


class TestMetricsLogger:
    def test_record_multiple_metrics(self):
        logger = MetricsLogger()
        logger.record(0, loss=1.0, lr=0.1)
        logger.record(1, loss=0.9, lr=0.1)
        assert logger.names() == ["loss", "lr"]
        assert logger.series("loss").latest() == 0.9

    def test_unknown_series_rejected(self):
        with pytest.raises(KeyError):
            MetricsLogger().series("nope")

    def test_csv_export(self):
        logger = MetricsLogger()
        logger.record(0, loss=1.5)
        logger.record(1, loss=1.25)
        csv = logger.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "step,metric,value"
        assert len(lines) == 3
        assert "1,loss,1.25" in csv

    def test_summary(self):
        logger = MetricsLogger()
        for i, v in enumerate([3.0, 1.0, 2.0]):
            logger.record(i, loss=v)
        s = logger.summary()["loss"]
        assert s["count"] == 3
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert s["first"] == 3.0 and s["last"] == 2.0


class TestInstrumentedTrainer:
    def test_logs_training_run(self, tiny_config, tiny_generator):
        model = DLRM(tiny_config, rng=0)
        trainer = Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
        )
        inst = InstrumentedTrainer(trainer)
        inst.train(tiny_generator.batches(32), max_examples=1600)
        loss = inst.logger.series("loss")
        assert len(loss) == 50
        assert inst.logger.series("examples_seen").latest() == 1600
        assert all(v > 0 for v in inst.logger.series("examples_per_s").values)
        assert inst.logger.series("lr").latest() == pytest.approx(0.05)

    def test_budget_validation(self, tiny_config, tiny_generator):
        model = DLRM(tiny_config, rng=0)
        trainer = Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
        )
        with pytest.raises(ValueError):
            InstrumentedTrainer(trainer).train(tiny_generator.batches(8), max_examples=0)
