"""Tests for the automatic training-setup selection."""

import pytest

from repro.configs import build_m1, build_m3, make_test_model
from repro.perf import Objective, optimize_setup


class TestOptimizeSetup:
    def test_returns_ranked_candidates(self):
        m = make_test_model(512, 16)
        result = optimize_setup(m)
        assert len(result.candidates) > 3
        ranked = result.ranked()
        assert ranked[0].throughput >= ranked[-1].throughput
        assert result.best is ranked[0]

    def test_m1_prefers_gpu(self):
        """M1 fits GPU memory and wins there (Table III)."""
        result = optimize_setup(build_m1(), objective=Objective.THROUGHPUT,
                                trainer_counts=(4, 8))
        assert "BigBasin" in result.best.label or "Zion" in result.best.label

    def test_m3_avoids_big_basin_gpu_memory(self):
        """M3 cannot use pure Big Basin GPU-memory placement (Table II/III);
        among the placements the paper evaluated for M3 (remote CPU, system
        memory), Zion system-memory wins.  Note: the optimizer additionally
        surfaces a *hybrid* Big Basin placement (96% of bytes in HBM) the
        paper never tried — documented as an extension in EXPERIMENTS.md."""
        result = optimize_setup(build_m3(), objective=Objective.THROUGHPUT)
        labels = [c.label for c in result.candidates]
        assert not any("BigBasin/gpu_memory" in l for l in labels)
        # among the single-GPU-server placements the paper evaluated for M3
        # (system memory / remote CPU), Zion system-memory wins
        paper_evaluated = [
            c
            for c in result.candidates
            if "hybrid" not in c.label and not c.label.startswith("CPU ")
        ]
        best_paper = max(paper_evaluated, key=lambda c: c.throughput)
        assert "Zion/system_memory" in best_paper.label

    def test_objectives_can_disagree(self):
        """Throughput and perf/watt winners need not coincide."""
        m = make_test_model(64, 128)  # sparse-heavy: GPU wins speed, not watts
        thr = optimize_setup(m, objective=Objective.THROUGHPUT)
        eff = optimize_setup(m, objective=Objective.PERF_PER_WATT)
        assert thr.best.throughput >= eff.best.throughput
        assert eff.best.perf_per_watt >= thr.best.perf_per_watt

    def test_min_throughput_filters(self):
        m = make_test_model(512, 16)
        unfiltered = optimize_setup(m)
        floor = unfiltered.ranked()[0].throughput * 0.5
        filtered = optimize_setup(m, min_throughput=floor)
        assert all(c.throughput >= floor for c in filtered.candidates)
        assert len(filtered.candidates) <= len(unfiltered.candidates)

    def test_impossible_requirement_raises(self):
        m = make_test_model(64, 4)
        with pytest.raises(ValueError, match="no feasible setup"):
            optimize_setup(m, min_throughput=1e12)

    def test_negative_requirement_rejected(self):
        with pytest.raises(ValueError):
            optimize_setup(make_test_model(64, 4), min_throughput=-1)
