"""Shared fixtures for the test suite (helpers live in helpers.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    InteractionType,
    MLPSpec,
    ModelConfig,
    uniform_tables,
)
from repro.data import SyntheticDataGenerator


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def tiny_config() -> ModelConfig:
    """A DLRM small enough for numeric gradient checks."""
    return ModelConfig(
        name="tiny",
        num_dense=6,
        tables=uniform_tables(3, 50, dim=4, mean_lookups=2.0),
        bottom_mlp=MLPSpec((8, 4)),
        top_mlp=MLPSpec((6,)),
        interaction=InteractionType.DOT,
    )


@pytest.fixture
def concat_config() -> ModelConfig:
    return ModelConfig(
        name="tiny-concat",
        num_dense=6,
        tables=uniform_tables(3, 50, dim=4, mean_lookups=2.0),
        bottom_mlp=MLPSpec((8, 5)),
        top_mlp=MLPSpec((6,)),
        interaction=InteractionType.CONCAT,
    )


@pytest.fixture
def tiny_generator(tiny_config) -> SyntheticDataGenerator:
    return SyntheticDataGenerator(tiny_config, rng=7, seed_teacher=True)
