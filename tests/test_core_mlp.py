"""Tests for repro.core.mlp: layers, activations, gradient correctness."""

import numpy as np
import pytest

from repro.core import MLP, Linear, MLPSpec, Parameter, ReLU, Sigmoid

from helpers import numeric_grad_scalar


class TestParameter:
    def test_zero_grad(self, rng):
        p = Parameter(rng.normal(size=(3, 2)))
        p.grad += 1.0
        p.zero_grad()
        assert np.all(p.grad == 0)

    def test_value_is_float64_contiguous(self):
        p = Parameter(np.arange(6, dtype=np.float32).reshape(2, 3).T)
        assert p.value.dtype == np.float64
        assert p.value.flags["C_CONTIGUOUS"]


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_forward_matches_manual(self, rng):
        layer = Linear(2, 2, rng)
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.value.T + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_rejects_wrong_width(self, rng):
        layer = Linear(4, 3, rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(5, 5)))

    def test_backward_before_forward_raises(self, rng):
        layer = Linear(4, 3, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((5, 3)))

    def test_weight_gradient_numeric(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return float(((layer.forward(x) - target) ** 2).sum())

        expected = numeric_grad_scalar(loss, layer.weight.value)
        layer.weight.zero_grad()
        out = layer.forward(x)
        layer.backward(2 * (out - target))
        np.testing.assert_allclose(layer.weight.grad, expected, rtol=1e-5, atol=1e-7)

    def test_input_gradient_numeric(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return float(((layer.forward(x) - target) ** 2).sum())

        expected = numeric_grad_scalar(loss, x)
        out = layer.forward(x)
        grad_in = layer.backward(2 * (out - target))
        np.testing.assert_allclose(grad_in, expected, rtol=1e-5, atol=1e-7)

    def test_gradient_accumulates_across_backwards(self, rng):
        layer = Linear(2, 2, rng)
        x = rng.normal(size=(3, 2))
        g = rng.normal(size=(3, 2))
        layer.forward(x)
        layer.backward(g)
        once = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(g)
        np.testing.assert_allclose(layer.weight.grad, 2 * once)


class TestActivations:
    def test_relu_forward(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_masks(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 3.0]]))
        grad = relu.backward(np.array([[5.0, 7.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 7.0]])

    def test_sigmoid_range_and_stability(self):
        sig = Sigmoid()
        out = sig.forward(np.array([[-1000.0, 0.0, 1000.0]]))
        assert np.all((out >= 0) & (out <= 1))
        assert out[0, 1] == pytest.approx(0.5)
        assert np.isfinite(out).all()

    def test_sigmoid_backward_numeric(self, rng):
        x = rng.normal(size=(3, 2))

        def loss():
            return float(Sigmoid().forward(x).sum())

        expected = numeric_grad_scalar(loss, x)
        sig = Sigmoid()
        sig.forward(x)
        grad = sig.backward(np.ones((3, 2)))
        np.testing.assert_allclose(grad, expected, rtol=1e-6, atol=1e-9)


class TestMLP:
    def test_shapes_and_parameter_count(self, rng):
        spec = MLPSpec((8, 4))
        mlp = MLP(6, spec, rng)
        out = mlp.forward(rng.normal(size=(3, 6)))
        assert out.shape == (3, 4)
        n_params = sum(p.size for p in mlp.parameters())
        assert n_params == spec.num_parameters(6)

    def test_final_activation_flag(self, rng):
        mlp = MLP(4, MLPSpec((3,)), rng, final_activation=False)
        x = rng.normal(size=(100, 4))
        out = mlp.forward(x)
        # A purely linear head can go negative; with ReLU it cannot.
        assert (out < 0).any()

    def test_end_to_end_gradient_numeric(self, rng):
        mlp = MLP(3, MLPSpec((5, 2)), rng, final_activation=False)
        x = rng.normal(size=(4, 3))

        def loss():
            return float((mlp.forward(x) ** 2).sum())

        for p in mlp.parameters():
            expected = numeric_grad_scalar(loss, p.value)
            for q in mlp.parameters():
                q.zero_grad()
            out = mlp.forward(x)
            mlp.backward(2 * out)
            np.testing.assert_allclose(p.grad, expected, rtol=1e-4, atol=1e-6)

    def test_backward_returns_input_gradient(self, rng):
        mlp = MLP(3, MLPSpec((5, 2)), rng, final_activation=False)
        x = rng.normal(size=(4, 3))

        def loss():
            return float((mlp.forward(x) ** 2).sum())

        expected = numeric_grad_scalar(loss, x)
        out = mlp.forward(x)
        grad_in = mlp.backward(2 * out)
        np.testing.assert_allclose(grad_in, expected, rtol=1e-4, atol=1e-6)
