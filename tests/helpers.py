"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

import numpy as np

from repro.core import (
    DLRM,
    Adagrad,
    Batch,
    InteractionType,
    MLPSpec,
    ModelConfig,
    RaggedIndices,
    Trainer,
    uniform_tables,
)
from repro.data import SyntheticDataGenerator


def make_batch(config: ModelConfig, batch_size: int, seed: int = 0) -> Batch:
    """Deterministic batch for a config (labels are coin flips)."""
    gen = SyntheticDataGenerator(config, rng=seed)
    return gen.batch(batch_size)


def backend_sweep_point(backend: str, batch_seed: int, steps: int = 3,
                        batch_size: int = 16) -> dict:
    """Module-level (hence picklable) sweep grid point: a short deterministic
    training run under the named compute backend.

    Used by the conformance suite to pin that a :class:`SweepRunner`
    process-pool sweep round-trips the selected backend and reproduces the
    serial ``"numpy"`` results bit-for-bit.
    """
    config = ModelConfig(
        name="sweep-backend",
        num_dense=4,
        tables=uniform_tables(3, 32, dim=4, mean_lookups=2.0),
        bottom_mlp=MLPSpec((6, 4)),
        top_mlp=MLPSpec((4,)),
        interaction=InteractionType.DOT,
        backend=backend,
    )
    model = DLRM(config, rng=0)
    trainer = Trainer(
        model,
        lambda m: Adagrad(
            m.dense_parameters(), m.embedding_tables(), lr=0.05, backend=m.backend
        ),
    )
    losses = [
        trainer.train_step(make_batch(config, batch_size, seed=batch_seed + i))
        for i in range(steps)
    ]
    preds = model.predict_proba(make_batch(config, batch_size, seed=batch_seed + steps))
    return {"backend": model.backend.name, "losses": losses, "preds": preds}


def numeric_grad_scalar(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` w.r.t. array ``x``.

    Mutates ``x`` in place during probing, restoring each entry.
    """
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def simple_ragged(per_sample: list[list[int]]) -> RaggedIndices:
    return RaggedIndices.from_lists([np.array(s, dtype=np.int64) for s in per_sample])
