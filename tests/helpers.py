"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

import numpy as np

from repro.core import Batch, ModelConfig, RaggedIndices
from repro.data import SyntheticDataGenerator


def make_batch(config: ModelConfig, batch_size: int, seed: int = 0) -> Batch:
    """Deterministic batch for a config (labels are coin flips)."""
    gen = SyntheticDataGenerator(config, rng=seed)
    return gen.batch(batch_size)


def numeric_grad_scalar(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` w.r.t. array ``x``.

    Mutates ``x`` in place during probing, restoring each entry.
    """
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def simple_ragged(per_sample: list[list[int]]) -> RaggedIndices:
    return RaggedIndices.from_lists([np.array(s, dtype=np.int64) for s in per_sample])
