"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, resolve_model


class TestResolveModel:
    def test_production_names(self):
        assert resolve_model("M1_prod").num_sparse == 30
        assert resolve_model("M3_prod").num_sparse == 127

    def test_test_spec(self):
        m = resolve_model("test:256x16")
        assert m.num_dense == 256 and m.num_sparse == 16
        assert m.tables[0].hash_size == 100_000

    def test_test_spec_with_hash(self):
        m = resolve_model("test:64x4:5000")
        assert m.tables[0].hash_size == 5000

    @pytest.mark.parametrize("spec", ["nope", "test:abc", "test:4", "test:4x"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            resolve_model(spec)


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe", "--model", "M2_prod"]) == 0
        out = capsys.readouterr().out
        assert "M2_prod" in out and "1024-1024-512" in out

    def test_describe_unknown_model_errors(self, capsys):
        assert main(["describe", "--model", "bogus"]) == 2
        assert "error" in capsys.readouterr().err

    def test_throughput_gpu(self, capsys):
        code = main([
            "throughput", "--model", "test:256x16",
            "--platform", "BigBasin", "--placement", "gpu_memory",
            "--batch", "1600",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ex/s" in out and "Iteration breakdown" in out

    def test_throughput_cpu(self, capsys):
        code = main([
            "throughput", "--model", "test:256x16", "--platform", "cpu",
            "--batch", "200", "--trainers", "4",
        ])
        assert code == 0
        assert "CPU x4T" in capsys.readouterr().out

    def test_optimize(self, capsys):
        code = main(["optimize", "--model", "test:256x16", "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Best setups" in out
        # 3 rows + title + header + rule
        assert len(out.strip().splitlines()) == 6

    def test_figures_subset(self, capsys):
        assert main(["figures", "--only", "table1", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Figure 2" in out

    def test_figures_unknown_rejected(self, capsys):
        assert main(["figures", "--only", "fig99"]) == 2

    def test_fleet(self, capsys):
        assert main(["fleet", "--days", "2", "--runs", "40"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out

    def test_train(self, capsys):
        code = main([
            "train", "--model", "test:16x4:1000", "--batch", "64",
            "--examples", "2000",
        ])
        assert code == 0
        assert "NE" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommandsExtra:
    def test_throughput_remote_placement(self, capsys):
        code = main([
            "throughput", "--model", "test:64x8:1000000",
            "--platform", "BigBasin", "--placement", "remote_cpu",
            "--batch", "800", "--sparse-ps", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "remote_cpu" in out and "remote_rpc" in out

    def test_throughput_infeasible_reports_error(self, capsys):
        # a model too big for one Big Basin's HBM under gpu_memory placement
        code = main([
            "throughput", "--model", "test:64x64:50000000",
            "--platform", "BigBasin", "--placement", "gpu_memory",
        ])
        assert code != 0 or "error" in capsys.readouterr().err.lower()

    def test_train_refuses_production_scale(self, capsys):
        assert main(["train", "--model", "M3_prod"]) == 2
        assert "refusing" in capsys.readouterr().err

    def test_optimize_with_floor(self, capsys):
        code = main([
            "optimize", "--model", "test:256x16",
            "--min-throughput", "1",
            "--objective", "perf_per_watt", "--top", "2",
        ])
        assert code == 0


class TestTraceCommand:
    def test_trace_train_emits_fused_step_spans(self, capsys, tmp_path):
        """``repro trace train`` runs the fused Trainer and the exported
        Chrome trace carries the per-phase spans with ``fused`` marked."""
        import json

        out = tmp_path / "trace.json"
        code = main(["trace", "train", "--model", "test:16x4:2000",
                     "--out", str(out)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        events = json.loads(out.read_text())["traceEvents"]
        names = {e["name"] for e in events}
        # the fused train step's span structure
        for expected in ("train_step", "forward", "model_forward",
                         "loss_forward", "backward", "loss_backward",
                         "model_backward", "optimizer_step"):
            assert expected in names, f"missing span {expected!r}"
        steps = [e for e in events if e["name"] == "train_step"]
        assert len(steps) == 25
        # the CLI trains with the default fused dense path; spans say so
        assert all(e["args"].get("fused") is True for e in steps)
        fwd = [e for e in events if e["name"] == "forward"]
        assert fwd and all(e["args"].get("fused") is True for e in fwd)
        # sub-spans are parented into the step structure
        assert any(e["args"].get("parent") == "forward"
                   for e in events if e["name"] == "model_forward")


class TestServeCommand:
    def test_serve_curve_json(self, capsys):
        import json

        code = main([
            "serve", "curve", "--model", "test:64x8:2000",
            "--requests", "300", "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["points"]) == 5
        for pt in doc["points"]:
            assert pt["p99_ms"] > 0 and pt["offered_qps"] > 0

    def test_serve_curve_table(self, capsys):
        code = main([
            "serve", "curve", "--model", "test:64x8:2000",
            "--requests", "300",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput-latency" in out and "p99 ms" in out

    def test_serve_slo(self, capsys):
        code = main([
            "serve", "slo", "--model", "test:64x8:2000",
            "--requests", "400", "--slo-p99", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SLO-constrained capacity" in out and "replicas" in out

    def test_serve_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "bogus"])


class TestMpCommand:
    def test_mp_train_verified_bitwise(self, capsys):
        code = main([
            "mp", "train", "--workers-n", "2", "--steps", "2",
            "--batch", "32", "--verify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 workers x 2 steps" in out
        assert "shard balance" in out
        assert "bit-identical" in out

    def test_mp_train_json(self, capsys):
        import json

        code = main([
            "mp", "train", "--workers-n", "2", "--steps", "2",
            "--batch", "32", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workers"] == 2
        assert len(payload["losses"]) == 2
        assert len(payload["owner_bytes"]) == 2
        assert payload["state_digest"]

    def test_mp_train_custom_model_spec(self, capsys):
        code = main([
            "mp", "train", "--model", "test:16x4:500", "--workers-n", "2",
            "--steps", "2", "--batch", "16",
        ])
        assert code == 0
        assert "2 workers" in capsys.readouterr().out

    def test_mp_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mp", "bogus"])
