"""Tests for repro.core.embedding: ragged batches, lookups, sparse grads."""

import numpy as np
import pytest

from repro.core import (
    EmbeddingBagCollection,
    EmbeddingTable,
    PoolingType,
    RaggedIndices,
    SparseGrad,
    TableSpec,
    hash_raw_ids,
    uniform_tables,
)

from helpers import numeric_grad_scalar, simple_ragged


class TestHashRawIds:
    def test_range(self, rng):
        ids = rng.integers(0, 2**40, size=1000)
        hashed = hash_raw_ids(ids, 97)
        assert hashed.min() >= 0 and hashed.max() < 97

    def test_deterministic(self):
        ids = np.arange(100)
        np.testing.assert_array_equal(hash_raw_ids(ids, 50), hash_raw_ids(ids, 50))

    def test_collisions_exist_for_small_hash(self):
        hashed = hash_raw_ids(np.arange(1000), 10)
        assert len(np.unique(hashed)) == 10

    def test_spreads_reasonably(self):
        hashed = hash_raw_ids(np.arange(100000), 100)
        counts = np.bincount(hashed, minlength=100)
        assert counts.min() > 500 and counts.max() < 2000

    def test_rejects_zero_hash_size(self):
        with pytest.raises(ValueError):
            hash_raw_ids(np.array([1]), 0)


class TestRaggedIndices:
    def test_from_lists(self):
        r = simple_ragged([[1, 2], [], [3]])
        assert r.batch_size == 3
        assert r.total_lookups == 3
        np.testing.assert_array_equal(r.lengths(), [2, 0, 1])
        np.testing.assert_array_equal(r.sample(0), [1, 2])
        np.testing.assert_array_equal(r.sample(1), [])

    def test_empty_batch(self):
        r = RaggedIndices(values=np.empty(0, dtype=np.int64), offsets=np.array([0]))
        assert r.batch_size == 0

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            RaggedIndices(values=np.array([1, 2]), offsets=np.array([0, 1]))
        with pytest.raises(ValueError):
            RaggedIndices(values=np.array([1, 2]), offsets=np.array([1, 2]))
        with pytest.raises(ValueError):
            RaggedIndices(values=np.array([1, 2]), offsets=np.array([0, 2, 1]))

    def test_truncate(self):
        r = simple_ragged([[1, 2, 3, 4], [5], [6, 7, 8]])
        t = r.truncate(2)
        np.testing.assert_array_equal(t.lengths(), [2, 1, 2])
        np.testing.assert_array_equal(t.sample(0), [1, 2])
        np.testing.assert_array_equal(t.sample(2), [6, 7])

    def test_truncate_noop_when_under_limit(self):
        r = simple_ragged([[1], [2, 3]])
        t = r.truncate(5)
        np.testing.assert_array_equal(t.values, r.values)

    def test_truncate_rejects_zero(self):
        with pytest.raises(ValueError):
            simple_ragged([[1]]).truncate(0)


class TestSparseGrad:
    def test_coalesce_sums_duplicates(self):
        idx = np.array([3, 1, 3])
        grads = np.array([[1.0, 0.0], [0.5, 0.5], [2.0, 1.0]])
        g = SparseGrad.coalesce(idx, grads)
        np.testing.assert_array_equal(g.rows, [1, 3])
        np.testing.assert_allclose(g.values, [[0.5, 0.5], [3.0, 1.0]])
        assert g.nnz_rows == 2


class TestEmbeddingTable:
    def _table(self, rng, pooling=PoolingType.SUM, truncation=None, hash_size=20, dim=3):
        spec = TableSpec("t", hash_size=hash_size, dim=dim, mean_lookups=2, truncation=truncation)
        return EmbeddingTable(spec, rng, pooling=pooling)

    def test_sum_pooling_matches_manual(self, rng):
        table = self._table(rng)
        r = simple_ragged([[0, 1], [5]])
        out = table.forward(r)
        np.testing.assert_allclose(out[0], table.weight[0] + table.weight[1])
        np.testing.assert_allclose(out[1], table.weight[5])

    def test_mean_pooling(self, rng):
        table = self._table(rng, pooling=PoolingType.MEAN)
        r = simple_ragged([[0, 1], [5]])
        out = table.forward(r)
        np.testing.assert_allclose(out[0], (table.weight[0] + table.weight[1]) / 2)

    def test_empty_sample_gives_zero_vector(self, rng):
        table = self._table(rng)
        out = table.forward(simple_ragged([[], [3]]))
        np.testing.assert_array_equal(out[0], np.zeros(3))

    def test_out_of_range_rejected(self, rng):
        table = self._table(rng, hash_size=5)
        with pytest.raises(IndexError):
            table.forward(simple_ragged([[7]]))

    def test_truncation_applied_in_forward(self, rng):
        table = self._table(rng, truncation=1)
        r = simple_ragged([[0, 1]])
        out = table.forward(r)
        np.testing.assert_allclose(out[0], table.weight[0])

    def test_backward_scatters_sparse_grad(self, rng):
        table = self._table(rng)
        r = simple_ragged([[0, 1], [1]])
        table.forward(r)
        table.backward(np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]]))
        g = table.pop_grad()
        np.testing.assert_array_equal(g.rows, [0, 1])
        np.testing.assert_allclose(g.values[0], [1.0, 0.0, 0.0])
        np.testing.assert_allclose(g.values[1], [1.0, 2.0, 0.0])  # summed

    def test_backward_numeric_gradient(self, rng):
        table = self._table(rng)
        r = simple_ragged([[0, 2], [2, 4]])
        coeff = rng.normal(size=(2, 3))

        def loss():
            return float((table.forward(r) * coeff).sum())

        expected = numeric_grad_scalar(loss, table.weight)
        table.zero_grad()
        table.forward(r)
        table.backward(coeff)
        g = table.pop_grad()
        dense = np.zeros_like(table.weight)
        dense[g.rows] = g.values
        np.testing.assert_allclose(dense, expected, rtol=1e-5, atol=1e-8)

    def test_mean_pooling_numeric_gradient(self, rng):
        table = self._table(rng, pooling=PoolingType.MEAN)
        r = simple_ragged([[0, 2, 3], [4]])
        coeff = rng.normal(size=(2, 3))

        def loss():
            return float((table.forward(r) * coeff).sum())

        expected = numeric_grad_scalar(loss, table.weight)
        table.zero_grad()
        table.forward(r)
        table.backward(coeff)
        g = table.pop_grad()
        dense = np.zeros_like(table.weight)
        dense[g.rows] = g.values
        np.testing.assert_allclose(dense, expected, rtol=1e-5, atol=1e-8)

    def test_backward_without_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            self._table(rng).backward(np.zeros((1, 3)))

    def test_pop_grad_empty_returns_none(self, rng):
        assert self._table(rng).pop_grad() is None

    def test_pop_grad_coalesces_multiple_backwards(self, rng):
        table = self._table(rng)
        for _ in range(2):
            table.forward(simple_ragged([[1]]))
            table.backward(np.ones((1, 3)))
        g = table.pop_grad()
        np.testing.assert_array_equal(g.rows, [1])
        np.testing.assert_allclose(g.values, [[2.0, 2.0, 2.0]])


class TestEmbeddingBagCollection:
    def test_forward_all_features(self, rng):
        specs = uniform_tables(2, 10, dim=3, mean_lookups=1)
        coll = EmbeddingBagCollection(specs, rng)
        batch = {s.name: simple_ragged([[0], [1]]) for s in specs}
        out = coll.forward(batch)
        assert set(out) == {s.name for s in specs}
        assert out[specs[0].name].shape == (2, 3)

    def test_missing_feature_raises(self, rng):
        specs = uniform_tables(2, 10, dim=3)
        coll = EmbeddingBagCollection(specs, rng)
        with pytest.raises(KeyError):
            coll.forward({specs[0].name: simple_ragged([[0]])})

    def test_shared_table(self, rng):
        specs = uniform_tables(1, 10, dim=3, prefix="shared")
        coll = EmbeddingBagCollection(
            specs,
            rng,
            feature_to_table={"feat_a": "shared_0", "feat_b": "shared_0"},
        )
        batch = {
            "feat_a": simple_ragged([[1]]),
            "feat_b": simple_ragged([[2]]),
        }
        out = coll.forward(batch)
        table = coll.tables["shared_0"]
        np.testing.assert_allclose(out["feat_a"][0], table.weight[1])
        np.testing.assert_allclose(out["feat_b"][0], table.weight[2])
        # Backward through both features accumulates into the shared table.
        coll.backward({k: np.ones((1, 3)) for k in batch})
        g = table.pop_grad()
        assert set(g.rows) == {1, 2}

    def test_unknown_shared_table_rejected(self, rng):
        specs = uniform_tables(1, 10, dim=3)
        with pytest.raises(ValueError):
            EmbeddingBagCollection(specs, rng, feature_to_table={"f": "nope"})

    def test_total_bytes(self, rng):
        specs = uniform_tables(2, 10, dim=3)
        coll = EmbeddingBagCollection(specs, rng)
        assert coll.total_bytes == 2 * 10 * 3 * 8  # float64 in-memory
