"""Workspace-arena and steady-state-allocation tests for the fused dense path.

The naive-vs-fused *equivalence* tests that historically lived here moved
to the parametrized backend conformance suite (``tests/conformance/``),
which runs them against every registered backend.  What remains is
internal to the fused path itself:

* the shared stable-sigmoid implementation (dtype preservation),
* the ``fused_dense`` config flag wiring,
* the workspace arena contract (reuse counters, ownership, row slabs,
  pickling),
* the zero-steady-state-allocation contract (workspace counters +
  ``tracemalloc``).
"""

from __future__ import annotations

import pickle
import tracemalloc
from dataclasses import replace

import numpy as np

from repro.core import (
    DLRM,
    Adagrad,
    InteractionType,
    MLPSpec,
    ModelConfig,
    Trainer,
    Workspace,
    stable_sigmoid,
    uniform_tables,
)
from repro.core.loss import sigmoid as loss_sigmoid
from repro.core.mlp import Sigmoid

from helpers import make_batch


# ---------------------------------------------------------------------------
# shared stable sigmoid (dedupe satellite)
# ---------------------------------------------------------------------------


def test_sigmoid_single_implementation_and_dtypes():
    x32 = np.array([-30.0, -1.5, 0.0, 2.5, 40.0], dtype=np.float32)
    assert loss_sigmoid(x32).dtype == np.float32  # historical bug: upcast
    assert stable_sigmoid(x32.astype(np.float64)).dtype == np.float64
    # non-float inputs compute in float64
    assert stable_sigmoid(np.array([0, 1, 2])).dtype == np.float64
    # mlp.Sigmoid and loss.sigmoid agree exactly (they are the same code)
    layer = Sigmoid()
    assert np.array_equal(layer.forward(x32), loss_sigmoid(x32))
    # extreme logits neither overflow nor hit exactly 0/1 gradients' domain
    big = np.array([-1000.0, 1000.0])
    out = loss_sigmoid(big)
    assert np.all(np.isfinite(out)) and out[0] == 0.0 and out[1] == 1.0


# ---------------------------------------------------------------------------
# config flag wiring
# ---------------------------------------------------------------------------


def _train_config(dtype_name: str) -> ModelConfig:
    return ModelConfig(
        name="fused-e2e",
        num_dense=6,
        tables=uniform_tables(4, 64, dim=4, mean_lookups=2.0),
        bottom_mlp=MLPSpec((8, 4)),
        top_mlp=MLPSpec((6,)),
        interaction=InteractionType.DOT,
        compute_dtype=dtype_name,
    )


def test_fused_dense_flag_disables_workspace():
    config = _train_config("float64")
    assert DLRM(config, rng=0).workspace is not None
    assert DLRM(replace(config, fused_dense=False), rng=0).workspace is None


# ---------------------------------------------------------------------------
# workspace arena behaviour
# ---------------------------------------------------------------------------


def test_workspace_reuse_counters_and_ownership():
    ws = Workspace()
    a = ws.get("x", (4, 3), np.float64)
    assert ws.stats()["misses"] == 1
    b = ws.get("x", (4, 3), np.float64)
    assert b is a
    assert ws.stats()["hits"] == 1
    # distinct key / shape / dtype each allocate fresh storage
    assert ws.get("y", (4, 3), np.float64) is not a
    assert ws.get("x", (4, 4), np.float64) is not a
    assert ws.get("x", (4, 3), np.float32) is not a
    assert ws.owns(a) and ws.owns(a[1:]) and ws.owns(a.reshape(-1))
    assert not ws.owns(np.zeros(3))
    assert ws.total_bytes() == sum(
        buf.nbytes for buf in (a, ws.get("y", (4, 3), np.float64),
                               ws.get("x", (4, 4), np.float64),
                               ws.get("x", (4, 3), np.float32))
    )


def test_workspace_get_rows_high_water_mark():
    ws = Workspace()
    first = ws.get_rows("r", 10, (4,), np.float64)
    assert first.shape == (10, 4)
    base = first.base
    # shrinking reuses the same backing buffer
    small = ws.get_rows("r", 3, (4,), np.float64)
    assert small.shape == (3, 4) and small.base is base
    # growth reallocates (geometric), then holds
    big = ws.get_rows("r", 11, (4,), np.float64)
    assert big.base is not base and big.base.shape[0] >= 20
    again = ws.get_rows("r", 15, (4,), np.float64)
    assert again.base is big.base
    assert ws.owns(small) and ws.owns(big)


def test_workspace_pickling_drops_buffers():
    ws = Workspace()
    ws.get("x", (128, 128), np.float64)
    clone = pickle.loads(pickle.dumps(ws))
    assert clone.total_bytes() == 0
    assert clone.stats()["buffers"] == 0
    # and the clone still works as an arena
    arr = clone.get("x", (2, 2), np.float64)
    assert clone.owns(arr)


def test_model_workspace_steady_state_no_new_buffers():
    """After warm-up, a train step allocates no new arena buffers at all."""
    config = _train_config("float64")
    model = DLRM(config, rng=0)
    trainer = Trainer(
        model,
        lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
    )
    batches = [make_batch(config, 32, seed=s) for s in range(4)]
    for b in batches:
        trainer.train_step(b)
    misses_before = model.workspace.stats()["misses"]
    hits_before = model.workspace.stats()["hits"]
    for b in batches:
        trainer.train_step(b)
    stats = model.workspace.stats()
    assert stats["misses"] == misses_before  # zero new allocations
    assert stats["hits"] > hits_before


def test_logits_survive_next_forward():
    """The returned logits are peeled off the arena: a second forward must
    not clobber the first call's return value."""
    config = _train_config("float64")
    model = DLRM(config, rng=0)
    b1 = make_batch(config, 16, seed=1)
    b2 = make_batch(config, 16, seed=2)
    out1 = model.forward(b1, training=False)
    snapshot = out1.copy()
    model.forward(b2, training=False)
    assert np.array_equal(out1, snapshot)
    assert not model.workspace.owns(out1)


def test_steady_state_allocations_tracemalloc():
    """The fused step's steady-state Python-visible allocation high-water
    mark is a small fraction of the naive step's (which allocates every
    activation, gradient and optimizer temporary afresh)."""
    config = ModelConfig(
        name="alloc",
        num_dense=32,
        tables=uniform_tables(2, 50, dim=8, mean_lookups=1.0),
        bottom_mlp=MLPSpec((64, 8)),
        top_mlp=MLPSpec((64,)),
        interaction=InteractionType.CONCAT,
    )
    batches = [make_batch(config, 256, seed=s) for s in range(2)]

    def peak_step_bytes(fused: bool) -> int:
        model = DLRM(replace(config, fused_dense=fused), rng=0)
        trainer = Trainer(
            model,
            lambda m: Adagrad(
                m.dense_parameters(), m.embedding_tables(), lr=0.05, fused=fused
            ),
        )
        for _ in range(3):  # warm the arena to steady state
            for b in batches:
                trainer.train_step(b)
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            current0, _ = tracemalloc.get_traced_memory()
            for b in batches:
                trainer.train_step(b)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak - current0

    fused_peak = peak_step_bytes(True)
    naive_peak = peak_step_bytes(False)
    # The naive path allocates ~every (256 x 64) activation and optimizer
    # temporary per step; the fused path's remaining allocations are the
    # logits copy and the shared sparse-path bookkeeping.
    assert fused_peak < naive_peak / 3, (fused_peak, naive_peak)
