"""Equivalence + steady-state-allocation tests for the fused dense path.

The fused kernels of :mod:`repro.core.dense_kernels` claim *bit-identical*
results vs the historical implementations (kept as ``naive_*`` references),
in both float64 and float32 compute modes.  Hypothesis generates adversarial
shapes (batch 1, single features, odd widths) and we assert exact equality.

Also covered here:

* layer-level equivalence (Linear / ReLU / DotInteraction / BCE loss with a
  workspace vs without),
* end-to-end bit-identity of a fused vs naive training run, both dtypes,
* the coalesced-rows sparse-Adagrad regression (single gather/scatter vs the
  historical three-pass update),
* the shared stable-sigmoid implementation (dtype preservation),
* the zero-steady-state-allocation contract (workspace counters +
  ``tracemalloc``).
"""

from __future__ import annotations

import pickle
import tracemalloc
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DLRM,
    Adagrad,
    BCEWithLogitsLoss,
    ConcatInteraction,
    DotInteraction,
    InteractionType,
    MLPSpec,
    ModelConfig,
    SGD,
    Trainer,
    Workspace,
    dense_kernels,
    stable_sigmoid,
    uniform_tables,
)
from repro.core.loss import sigmoid as loss_sigmoid
from repro.core.mlp import MLP, Linear, ReLU, Sigmoid

from helpers import make_batch

DTYPES = [np.float64, np.float32]


def _rand(seed: int, shape, dtype) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(shape).astype(dtype)


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def mat_shapes(draw):
    """(batch, in_features, out_features) with degenerate sizes included."""
    return (
        draw(st.integers(min_value=1, max_value=17)),
        draw(st.integers(min_value=1, max_value=9)),
        draw(st.integers(min_value=1, max_value=9)),
    )


@st.composite
def dot_shapes(draw):
    """(batch, n_vec, dim) for pairwise-dot interaction tests."""
    return (
        draw(st.integers(min_value=1, max_value=9)),
        draw(st.integers(min_value=2, max_value=8)),
        draw(st.integers(min_value=1, max_value=6)),
    )


seeds = st.integers(min_value=0, max_value=2**31 - 1)
dtypes = st.sampled_from(DTYPES)


# ---------------------------------------------------------------------------
# kernel-level equivalence (fused vs naive, both dtypes)
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(shape=mat_shapes(), seed=seeds, dtype=dtypes)
def test_linear_forward_bit_identical(shape, seed, dtype):
    batch, fin, fout = shape
    x = _rand(seed, (batch, fin), dtype)
    w = _rand(seed + 1, (fout, fin), dtype)
    b = _rand(seed + 2, (fout,), dtype)
    ref = dense_kernels.naive_linear_forward(x, w, b)
    out = dense_kernels.linear_forward(x, w, b, np.empty((batch, fout), dtype))
    assert out.dtype == ref.dtype
    assert np.array_equal(out, ref)


@settings(max_examples=40, deadline=None)
@given(shape=mat_shapes(), seed=seeds, dtype=dtypes)
def test_linear_backward_bit_identical(shape, seed, dtype):
    batch, fin, fout = shape
    x = _rand(seed, (batch, fin), dtype)
    w = _rand(seed + 1, (fout, fin), dtype)
    g = _rand(seed + 2, (batch, fout), dtype)
    wg0 = _rand(seed + 3, (fout, fin), dtype)  # pre-existing accumulation
    bg0 = _rand(seed + 4, (fout,), dtype)
    dw, db, dx = dense_kernels.naive_linear_backward(g, x, w)
    wg_ref, bg_ref = wg0 + dw, bg0 + db
    wg, bg = wg0.copy(), bg0.copy()
    gin = dense_kernels.linear_backward(
        g, x, w, wg, bg, np.empty_like(x),
        np.empty_like(w), np.empty_like(bg0),
    )
    assert np.array_equal(gin, dx)
    assert np.array_equal(wg, wg_ref)
    assert np.array_equal(bg, bg_ref)


@settings(max_examples=40, deadline=None)
@given(shape=mat_shapes(), seed=seeds, dtype=dtypes)
def test_relu_bit_identical_including_zero_signs(shape, seed, dtype):
    batch, fin, _ = shape
    x = _rand(seed, (batch, fin), dtype)
    x.reshape(-1)[0] = 0.0  # force an exact-zero pre-activation
    g = _rand(seed + 1, (batch, fin), dtype)
    y_ref, mask = dense_kernels.naive_relu_forward(x)
    y = dense_kernels.relu_forward(x, np.empty_like(x))
    assert np.array_equal(y, y_ref)
    assert np.array_equal(np.signbit(y), np.signbit(y_ref))
    gx_ref = dense_kernels.naive_relu_backward(g, mask)
    gx = dense_kernels.relu_backward(
        g, y, np.empty_like(g), np.empty(g.shape, dtype=bool)
    )
    assert np.array_equal(gx, gx_ref)
    # the mask-free path must not leak -0.0 where the reference has +0.0
    assert np.array_equal(np.signbit(gx), np.signbit(gx_ref))


@settings(max_examples=40, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=33),
    seed=seeds,
    scale=st.floats(min_value=0.1, max_value=50.0),
)
def test_bce_bit_identical(batch, seed, scale):
    rng = np.random.default_rng(seed)
    logits = rng.standard_normal(batch) * scale  # include saturating logits
    labels = rng.integers(0, 2, size=batch).astype(np.float64)
    shape = logits.shape
    bufs = [np.empty(shape) for _ in range(5)]
    pos = np.empty(shape, dtype=bool)
    loss = dense_kernels.bce_forward(logits, labels, *bufs, pos)
    assert loss == dense_kernels.naive_bce_forward(logits, labels)
    grad = dense_kernels.bce_backward(bufs[3], labels, np.empty(shape))
    assert np.array_equal(grad, dense_kernels.naive_bce_backward(logits, labels))


@settings(max_examples=40, deadline=None)
@given(shape=dot_shapes(), seed=seeds, dtype=dtypes)
def test_dot_kernels_bit_identical(shape, seed, dtype):
    batch, n_vec, dim = shape
    stack = _rand(seed, (batch, n_vec, dim), dtype)
    dense = stack[:, 0, :].copy()
    tril = np.tril_indices(n_vec, k=-1)
    num_pairs = len(tril[0])
    flat = (tril[0] * n_vec + tril[1]).astype(np.intp)
    out = dense_kernels.dot_forward(
        stack, flat, dense,
        np.empty((batch, n_vec, n_vec), dtype),
        np.empty((batch, num_pairs), dtype),
        np.empty((batch, dim + num_pairs), dtype),
    )
    assert np.array_equal(out, dense_kernels.naive_dot_forward(stack, tril, dense))

    grad_pairs = _rand(seed + 1, (batch, num_pairs), dtype)
    pair_map = dense_kernels.symmetric_pair_map(n_vec, tril)
    gs = dense_kernels.dot_backward(
        stack, pair_map, grad_pairs,
        np.empty((batch, num_pairs + 1), dtype),
        np.empty((batch, n_vec, n_vec), dtype),
        np.empty_like(stack),
    )
    assert np.array_equal(
        gs, dense_kernels.naive_dot_backward(stack, tril, grad_pairs)
    )


@settings(max_examples=40, deadline=None)
@given(shape=mat_shapes(), seed=seeds, dtype=dtypes)
def test_adagrad_dense_step_bit_identical(shape, seed, dtype):
    rows, cols, _ = shape
    value = _rand(seed, (rows, cols), dtype)
    grad = _rand(seed + 1, (rows, cols), dtype)
    state = np.abs(_rand(seed + 2, (rows, cols), dtype))
    v_ref, s_ref = value.copy(), state.copy()
    dense_kernels.naive_adagrad_dense_step(v_ref, grad, s_ref, 0.05, 1e-10)
    dense_kernels.adagrad_dense_step(
        value, grad, state, 0.05, 1e-10,
        np.empty_like(value), np.empty_like(value),
    )
    assert np.array_equal(value, v_ref)
    assert np.array_equal(state, s_ref)


@settings(max_examples=40, deadline=None)
@given(
    shape=mat_shapes(),
    seed=seeds,
    dtype=dtypes,
    momentum=st.sampled_from([0.0, 0.9]),
    weight_decay=st.sampled_from([0.0, 1e-3]),
)
def test_sgd_dense_step_bit_identical(shape, seed, dtype, momentum, weight_decay):
    rows, cols, _ = shape
    value = _rand(seed, (rows, cols), dtype)
    grad = _rand(seed + 1, (rows, cols), dtype)
    vel = np.zeros_like(value) if momentum else None
    v_ref = value.copy()
    vel_ref = vel.copy() if vel is not None else None
    dense_kernels.naive_sgd_dense_step(
        v_ref, grad, 0.1, weight_decay=weight_decay,
        momentum=momentum, velocity=vel_ref,
    )
    dense_kernels.sgd_dense_step(
        value, grad, 0.1, np.empty_like(value),
        weight_decay=weight_decay, momentum=momentum, velocity=vel,
    )
    assert np.array_equal(value, v_ref)
    if vel is not None:
        assert np.array_equal(vel, vel_ref)


@settings(max_examples=40, deadline=None)
@given(
    num_rows=st.integers(min_value=1, max_value=40),
    touched=st.integers(min_value=1, max_value=12),
    dim=st.integers(min_value=1, max_value=6),
    seed=seeds,
    dtype=dtypes,
)
def test_adagrad_sparse_step_bit_identical(num_rows, touched, dim, seed, dtype):
    """Satellite regression: the single-gather/single-scatter sparse Adagrad
    is bit-identical to the historical three-pass update on coalesced
    (duplicate-free sorted) rows — the form ``SparseGrad`` guarantees."""
    touched = min(touched, num_rows)
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((num_rows, dim)).astype(dtype)
    state = np.abs(rng.standard_normal((num_rows, dim))).astype(dtype)
    rows = np.sort(rng.choice(num_rows, size=touched, replace=False))
    values = rng.standard_normal((touched, dim)).astype(dtype)
    w_ref, s_ref = weight.copy(), state.copy()
    dense_kernels.naive_adagrad_sparse_step(w_ref, s_ref, rows, values, 0.05, 1e-10)
    dense_kernels.adagrad_sparse_step(
        weight, state, rows, values, 0.05, 1e-10,
        np.empty((touched, dim), dtype), np.empty((touched, dim), dtype),
    )
    assert np.array_equal(weight, w_ref)
    assert np.array_equal(state, s_ref)


# ---------------------------------------------------------------------------
# layer-level equivalence (workspace attached vs not)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", DTYPES)
def test_linear_layer_fused_matches_naive(dtype):
    rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
    fused = Linear(7, 5, rng_a, dtype=dtype)
    naive = Linear(7, 5, rng_b, dtype=dtype)
    fused.set_workspace(Workspace())
    x = _rand(1, (11, 7), dtype)
    g = _rand(2, (11, 5), dtype)
    assert np.array_equal(fused.forward(x), naive.forward(x))
    assert np.array_equal(fused.backward(g), naive.backward(g))
    assert np.array_equal(fused.weight.grad, naive.weight.grad)
    assert np.array_equal(fused.bias.grad, naive.bias.grad)


@pytest.mark.parametrize("dtype", DTYPES)
def test_relu_layer_fused_matches_naive(dtype):
    fused, naive = ReLU(), ReLU()
    fused.set_workspace(Workspace())
    x = _rand(3, (9, 6), dtype)
    g = _rand(4, (9, 6), dtype)
    assert np.array_equal(fused.forward(x.copy()), naive.forward(x))
    assert np.array_equal(fused.backward(g), naive.backward(g))


@pytest.mark.parametrize("dtype", DTYPES)
def test_mlp_fused_matches_naive(dtype):
    rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
    fused = MLP(6, MLPSpec((8, 4)), rng_a, dtype=dtype)
    naive = MLP(6, MLPSpec((8, 4)), rng_b, dtype=dtype)
    fused.set_workspace(Workspace())
    x = _rand(6, (13, 6), dtype)
    g = _rand(7, (13, 4), dtype)
    assert np.array_equal(fused.forward(x), naive.forward(x))
    assert np.array_equal(fused.backward(g), naive.backward(g))


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("cls", [DotInteraction, ConcatInteraction])
def test_interaction_fused_matches_naive(cls, dtype):
    num_sparse, dim, batch = 4, 5, 7
    fused, naive = cls(num_sparse, dim), cls(num_sparse, dim)
    fused.set_workspace(Workspace())
    dense = _rand(8, (batch, dim), dtype)
    embs = [_rand(9 + i, (batch, dim), dtype) for i in range(num_sparse)]
    out_f = fused.forward(dense, embs)
    out_n = naive.forward(dense, embs)
    assert np.array_equal(out_f, out_n)
    g = _rand(20, out_n.shape, dtype)
    gd_f, ge_f = fused.backward(g)
    gd_n, ge_n = naive.backward(g)
    assert np.array_equal(gd_f, gd_n)
    for a, b in zip(ge_f, ge_n):
        assert np.array_equal(a, b)


def test_bce_loss_fused_matches_naive():
    fused = BCEWithLogitsLoss(workspace=Workspace())
    naive = BCEWithLogitsLoss()
    logits = np.random.default_rng(10).standard_normal(31) * 6
    labels = np.random.default_rng(11).integers(0, 2, size=31)
    assert fused.forward(logits, labels) == naive.forward(logits, labels)
    assert np.array_equal(fused.backward(), naive.backward())


# ---------------------------------------------------------------------------
# shared stable sigmoid (dedupe satellite)
# ---------------------------------------------------------------------------


def test_sigmoid_single_implementation_and_dtypes():
    x32 = np.array([-30.0, -1.5, 0.0, 2.5, 40.0], dtype=np.float32)
    assert loss_sigmoid(x32).dtype == np.float32  # historical bug: upcast
    assert stable_sigmoid(x32.astype(np.float64)).dtype == np.float64
    # non-float inputs compute in float64
    assert stable_sigmoid(np.array([0, 1, 2])).dtype == np.float64
    # mlp.Sigmoid and loss.sigmoid agree exactly (they are the same code)
    layer = Sigmoid()
    assert np.array_equal(layer.forward(x32), loss_sigmoid(x32))
    # extreme logits neither overflow nor hit exactly 0/1 gradients' domain
    big = np.array([-1000.0, 1000.0])
    out = loss_sigmoid(big)
    assert np.all(np.isfinite(out)) and out[0] == 0.0 and out[1] == 1.0


# ---------------------------------------------------------------------------
# end-to-end bit-identity (fused model/optimizer/loss vs all-naive)
# ---------------------------------------------------------------------------


def _train_config(dtype_name: str) -> ModelConfig:
    return ModelConfig(
        name="fused-e2e",
        num_dense=6,
        tables=uniform_tables(4, 64, dim=4, mean_lookups=2.0),
        bottom_mlp=MLPSpec((8, 4)),
        top_mlp=MLPSpec((6,)),
        interaction=InteractionType.DOT,
        compute_dtype=dtype_name,
    )


@pytest.mark.parametrize("dtype_name", ["float64", "float32"])
@pytest.mark.parametrize("optimizer", ["adagrad", "sgd"])
def test_end_to_end_training_bit_identical(dtype_name, optimizer):
    config = _train_config(dtype_name)
    batches = [make_batch(config, 32, seed=s) for s in range(6)]

    def run(fused: bool):
        model = DLRM(replace(config, fused_dense=fused), rng=0)
        if optimizer == "adagrad":
            factory = lambda m: Adagrad(  # noqa: E731
                m.dense_parameters(), m.embedding_tables(), lr=0.05, fused=fused
            )
        else:
            factory = lambda m: SGD(  # noqa: E731
                m.dense_parameters(), m.embedding_tables(),
                lr=0.05, momentum=0.9, weight_decay=1e-4, fused=fused,
            )
        trainer = Trainer(model, factory)
        losses = [trainer.train_step(b) for b in batches]
        return losses, model

    losses_f, model_f = run(True)
    losses_n, model_n = run(False)
    assert losses_f == losses_n
    for a, b in zip(model_f.get_dense_state(), model_n.get_dense_state()):
        assert np.array_equal(a, b)
    for ta, tb in zip(model_f.embedding_tables(), model_n.embedding_tables()):
        assert np.array_equal(ta.weight, tb.weight)
    # and inference agrees too
    preds_f = model_f.predict_proba(batches[0])
    preds_n = model_n.predict_proba(batches[0])
    assert np.array_equal(preds_f, preds_n)


def test_fused_dense_flag_disables_workspace():
    config = _train_config("float64")
    assert DLRM(config, rng=0).workspace is not None
    assert DLRM(replace(config, fused_dense=False), rng=0).workspace is None


# ---------------------------------------------------------------------------
# workspace arena behaviour
# ---------------------------------------------------------------------------


def test_workspace_reuse_counters_and_ownership():
    ws = Workspace()
    a = ws.get("x", (4, 3), np.float64)
    assert ws.stats()["misses"] == 1
    b = ws.get("x", (4, 3), np.float64)
    assert b is a
    assert ws.stats()["hits"] == 1
    # distinct key / shape / dtype each allocate fresh storage
    assert ws.get("y", (4, 3), np.float64) is not a
    assert ws.get("x", (4, 4), np.float64) is not a
    assert ws.get("x", (4, 3), np.float32) is not a
    assert ws.owns(a) and ws.owns(a[1:]) and ws.owns(a.reshape(-1))
    assert not ws.owns(np.zeros(3))
    assert ws.total_bytes() == sum(
        buf.nbytes for buf in (a, ws.get("y", (4, 3), np.float64),
                               ws.get("x", (4, 4), np.float64),
                               ws.get("x", (4, 3), np.float32))
    )


def test_workspace_get_rows_high_water_mark():
    ws = Workspace()
    first = ws.get_rows("r", 10, (4,), np.float64)
    assert first.shape == (10, 4)
    base = first.base
    # shrinking reuses the same backing buffer
    small = ws.get_rows("r", 3, (4,), np.float64)
    assert small.shape == (3, 4) and small.base is base
    # growth reallocates (geometric), then holds
    big = ws.get_rows("r", 11, (4,), np.float64)
    assert big.base is not base and big.base.shape[0] >= 20
    again = ws.get_rows("r", 15, (4,), np.float64)
    assert again.base is big.base
    assert ws.owns(small) and ws.owns(big)


def test_workspace_pickling_drops_buffers():
    ws = Workspace()
    ws.get("x", (128, 128), np.float64)
    clone = pickle.loads(pickle.dumps(ws))
    assert clone.total_bytes() == 0
    assert clone.stats()["buffers"] == 0
    # and the clone still works as an arena
    arr = clone.get("x", (2, 2), np.float64)
    assert clone.owns(arr)


def test_model_workspace_steady_state_no_new_buffers():
    """After warm-up, a train step allocates no new arena buffers at all."""
    config = _train_config("float64")
    model = DLRM(config, rng=0)
    trainer = Trainer(
        model,
        lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
    )
    batches = [make_batch(config, 32, seed=s) for s in range(4)]
    for b in batches:
        trainer.train_step(b)
    misses_before = model.workspace.stats()["misses"]
    hits_before = model.workspace.stats()["hits"]
    for b in batches:
        trainer.train_step(b)
    stats = model.workspace.stats()
    assert stats["misses"] == misses_before  # zero new allocations
    assert stats["hits"] > hits_before


def test_logits_survive_next_forward():
    """The returned logits are peeled off the arena: a second forward must
    not clobber the first call's return value."""
    config = _train_config("float64")
    model = DLRM(config, rng=0)
    b1 = make_batch(config, 16, seed=1)
    b2 = make_batch(config, 16, seed=2)
    out1 = model.forward(b1, training=False)
    snapshot = out1.copy()
    model.forward(b2, training=False)
    assert np.array_equal(out1, snapshot)
    assert not model.workspace.owns(out1)


def test_steady_state_allocations_tracemalloc():
    """The fused step's steady-state Python-visible allocation high-water
    mark is a small fraction of the naive step's (which allocates every
    activation, gradient and optimizer temporary afresh)."""
    config = ModelConfig(
        name="alloc",
        num_dense=32,
        tables=uniform_tables(2, 50, dim=8, mean_lookups=1.0),
        bottom_mlp=MLPSpec((64, 8)),
        top_mlp=MLPSpec((64,)),
        interaction=InteractionType.CONCAT,
    )
    batches = [make_batch(config, 256, seed=s) for s in range(2)]

    def peak_step_bytes(fused: bool) -> int:
        model = DLRM(replace(config, fused_dense=fused), rng=0)
        trainer = Trainer(
            model,
            lambda m: Adagrad(
                m.dense_parameters(), m.embedding_tables(), lr=0.05, fused=fused
            ),
        )
        for _ in range(3):  # warm the arena to steady state
            for b in batches:
                trainer.train_step(b)
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            current0, _ = tracemalloc.get_traced_memory()
            for b in batches:
                trainer.train_step(b)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak - current0

    fused_peak = peak_step_bytes(True)
    naive_peak = peak_step_bytes(False)
    # The naive path allocates ~every (256 x 64) activation and optimizer
    # temporary per step; the fused path's remaining allocations are the
    # logits copy and the shared sparse-path bookkeeping.
    assert fused_peak < naive_peak / 3, (fused_peak, naive_peak)
