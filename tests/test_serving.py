"""Tests for the online serving subsystem (repro.serving).

Covers the event engine's conservation and determinism guarantees, the
dynamic batcher's invariants (hypothesis), execute-mode numerical
equivalence with ``DLRM.predict_proba``, crash/retry semantics, the
checkpoint-refresh path, and the SLO / capacity-planning layer.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.configs import make_test_model
from repro.core.checkpoint import save_checkpoint
from repro.core.model import DLRM
from repro.resilience import FaultPlan, RetryPolicy
from repro.serving import (
    SLO,
    BatchPolicy,
    CacheConfig,
    DynamicBatcher,
    Replica,
    Request,
    ServingConfig,
    TrafficConfig,
    generate_requests,
    plan_serving_capacity,
    replica_capacity_qps,
    requests_to_batch,
    simulate_serving,
    throughput_latency_curve,
)

MODEL = make_test_model(64, 8, hash_size=2000)


def _traffic(qps=2000.0, duration=0.5, seed=0, **kw) -> TrafficConfig:
    return TrafficConfig(qps=qps, duration_s=duration, seed=seed, **kw)


# -- traffic ------------------------------------------------------------------


class TestTraffic:
    def test_deterministic_generation(self):
        a = generate_requests(MODEL, _traffic())
        b = generate_requests(MODEL, _traffic())
        assert len(a) == len(b) > 0
        for ra, rb in zip(a, b):
            assert ra.arrival_s == rb.arrival_s and ra.flow == rb.flow
            np.testing.assert_array_equal(ra.dense, rb.dense)
            for name in ra.sparse:
                np.testing.assert_array_equal(ra.sparse[name], rb.sparse[name])

    def test_arrivals_sorted_and_rate(self):
        reqs = generate_requests(MODEL, _traffic(qps=5000, duration=1.0))
        times = [r.arrival_s for r in reqs]
        assert times == sorted(times)
        assert all(0 <= t < 1.0 for t in times)
        # Poisson(5000): 5 sigma is ~350
        assert abs(len(reqs) - 5000) < 400

    def test_diurnal_thinning_reduces_count(self):
        flat = generate_requests(MODEL, _traffic(qps=5000, duration=1.0))
        wavy = generate_requests(
            MODEL,
            _traffic(qps=5000, duration=1.0, diurnal_amplitude=0.8,
                     diurnal_period_s=0.5),
        )
        # over whole periods the modulation preserves the mean rate
        assert abs(len(wavy) - len(flat)) < 600

    def test_requests_to_batch_preserves_rows(self):
        reqs = generate_requests(MODEL, _traffic(qps=200, duration=0.1))
        batch = requests_to_batch(reqs, MODEL)
        assert batch.size == len(reqs)
        for i, r in enumerate(reqs):
            np.testing.assert_array_equal(batch.dense[i], r.dense)
            for spec in MODEL.tables:
                np.testing.assert_array_equal(
                    batch.sparse[spec.name].sample(i), r.sparse[spec.name]
                )

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficConfig(qps=0, duration_s=1.0)
        with pytest.raises(ValueError):
            TrafficConfig(qps=10, duration_s=0)
        with pytest.raises(ValueError):
            TrafficConfig(qps=10, duration_s=1.0, diurnal_amplitude=1.0)


# -- dynamic batcher ----------------------------------------------------------


def _mk_request(rid: int, t: float) -> Request:
    return Request(rid=rid, flow=rid % 3, arrival_s=t, dense=np.zeros(2), sparse={})


class TestDynamicBatcher:
    def test_fill_dispatch(self):
        b = DynamicBatcher(BatchPolicy(max_batch_requests=4, max_wait_s=1.0))
        for i in range(4):
            b.enqueue(_mk_request(i, 0.0), 0.0)
        assert b.ready(0.0)
        assert [r.rid for r in b.pop_batch(0.0)] == [0, 1, 2, 3]

    def test_timeout_dispatch(self):
        b = DynamicBatcher(BatchPolicy(max_batch_requests=8, max_wait_s=0.01,
                                       adaptive=False))
        b.enqueue(_mk_request(0, 0.0), 0.0)
        assert not b.ready(0.005)
        assert b.ready(0.01)
        assert b.next_deadline() == pytest.approx(0.01)

    def test_adaptive_dispatches_to_idle_replica(self):
        b = DynamicBatcher(BatchPolicy(max_batch_requests=8, max_wait_s=1.0))
        b.enqueue(_mk_request(0, 0.0), 0.0)
        assert not b.ready(0.0, idle_replica=False)
        assert b.ready(0.0, idle_replica=True)

    def test_requeue_front_preserves_order(self):
        b = DynamicBatcher(BatchPolicy(max_batch_requests=2, max_wait_s=0.0))
        for i in range(4):
            b.enqueue(_mk_request(i, 0.0), 0.0)
        first = b.pop_batch(0.0)
        b.requeue_front(first, 0.0)
        assert [r.rid for r in b.pop_batch(0.0)] == [0, 1]

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(st.floats(min_value=0.0, max_value=0.1), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=9),
        st.floats(min_value=0.0, max_value=0.02),
    )
    def test_invariants_no_loss_no_reorder(self, gaps, max_batch, max_wait):
        """FIFO order, batch-size cap, and wait bound hold for any
        arrival pattern and policy."""
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_requests=max_batch, max_wait_s=max_wait,
                        adaptive=False)
        )
        now, dispatched = 0.0, []
        for i, gap in enumerate(gaps):
            now += gap
            batcher.enqueue(_mk_request(i, now), now)
            while batcher.ready(now):
                batch = batcher.pop_batch(now)
                assert 1 <= len(batch) <= max_batch
                assert batcher.oldest_wait(now) <= max_wait or len(batcher) == 0
                dispatched.extend(r.rid for r in batch)
        # drain
        end = now + max_wait + 1.0
        while len(batcher):
            assert batcher.ready(end)
            dispatched.extend(r.rid for r in batcher.pop_batch(end))
        assert dispatched == list(range(len(gaps)))  # nothing lost or reordered
        assert batcher.dispatched == batcher.enqueued == len(gaps)


# -- engine: conservation, determinism, Little's law --------------------------


class TestEngine:
    def test_all_requests_complete_without_faults(self):
        res = simulate_serving(MODEL, _traffic(), ServingConfig())
        assert res.arrived > 0
        assert res.completed == res.arrived
        assert res.dropped == 0 and res.crashes == 0
        assert len(res.latencies_s) == res.completed
        assert np.all(res.latencies_s > 0)

    def test_seeded_determinism_bit_identical(self):
        cfg = ServingConfig(cache=CacheConfig(capacity_rows=200, policy="lfu"))
        a = simulate_serving(MODEL, _traffic(), cfg)
        b = simulate_serving(MODEL, _traffic(), cfg)
        assert np.array_equal(a.latencies_s, b.latencies_s)
        assert np.array_equal(a.batch_sizes, b.batch_sizes)
        assert a.cache_hits == b.cache_hits

    def test_littles_law_self_check(self):
        res = simulate_serving(MODEL, _traffic(qps=4000, duration=1.0),
                               ServingConfig())
        assert res.littles_law_gap() < 0.05

    def test_metrics_registry_populated(self):
        res = simulate_serving(MODEL, _traffic(), ServingConfig())
        assert "serving.completed" in res.metrics
        assert "serving.latency_s" in res.metrics
        assert res.metrics.counter("serving.completed").value == res.completed

    def test_higher_load_degrades_tail(self):
        lo = simulate_serving(MODEL, _traffic(qps=2000, duration=0.5),
                              ServingConfig())
        hi = simulate_serving(MODEL, _traffic(qps=20000, duration=0.5),
                              ServingConfig())
        assert hi.p99_ms > lo.p99_ms

    def test_gpu_platform_runs(self):
        res = simulate_serving(
            MODEL, _traffic(qps=2000, duration=0.2),
            ServingConfig(num_replicas=1, platform="BigBasin"),
        )
        assert res.completed == res.arrived


# -- execute mode: real scores ------------------------------------------------


class TestExecuteMode:
    def test_matches_predict_proba_without_cache(self):
        model = DLRM(MODEL, rng=3)
        tc = _traffic(qps=1500, duration=0.3, seed=5)
        reqs = generate_requests(MODEL, tc)
        cfg = ServingConfig(num_replicas=1, execute=True, cache=CacheConfig())
        res = simulate_serving(MODEL, tc, cfg, model=model, requests=reqs)
        ref = model.predict_proba(requests_to_batch(reqs, MODEL))
        # single replica + FIFO => completion order == arrival order
        np.testing.assert_allclose(res.scores, ref, atol=1e-12)

    def test_fp32_cache_is_exact(self):
        tc = _traffic(qps=1500, duration=0.3, seed=5)
        ref = DLRM(MODEL, rng=3).predict_proba(
            requests_to_batch(generate_requests(MODEL, tc), MODEL)
        )
        cfg = ServingConfig(
            num_replicas=1, execute=True,
            cache=CacheConfig(capacity_rows=500, policy="lru"),
        )
        res = simulate_serving(MODEL, tc, cfg, model=DLRM(MODEL, rng=3))
        np.testing.assert_allclose(res.scores, ref, atol=1e-12)

    def test_quantized_cache_close_not_exact(self):
        tc = _traffic(qps=1500, duration=0.3, seed=5)
        ref = DLRM(MODEL, rng=3).predict_proba(
            requests_to_batch(generate_requests(MODEL, tc), MODEL)
        )
        cfg = ServingConfig(
            num_replicas=1, execute=True,
            cache=CacheConfig(capacity_rows=500, policy="lru", bits=8),
        )
        res = simulate_serving(MODEL, tc, cfg, model=DLRM(MODEL, rng=3))
        err = np.abs(res.scores - ref)
        assert 0 < err.max() < 0.05  # lossy but tight at 8 bits


# -- crashes, retries, refresh ------------------------------------------------


class TestFaultsAndRefresh:
    def test_crash_with_retries_drops_nothing(self):
        tc = _traffic(qps=3000, duration=1.0, seed=7)
        base = simulate_serving(MODEL, tc, ServingConfig())
        plan = FaultPlan(trainer_mtbf_s=0.5, seed=11)
        res = simulate_serving(
            MODEL, tc,
            ServingConfig(fault_plan=plan,
                          retry=RetryPolicy(base_delay_s=0.002, max_delay_s=0.02)),
        )
        assert res.crashes > 0
        assert res.retried > 0
        assert res.dropped == 0
        assert res.completed == res.arrived
        assert res.p99_ms > base.p99_ms  # crashes degrade the tail

    def test_crash_without_retries_drops_inflight(self):
        tc = _traffic(qps=3000, duration=1.0, seed=7)
        plan = FaultPlan(trainer_mtbf_s=0.5, seed=11)
        res = simulate_serving(MODEL, tc, ServingConfig(fault_plan=plan, retry=None))
        assert res.crashes > 0
        assert res.dropped > 0
        assert res.completed + res.dropped == res.arrived

    def test_refresh_pauses_and_invalidates(self):
        tc = _traffic(qps=2500, duration=1.0, seed=3)
        res = simulate_serving(
            MODEL, tc,
            ServingConfig(cache=CacheConfig(capacity_rows=200),
                          refresh_at_s=(0.5,)),
        )
        assert res.refreshes == 2  # staggered: one per replica
        assert res.dropped == 0
        assert res.completed == res.arrived

    def test_refresh_swaps_weights_in_execute_mode(self, tmp_path):
        model = DLRM(MODEL, rng=3)
        fresh = DLRM(MODEL, rng=99)
        path = str(tmp_path / "snap.npz")
        save_checkpoint(path, fresh)
        tc = _traffic(qps=1500, duration=0.6, seed=2)
        cfg = ServingConfig(
            num_replicas=2, execute=True,
            cache=CacheConfig(capacity_rows=300),
            refresh_at_s=(0.3,), refresh_path=path,
        )
        res = simulate_serving(MODEL, tc, cfg, model=model)
        assert res.refreshes == 2 and res.dropped == 0
        np.testing.assert_allclose(
            model.embedding_tables()[0].weight, fresh.embedding_tables()[0].weight
        )


# -- replica pricing ----------------------------------------------------------


class TestReplicaPricing:
    def test_service_time_monotone_in_batch(self):
        rep = Replica(0, MODEL, CacheConfig())
        lookups = int(MODEL.mean_total_lookups)
        t1 = rep.service_time(1, lookups, 0)
        t8 = rep.service_time(8, 8 * lookups, 0)
        assert 0 < t1 < t8
        # but sublinear: batching amortizes the fixed overhead
        assert t8 < 8 * t1

    def test_cache_hits_reduce_service_time(self):
        rep = Replica(0, MODEL, CacheConfig(capacity_rows=500))
        lookups = 8 * int(MODEL.mean_total_lookups)
        assert rep.service_time(8, lookups, lookups) < rep.service_time(8, lookups, 0)

    def test_validation(self):
        rep = Replica(0, MODEL, CacheConfig())
        with pytest.raises(ValueError):
            rep.service_time(0, 10, 0)
        with pytest.raises(ValueError):
            rep.service_time(1, 10, 11)

    def test_pricing_only_replica_cannot_execute(self):
        rep = Replica(0, MODEL, CacheConfig())
        with pytest.raises(RuntimeError):
            rep.predict([])


# -- SLO / capacity planning --------------------------------------------------


class TestSLO:
    def test_violations_and_satisfaction(self):
        res = simulate_serving(MODEL, _traffic(), ServingConfig())
        tight = SLO(p99_ms=res.p99_ms / 2)
        loose = SLO(p99_ms=res.p99_ms * 2)
        assert not tight.satisfied_by(res)
        assert "p99_ms" in tight.violations(res)
        assert loose.satisfied_by(res)

    def test_unconstrained_slo_always_satisfied(self):
        res = simulate_serving(MODEL, _traffic(), ServingConfig())
        assert SLO(p99_ms=None).satisfied_by(res)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(p99_ms=0.0)

    def test_curve_p99_monotone_over_congested_regime(self):
        cfg = ServingConfig(cache=CacheConfig(capacity_rows=200, policy="lru"))
        curve = throughput_latency_curve(MODEL, cfg, requests_per_point=1500)
        p99 = [r.p99_ms for _, r in curve]
        assert all(a <= b for a, b in zip(p99, p99[1:]))
        qps = [q for q, _ in curve]
        assert qps == sorted(qps)

    def test_capacity_plan_meets_slo(self):
        cfg = ServingConfig(cache=CacheConfig(capacity_rows=200))
        per = replica_capacity_qps(MODEL, cfg)
        plan = plan_serving_capacity(
            MODEL, target_qps=3 * per, slo=SLO(p99_ms=5.0), cfg=cfg,
            requests_per_point=800,
        )
        assert plan.feasible
        assert plan.num_replicas >= 3  # at least the work-conserving bound
        assert plan.p99_ms <= 5.0
        assert plan.power_watts > 0 and plan.qps_per_watt > 0

    def test_capacity_plan_infeasible_when_pool_capped(self):
        cfg = ServingConfig(cache=CacheConfig(capacity_rows=200))
        per = replica_capacity_qps(MODEL, cfg)
        plan = plan_serving_capacity(
            MODEL, target_qps=6 * per, slo=SLO(p99_ms=5.0), cfg=cfg,
            max_replicas=2, requests_per_point=600,
        )
        assert not plan.feasible
        assert plan.num_replicas == 2
