"""Tests for the data-preprocessing phase (raw logs -> model batches)."""

import numpy as np
import pytest

from repro.core import Adagrad, DLRM, MLPSpec, Trainer
from repro.data import (
    DenseFeature,
    PreprocessingPipeline,
    RawEvent,
    RawLogGenerator,
    SparseFeature,
)


@pytest.fixture
def raw_gen():
    return RawLogGenerator(
        numeric_fields=("dwell_ms", "impressions", "ctr_7d"),
        categorical_fields=("item_ids", "page_ids"),
        rng=0,
    )


@pytest.fixture
def pipeline(raw_gen):
    pipe = PreprocessingPipeline(
        dense=[DenseFeature(f) for f in raw_gen.numeric_fields],
        sparse=[
            SparseFeature("item_ids", hash_size=1000, truncation=8),
            SparseFeature("page_ids", hash_size=500),
        ],
    )
    return pipe.fit(raw_gen.events(500))


class TestRawLogGenerator:
    def test_event_structure(self, raw_gen):
        e = raw_gen.event()
        assert set(e.numeric) == {"dwell_ms", "impressions", "ctr_7d"}
        assert set(e.categorical) == {"item_ids", "page_ids"}
        assert isinstance(e.clicked, bool)

    def test_scale_diversity(self, raw_gen):
        events = raw_gen.events(300)
        means = {
            name: np.mean([e.numeric[name] for e in events])
            for name in raw_gen.numeric_fields
        }
        assert max(means.values()) > 100 * min(means.values())

    def test_variable_multiplicity(self, raw_gen):
        lengths = [len(e.categorical["item_ids"]) for e in raw_gen.events(200)]
        assert len(set(lengths)) > 2

    def test_ctr_respected(self):
        gen = RawLogGenerator(("x",), ("c",), rng=1, ctr=0.25)
        clicks = np.mean([gen.event().clicked for _ in range(2000)])
        assert clicks == pytest.approx(0.25, abs=0.04)

    def test_validation(self):
        with pytest.raises(ValueError):
            RawLogGenerator((), ())
        with pytest.raises(ValueError):
            RawLogGenerator(("x",), (), ctr=1.5)


class TestDenseFeature:
    def test_standardization(self, raw_gen):
        f = DenseFeature("impressions")
        events = raw_gen.events(1000)
        f.fit(events)
        values = np.array([f.transform(e) for e in events])
        assert values.mean() == pytest.approx(0.0, abs=1e-9)
        assert values.std() == pytest.approx(1.0, abs=1e-9)

    def test_log_compression_tames_tails(self, raw_gen):
        events = raw_gen.events(1000)
        compressed = DenseFeature("impressions", log_compress=True)
        linear = DenseFeature("impressions", log_compress=False)
        compressed.fit(events)
        linear.fit(events)
        c = np.array([compressed.transform(e) for e in events])
        l = np.array([linear.transform(e) for e in events])
        assert np.abs(c).max() < np.abs(l).max()

    def test_transform_before_fit_rejected(self, raw_gen):
        with pytest.raises(RuntimeError):
            DenseFeature("impressions").transform(raw_gen.event())

    def test_missing_field_rejected(self):
        f = DenseFeature("nope")
        with pytest.raises(KeyError):
            f.fit([RawEvent(numeric={"x": 1.0}, categorical={}, clicked=False)])


class TestSparseFeature:
    def test_hashing_in_range(self, raw_gen):
        f = SparseFeature("item_ids", hash_size=97)
        for e in raw_gen.events(50):
            out = f.transform(e)
            if len(out):
                assert out.min() >= 0 and out.max() < 97

    def test_truncation(self):
        f = SparseFeature("c", hash_size=100, truncation=2)
        event = RawEvent(
            numeric={}, categorical={"c": np.arange(10, dtype=np.uint64)}, clicked=False
        )
        assert len(f.transform(event)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseFeature("c", hash_size=0)
        with pytest.raises(ValueError):
            SparseFeature("c", hash_size=10, truncation=0)


class TestPipeline:
    def test_batch_shape(self, pipeline, raw_gen):
        batch = pipeline.transform(raw_gen.events(64))
        assert batch.size == 64
        assert batch.dense.shape == (64, 3)
        assert set(batch.sparse) == {"item_ids", "page_ids"}
        assert batch.sparse["item_ids"].lengths().max() <= 8  # truncation

    def test_model_config_derived(self, pipeline):
        cfg = pipeline.model_config(
            "from-pipeline", MLPSpec((16, 8)), MLPSpec((8,))
        )
        assert cfg.num_dense == 3
        assert cfg.num_sparse == 2
        assert {t.hash_size for t in cfg.tables} == {1000, 500}

    def test_end_to_end_training(self, pipeline, raw_gen):
        """Raw logs -> preprocessing -> DLRM training runs end to end."""
        cfg = pipeline.model_config("e2e", MLPSpec((16, 8)), MLPSpec((8,)))
        model = DLRM(cfg, rng=0)
        trainer = Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
        )
        def stream():
            while True:
                yield pipeline.transform(raw_gen.events(64))
        result = trainer.train(stream(), max_steps=10)
        assert np.isfinite(result.final_loss)

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            PreprocessingPipeline(
                dense=[DenseFeature("x")],
                sparse=[SparseFeature("x", hash_size=10)],
            )

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            PreprocessingPipeline(dense=[], sparse=[])

    def test_empty_events_rejected(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.transform([])
        with pytest.raises(ValueError):
            PreprocessingPipeline(dense=[DenseFeature("x")], sparse=[]).fit([])
