"""Tests for repro.core.loss and repro.core.metrics."""

import numpy as np
import pytest

from repro.core import (
    BCEWithLogitsLoss,
    accuracy,
    auc,
    calibration,
    log_loss,
    ne_gap_percent,
    normalized_entropy,
    sigmoid,
)

from helpers import numeric_grad_scalar


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_stable(self):
        out = sigmoid(np.array([-1e4, 1e4]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.isfinite(out).all()

    def test_symmetry(self, rng):
        x = rng.normal(size=100)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)


class TestBCEWithLogitsLoss:
    def test_matches_reference(self, rng):
        logits = rng.normal(size=50)
        labels = (rng.uniform(size=50) < 0.4).astype(float)
        loss = BCEWithLogitsLoss().forward(logits, labels)
        p = sigmoid(logits)
        expected = -(labels * np.log(p) + (1 - labels) * np.log(1 - p)).mean()
        assert loss == pytest.approx(expected, rel=1e-10)

    def test_extreme_logits_finite(self):
        loss = BCEWithLogitsLoss().forward(np.array([1e4, -1e4]), np.array([0.0, 1.0]))
        assert np.isfinite(loss)

    def test_gradient_numeric(self, rng):
        logits = rng.normal(size=10)
        labels = (rng.uniform(size=10) < 0.5).astype(float)
        crit = BCEWithLogitsLoss()

        def loss():
            return crit.forward(logits, labels)

        expected = numeric_grad_scalar(loss, logits)
        crit.forward(logits, labels)
        grad = crit.backward().reshape(-1)
        np.testing.assert_allclose(grad, expected, rtol=1e-6, atol=1e-9)

    def test_gradient_formula(self):
        crit = BCEWithLogitsLoss()
        logits = np.array([0.0, 2.0])
        labels = np.array([1.0, 0.0])
        crit.forward(logits, labels)
        grad = crit.backward().reshape(-1)
        np.testing.assert_allclose(grad, (sigmoid(logits) - labels) / 2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss().forward(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss().forward(np.zeros(0), np.zeros(0))

    def test_bad_labels_rejected(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss().forward(np.zeros(2), np.array([0.0, 2.0]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            BCEWithLogitsLoss().backward()


class TestNormalizedEntropy:
    def test_constant_predictor_is_one(self):
        labels = np.array([1.0, 0.0, 0.0, 1.0, 0.0])
        ctr = labels.mean()
        preds = np.full(5, ctr)
        assert normalized_entropy(preds, labels) == pytest.approx(1.0)

    def test_better_than_background_below_one(self):
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        preds = np.array([0.9, 0.1, 0.8, 0.2])
        assert normalized_entropy(preds, labels) < 1.0

    def test_worse_than_background_above_one(self):
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        preds = np.array([0.1, 0.9, 0.2, 0.8])
        assert normalized_entropy(preds, labels) > 1.0


class TestLogLoss:
    def test_perfect_predictions_near_zero(self):
        assert log_loss(np.array([1.0, 0.0]), np.array([1.0, 0.0])) < 1e-10

    def test_clipping_keeps_finite(self):
        assert np.isfinite(log_loss(np.array([0.0]), np.array([1.0])))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            log_loss(np.array([]), np.array([]))


class TestAUC:
    def test_perfect_ranking(self):
        assert auc(np.array([0.9, 0.8, 0.2, 0.1]), np.array([1, 1, 0, 0])) == 1.0

    def test_inverted_ranking(self):
        assert auc(np.array([0.1, 0.2, 0.8, 0.9]), np.array([1, 1, 0, 0])) == 0.0

    def test_random_near_half(self, rng):
        scores = rng.normal(size=5000)
        labels = rng.uniform(size=5000) < 0.5
        assert auc(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_ties_averaged(self):
        assert auc(np.array([0.5, 0.5]), np.array([1, 0])) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            auc(np.array([0.5, 0.6]), np.array([1, 1]))


class TestCalibrationAccuracy:
    def test_calibration_ideal(self):
        labels = np.array([1.0, 0.0])
        preds = np.array([0.7, 0.3])
        assert calibration(preds, labels) == pytest.approx(1.0)

    def test_calibration_no_positives_rejected(self):
        with pytest.raises(ValueError):
            calibration(np.array([0.5]), np.array([0.0]))

    def test_accuracy(self):
        assert accuracy(np.array([1.0, -1.0, 1.0]), np.array([1, 0, 0])) == pytest.approx(2 / 3)

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestNEGap:
    def test_positive_when_worse(self):
        assert ne_gap_percent(1.01, 1.0) == pytest.approx(1.0)

    def test_negative_when_better(self):
        assert ne_gap_percent(0.998, 1.0) == pytest.approx(-0.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            ne_gap_percent(1.0, 0.0)
