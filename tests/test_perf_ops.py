"""Tests for repro.perf.ops: operator cost accounting."""

import pytest

from repro.core import InteractionType, MLPSpec, ModelConfig, uniform_tables
from repro.perf import ops


def _model(num_dense=32, num_sparse=4, dim=8, lookups=5.0, interaction=InteractionType.CONCAT):
    return ModelConfig(
        name="opm",
        num_dense=num_dense,
        tables=uniform_tables(num_sparse, 1000, dim=dim, mean_lookups=lookups),
        bottom_mlp=MLPSpec((16, 8)),
        top_mlp=MLPSpec((8,)),
        interaction=interaction,
    )


class TestMlpCosts:
    def test_forward_flops_formula(self):
        spec = MLPSpec((4, 2))
        # layers: 3->4 and 4->2, batch 10: 2*10*(12 + 8)
        assert ops.mlp_flops(3, spec, 10, backward=False) == 2 * 10 * (12 + 8)

    def test_backward_doubles_flops(self):
        spec = MLPSpec((4, 2))
        fwd = ops.mlp_flops(3, spec, 10, backward=False)
        assert ops.mlp_flops(3, spec, 10, backward=True) == 2 * fwd

    def test_bytes_scale_with_batch(self):
        spec = MLPSpec((4,))
        b1 = ops.mlp_bytes(3, spec, 1, backward=False)
        b100 = ops.mlp_bytes(3, spec, 100, backward=False)
        assert b100 > b1  # activations grow
        # weights are batch-independent: delta is purely activation traffic
        assert b100 - b1 == pytest.approx(99 * (3 + 4) * 4)

    def test_kernel_counts(self):
        spec = MLPSpec((4, 2))
        fwd = ops.mlp_cost(3, spec, 10, backward=False)
        bwd = ops.mlp_cost(3, spec, 10, backward=True)
        assert fwd.kernels == 2 * ops.KERNELS_PER_LAYER_FWD
        assert bwd.kernels == 2 * ops.KERNELS_PER_LAYER_BWD

    def test_zero_batch_rejected(self):
        with pytest.raises(ValueError):
            ops.mlp_flops(3, MLPSpec((4,)), 0, backward=False)


class TestInteractionCosts:
    def test_concat_is_pure_data_movement(self):
        cost = ops.interaction_cost(_model(), 10, backward=False)
        assert cost.flops == 0.0
        assert cost.bytes > 0

    def test_dot_has_flops(self):
        m = _model(interaction=InteractionType.DOT)
        cost = ops.interaction_cost(m, 10, backward=False)
        n_vec = m.num_sparse + 1
        assert cost.flops == pytest.approx(2.0 * 10 * n_vec * n_vec * m.embedding_dim)

    def test_backward_scales(self):
        m = _model(interaction=InteractionType.DOT)
        fwd = ops.interaction_cost(m, 10, backward=False)
        bwd = ops.interaction_cost(m, 10, backward=True)
        assert bwd.flops == 2 * fwd.flops and bwd.bytes == 2 * fwd.bytes


class TestEmbeddingCosts:
    def test_lookup_bytes_formula(self):
        m = _model(num_sparse=4, dim=8, lookups=5.0)
        cost = ops.embedding_lookup_cost(m, 10)
        gathered = 10 * 20 * 8 * 4  # batch * total_lookups * dim * fp32
        pooled = 10 * 4 * 8 * 4
        assert cost.bytes == pytest.approx(
            gathered * ops.EMB_RANDOM_ACCESS_PENALTY + pooled
        )

    def test_lookup_scales_with_feature_length(self):
        short = ops.embedding_lookup_cost(_model(lookups=2.0), 10)
        long = ops.embedding_lookup_cost(_model(lookups=20.0), 10)
        assert long.bytes > 5 * short.bytes

    def test_update_heavier_than_lookup(self):
        m = _model()
        assert (
            ops.embedding_update_cost(m, 10).bytes
            > ops.embedding_lookup_cost(m, 10).bytes * 0.5
        )

    def test_kernel_count_tracks_tables(self):
        assert ops.embedding_lookup_cost(_model(num_sparse=7), 10).kernels == 7


class TestCommVolumes:
    def test_pooled_bytes(self):
        m = _model(num_sparse=4, dim=8)
        assert ops.pooled_embedding_bytes(m, 10) == 10 * 4 * 8 * 4

    def test_request_bytes(self):
        m = _model(num_sparse=4, lookups=5.0)
        assert ops.lookup_request_bytes(m, 10) == 10 * 20 * 8

    def test_dense_param_bytes_matches_config(self):
        m = _model()
        assert ops.dense_param_bytes(m) == m.dense_parameter_bytes

    def test_truncation_caps_request(self):
        m = ModelConfig(
            "t",
            8,
            uniform_tables(2, 100, dim=4, mean_lookups=50.0, truncation=10),
            MLPSpec((8,)),
            MLPSpec((8,)),
            InteractionType.CONCAT,
        )
        assert ops.lookup_request_bytes(m, 1) == 2 * 10 * 8


class TestWorkingSet:
    def test_scales_linearly_with_batch(self):
        m = _model()
        assert ops.activation_working_set_bytes(m, 200) == pytest.approx(
            200 * ops.activation_working_set_bytes(m, 1)
        )

    def test_grows_with_model_width(self):
        small = ops.activation_working_set_bytes(_model(num_dense=8), 10)
        big = ops.activation_working_set_bytes(_model(num_dense=4096), 10)
        assert big > small
