"""Property-based correctness of the ring/ordered allreduce wire algorithms.

The algorithms run here exactly as in production — over real socketpair
:class:`~repro.distributed.mp.Channel` rings — but with ranks on threads
instead of processes (the wire protocol cannot tell the difference, and
threads let hypothesis drive hundreds of cases cheaply).  The properties
pin the *reduction order*, not just the values:

* ``ordered`` is bit-for-bit the left-associative rank-order sum — the
  association the serial trainer uses, hence the bit-determinism of the
  hybrid trainer.
* ``ring`` is bit-for-bit :func:`ring_ordered_sum` (its declared rotated
  association), tolerance-close to ``np.sum``, and exactly ``np.sum`` at
  world 2 where two-term sums are order-insensitive.
"""

from __future__ import annotations

import functools
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributed.mp import (
    Channel,
    GradReducer,
    ordered_allreduce,
    ordered_sum,
    ring_allreduce,
    ring_chunks,
    ring_ordered_sum,
    tree_sum,
)

ALGOS = {"ordered": ordered_allreduce, "ring": ring_allreduce}


def make_ring(world: int):
    """``(left, right)`` channel pairs per rank, ring-connected."""
    pairs = [Channel.pair() for _ in range(world)]  # pairs[i]: i -> i+1
    ring = []
    for rank in range(world):
        right = pairs[rank][0]
        left = pairs[(rank - 1) % world][1]
        ring.append((left, right))
    return ring, [c for p in pairs for c in p]


def wire_allreduce(mode: str, arrays: list[np.ndarray]) -> list[np.ndarray]:
    """Run the real wire algorithm, one thread per rank, over sockets."""
    world = len(arrays)
    ring, channels = make_ring(world)
    bufs = [a.copy() for a in arrays]
    algo = ALGOS[mode]

    def rank_main(rank: int):
        left, right = ring[rank]
        scratch = np.empty_like(bufs[rank])
        algo(rank, world, left, right, bufs[rank], scratch)

    try:
        with ThreadPoolExecutor(max_workers=world) as pool:
            for f in [pool.submit(rank_main, r) for r in range(world)]:
                f.result(timeout=30)
    finally:
        for c in channels:
            c.close()
    return bufs


grad_arrays = st.integers(2, 8).flatmap(
    lambda world: st.tuples(
        st.just(world),
        st.integers(1, 97),
        st.integers(0, 2**31 - 1),
    )
).map(
    lambda t: [
        np.random.default_rng(t[2] + r).standard_normal(t[1]) * 10.0 ** (r % 5 - 2)
        for r in range(t[0])
    ]
)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestWireAlgorithms:
    @_SETTINGS
    @given(arrays=grad_arrays)
    def test_ordered_is_serial_accumulation_bitwise(self, arrays):
        expected = ordered_sum(arrays)
        for buf in wire_allreduce("ordered", arrays):
            np.testing.assert_array_equal(buf, expected, strict=True)

    @_SETTINGS
    @given(arrays=grad_arrays)
    def test_ordered_close_to_np_sum(self, arrays):
        expected = np.sum(np.stack(arrays), axis=0)
        for buf in wire_allreduce("ordered", arrays):
            np.testing.assert_allclose(buf, expected, rtol=1e-10, atol=1e-10)

    @_SETTINGS
    @given(arrays=grad_arrays)
    def test_ring_matches_declared_order_bitwise(self, arrays):
        expected = ring_ordered_sum(arrays)
        for buf in wire_allreduce("ring", arrays):
            np.testing.assert_array_equal(buf, expected, strict=True)

    @_SETTINGS
    @given(arrays=grad_arrays)
    def test_ring_close_to_np_sum(self, arrays):
        expected = np.sum(np.stack(arrays), axis=0)
        for buf in wire_allreduce("ring", arrays):
            np.testing.assert_allclose(buf, expected, rtol=1e-10, atol=1e-10)

    @_SETTINGS
    @given(
        n=st.integers(1, 64),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_world_two_ring_is_np_sum_bitwise(self, n, seed):
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(n) for _ in range(2)]
        expected = np.sum(np.stack(arrays), axis=0)
        for buf in wire_allreduce("ring", arrays):
            np.testing.assert_array_equal(buf, expected, strict=True)

    def test_float32_ordered_bitwise(self):
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal(33).astype(np.float32) for _ in range(4)]
        expected = np.sum(np.stack(arrays), axis=0)
        for buf in wire_allreduce("ordered", arrays):
            np.testing.assert_array_equal(buf, expected, strict=True)


class TestReferenceSums:
    @_SETTINGS
    @given(arrays=grad_arrays)
    def test_ordered_sum_is_left_associative(self, arrays):
        # independent reference: fresh-array binary adds, left to right
        expected = functools.reduce(np.add, arrays)
        np.testing.assert_array_equal(ordered_sum(arrays), expected, strict=True)

    @_SETTINGS
    @given(arrays=grad_arrays)
    def test_tree_sum_tolerance(self, arrays):
        np.testing.assert_allclose(
            tree_sum(arrays), np.sum(np.stack(arrays), axis=0),
            rtol=1e-10, atol=1e-10,
        )

    @given(n=st.integers(1, 1000), world=st.integers(1, 16))
    def test_ring_chunks_partition(self, n, world):
        chunks = ring_chunks(n, world)
        assert len(chunks) == world
        assert chunks[0].start == 0 and chunks[-1].stop == n
        for a, b in zip(chunks, chunks[1:]):
            assert a.stop == b.start


class TestGradReducer:
    @pytest.mark.parametrize("mode", ["ordered", "ring"])
    def test_bucketed_packing_roundtrip(self, mode):
        """Multi-array buckets pack into one wire payload and unpack back.

        Bit-equality to the reference order must hold for every array in
        the bucket — packing may not change any element's association.
        """
        world = 3
        rng = np.random.default_rng(42)
        shapes = [(5, 3), (7,), (2, 2, 2)]
        per_rank = [
            [rng.standard_normal(s) for s in shapes] for _ in range(world)
        ]
        # the reducer packs the whole bucket into one flat wire buffer, so
        # the ring chunking runs over the *pack* — mirror that here
        packed = [
            np.concatenate([a.ravel() for a in per_rank[r]]) for r in range(world)
        ]
        flat_ref = (
            ordered_sum(packed) if mode == "ordered" else ring_ordered_sum(packed)
        )
        reference, off = [], 0
        for s in shapes:
            n = int(np.prod(s, dtype=int))
            reference.append(flat_ref[off:off + n].reshape(s))
            off += n
        ring, channels = make_ring(world)
        reducers = []
        try:
            for rank in range(world):
                left, right = ring[rank]
                reducers.append(GradReducer(
                    rank, world, left, right, mode=mode,
                    max_elems=sum(np.prod(s, dtype=int) for s in shapes),
                ))
            for rank, red in enumerate(reducers):
                red.submit(per_rank[rank])
            for red in reducers:
                red.flush()
            for rank in range(world):
                for got, want in zip(per_rank[rank], reference):
                    np.testing.assert_array_equal(got, want, strict=True)
        finally:
            for red in reducers:
                red.shutdown()
            for c in channels:
                c.close()

    def test_single_rank_noop(self):
        red = GradReducer(0, 1, None, None)
        a = np.ones(4)
        red.submit([a])
        red.flush()
        red.shutdown()
        np.testing.assert_array_equal(a, np.ones(4))

    def test_flush_reraises_wire_errors(self):
        ring, channels = make_ring(2)
        left, right = ring[0]
        red = GradReducer(0, 2, left, right, max_elems=8)
        try:
            for c in channels[2:]:  # kill rank 1's side mid-protocol
                c.close()
            red.submit([np.ones(8)])
            with pytest.raises((ConnectionError, OSError)):
                red.flush()
        finally:
            red.shutdown()
            for c in channels:
                c.close()

    def test_wire_error_names_peer_and_bucket(self):
        """A ChannelClosed surfaced through flush() must carry the dead
        neighbor's rank (from the channel's peer tag) and the in-flight
        bucket id — the inputs crash attribution needs.  Rank 1's first
        wire op in the ordered protocol is a recv, so closing rank 0's
        endpoints surfaces as EOF (not a send-side broken pipe)."""
        from repro.distributed.mp.channels import ChannelClosed

        ring, channels = make_ring(2)
        left, right = ring[1]
        left.peer = right.peer = 0  # both of rank 1's neighbors are rank 0
        red = GradReducer(1, 2, left, right, max_elems=8)
        try:
            for ch in ring[0]:  # rank 0 dies: close its left and right
                ch.close()
            red.submit([np.ones(8)])
            with pytest.raises(ChannelClosed) as exc_info:
                red.flush()
            err = exc_info.value
            assert err.peer == 0
            assert err.bucket == 0
            assert "peer rank 0" in str(err)
            assert "bucket 0" in str(err)
        finally:
            red.shutdown()
            for c in channels:
                c.close()
