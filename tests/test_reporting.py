"""Tests for report generation and serialization surfaces."""

import json

import pytest

from repro.configs import make_test_model
from repro.hardware import BIG_BASIN
from repro.perf import gpu_server_throughput
from repro.placement import plan_gpu_memory


class TestThroughputReportToDict:
    def test_json_serializable_and_complete(self):
        m = make_test_model(256, 8)
        plan = plan_gpu_memory(m, BIG_BASIN)
        report = gpu_server_throughput(m, 1600, BIG_BASIN, plan)
        d = report.to_dict()
        json.dumps(d)  # must not raise
        assert d["throughput"] == report.throughput
        assert d["bottleneck"] == report.breakdown.bottleneck
        assert d["power_watts"] == report.power.nameplate_watts
        assert set(d["components"]) == set(report.breakdown.components)


class TestConsolidatedReport:
    def test_generate_report_contains_all_fast_sections(self):
        from repro.experiments.report import generate_report

        text = generate_report(include_utilization=False)
        for needle in (
            "Table I", "Table II", "Table III",
            "Figure 1", "Figure 2", "Figure 9", "Figure 10",
            "Figure 11", "Figure 12", "Figure 13", "Figure 14",
        ):
            assert needle in text
        assert "Figure 15" not in text  # training excluded by default

    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["report", "--output", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# Reproduction report")
        assert "Figure 14" in text


class TestRenderingEdgeCases:
    def test_format_si_terabytes(self):
        from repro.analysis import format_si

        assert format_si(2.5e12) == "2.5T"

    def test_render_bars_with_zero_entry(self):
        from repro.analysis import render_bars

        out = render_bars(["a", "b"], [0.0, 10.0])
        lines = out.splitlines()
        assert lines[0].count("#") == 0
        assert lines[1].count("#") == 40

    def test_mlp_notation_strips_whitespace(self):
        from repro.core import MLPSpec

        assert MLPSpec.from_notation("  64^2 ").layer_sizes == (64, 64)


class TestGpuSimEdgeCases:
    def test_imbalance_with_zero_busy(self):
        from repro.distributed import GpuServerSimResult

        r = GpuServerSimResult(
            throughput=0.0, iterations=0, sim_time=1.0,
            gpu_busy_fraction=[0.0, 0.0],
        )
        assert r.gpu_imbalance == 1.0
