"""Tests for repro.analysis: KDE, stats, rendering."""

import numpy as np
import pytest
from scipy.stats import gaussian_kde

from repro.analysis import (
    GaussianKDE,
    cdf_points,
    fit_power_law_alpha,
    format_si,
    gini_coefficient,
    histogram,
    render_bars,
    render_table,
    scott_bandwidth,
    summarize,
)


class TestKDE:
    def test_matches_scipy(self, rng):
        samples = rng.normal(size=500)
        grid = np.linspace(-3, 3, 50)
        ours = GaussianKDE(samples).evaluate(grid)
        scipy_kde = gaussian_kde(samples, bw_method="scott")(grid)
        np.testing.assert_allclose(ours, scipy_kde, rtol=0.05, atol=0.01)

    def test_integrates_to_one(self, rng):
        samples = rng.normal(2.0, 0.5, size=300)
        grid = np.linspace(-3, 7, 2000)
        density = GaussianKDE(samples).evaluate(grid)
        integral = np.trapezoid(density, grid)
        assert integral == pytest.approx(1.0, abs=0.01)

    def test_peak_near_mode(self, rng):
        samples = rng.normal(5.0, 1.0, size=1000)
        grid = np.linspace(0, 10, 200)
        density = GaussianKDE(samples).evaluate(grid)
        assert abs(grid[np.argmax(density)] - 5.0) < 0.5

    def test_callable_interface(self, rng):
        kde = GaussianKDE(rng.normal(size=50))
        np.testing.assert_array_equal(kde(np.zeros(3)), kde.evaluate(np.zeros(3)))

    def test_explicit_bandwidth(self, rng):
        wide = GaussianKDE(rng.normal(size=100), bandwidth=2.0)
        narrow = GaussianKDE(wide.samples, bandwidth=0.1)
        grid = np.linspace(-5, 5, 100)
        assert wide(grid).max() < narrow(grid).max()

    def test_scott_bandwidth_shrinks_with_n(self, rng):
        small = scott_bandwidth(rng.normal(size=50))
        large = scott_bandwidth(rng.normal(size=5000))
        assert large < small

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE(np.array([]))
        with pytest.raises(ValueError):
            scott_bandwidth(np.array([1.0, 1.0, 1.0]))
        with pytest.raises(ValueError):
            GaussianKDE(np.array([1.0, 2.0]), bandwidth=0.0)


class TestStats:
    def test_histogram_counts(self):
        counts, edges = histogram(np.array([1, 1, 2, 3]), bins=3)
        assert counts.sum() == 4
        assert len(edges) == 4

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            histogram(np.array([]), bins=3)
        with pytest.raises(ValueError):
            histogram(np.array([1.0]), bins=0)

    def test_summary_percentile_ordering(self, rng):
        s = summarize(rng.lognormal(0, 1, size=2000))
        assert s.minimum <= s.p5 <= s.p25 <= s.median <= s.p75 <= s.p95 <= s.maximum
        assert s.count == 2000

    def test_long_tail_has_higher_tail_ratio(self, rng):
        narrow = summarize(rng.normal(10, 0.1, size=2000))
        heavy = summarize(rng.lognormal(0, 1.5, size=2000))
        assert heavy.tail_ratio > narrow.tail_ratio

    def test_summary_row_keys(self, rng):
        row = summarize(rng.normal(size=10)).row()
        assert set(row) == {"mean", "std", "p5", "median", "p95", "tail_ratio"}

    def test_power_law_alpha_recovery(self, rng):
        from repro.data import sample_power_law

        samples = sample_power_law(rng, 50000, alpha=2.5, x_min=1.0)
        assert fit_power_law_alpha(samples, x_min=1.0) == pytest.approx(2.5, rel=0.05)

    def test_power_law_validation(self):
        with pytest.raises(ValueError):
            fit_power_law_alpha(np.array([1.0]), x_min=1.0)
        with pytest.raises(ValueError):
            fit_power_law_alpha(np.array([2.0, 3.0]), x_min=-1.0)

    def test_gini_uniform_zero(self):
        assert gini_coefficient(np.full(100, 5.0)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_high(self):
        x = np.zeros(100)
        x[0] = 100.0
        assert gini_coefficient(x) > 0.9

    def test_gini_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 2.0]))

    def test_cdf_points(self):
        values, fractions = cdf_points(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(fractions, [1 / 3, 2 / 3, 1.0])


class TestRendering:
    def test_format_si(self):
        assert format_si(1_234_567) == "1.23M"
        assert format_si(999) == "999"
        assert format_si(2.5e9) == "2.5G"
        assert format_si(float("nan")) == "nan"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(set(len(l) for l in lines[1:])) <= 2  # consistent widths

    def test_render_table_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_render_bars_scaling(self):
        out = render_bars(["x", "yy"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_render_bars_validation(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [])
        with pytest.raises(ValueError):
            render_bars(["a"], [0.0])
