"""Tests for the experiment drivers (fast paths; heavy runs live in benchmarks/)."""

import numpy as np
import pytest

from repro.experiments import (
    fig01_production,
    fig02_workloads,
    fig06_07_embedding_stats,
    fig09_servers,
    fig10_feature_sweep,
    fig11_batch_scaling,
    fig12_hash_scaling,
    fig13_mlp_dims,
    fig14_placement,
    fig15_accuracy,
    table1_platforms,
    table2_models,
    table3_comparison,
)
from repro.placement import PlacementStrategy


class TestTableDrivers:
    def test_table1_render_contains_platforms(self):
        out = table1_platforms.render(table1_platforms.run())
        for name in ("DualSocketCPU", "BigBasin", "Zion"):
            assert name in out

    def test_table2_registry(self):
        result = table2_models.run()
        assert set(result.by_name()) == {"M1_prod", "M2_prod", "M3_prod"}
        assert "Table II" in table2_models.render(result)

    def test_table3_rows_and_render(self):
        result = table3_comparison.run()
        assert len(result.comparisons) == 3
        out = table3_comparison.render(result)
        assert "paper 2.25x" in out and "paper 0.43x" in out


class TestFigureDrivers:
    def test_fig01_relative_fields(self):
        result = fig01_production.run()
        m1 = result.by_name()["M1_prod"]
        assert m1.big_basin_relative == pytest.approx(m1.big_basin / m1.cpu)
        assert "Figure 1" in fig01_production.render(result)

    def test_fig02_deterministic(self):
        a = fig02_workloads.run(seed=3, num_days=2)
        b = fig02_workloads.run(seed=3, num_days=2)
        assert a.by_family()["search"].runs_per_day == b.by_family()["search"].runs_per_day

    def test_fig06_07_kde_is_density(self):
        result = fig06_07_embedding_stats.run()
        for m in result.models:
            assert np.all(m.kde_density >= 0)
            assert len(m.kde_grid) == len(m.kde_density)

    def test_fig09_histogram_totals(self):
        result = fig09_servers.run(num_runs=50, seed=1)
        assert sum(result.trainer_histogram.values()) == 50
        assert sum(result.ps_histogram.values()) == 50
        with pytest.raises(ValueError):
            fig09_servers.run(num_runs=0)

    def test_fig10_lookup_api(self):
        result = fig10_feature_sweep.run(dense_sweep=(64,), sparse_sweep=(4, 16))
        point = result.at(64, 16)
        assert point.speedup > 0
        with pytest.raises(KeyError):
            result.at(1, 1)

    def test_fig11_small_sweep(self):
        result = fig11_batch_scaling.run(
            cpu_batches=(100, 200, 400), gpu_batches=(400, 800)
        )
        assert len(result.cpu_throughput) == 3
        assert result.gpu_throughput[1] > result.gpu_throughput[0]

    def test_fig12_small_sweep(self):
        result = fig12_hash_scaling.run(hash_sweep=(100_000, 1_000_000))
        assert result.cpu_flatness() < 1.05
        assert all(p.gpu_throughput is not None for p in result.points)

    def test_fig13_normalization(self):
        result = fig13_mlp_dims.run(mlp_sweep=("64^2", "512^3"))
        norm = result.normalized()
        assert norm[0][1] == pytest.approx(1.0)
        assert norm[0][2] == pytest.approx(1.0)

    def test_fig14_lookup(self):
        result = fig14_placement.run(num_remote_ps=4)
        assert result.throughput("BigBasin", PlacementStrategy.GPU_MEMORY) > 0
        with pytest.raises(KeyError):
            result.throughput("Nope", PlacementStrategy.GPU_MEMORY)


class TestFig15Fast:
    """Cheap configurations of the accuracy driver (full runs are benched)."""

    def test_tiny_run_structure(self):
        result = fig15_accuracy.run(
            baseline_batch=64,
            gpu_batches=(128, 512),
            example_budget=4_000,
            tuning_trials=2,
            num_seeds=1,
        )
        assert len(result.points) == 2
        assert result.points[0].steps_taken > result.points[1].steps_taken
        assert "Figure 15" in fig15_accuracy.render(result)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            fig15_accuracy.run(baseline_batch=1024, example_budget=8)
        with pytest.raises(ValueError):
            fig15_accuracy.run(num_seeds=0)

    def test_sync_mode_comparison_runs(self):
        result = fig15_accuracy.run_sync_mode_comparison(
            num_async_workers=2, batch_size=64, example_budget=4_000
        )
        assert np.isfinite(result.async_ne) and np.isfinite(result.sync_ne)


class TestHashAccuracyExtension:
    def test_small_run_structure(self):
        from repro.experiments import ext_hash_accuracy

        result = ext_hash_accuracy.run(
            id_space=2000,
            hash_sizes=(2000, 50),
            example_budget=4_000,
        )
        assert len(result.points) == 2
        assert result.points[0].expected_ids_per_row == 1
        assert result.points[1].expected_ids_per_row == 40
        assert "hash size" in ext_hash_accuracy.render(result)

    def test_validation(self):
        from repro.experiments import ext_hash_accuracy

        with pytest.raises(ValueError):
            ext_hash_accuracy.run(id_space=10, hash_sizes=(100, 10))
        with pytest.raises(ValueError):
            ext_hash_accuracy.run(hash_sizes=(100,))
