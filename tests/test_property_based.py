"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BCEWithLogitsLoss,
    MLPSpec,
    RaggedIndices,
    SparseGrad,
    hash_raw_ids,
    sigmoid,
)
from repro.analysis import gini_coefficient, summarize
from repro.hardware import MemoryPool, OpCost, allreduce_time, alltoall_time, LinkSpec
from repro.hardware.specs import V100_32GB
from repro.hardware.device import op_time

common = settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)


# -- ragged indices invariants -------------------------------------------------

ragged_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=999), max_size=12),
    min_size=1,
    max_size=12,
)


@common
@given(ragged_lists)
def test_ragged_roundtrip_preserves_samples(samples):
    r = RaggedIndices.from_lists([np.array(s, dtype=np.int64) for s in samples])
    assert r.batch_size == len(samples)
    for i, s in enumerate(samples):
        np.testing.assert_array_equal(r.sample(i), s)
    assert r.total_lookups == sum(len(s) for s in samples)


@common
@given(ragged_lists, st.integers(min_value=1, max_value=8))
def test_ragged_truncate_invariants(samples, cap):
    r = RaggedIndices.from_lists([np.array(s, dtype=np.int64) for s in samples])
    t = r.truncate(cap)
    assert t.batch_size == r.batch_size
    assert np.all(t.lengths() <= cap)
    assert np.all(t.lengths() == np.minimum(r.lengths(), cap))
    for i in range(t.batch_size):
        np.testing.assert_array_equal(t.sample(i), r.sample(i)[:cap])


# -- hashing ------------------------------------------------------------------


@common
@given(
    st.lists(st.integers(min_value=0, max_value=2**50), min_size=1, max_size=200),
    st.integers(min_value=1, max_value=10_000),
)
def test_hash_range_and_determinism(ids, m):
    arr = np.array(ids, dtype=np.uint64)
    h1 = hash_raw_ids(arr, m)
    h2 = hash_raw_ids(arr, m)
    assert np.all((h1 >= 0) & (h1 < m))
    np.testing.assert_array_equal(h1, h2)


# -- sparse gradient coalescing -------------------------------------------------


@common
@given(
    st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=50),
)
def test_sparse_grad_coalesce_preserves_sum(rows):
    idx = np.array(rows, dtype=np.int64)
    rng = np.random.default_rng(0)
    grads = rng.normal(size=(len(idx), 3))
    g = SparseGrad.coalesce(idx, grads)
    assert len(np.unique(g.rows)) == len(g.rows)  # unique
    np.testing.assert_allclose(g.values.sum(axis=0), grads.sum(axis=0), atol=1e-9)
    # per-row sums match
    for row in np.unique(idx):
        np.testing.assert_allclose(
            g.values[g.rows == row].sum(axis=0),
            grads[idx == row].sum(axis=0),
            atol=1e-9,
        )


# -- loss/sigmoid --------------------------------------------------------------


@common
@given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=64))
def test_bce_non_negative_and_finite(logit_list):
    logits = np.array(logit_list)
    labels = (np.arange(len(logits)) % 2).astype(float)
    loss = BCEWithLogitsLoss().forward(logits, labels)
    assert np.isfinite(loss) and loss >= 0.0


@common
@given(st.floats(min_value=-700, max_value=700))
def test_sigmoid_bounded_monotone(x):
    v = sigmoid(np.array([x, x + 1.0]))
    assert 0.0 <= v[0] <= 1.0
    assert v[1] >= v[0]


# -- MLP spec ------------------------------------------------------------------


@common
@given(
    st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=5),
    st.integers(min_value=1, max_value=64),
)
def test_mlp_param_count_positive_and_exact(widths, in_features):
    spec = MLPSpec(tuple(widths))
    expected = 0
    prev = in_features
    for w in widths:
        expected += prev * w + w
        prev = w
    assert spec.num_parameters(in_features) == expected


@common
@given(st.integers(min_value=1, max_value=4096), st.integers(min_value=1, max_value=8))
def test_mlp_notation_roundtrip(width, depth):
    spec = MLPSpec.from_notation(f"{width}^{depth}")
    assert MLPSpec.from_notation(spec.notation()).layer_sizes == spec.layer_sizes


# -- memory pool accounting -----------------------------------------------------


@common
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20))
def test_memory_pool_conservation(sizes):
    pool = MemoryPool("p", capacity=float("inf"))
    for i, s in enumerate(sizes):
        pool.allocate(f"tag{i}", s)
    assert pool.used == pytest.approx(sum(sizes))
    for i in range(len(sizes)):
        pool.free(f"tag{i}")
    assert pool.used == 0.0


# -- roofline monotonicity -------------------------------------------------------


@common
@given(
    st.floats(min_value=0, max_value=1e12),
    st.floats(min_value=0, max_value=1e10),
    st.floats(min_value=1.0, max_value=1e12),
)
def test_op_time_monotone_in_flops(flops, extra, byts):
    base = op_time(V100_32GB, OpCost(flops=flops, bytes=byts, kernels=1))
    more = op_time(V100_32GB, OpCost(flops=flops + extra, bytes=byts, kernels=1))
    assert more >= base


# -- collective cost sanity -------------------------------------------------------

_LINK = LinkSpec("l", bandwidth=1e9, latency_s=1e-6)


@common
@given(st.floats(min_value=0, max_value=1e9), st.integers(min_value=1, max_value=64))
def test_collectives_non_negative(size, ranks):
    assert allreduce_time(_LINK, size, ranks) >= 0
    assert alltoall_time(_LINK, size, ranks) >= 0


@common
@given(st.floats(min_value=1e3, max_value=1e9), st.integers(min_value=2, max_value=32))
def test_allreduce_exceeds_alltoall_per_rank(size, ranks):
    # allreduce moves ~2x the data of a same-size per-rank alltoall
    assert allreduce_time(_LINK, size, ranks) > alltoall_time(_LINK, size, ranks) * 0.99


# -- analysis invariants ----------------------------------------------------------


@common
@given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=2, max_size=200))
def test_gini_in_unit_interval(values):
    g = gini_coefficient(np.array(values))
    assert -1e-9 <= g < 1.0


@common
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=300))
def test_summary_bounds(values):
    s = summarize(np.array(values))
    tol = 1e-9 * max(1.0, abs(s.maximum), abs(s.minimum))
    assert s.minimum - tol <= s.mean <= s.maximum + tol
    assert s.minimum - tol <= s.median <= s.maximum + tol


# -- quantization roundtrip --------------------------------------------------


@common
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=1, max_value=16),
    st.sampled_from([2, 4, 8]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_quantization_roundtrip_error_bounded(rows, dim, bits, seed):
    from repro.core import dequantize_rows, quantize_rows

    rng = np.random.default_rng(seed)
    w = rng.normal(size=(rows, dim)) * 10 ** rng.uniform(-3, 3)
    codes, scales = quantize_rows(w, bits)
    recon = dequantize_rows(codes, scales)
    # error bounded by half a quantization step per row
    assert np.all(np.abs(recon - w) <= 0.5 * scales[:, None] + 1e-12)


# -- Zipf hit-rate properties ---------------------------------------------------


@common
@given(
    st.integers(min_value=1, max_value=10**7),
    st.integers(min_value=0, max_value=10**7),
    st.floats(min_value=0.0, max_value=2.0),
)
def test_zipf_hit_rate_bounded(num_rows, cached, skew):
    from repro.placement import zipf_hit_rate

    rate = zipf_hit_rate(num_rows, cached, skew)
    assert 0.0 <= rate <= 1.0
    if cached >= num_rows:
        assert rate == 1.0


@common
@given(
    st.integers(min_value=100, max_value=10**6),
    st.integers(min_value=1, max_value=50),
)
def test_zipf_hit_rate_monotone_in_cache(num_rows, steps):
    from repro.placement import zipf_hit_rate

    sizes = np.linspace(1, num_rows, steps).astype(int)
    rates = [zipf_hit_rate(num_rows, int(k)) for k in sizes]
    assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))


# -- LR schedule invariants -------------------------------------------------------


@common
@given(
    st.floats(min_value=1e-4, max_value=10.0),
    st.integers(min_value=1, max_value=1000),
    st.integers(min_value=0, max_value=2000),
)
def test_warmup_never_exceeds_target(lr, warmup, step):
    from repro.core import WarmupLR

    value = WarmupLR(lr, warmup).at(step)
    assert 0 < value <= lr + 1e-12


@common
@given(
    st.floats(min_value=1e-4, max_value=10.0),
    st.integers(min_value=1, max_value=1000),
    st.integers(min_value=0, max_value=2000),
    st.floats(min_value=0.1, max_value=4.0),
)
def test_polynomial_decay_within_bounds(lr, total, step, power):
    from repro.core import PolynomialDecayLR

    value = PolynomialDecayLR(lr, total, end_lr=0.0, power=power).at(step)
    assert 0.0 <= value <= lr + 1e-12


# -- dataset epoch coverage --------------------------------------------------------


@common
@given(
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=17),
)
def test_epoch_coverage_exact(num_examples, batch_size):
    from repro.core import InteractionType, MLPSpec, ModelConfig, uniform_tables
    from repro.data import FixedDataset, SyntheticDataGenerator

    cfg = ModelConfig(
        "p", 2, uniform_tables(1, 10, dim=2, mean_lookups=1),
        MLPSpec((2,)), MLPSpec((2,)), InteractionType.CONCAT,
    )
    gen = SyntheticDataGenerator(cfg, rng=0)
    data = FixedDataset.generate(gen, num_examples=num_examples)
    total = sum(b.size for b in data.epochs(batch_size, num_epochs=1))
    assert total == num_examples


# -- placement plan invariants ------------------------------------------------


@common
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1_000, max_value=5_000_000),
    st.floats(min_value=0.5, max_value=50.0),
    st.sampled_from(["table_wise", "row_wise"]),
)
def test_gpu_plan_complete_and_within_capacity(num_tables, hash_size, lookups, partitioning):
    from repro.core import InteractionType, MLPSpec, ModelConfig, uniform_tables
    from repro.hardware import BIG_BASIN, CapacityError
    from repro.hardware.memory import usable_capacity
    from repro.placement import LocationKind, PlannerConfig, plan_gpu_memory

    model = ModelConfig(
        "prop", 8,
        uniform_tables(num_tables, hash_size, dim=16, mean_lookups=lookups),
        MLPSpec((16,)), MLPSpec((16,)), InteractionType.CONCAT,
    )
    cfg = PlannerConfig(partitioning=partitioning)
    try:
        plan = plan_gpu_memory(model, BIG_BASIN, cfg=cfg)
    except CapacityError:
        return  # legitimately infeasible draws are fine
    plan.validate_complete({t.name for t in model.tables})
    # per-GPU byte totals never exceed usable capacity
    per_gpu = {}
    per_gpu_cap = usable_capacity(BIG_BASIN.gpu.mem_capacity, cfg.headroom)
    for s in plan.shards:
        if s.location.kind is LocationKind.GPU:
            if s.replicated:
                for g in range(BIG_BASIN.num_gpus):
                    per_gpu[g] = per_gpu.get(g, 0.0) + s.bytes / BIG_BASIN.num_gpus
            else:
                per_gpu[s.location.index] = per_gpu.get(s.location.index, 0.0) + s.bytes
    for used in per_gpu.values():
        assert used <= per_gpu_cap * (1 + 1e-9)


@common
@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1_000, max_value=3_000_000),
    st.integers(min_value=1, max_value=6),
)
def test_remote_plan_complete_and_within_capacity(num_tables, hash_size, num_ps):
    from repro.core import InteractionType, MLPSpec, ModelConfig, uniform_tables
    from repro.hardware import DUAL_SOCKET_CPU, CapacityError
    from repro.placement import plan_remote_cpu

    model = ModelConfig(
        "prop", 8,
        uniform_tables(num_tables, hash_size, dim=16, mean_lookups=2.0),
        MLPSpec((16,)), MLPSpec((16,)), InteractionType.CONCAT,
    )
    try:
        plan = plan_remote_cpu(model, DUAL_SOCKET_CPU, num_ps=num_ps)
    except CapacityError:
        return
    plan.validate_complete({t.name for t in model.tables})
    assert plan.remote_ps_used() <= num_ps


# -- throughput model sanity over random configs ---------------------------------


@common
@given(
    st.integers(min_value=8, max_value=1024),
    st.integers(min_value=1, max_value=32),
    st.integers(min_value=32, max_value=4096),
)
def test_throughput_positive_and_finite(num_dense, num_sparse, batch):
    from repro.configs import make_test_model
    from repro.hardware import BIG_BASIN
    from repro.perf import cpu_cluster_throughput, gpu_server_throughput
    from repro.placement import plan_gpu_memory

    model = make_test_model(num_dense, num_sparse)
    cpu = cpu_cluster_throughput(model, min(batch, 800), 1, 1, 1)
    assert np.isfinite(cpu.throughput) and cpu.throughput > 0
    plan = plan_gpu_memory(model, BIG_BASIN)
    gpu = gpu_server_throughput(model, batch, BIG_BASIN, plan)
    assert np.isfinite(gpu.throughput) and gpu.throughput > 0
    assert gpu.iteration_time_s > 0


# -- observability invariants --------------------------------------------------
#
# The registry's merge must be associative and commutative (this is what
# makes fleet aggregation order-independent), histogram quantiles must stay
# inside the observed range, tracer spans must nest strictly, and the
# Chrome export must survive a JSON round trip.

from repro.obs import MetricsRegistry, Tracer, merge_all  # noqa: E402

# Integer-valued floats keep counter/histogram sums exact in double
# precision, so associativity can be asserted bit-for-bit (float addition
# itself is only approximately associative).
_metric_events = st.lists(
    st.tuples(
        st.sampled_from(["c1", "c2", "g1", "h1", "h2"]),
        st.integers(min_value=0, max_value=10**6).map(float),
    ),
    max_size=30,
)


def _registry_from(events):
    reg = MetricsRegistry()
    for name, value in events:
        if name.startswith("c"):
            reg.counter(name).inc(value)
        elif name.startswith("g"):
            reg.gauge(name).set(value)
        else:
            reg.histogram(name).observe(value)
    return reg


@common
@given(_metric_events, _metric_events, _metric_events)
def test_registry_merge_associative(ev_a, ev_b, ev_c):
    a1, b1, c1 = _registry_from(ev_a), _registry_from(ev_b), _registry_from(ev_c)
    a2, b2, c2 = _registry_from(ev_a), _registry_from(ev_b), _registry_from(ev_c)
    left = a1.merge(b1).merge(c1)
    right = a2.merge(b2.merge(c2))
    assert left.to_dict() == right.to_dict()


@common
@given(_metric_events, _metric_events)
def test_registry_merge_commutative(ev_a, ev_b):
    a1, b1 = _registry_from(ev_a), _registry_from(ev_b)
    a2, b2 = _registry_from(ev_a), _registry_from(ev_b)
    assert a1.merge(b1).to_dict() == b2.merge(a2).to_dict()


@common
@given(st.lists(_metric_events, min_size=1, max_size=5))
def test_registry_merge_all_equals_sequential(event_groups):
    regs_a = [_registry_from(ev) for ev in event_groups]
    regs_b = [_registry_from(ev) for ev in event_groups]
    folded = merge_all(regs_a)
    acc = regs_b[0]
    for reg in regs_b[1:]:
        acc = acc.merge(reg)
    assert folded.to_dict() == acc.to_dict()


@common
@given(
    st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_histogram_quantiles_bounded_by_min_max(values, q):
    from repro.obs import Histogram

    h = Histogram("x")
    for v in values:
        h.observe(v)
    est = h.quantile(q)
    assert min(values) <= est <= max(values)
    assert h.min == min(values) and h.max == max(values)
    assert h.count == len(values)


_span_trees = st.recursive(
    st.tuples(st.sampled_from(["compute", "memory", "comm"]), st.just(())),
    lambda children: st.tuples(
        st.sampled_from(["compute", "memory", "comm", "iteration"]),
        st.lists(children, max_size=3),
    ),
    max_leaves=12,
)


def _emit(tracer, clock, node):
    category, children = node
    span = tracer.begin(f"s{len(tracer.spans)}", category, t0=clock[0])
    for child in children:
        clock[0] += 1.0
        _emit(tracer, clock, child)
    clock[0] += 1.0
    tracer.end(span, t1=clock[0])


@common
@given(st.lists(_span_trees, min_size=1, max_size=4))
def test_spans_strictly_nested(trees):
    tracer = Tracer()
    clock = [0.0]
    for tree in trees:
        _emit(tracer, clock, tree)
        clock[0] += 1.0
    spans = tracer.finished()
    assert len(spans) == len(tracer.spans)  # everything closed
    for s in spans:
        assert s.t1 is not None and s.t1 >= s.t0
        if s.parent is not None:
            p = tracer.spans[s.parent]
            # child interval contained in parent interval
            assert p.t0 <= s.t0 and s.t1 <= p.t1


@common
@given(st.lists(_span_trees, min_size=1, max_size=3))
def test_chrome_export_roundtrips_json(trees):
    import json

    tracer = Tracer()
    clock = [0.0]
    for tree in trees:
        _emit(tracer, clock, tree)
    payload = tracer.to_chrome()
    restored = json.loads(json.dumps(payload))
    assert restored == payload
    events = restored["traceEvents"]
    assert len(events) == len(tracer.finished())
    for e in events:
        assert e["ph"] == "X"
        assert e["dur"] >= 0
        assert isinstance(e["args"], dict)
