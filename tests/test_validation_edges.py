"""Validation and representation edge cases across the hardware/placement
layer (constructor guards that the happy-path tests never hit)."""

import pytest

from repro.hardware import DeviceSpec, LinkSpec, OpCost, PlatformSpec
from repro.hardware.specs import SKYLAKE_SOCKET, V100_32GB, _ETH_25G
from repro.placement import Location, LocationKind, Shard


class TestDeviceSpecValidation:
    def test_non_positive_specs_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("d", 0, 1e9, 1e9, 1e-6)
        with pytest.raises(ValueError):
            DeviceSpec("d", 1e9, -1, 1e9, 1e-6)

    def test_bad_efficiencies_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("d", 1e9, 1e9, 1e9, 1e-6, compute_efficiency=0.0)
        with pytest.raises(ValueError):
            DeviceSpec("d", 1e9, 1e9, 1e9, 1e-6, bandwidth_efficiency=1.5)

    def test_effective_rates(self):
        assert V100_32GB.effective_flops == pytest.approx(
            V100_32GB.peak_flops * V100_32GB.compute_efficiency
        )
        assert SKYLAKE_SOCKET.effective_bandwidth == pytest.approx(
            SKYLAKE_SOCKET.mem_bandwidth * SKYLAKE_SOCKET.bandwidth_efficiency
        )


class TestLinkSpecValidation:
    def test_bad_link_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec("l", bandwidth=0.0, latency_s=1e-6)
        with pytest.raises(ValueError):
            LinkSpec("l", bandwidth=1e9, latency_s=-1.0)


class TestPlatformSpecValidation:
    def _kwargs(self, **overrides):
        kwargs = dict(
            name="p",
            cpu_socket=SKYLAKE_SOCKET,
            num_cpu_sockets=2,
            gpu=V100_32GB,
            num_gpus=8,
            system_memory=1e11,
            gpu_interconnect=None,
            pcie=LinkSpec("pcie", 1e10, 1e-6),
            nic=_ETH_25G,
            nameplate_watts=1000.0,
        )
        kwargs.update(overrides)
        return kwargs

    def test_gpu_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec(**self._kwargs(gpu=None, num_gpus=8))
        with pytest.raises(ValueError):
            PlatformSpec(**self._kwargs(gpu=V100_32GB, num_gpus=0))

    def test_bad_scalars_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec(**self._kwargs(num_cpu_sockets=0))
        with pytest.raises(ValueError):
            PlatformSpec(**self._kwargs(system_memory=0.0))
        with pytest.raises(ValueError):
            PlatformSpec(**self._kwargs(nameplate_watts=0.0))
        with pytest.raises(ValueError):
            PlatformSpec(**self._kwargs(idle_fraction=1.0))

    def test_aggregate_properties(self):
        p = PlatformSpec(**self._kwargs())
        assert p.cpu_peak_flops == pytest.approx(2 * SKYLAKE_SOCKET.peak_flops)
        assert p.system_mem_bandwidth == pytest.approx(2 * SKYLAKE_SOCKET.mem_bandwidth)
        assert p.system_mem_effective_bandwidth == pytest.approx(
            2 * SKYLAKE_SOCKET.effective_bandwidth
        )


class TestOpCostEdges:
    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            OpCost(1.0, 1.0).scaled(-1.0)

    def test_negative_kernels_rejected(self):
        with pytest.raises(ValueError):
            OpCost(1.0, 1.0, kernels=-1)


class TestLocationRepresentation:
    def test_str_forms(self):
        assert str(Location(LocationKind.GPU, index=3, node=1)) == "node1/gpu3"
        assert str(Location(LocationKind.REMOTE, index=2)) == "ps2"
        assert str(Location(LocationKind.SYSTEM)) == "system"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Location(LocationKind.GPU, index=-1)

    def test_shard_repr_fields(self):
        s = Shard("t", Location(LocationKind.GPU), bytes=10.0, row_fraction=0.5)
        assert s.table_name == "t" and s.row_fraction == 0.5


class TestSimulatorHorizon:
    def test_backwards_horizon_rejected(self):
        from repro.distributed import Simulator

        sim = Simulator()
        sim.run(2.0)
        with pytest.raises(ValueError):
            sim.run(1.0)
