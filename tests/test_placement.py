"""Tests for repro.placement: strategies, packing, replication, feasibility."""

import pytest

from repro.core import InteractionType, MLPSpec, ModelConfig, TableSpec, uniform_tables
from repro.hardware import BIG_BASIN, BIG_BASIN_16GB, DUAL_SOCKET_CPU, GB, ZION, CapacityError
from repro.placement import (
    Location,
    LocationKind,
    PlacementPlan,
    PlacementStrategy,
    PlannerConfig,
    Shard,
    auto_plan,
    feasible_strategies,
    min_gpus_required,
    model_embedding_footprint,
    plan_gpu_memory,
    plan_hybrid,
    plan_placement,
    plan_remote_cpu,
    plan_system_memory,
    table_footprint,
)


def _model(num_tables=8, hash_size=1_000_000, dim=64, lookups=10.0, name="pm"):
    return ModelConfig(
        name=name,
        num_dense=64,
        tables=uniform_tables(num_tables, hash_size, dim=dim, mean_lookups=lookups),
        bottom_mlp=MLPSpec((128,)),
        top_mlp=MLPSpec((128,)),
        interaction=InteractionType.CONCAT,
    )


class TestFootprints:
    def test_table_footprint_includes_optimizer_state(self):
        spec = TableSpec("t", hash_size=1000, dim=64)
        assert table_footprint(spec) == spec.size_bytes * 2.0

    def test_model_footprint_sums(self):
        m = _model(4)
        assert model_embedding_footprint(m) == 4 * table_footprint(m.tables[0])

    def test_min_gpus_required(self):
        # 8 tables x 10M rows x 64 dims x 4 B x 2 = 41 GB -> 2 x 28.8 GB GPUs
        m = _model(8, hash_size=10_000_000)
        assert min_gpus_required(m, BIG_BASIN) == 2

    def test_min_gpus_on_cpu_platform_rejected(self):
        with pytest.raises(ValueError):
            min_gpus_required(_model(), DUAL_SOCKET_CPU)


class TestGpuMemoryPlanner:
    def test_small_tables_replicated(self):
        m = _model(8, hash_size=100_000)  # 51 MB footprint each
        plan = plan_gpu_memory(m, BIG_BASIN)
        assert plan.replicated_tables() == {t.name for t in m.tables}
        assert plan.sharded_gpus_used() == 0
        plan.validate_complete({t.name for t in m.tables})

    def test_large_tables_sharded_across_gpus(self):
        m = _model(16, hash_size=10_000_000)  # 5.1 GB each
        plan = plan_gpu_memory(m, BIG_BASIN)
        assert not plan.replicated_tables()
        assert plan.sharded_gpus_used() > 1
        plan.validate_complete({t.name for t in m.tables})

    def test_row_wise_split_for_giant_table(self):
        # one table larger than a single 28.8 GB HBM pool
        m = _model(1, hash_size=80_000_000)  # 41 GB footprint
        plan = plan_gpu_memory(m, BIG_BASIN)
        shards = plan.shards_for(m.tables[0].name)
        assert len(shards) >= 2
        assert sum(s.row_fraction for s in shards) == pytest.approx(1.0)

    def test_row_wise_disabled_raises(self):
        m = _model(1, hash_size=80_000_000)
        with pytest.raises(CapacityError):
            plan_gpu_memory(m, BIG_BASIN, allow_row_wise=False)

    def test_infeasible_model_raises(self):
        m = _model(16, hash_size=50_000_000)  # ~410 GB > 8 x 28.8 GB
        with pytest.raises(CapacityError):
            plan_gpu_memory(m, BIG_BASIN)

    def test_multi_node_adds_capacity(self):
        m = _model(16, hash_size=50_000_000)
        plan = plan_gpu_memory(m, BIG_BASIN, num_nodes=2)
        assert plan.num_nodes == 2
        plan.validate_complete({t.name for t in m.tables})

    def test_16gb_variant_fits_less(self):
        m = _model(8, hash_size=40_000_000)  # ~164 GB
        plan_gpu_memory(m, BIG_BASIN)  # fits in 256 GB class
        with pytest.raises(CapacityError):
            plan_gpu_memory(m, BIG_BASIN_16GB)  # not in 128 GB class


class TestSystemMemoryPlanner:
    def test_zion_holds_what_big_basin_cannot(self):
        m = _model(16, hash_size=50_000_000)  # ~410 GB
        plan = plan_system_memory(m, ZION)
        assert plan.strategy is PlacementStrategy.SYSTEM_MEMORY
        with pytest.raises(CapacityError):
            plan_system_memory(m, BIG_BASIN)

    def test_all_shards_in_system(self):
        m = _model(4)
        plan = plan_system_memory(m, BIG_BASIN)
        assert all(s.location.kind is LocationKind.SYSTEM for s in plan.shards)


class TestRemoteCpuPlanner:
    def test_balanced_by_bytes(self):
        m = _model(8, hash_size=10_000_000)
        plan = plan_remote_cpu(m, DUAL_SOCKET_CPU, num_ps=4)
        loads = {}
        for s in plan.shards:
            loads[s.location.index] = loads.get(s.location.index, 0.0) + s.bytes
        assert max(loads.values()) / min(loads.values()) < 1.5

    def test_balance_by_accesses(self):
        tables = tuple(
            TableSpec(f"t{i}", 1_000_000, dim=64, mean_lookups=float(1 + 10 * (i % 2)))
            for i in range(8)
        )
        m = ModelConfig("m", 8, tables, MLPSpec((16,)), MLPSpec((16,)), InteractionType.CONCAT)
        cfg = PlannerConfig(balance_by="accesses")
        plan = plan_remote_cpu(m, DUAL_SOCKET_CPU, num_ps=2, cfg=cfg)
        loads = {0: 0.0, 1: 0.0}
        lookups = {t.name: t.mean_lookups for t in tables}
        for s in plan.shards:
            loads[s.location.index] += lookups[s.table_name]
        assert max(loads.values()) / min(loads.values()) < 1.5

    def test_capacity_enforced(self):
        m = _model(8, hash_size=60_000_000)  # 8 x 30 GB = 245 GB footprint
        with pytest.raises(CapacityError):
            plan_remote_cpu(m, DUAL_SOCKET_CPU, num_ps=1)
        plan = plan_remote_cpu(m, DUAL_SOCKET_CPU, num_ps=2)
        assert plan.remote_ps_used() == 2

    def test_zero_ps_rejected(self):
        with pytest.raises(ValueError):
            plan_remote_cpu(_model(), DUAL_SOCKET_CPU, num_ps=0)


class TestHybridPlanner:
    def test_spills_to_system_when_hbm_full(self):
        m = _model(16, hash_size=40_000_000)  # ~328 GB > 230 GB HBM
        plan = plan_hybrid(m, BIG_BASIN)
        kinds = plan.bytes_by_kind()
        assert kinds.get(LocationKind.GPU, 0) > 0
        assert kinds.get(LocationKind.SYSTEM, 0) > 0

    def test_hot_tables_preferred_on_gpu(self):
        tables = (
            TableSpec("hot", 40_000_000, dim=64, mean_lookups=100.0),
            TableSpec("cold", 40_000_000, dim=64, mean_lookups=1.0),
        ) + uniform_tables(14, 40_000_000, dim=64, mean_lookups=1.0, prefix="filler")
        m = ModelConfig("m", 8, tables, MLPSpec((16,)), MLPSpec((16,)), InteractionType.CONCAT)
        plan = plan_hybrid(m, BIG_BASIN)
        hot_kind = plan.shards_for("hot")[0].location.kind
        assert hot_kind is LocationKind.GPU

    def test_all_fit_no_spill(self):
        plan = plan_hybrid(_model(4, hash_size=1_000_000), BIG_BASIN)
        assert LocationKind.SYSTEM not in plan.bytes_by_kind()


class TestDispatchAndAuto:
    def test_plan_placement_dispatch(self):
        m = _model(4)
        for strategy in (
            PlacementStrategy.GPU_MEMORY,
            PlacementStrategy.SYSTEM_MEMORY,
            PlacementStrategy.HYBRID,
        ):
            plan = plan_placement(m, BIG_BASIN, strategy)
            assert plan.strategy is strategy

    def test_remote_requires_ps_args(self):
        with pytest.raises(ValueError):
            plan_placement(_model(), BIG_BASIN, PlacementStrategy.REMOTE_CPU)

    def test_auto_plan_progression(self):
        small = _model(4, hash_size=1_000_000)
        assert auto_plan(small, BIG_BASIN).strategy is PlacementStrategy.GPU_MEMORY
        spilling = _model(16, hash_size=40_000_000)  # > HBM, fits hybrid
        assert auto_plan(spilling, BIG_BASIN).strategy is PlacementStrategy.HYBRID
        huge = _model(16, hash_size=120_000_000)  # > HBM + DRAM on Big Basin
        with pytest.raises(CapacityError):
            auto_plan(huge, BIG_BASIN)
        assert auto_plan(huge, ZION).strategy in (
            PlacementStrategy.HYBRID,
            PlacementStrategy.SYSTEM_MEMORY,
        )

    def test_feasible_strategies_m3_like(self):
        """An M3-like model must not fit GPU memory but fit remote/system-on-Zion."""
        m = _model(32, hash_size=15_000_000)  # ~245 GB footprint
        feasible_bb = feasible_strategies(m, BIG_BASIN, ps_platform=DUAL_SOCKET_CPU, max_ps=8)
        assert PlacementStrategy.GPU_MEMORY not in feasible_bb
        assert PlacementStrategy.REMOTE_CPU in feasible_bb
        feasible_zion = feasible_strategies(m, ZION)
        assert PlacementStrategy.SYSTEM_MEMORY in feasible_zion


class TestPlanValidation:
    def test_missing_table_detected(self):
        plan = PlacementPlan(strategy=PlacementStrategy.SYSTEM_MEMORY)
        plan.shards.append(Shard("a", Location(LocationKind.SYSTEM), 10.0))
        with pytest.raises(ValueError, match="missing"):
            plan.validate_complete({"a", "b"})

    def test_partial_rows_detected(self):
        plan = PlacementPlan(strategy=PlacementStrategy.GPU_MEMORY)
        plan.shards.append(
            Shard("a", Location(LocationKind.GPU, index=0), 10.0, row_fraction=0.5)
        )
        with pytest.raises(ValueError, match="row fractions"):
            plan.validate_complete({"a"})

    def test_bad_shard_rejected(self):
        with pytest.raises(ValueError):
            Shard("a", Location(LocationKind.GPU), bytes=-1.0)
        with pytest.raises(ValueError):
            Shard("a", Location(LocationKind.GPU), bytes=1.0, row_fraction=0.0)

    def test_planner_config_validation(self):
        with pytest.raises(ValueError):
            PlannerConfig(optimizer_multiplier=0.5)
        with pytest.raises(ValueError):
            PlannerConfig(balance_by="nope")
        with pytest.raises(ValueError):
            PlannerConfig(replicate_budget_fraction=1.0)


class TestPartitioningModes:
    def _hot_model(self):
        """One table holds ~85% of all lookups — table-wise cannot balance."""
        from repro.core import InteractionType, MLPSpec, ModelConfig, TableSpec

        tables = (TableSpec("hot", 4_000_000, dim=64, mean_lookups=200.0),) + tuple(
            TableSpec(f"cold{i}", 4_000_000, dim=64, mean_lookups=5.0)
            for i in range(7)
        )
        return ModelConfig(
            "hot", 64, tables, MLPSpec((128,)), MLPSpec((128,)), InteractionType.CONCAT
        )

    def test_row_wise_stripes_every_table(self):
        m = self._hot_model()
        plan = plan_gpu_memory(
            m, BIG_BASIN, cfg=PlannerConfig(partitioning="row_wise")
        )
        for t in m.tables:
            shards = plan.shards_for(t.name)
            assert len(shards) == BIG_BASIN.num_gpus
            assert sum(s.row_fraction for s in shards) == pytest.approx(1.0)

    def test_row_wise_balances_lookups_better(self):
        from repro.perf import gpu_server_throughput

        m = self._hot_model()
        table_wise = plan_gpu_memory(m, BIG_BASIN)
        row_wise = plan_gpu_memory(
            m, BIG_BASIN, cfg=PlannerConfig(partitioning="row_wise")
        )
        t_table = gpu_server_throughput(m, 1600, BIG_BASIN, table_wise).throughput
        t_row = gpu_server_throughput(m, 1600, BIG_BASIN, row_wise).throughput
        assert t_row > t_table  # the hot table no longer gates one GPU

    def test_lookup_balanced_packing_default(self):
        """With several medium-hot tables the table-wise packer spreads
        lookups, not just bytes."""
        from repro.core import InteractionType, MLPSpec, ModelConfig, TableSpec

        tables = tuple(
            TableSpec(f"t{i}", 4_000_000, dim=64, mean_lookups=float(2 ** (i % 4)))
            for i in range(16)
        )
        m = ModelConfig("mix", 64, tables, MLPSpec((128,)), MLPSpec((128,)),
                        InteractionType.CONCAT)
        plan = plan_gpu_memory(m, BIG_BASIN)
        loads = {}
        lookups = {t.name: t.mean_lookups for t in tables}
        for s in plan.shards:
            if not s.replicated:
                key = (s.location.node, s.location.index)
                loads[key] = loads.get(key, 0.0) + lookups[s.table_name] * s.row_fraction
        if loads:
            assert max(loads.values()) / (sum(loads.values()) / len(loads)) < 1.6

    def test_invalid_partitioning_rejected(self):
        with pytest.raises(ValueError):
            PlannerConfig(partitioning="diagonal")


class TestMultiNodeSystemMemory:
    """The paper's closing challenge: multi-TB models over several Zions."""

    def _multi_tb_model(self):
        return _model(64, hash_size=120_000_000, lookups=10.0)  # ~3.9 TB state

    def test_single_zion_infeasible(self):
        with pytest.raises(CapacityError):
            plan_system_memory(self._multi_tb_model(), ZION)

    def test_multi_node_packs_and_balances(self):
        m = self._multi_tb_model()
        plan = plan_system_memory(m, ZION, num_nodes=3)
        assert plan.num_nodes == 3
        plan.validate_complete({t.name for t in m.tables})
        by_node = {}
        for s in plan.shards:
            by_node[s.location.node] = by_node.get(s.location.node, 0.0) + s.bytes
        assert len(by_node) == 3
        assert max(by_node.values()) / min(by_node.values()) < 1.4

    def test_throughput_scales_with_nodes(self):
        from repro.perf import gpu_server_throughput

        m = self._multi_tb_model()
        thr = {}
        for nodes in (3, 6):
            plan = plan_system_memory(m, ZION, num_nodes=nodes)
            thr[nodes] = gpu_server_throughput(m, 1600, ZION, plan).throughput
        assert thr[6] > 1.4 * thr[3]  # scale-out works, sublinearly

    def test_internode_exchange_costs_something(self):
        from repro.perf import gpu_server_throughput

        # lookup-heavy, so the host/NIC path is on the critical path and the
        # exchange cannot hide under the GPU pipeline
        heavy = _model(8, hash_size=1_000_000, lookups=300.0)
        single = plan_system_memory(heavy, ZION)
        double = plan_system_memory(heavy, ZION, num_nodes=2)
        t1 = gpu_server_throughput(heavy, 1600, ZION, single).throughput
        t2 = gpu_server_throughput(heavy, 1600, ZION, double).throughput
        # two nodes deliver clearly less than 2x: the exchange is not free
        assert t2 < 1.8 * t1
        assert t2 > t1  # but scale-out still helps

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_system_memory(_model(4), ZION, num_nodes=0)
