"""Property-based tests (hypothesis) for the frequency statistics.

The tier-admission scorer (:class:`repro.tiering.freq.FreqStats`) must be
a pure function of the global access stream: training code feeds it
whatever batch segmentation the data loader happens to produce, and tier
placement must not depend on that framing.  These properties pin:

* determinism — same stream, same state, bit for bit;
* segmentation invariance — any split of the stream into ``record``
  calls leaves counts / window / EMA scores identical to one-shot
  recording (the per-access lazy-decay design);
* agreement with a naive one-access-at-a-time reference implementation;
* deterministic ``topk`` tie-breaking (smaller id wins).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.tiering import FreqStats

common = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

streams = st.lists(
    st.integers(min_value=0, max_value=15), min_size=0, max_size=200
)
decays = st.floats(min_value=0.5, max_value=1.0, allow_nan=False)
windows = st.integers(min_value=1, max_value=32)


def _cuts_to_slices(stream, cuts):
    bounds = sorted({min(c, len(stream)) for c in cuts} | {0, len(stream)})
    return [stream[a:b] for a, b in zip(bounds, bounds[1:])]


def _reference(stream, decay, window, num_items=16):
    """One-access-at-a-time reference: explicit decay every step."""
    ema = np.zeros(num_items)
    counts = np.zeros(num_items, dtype=np.int64)
    for item in stream:
        ema *= decay
        ema[item] += 1.0
        counts[item] += 1
    win = np.zeros(num_items, dtype=np.int64)
    for item in stream[-window:]:
        win[item] += 1
    return ema, counts, win


@common
@given(streams, decays, windows)
def test_deterministic(stream, decay, window):
    runs = []
    for _ in range(2):
        f = FreqStats(16, decay=decay, window=window)
        f.record(np.array(stream, dtype=np.int64))
        runs.append((f.counts.copy(), f.win_counts.copy(), f.scores().copy()))
    np.testing.assert_array_equal(runs[0][0], runs[1][0])
    np.testing.assert_array_equal(runs[0][1], runs[1][1])
    np.testing.assert_array_equal(runs[0][2], runs[1][2])


@common
@given(
    streams,
    decays,
    windows,
    st.lists(st.integers(min_value=0, max_value=200), max_size=6),
)
def test_invariant_to_batch_segmentation(stream, decay, window, cuts):
    one_shot = FreqStats(16, decay=decay, window=window)
    one_shot.record(np.array(stream, dtype=np.int64))

    segmented = FreqStats(16, decay=decay, window=window)
    for piece in _cuts_to_slices(stream, cuts):
        segmented.record(np.array(piece, dtype=np.int64))

    assert segmented.pos == one_shot.pos == len(stream)
    np.testing.assert_array_equal(segmented.counts, one_shot.counts)
    np.testing.assert_array_equal(segmented.win_counts, one_shot.win_counts)
    np.testing.assert_allclose(
        segmented.scores(), one_shot.scores(), rtol=1e-12, atol=1e-300
    )


@common
@given(streams, decays, windows)
def test_matches_naive_reference(stream, decay, window):
    f = FreqStats(16, decay=decay, window=window)
    f.record(np.array(stream, dtype=np.int64))
    ref_ema, ref_counts, ref_win = _reference(stream, decay, window)
    np.testing.assert_array_equal(f.counts, ref_counts)
    np.testing.assert_array_equal(f.win_counts, ref_win)
    np.testing.assert_allclose(f.scores(), ref_ema, rtol=1e-9, atol=1e-300)


@common
@given(streams, st.integers(min_value=0, max_value=20))
def test_topk_deterministic_tiebreak(stream, k):
    f = FreqStats(16, decay=1.0, window=8)  # decay 1.0 maximizes ties
    f.record(np.array(stream, dtype=np.int64))
    top = f.topk(k)
    assert len(top) == min(k, 16)
    scores = f.scores()
    # Scores are non-increasing along topk, and ties break to smaller id.
    for a, b in zip(top, top[1:]):
        assert scores[a] > scores[b] or (scores[a] == scores[b] and a < b)
    # Everything outside topk scores no higher than the last member.
    if len(top) not in (0, 16):
        rest = np.setdiff1d(np.arange(16), top)
        assert scores[rest].max() <= scores[top[-1]]
