"""Tests for repro.data.dataset: fixed datasets with epoch iteration."""

import numpy as np
import pytest

from repro.core import Adagrad, DLRM, Trainer, evaluate
from repro.data import FixedDataset, SyntheticDataGenerator


@pytest.fixture
def dataset(tiny_config):
    gen = SyntheticDataGenerator(tiny_config, rng=0, seed_teacher=True)
    return FixedDataset.generate(gen, num_examples=512)


class TestFixedDataset:
    def test_generate_size(self, dataset):
        assert len(dataset) == 512

    def test_subset_roundtrip(self, dataset):
        idx = np.array([5, 3, 100])
        batch = dataset.subset(idx)
        assert batch.size == 3
        np.testing.assert_array_equal(batch.dense[0], dataset.dense[5])
        np.testing.assert_array_equal(batch.labels, dataset.labels[idx])
        for name, ragged in dataset.sparse.items():
            np.testing.assert_array_equal(batch.sparse[name].sample(1), ragged.sample(3))

    def test_subset_out_of_range(self, dataset):
        with pytest.raises(IndexError):
            dataset.subset(np.array([9999]))
        with pytest.raises(ValueError):
            dataset.subset(np.array([], dtype=np.int64))

    def test_split_partitions(self, dataset):
        train, eval_ = dataset.split(eval_fraction=0.25, seed=1)
        assert len(train) + len(eval_) == len(dataset)
        assert len(eval_) == 128

    def test_split_validation(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(eval_fraction=0.0)
        with pytest.raises(ValueError):
            dataset.split(eval_fraction=1.0)

    def test_epoch_covers_every_example_once(self, dataset):
        seen = 0
        for batch in dataset.epochs(batch_size=100, num_epochs=1):
            seen += batch.size
        assert seen == len(dataset)

    def test_drop_last(self, dataset):
        sizes = [b.size for b in dataset.epochs(batch_size=100, num_epochs=1, drop_last=True)]
        assert all(s == 100 for s in sizes)
        assert len(sizes) == 5

    def test_shuffle_changes_order(self, dataset):
        a = next(dataset.epochs(batch_size=32, num_epochs=1, shuffle=True, seed=1))
        b = next(dataset.epochs(batch_size=32, num_epochs=1, shuffle=True, seed=2))
        assert not np.array_equal(a.dense, b.dense)

    def test_no_shuffle_is_sequential(self, dataset):
        batch = next(dataset.epochs(batch_size=16, num_epochs=1, shuffle=False))
        np.testing.assert_array_equal(batch.dense, dataset.dense[:16])

    def test_multi_epoch_training_overfits_small_data(self, tiny_config):
        """Epoch iteration enables the classic small-data overfit check:
        training NE keeps dropping on the train split while held-out NE
        stalls above it."""
        gen = SyntheticDataGenerator(tiny_config, rng=3, seed_teacher=True)
        data = FixedDataset.generate(gen, num_examples=256)
        train, held_out = data.split(eval_fraction=0.25, seed=0)
        model = DLRM(tiny_config, rng=1)
        trainer = Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.1),
        )
        trainer.train(train.epochs(batch_size=64, seed=5), max_steps=200)
        train_ne = evaluate(model, [train.subset(np.arange(len(train)))])[
            "normalized_entropy"
        ]
        eval_ne = evaluate(model, [held_out.subset(np.arange(len(held_out)))])[
            "normalized_entropy"
        ]
        assert train_ne < eval_ne  # memorized the train split

    def test_mismatched_construction_rejected(self, dataset):
        with pytest.raises(ValueError):
            FixedDataset(dataset.dense, dataset.sparse, dataset.labels[:-1])
