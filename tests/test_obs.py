"""Tests for the observability layer (repro.obs) and its integrations.

Covers the tracer (nesting, synthetic timelines, Chrome export), the
metrics registry (counters/gauges/histograms, labels, merging), ambient
profiling hooks, the simulator/telemetry integrations, and — critically —
the overhead guard: instrumented code paths with the default
:data:`~repro.obs.NULL_TRACER` must be *bit-identical* to uninstrumented
runs, and enabled tracing must stay cheap.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.run_telemetry import MetricSeries, MetricsLogger
from repro.distributed.cluster import ClusterConfig, simulate_cpu_cluster
from repro.distributed.simulator import Resource
from repro.distributed.sync import EASGDConfig, EASGDTrainer
from repro.fleet.telemetry import aggregate_run_registries, collect_utilization_samples
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
    current_tracer,
    ensure_tracer,
    merge_all,
    profile_block,
    profiled,
    use_tracer,
)
from repro.perf.pipeline import cpu_cluster_throughput


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_begin_end_records_span(self):
        t = Tracer()
        s = t.begin("work", "compute", t0=1.0, batch=64)
        t.end(s, t1=3.5)
        assert s.duration == pytest.approx(2.5)
        assert s.attributes == {"batch": 64}
        assert t.finished() == [s]

    def test_nesting_assigns_parents(self):
        t = Tracer()
        outer = t.begin("outer", "iteration", t0=0.0)
        inner = t.begin("inner", "compute", t0=0.1)
        t.end(inner, t1=0.2)
        t.end(outer, t1=1.0)
        assert inner.parent == 0
        assert t.spans[inner.parent] is outer
        assert outer.parent is None

    def test_strict_nesting_enforced(self):
        t = Tracer()
        outer = t.begin("outer", "iteration", t0=0.0)
        t.begin("inner", "compute", t0=0.1)
        with pytest.raises(ValueError, match="strict nesting"):
            t.end(outer, t1=1.0)

    def test_end_before_begin_rejected(self):
        t = Tracer()
        s = t.begin("x", "compute", t0=5.0)
        with pytest.raises(ValueError, match="t1"):
            t.end(s, t1=4.0)

    def test_span_context_manager_wall_clock(self):
        t = Tracer()
        with t.span("step", "iteration", step=3):
            time.sleep(0.001)
        (s,) = t.finished()
        assert s.name == "step" and s.attributes == {"step": 3}
        assert s.duration > 0

    def test_record_parents_under_open_span(self):
        t = Tracer()
        parent = t.begin("iter", "iteration", t0=0.0)
        child = t.record("lookup", "memory", t0=0.0, duration=0.25, table=2)
        t.end(parent, t1=1.0)
        assert child.parent == 0
        assert child.t1 == pytest.approx(0.25)

    def test_record_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            Tracer().record("x", "compute", t0=0.0, duration=-1.0)

    def test_reserve_lays_out_sequentially(self):
        t = Tracer()
        a = t.reserve(2.0)
        b = t.reserve(3.0)
        assert (a, b) == (0.0, 2.0)
        assert t.reserve(0.0) == 5.0

    def test_total_by_category(self):
        t = Tracer()
        t.record("a", "compute", t0=0.0, duration=1.0)
        t.record("b", "comm", t0=1.0, duration=2.0)
        t.record("c", "compute", t0=3.0, duration=0.5)
        assert t.total_by_category() == {"comm": 2.0, "compute": 1.5}

    def test_open_spans_excluded_from_export(self):
        t = Tracer()
        t.begin("open", "compute", t0=0.0)
        t.record("done", "comm", t0=0.0, duration=1.0)
        events = t.to_chrome()["traceEvents"]
        assert [e["name"] for e in events] == ["done"]

    def test_chrome_export_structure(self, tmp_path):
        t = Tracer()
        parent = t.begin("iteration", "iteration", t0=0.0)
        t.record("fwd", "compute", t0=0.0, duration=0.002, layer=1)
        t.end(parent, t1=0.01)
        path = tmp_path / "trace.json"
        assert t.export_chrome(str(path)) == 2
        payload = json.loads(path.read_text())
        by_name = {e["name"]: e for e in payload["traceEvents"]}
        fwd = by_name["fwd"]
        assert fwd["ph"] == "X"
        assert fwd["dur"] == pytest.approx(2000.0)  # seconds -> microseconds
        assert fwd["args"]["parent"] == "iteration"
        assert fwd["args"]["layer"] == 1


class TestNullTracer:
    def test_disabled_and_inert(self, tmp_path):
        nt = NullTracer()
        assert nt.enabled is False
        s = nt.begin("x", "compute")
        nt.end(s)
        with nt.span("y", "comm"):
            pass
        nt.record("z", "memory", t0=0.0, duration=1.0)
        assert nt.reserve(10.0) == 0.0
        assert nt.finished() == [] and nt.spans == []
        assert nt.total_by_category() == {}
        path = tmp_path / "null.json"
        assert nt.export_chrome(str(path)) == 0
        assert json.loads(path.read_text())["traceEvents"] == []

    def test_ensure_tracer(self):
        assert ensure_tracer(None) is NULL_TRACER
        t = Tracer()
        assert ensure_tracer(t) is t


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_and_merge(self):
        a, b = Counter("n"), Counter("n")
        a.inc()
        a.inc(2.5)
        b.inc(4)
        a.update(b)
        assert a.value == pytest.approx(7.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)

    def test_labeled_children_merge(self):
        a, b = Counter("reqs"), Counter("reqs")
        a.labels(server="ps0").inc(3)
        b.labels(server="ps0").inc(4)
        b.labels(server="ps1").inc(1)
        a.update(b)
        assert a.labels(server="ps0").value == 7
        assert a.labels(server="ps1").value == 1


class TestGauge:
    def test_merge_takes_max(self):
        a, b = Gauge("peak"), Gauge("peak")
        a.set(3.0)
        b.set(5.0)
        a.update(b)
        assert a.value == 5.0

    def test_merge_with_unset(self):
        a, b = Gauge("peak"), Gauge("peak")
        b.set(2.0)
        a.update(b)
        assert a.value == 2.0


class TestHistogram:
    def test_observe_updates_stats(self):
        h = Histogram("lat")
        for v in (0.1, 0.2, 0.4):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(0.7 / 3)
        assert (h.min, h.max) == (0.1, 0.4)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            Histogram("lat").observe(float("nan"))

    def test_empty_quantile_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Histogram("lat").quantile(0.5)

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.min <= h.quantile(0.0) <= h.max
        assert h.min <= h.quantile(0.5) <= h.max
        assert h.quantile(1.0) == h.max

    def test_merge_requires_same_buckets(self):
        a = Histogram("lat", buckets=(1.0, 2.0))
        b = Histogram("lat", buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket"):
            a.update(b)

    def test_merge_combines_counts(self):
        a, b = Histogram("lat"), Histogram("lat")
        a.observe(0.5)
        b.observe(8.0)
        a.update(b)
        assert a.count == 2
        assert (a.min, a.max) == (0.5, 8.0)
        assert a.total == pytest.approx(8.5)


class TestMetricsRegistry:
    def test_get_or_create_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("c") is r.counter("c")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")
        assert len(r) == 3 and "c" in r

    def test_type_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            r.gauge("x")

    def test_merge_is_pure(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        merged = a.merge(b)
        assert merged.counter("n").value == 3
        assert a.counter("n").value == 1  # untouched

    def test_merge_all_matches_pairwise(self):
        regs = []
        for i in range(4):
            r = MetricsRegistry()
            r.counter("n").inc(i + 1)
            r.gauge("peak").set(float(i))
            r.histogram("lat").observe(0.1 * (i + 1))
            regs.append(r)
        folded = merge_all(regs)
        assert folded.counter("n").value == 10
        assert folded.gauge("peak").value == 3.0
        assert folded.histogram("lat").count == 4

    def test_to_dict_deterministic(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.counter("a").inc()
        assert list(r.to_dict()) == ["a", "b"]
        assert json.loads(json.dumps(r.to_dict())) == r.to_dict()

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            MetricsRegistry().get("missing")


# ---------------------------------------------------------------------------
# Ambient profiling hooks
# ---------------------------------------------------------------------------


class TestProfileHooks:
    def test_default_ambient_tracer_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_scopes_and_restores(self):
        t = Tracer()
        with use_tracer(t):
            assert current_tracer() is t
            nested = Tracer()
            with use_tracer(nested):
                assert current_tracer() is nested
            assert current_tracer() is t
        assert current_tracer() is NULL_TRACER

    def test_profiled_decorator_records_spans(self):
        @profiled(category="compute")
        def double(x):
            return 2 * x

        t = Tracer()
        with use_tracer(t):
            assert double(21) == 42
        (s,) = t.finished()
        assert "double" in s.name and s.category == "compute"

    def test_profiled_is_inert_without_tracer(self):
        @profiled()
        def f():
            return 1

        assert f() == 1  # no ambient tracer: nothing recorded, no error

    def test_profile_block_records_attrs(self):
        t = Tracer()
        with use_tracer(t):
            with profile_block("pack", "memory", tables=4):
                pass
        (s,) = t.finished()
        assert (s.name, s.category) == ("pack", "memory")
        assert s.attributes == {"tables": 4}


# ---------------------------------------------------------------------------
# Integrations: simulator resources, breakdown tracing, telemetry bridges
# ---------------------------------------------------------------------------


class TestResourceTelemetry:
    def test_resource_populates_labeled_histograms(self):
        reg = MetricsRegistry()
        r = Resource("ps_nic", rate=1e9, registry=reg)
        now = 0.0
        for _ in range(5):
            now = r.submit(now, 1e6)
        depth = reg.histogram("resource_queue_depth").labels(resource="ps_nic")
        wait = reg.histogram("resource_queue_wait_s").labels(resource="ps_nic")
        busy = reg.histogram("resource_busy_s").labels(resource="ps_nic")
        assert depth.count == wait.count == busy.count == 5
        assert busy.mean == pytest.approx(1e6 / 1e9)

    def test_resource_without_registry_unchanged(self):
        r = Resource("nic", rate=1e9)
        done = r.submit(0.0, 1e6)
        assert done == pytest.approx(1e-3)
        assert r.jobs_served == 1


class TestBreakdownTracing:
    def test_cpu_cluster_trace_covers_categories(self):
        from repro.configs import make_test_model

        model = make_test_model(256, 8)
        tracer = Tracer()
        cpu_cluster_throughput(
            model, 100, num_trainers=4, num_sparse_ps=4, num_dense_ps=1,
            tracer=tracer,
        )
        cats = tracer.categories()
        assert "iteration" in cats
        assert {"compute", "comm"} <= cats
        # every child stays inside its parent interval
        for s in tracer.finished():
            if s.parent is not None:
                p = tracer.spans[s.parent]
                assert s.t0 >= p.t0 - 1e-12
                assert s.t1 <= p.t1 + 1e-12

    def test_cluster_sim_emits_iteration_spans(self, tiny_config):
        tracer = Tracer()
        reg = MetricsRegistry()
        simulate_cpu_cluster(
            tiny_config,
            ClusterConfig(num_trainers=2, num_sparse_ps=2, num_dense_ps=1, seed=0),
            horizon_s=0.05,
            tracer=tracer,
            registry=reg,
        )
        names = {s.name for s in tracer.finished()}
        assert any(n.startswith("trainer") and n.endswith("iteration") for n in names)
        assert "resource_queue_depth" in reg


class TestMetricSeriesOverwrite:
    def test_duplicate_step_overwrites_last(self):
        s = MetricSeries("loss")
        s.record(0, 1.0)
        s.record(1, 0.9)
        s.record(1, 0.5)  # checkpoint-restore replay: last writer wins
        assert s.steps == [0, 1]
        assert s.values == [1.0, 0.5]
        assert s.latest() == 0.5

    def test_regression_still_rejected(self):
        s = MetricSeries("loss")
        s.record(5, 1.0)
        with pytest.raises(ValueError):
            s.record(4, 1.0)


class TestLoggerRegistryBridge:
    def test_to_registry_builds_hist_gauge_counter(self):
        log = MetricsLogger()
        log.record(0, loss=1.0, lr=0.1)
        log.record(1, loss=0.5, lr=0.1)
        reg = log.to_registry()
        assert reg.histogram("loss").count == 2
        assert reg.gauge("loss:last").value == 0.5
        assert reg.counter("telemetry_points").value == 4

    def test_to_registry_skips_non_finite(self):
        log = MetricsLogger()
        log.record(0, lr=float("nan"))
        log.record(1, lr=float("nan"))
        reg = log.to_registry()
        assert reg.histogram("lr").count == 0  # NaNs skipped, no raise
        assert np.isnan(reg.gauge("lr:last").value)

    def test_per_run_registries_merge_fleet_wide(self):
        runs = []
        for i in range(3):
            log = MetricsLogger()
            log.record(0, loss=1.0 / (i + 1))
            runs.append(log.to_registry())
        fleet = aggregate_run_registries(runs)
        assert fleet.histogram("loss").count == 3
        assert fleet.counter("telemetry_points").value == 3


class TestFleetAggregation:
    def test_collect_samples_fills_registry(self, tiny_config):
        reg = MetricsRegistry()
        samples = collect_utilization_samples(
            tiny_config,
            num_runs=2,
            num_trainers=2,
            num_sparse_ps=2,
            num_dense_ps=1,
            horizon_s=0.05,
            seed=1,
            registry=reg,
        )
        assert len(samples.trainer_cpu) == 4  # 2 runs x 2 trainers
        assert reg.counter("runs").value == 2
        util = reg.histogram("utilization")
        assert util.count > 0
        assert util.labels(resource="trainer_cpu").count == 4


# ---------------------------------------------------------------------------
# CLI trace smoke test
# ---------------------------------------------------------------------------


class TestCliTrace:
    def test_trace_fig14_writes_valid_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert cli_main(["trace", "fig14", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert len(events) > 0
        cats = {e["cat"] for e in events}
        assert {"compute", "memory", "comm"} <= cats
        assert all(e["ph"] == "X" and e["dur"] >= 0 for e in events)
        assert str(out) in capsys.readouterr().out

    def test_trace_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["trace", "bogus", "--out", "/tmp/x.json"])


# ---------------------------------------------------------------------------
# Overhead guard: NullTracer must be free and bit-identical
# ---------------------------------------------------------------------------


def _run_easgd(tiny_config, tracer):
    trainer = EASGDTrainer(
        tiny_config, EASGDConfig(num_workers=2, tau=2), lr=0.05, rng=0,
        **({"tracer": tracer} if tracer is not None else {}),
    )
    from repro.data import SyntheticDataGenerator

    data = SyntheticDataGenerator(tiny_config, rng=3)
    stream = data.batches(16)
    return trainer.train(stream, max_examples=200)


class TestOverheadGuard:
    def test_analytic_model_identical_with_null_tracer(self):
        from repro.configs import make_test_model

        model = make_test_model(256, 8)
        kwargs = dict(num_trainers=4, num_sparse_ps=4, num_dense_ps=1)
        base = cpu_cluster_throughput(model, 100, **kwargs)
        nulled = cpu_cluster_throughput(model, 100, tracer=NULL_TRACER, **kwargs)
        assert nulled.throughput == base.throughput
        assert nulled.iteration_time_s == base.iteration_time_s
        assert nulled.breakdown.total == base.breakdown.total

    def test_sync_training_identical_with_null_tracer(self, tiny_config):
        losses_base = _run_easgd(tiny_config, None)
        losses_null = _run_easgd(tiny_config, NULL_TRACER)
        assert losses_base == losses_null  # bit-identical histories

    def test_enabled_tracer_overhead_small(self, tiny_config):
        """Tracer-enabled training stays within 3% (+ small epsilon) of the
        NullTracer wall time, min-of-repeats to shed scheduler noise."""

        def timed(tracer_factory):
            best = float("inf")
            for _ in range(3):
                tracer = tracer_factory()
                t0 = time.perf_counter()
                _run_easgd(tiny_config, tracer)
                best = min(best, time.perf_counter() - t0)
            return best

        base = timed(lambda: NULL_TRACER)
        traced = timed(Tracer)
        assert traced < base * 1.03 + 5e-3, (
            f"tracing overhead too high: {traced:.4f}s vs {base:.4f}s"
        )
