"""Layer-level backend conformance: each layer under backend X vs "numpy".

Two families:

* the historical ``set_workspace``-only construction path (default
  ``"fused"`` backend + arena attached, exactly how pre-seam code set up
  the fast path) — kept verbatim so the legacy entry point stays pinned;
* the generalized ``set_backend`` path, parametrized over every
  registered backend plus the forced-split threaded instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BCEWithLogitsLoss, ConcatInteraction, DotInteraction, MLPSpec, Workspace
from repro.core.mlp import MLP, Linear, ReLU

from backend_cases import (
    BACKEND_SPECS,
    DTYPES,
    assert_backend_matches,
    assert_scalar_matches,
    make_backend,
    make_workspace,
    rand,
)

backend_specs = pytest.mark.parametrize("spec", BACKEND_SPECS)
all_dtypes = pytest.mark.parametrize("dtype", DTYPES)


# ---------------------------------------------------------------------------
# generalized: every backend vs the numpy reference
# ---------------------------------------------------------------------------


@backend_specs
@all_dtypes
def test_linear_layer_conforms(spec, dtype):
    be = make_backend(spec)
    rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
    subject = Linear(7, 5, rng_a, dtype=dtype)
    ref = Linear(7, 5, rng_b, dtype=dtype)
    subject.set_backend(be, make_workspace(be))
    ref.set_backend("numpy")
    x = rand(1, (11, 7), dtype)
    g = rand(2, (11, 5), dtype)
    assert_backend_matches(be, subject.forward(x), ref.forward(x), "linear fwd")
    assert_backend_matches(be, subject.backward(g), ref.backward(g), "linear bwd")
    assert_backend_matches(be, subject.weight.grad, ref.weight.grad, "weight grad")
    assert_backend_matches(be, subject.bias.grad, ref.bias.grad, "bias grad")


@backend_specs
@all_dtypes
def test_relu_layer_conforms(spec, dtype):
    be = make_backend(spec)
    subject, ref = ReLU(), ReLU()
    subject.set_backend(be, make_workspace(be))
    ref.set_backend("numpy")
    x = rand(3, (9, 6), dtype)
    g = rand(4, (9, 6), dtype)
    assert_backend_matches(be, subject.forward(x.copy()), ref.forward(x), "relu fwd")
    assert_backend_matches(be, subject.backward(g), ref.backward(g), "relu bwd")


@backend_specs
@all_dtypes
def test_mlp_conforms(spec, dtype):
    be = make_backend(spec)
    rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
    subject = MLP(6, MLPSpec((8, 4)), rng_a, dtype=dtype)
    ref = MLP(6, MLPSpec((8, 4)), rng_b, dtype=dtype)
    subject.set_backend(be, make_workspace(be))
    ref.set_backend("numpy")
    x = rand(6, (13, 6), dtype)
    g = rand(7, (13, 4), dtype)
    assert_backend_matches(be, subject.forward(x), ref.forward(x), "mlp fwd")
    assert_backend_matches(be, subject.backward(g), ref.backward(g), "mlp bwd")


@backend_specs
@all_dtypes
@pytest.mark.parametrize("cls", [DotInteraction, ConcatInteraction])
def test_interaction_conforms(spec, cls, dtype):
    be = make_backend(spec)
    num_sparse, dim, batch = 4, 5, 7
    subject, ref = cls(num_sparse, dim), cls(num_sparse, dim)
    subject.set_backend(be, make_workspace(be))
    ref.set_backend("numpy")
    dense = rand(8, (batch, dim), dtype)
    embs = [rand(9 + i, (batch, dim), dtype) for i in range(num_sparse)]
    out_s = subject.forward(dense, embs)
    out_r = ref.forward(dense, embs)
    assert_backend_matches(be, out_s, out_r, "interaction fwd")
    g = rand(20, out_r.shape, dtype)
    gd_s, ge_s = subject.backward(g)
    gd_r, ge_r = ref.backward(g)
    assert_backend_matches(be, gd_s, gd_r, "interaction grad_dense")
    for i, (a, b) in enumerate(zip(ge_s, ge_r)):
        assert_backend_matches(be, a, b, f"interaction grad_emb[{i}]")


@backend_specs
def test_bce_loss_conforms(spec):
    be = make_backend(spec)
    subject = BCEWithLogitsLoss(workspace=make_workspace(be), backend=be)
    ref = BCEWithLogitsLoss(backend="numpy")
    logits = np.random.default_rng(10).standard_normal(31) * 6
    labels = np.random.default_rng(11).integers(0, 2, size=31)
    assert_scalar_matches(
        be, subject.forward(logits, labels), ref.forward(logits, labels), "bce loss"
    )
    assert_backend_matches(be, subject.backward(), ref.backward(), "bce grad")


# ---------------------------------------------------------------------------
# legacy set_workspace path (default backend + arena, pre-seam API)
# ---------------------------------------------------------------------------


@all_dtypes
def test_linear_layer_fused_matches_naive(dtype):
    rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
    fused = Linear(7, 5, rng_a, dtype=dtype)
    naive = Linear(7, 5, rng_b, dtype=dtype)
    fused.set_workspace(Workspace())
    x = rand(1, (11, 7), dtype)
    g = rand(2, (11, 5), dtype)
    assert np.array_equal(fused.forward(x), naive.forward(x))
    assert np.array_equal(fused.backward(g), naive.backward(g))
    assert np.array_equal(fused.weight.grad, naive.weight.grad)
    assert np.array_equal(fused.bias.grad, naive.bias.grad)


@all_dtypes
def test_relu_layer_fused_matches_naive(dtype):
    fused, naive = ReLU(), ReLU()
    fused.set_workspace(Workspace())
    x = rand(3, (9, 6), dtype)
    g = rand(4, (9, 6), dtype)
    assert np.array_equal(fused.forward(x.copy()), naive.forward(x))
    assert np.array_equal(fused.backward(g), naive.backward(g))


@all_dtypes
def test_mlp_fused_matches_naive(dtype):
    rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
    fused = MLP(6, MLPSpec((8, 4)), rng_a, dtype=dtype)
    naive = MLP(6, MLPSpec((8, 4)), rng_b, dtype=dtype)
    fused.set_workspace(Workspace())
    x = rand(6, (13, 6), dtype)
    g = rand(7, (13, 4), dtype)
    assert np.array_equal(fused.forward(x), naive.forward(x))
    assert np.array_equal(fused.backward(g), naive.backward(g))


@all_dtypes
@pytest.mark.parametrize("cls", [DotInteraction, ConcatInteraction])
def test_interaction_fused_matches_naive(cls, dtype):
    num_sparse, dim, batch = 4, 5, 7
    fused, naive = cls(num_sparse, dim), cls(num_sparse, dim)
    fused.set_workspace(Workspace())
    dense = rand(8, (batch, dim), dtype)
    embs = [rand(9 + i, (batch, dim), dtype) for i in range(num_sparse)]
    out_f = fused.forward(dense, embs)
    out_n = naive.forward(dense, embs)
    assert np.array_equal(out_f, out_n)
    g = rand(20, out_n.shape, dtype)
    gd_f, ge_f = fused.backward(g)
    gd_n, ge_n = naive.backward(g)
    assert np.array_equal(gd_f, gd_n)
    for a, b in zip(ge_f, ge_n):
        assert np.array_equal(a, b)


def test_bce_loss_fused_matches_naive():
    fused = BCEWithLogitsLoss(workspace=Workspace())
    naive = BCEWithLogitsLoss()
    logits = np.random.default_rng(10).standard_normal(31) * 6
    labels = np.random.default_rng(11).integers(0, 2, size=31)
    assert fused.forward(logits, labels) == naive.forward(logits, labels)
    assert np.array_equal(fused.backward(), naive.backward())
