"""Backend round-trips through pickling and SweepRunner process pools.

The satellite fix this pins: models (and their workspaces/backends) must
survive the process boundary of a :class:`~repro.runtime.SweepRunner`
pool — registered backends re-resolve to the worker's own registered
instance, thread pools never pickle, and a parallel sweep under
``backend="fused"`` reproduces serial ``"numpy"`` results bit-for-bit.
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.core import (
    DLRM,
    InteractionType,
    MLPSpec,
    ModelConfig,
    get_backend,
    known_backends,
    uniform_tables,
)
from repro.core.backends.threaded import ThreadedBackend
from repro.runtime import SweepRunner

from backend_cases import BACKEND_SPECS, assert_backend_matches, make_backend
from helpers import backend_sweep_point, make_batch


# ---------------------------------------------------------------------------
# pickling round-trips
# ---------------------------------------------------------------------------


def test_registered_backends_pickle_to_singletons():
    for name in known_backends():
        be = get_backend(name)
        clone = pickle.loads(pickle.dumps(be))
        assert clone is be  # name-reduced: the registry instance comes back


def test_custom_threaded_instance_pickles_state_without_pool():
    be = ThreadedBackend(workers=2, min_rows=4)
    be._get_pool()  # materialize a live pool
    clone = pickle.loads(pickle.dumps(be))
    assert clone is not be
    assert clone.workers == 2 and clone.min_rows == 4
    assert clone._pool is None and clone._pool_pid is None
    # the clone still computes (lazily recreating its pool)
    x = np.random.default_rng(0).standard_normal((16, 3))
    w = np.random.default_rng(1).standard_normal((5, 3))
    b = np.zeros(5)
    from repro.core import Workspace

    out = clone._matmul_rows(x, w.T, np.empty((16, 5)))
    np.testing.assert_allclose(out, x @ w.T, rtol=1e-12, atol=1e-12)
    ws = Workspace()
    np.testing.assert_allclose(
        clone.linear_forward(x, w, b, ws, "k"), x @ w.T + b, rtol=1e-12, atol=1e-12
    )


def test_model_config_pickle_round_trips_backend():
    for name in known_backends():
        config = ModelConfig(
            name="cfg",
            num_dense=4,
            tables=uniform_tables(2, 16, dim=4, mean_lookups=1.0),
            bottom_mlp=MLPSpec((4,)),
            top_mlp=MLPSpec((4,)),
            interaction=InteractionType.DOT,
            backend=name,
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone.backend == name
        assert clone.effective_backend == config.effective_backend


@pytest.mark.parametrize("spec", BACKEND_SPECS)
def test_model_pickle_round_trips_backend_and_workspace(spec):
    be = make_backend(spec)
    config = ModelConfig(
        name="pickle-model",
        num_dense=4,
        tables=uniform_tables(2, 16, dim=4, mean_lookups=1.0),
        bottom_mlp=MLPSpec((6, 4)),
        top_mlp=MLPSpec((4,)),
        interaction=InteractionType.DOT,
    )
    model = DLRM(config, rng=0, backend=be)
    batch = make_batch(config, 8, seed=3)
    before = model.forward(batch, training=False)
    clone = pickle.loads(pickle.dumps(model))
    assert clone.backend.name == model.backend.name
    assert (clone.workspace is None) == (model.workspace is None)
    # the clone's layers dispatch through its own backend/workspace pair
    after = clone.forward(batch, training=False)
    assert_backend_matches(be, after, before, "pickled-model forward")


# ---------------------------------------------------------------------------
# SweepRunner process pools
# ---------------------------------------------------------------------------


def test_sweep_pool_fused_equals_serial_numpy_bit_for_bit():
    """The headline regression: a process-pool sweep with ``backend="fused"``
    must equal the serial ``"numpy"`` sweep bit-for-bit (fused is
    bit-identical and results survive pickling unchanged)."""
    seeds = list(range(4))
    # fork start method: workers inherit sys.path, so the module-level
    # point function in tests/helpers.py resolves in the children
    runner = SweepRunner(workers=2, mp_context=multiprocessing.get_context("fork"))
    parallel = runner.map(
        backend_sweep_point,
        [{"backend": "fused", "batch_seed": s} for s in seeds],
        namespace="conformance-backend-sweep",
        use_cache=False,
    )
    serial = [backend_sweep_point(backend="numpy", batch_seed=s) for s in seeds]
    assert [p["backend"] for p in parallel] == ["fused"] * len(seeds)
    for p, s in zip(parallel, serial):
        assert p["losses"] == s["losses"]
        assert np.array_equal(p["preds"], s["preds"])


def test_sweep_pool_round_trips_threaded_backend_selection():
    """A sweep over the ``"threaded"`` spec must re-resolve in the worker
    (falling back to ``"fused"`` on single-core machines) and still match
    the reference within the backend's tolerance."""
    import os

    seeds = [0, 1]  # two points, so the runner actually opens a pool
    runner = SweepRunner(workers=2, mp_context=multiprocessing.get_context("fork"))
    points = runner.map(
        backend_sweep_point,
        [{"backend": "threaded", "batch_seed": s} for s in seeds],
        namespace="conformance-threaded-sweep",
        use_cache=False,
    )
    expected = "threaded" if (os.cpu_count() or 1) >= 2 else "fused"
    rtol, atol = get_backend("threaded").tolerance(np.float64)
    for seed, point in zip(seeds, points):
        assert point["backend"] == expected
        ref = backend_sweep_point(backend="numpy", batch_seed=seed)
        np.testing.assert_allclose(point["losses"], ref["losses"], rtol=rtol, atol=atol)
        np.testing.assert_allclose(point["preds"], ref["preds"], rtol=rtol, atol=atol)
