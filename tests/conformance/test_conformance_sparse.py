"""Sparse fast-path vs naive equivalences (moved from ``tests/test_kernels.py``).

The fast sparse kernels of :mod:`repro.core.kernels` claim *bit-identical*
results vs the historical ``np.add.at`` / Python-loop implementations
(which live on as ``naive_*`` references inside the kernels module).
Hypothesis generates adversarial ragged layouts — empty segments, empty
batches, duplicate indices — and we assert exact equality (stronger than
the 1e-12 budget the contract allows).  These are the ``"fused"``
backend's :meth:`segment_pool` / :meth:`segment_pool_backward`
implementations; the per-backend generalization lives in
``test_conformance_ops.py``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SparseGrad, kernels


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def ragged_layout(draw):
    """(data, offsets): a CSR ragged batch with possibly-empty segments."""
    num_segments = draw(st.integers(min_value=0, max_value=10))
    lengths = draw(
        st.lists(
            st.integers(min_value=0, max_value=6),
            min_size=num_segments,
            max_size=num_segments,
        )
    )
    offsets = np.concatenate([[0], np.cumsum(np.array(lengths, dtype=np.int64))])
    total = int(offsets[-1])
    dim = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    data = np.random.default_rng(seed).standard_normal((total, dim))
    return data, offsets.astype(np.int64)


@st.composite
def duplicate_rows(draw):
    """(indices, grads) with heavy row duplication for coalesce tests."""
    n = draw(st.integers(min_value=0, max_value=40))
    indices = np.array(
        draw(st.lists(st.integers(0, 7), min_size=n, max_size=n)), dtype=np.int64
    )
    dim = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    grads = np.random.default_rng(seed).standard_normal((n, dim))
    return indices, grads


# ---------------------------------------------------------------------------
# kernel equivalence (exact)
# ---------------------------------------------------------------------------


class TestSegmentSumEquivalence:
    @given(ragged_layout())
    @settings(max_examples=60, deadline=None)
    def test_segment_sum_matches_add_at_exactly(self, layout):
        data, offsets = layout
        fast = kernels.segment_sum(data, offsets)
        naive = kernels.naive_segment_sum(data, offsets)
        assert fast.dtype == naive.dtype
        np.testing.assert_allclose(fast, naive, rtol=1e-12, atol=1e-12)

    @given(ragged_layout())
    @settings(max_examples=30, deadline=None)
    def test_float32_segments_exact_vs_naive(self, layout):
        data, offsets = layout
        data32 = data.astype(np.float32)
        fast = kernels.segment_sum(data32, offsets)
        naive = kernels.naive_segment_sum(data32, offsets)
        assert fast.dtype == np.float32
        np.testing.assert_allclose(fast, naive, rtol=1e-6, atol=1e-6)


class TestCoalesceEquivalence:
    @given(duplicate_rows())
    @settings(max_examples=60, deadline=None)
    def test_matches_unique_add_at_exactly(self, case):
        indices, grads = case
        rows_f, summed_f = kernels.coalesce_rows(indices, grads)
        rows_n, summed_n = kernels.naive_coalesce_rows(indices, grads)
        assert np.array_equal(rows_f, rows_n)
        np.testing.assert_allclose(summed_f, summed_n, rtol=1e-12, atol=1e-12)


class TestGatherPoolEquivalence:
    """The fused forward: ``S @ weight`` vs materialized gather + pool."""

    @given(ragged_layout(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matches_gather_then_segment_sum(self, layout, seed):
        data, offsets = layout
        rng = np.random.default_rng(seed)
        weight = rng.standard_normal((9, 3))
        values = rng.integers(0, 9, size=int(offsets[-1]))
        fused = kernels.gather_pool(weight, values, offsets)
        unfused = kernels.segment_sum(weight[values], offsets)
        assert fused.dtype == weight.dtype
        np.testing.assert_array_equal(fused, unfused)  # bit-identical


class TestExpandCoalesceEquivalence:
    """The fused backward: ``T @ grad_out`` vs repeat + coalesce."""

    @given(ragged_layout(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matches_repeat_then_coalesce(self, layout, seed):
        _, offsets = layout
        lengths = np.diff(offsets)
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 6, size=int(offsets[-1]))
        grad_out = rng.standard_normal((len(lengths), 3))
        rows_f, summed_f = kernels.expand_coalesce(values, lengths, grad_out)
        per_lookup = np.repeat(grad_out, lengths, axis=0)
        rows_u, summed_u = kernels.coalesce_rows(values, per_lookup)
        assert np.array_equal(rows_f, rows_u)
        np.testing.assert_array_equal(summed_f, summed_u)  # bit-identical


class TestTruncateEquivalence:
    @given(ragged_layout(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_matches_python_loop(self, layout, cap):
        data, offsets = layout
        values = np.arange(int(offsets[-1]), dtype=np.int64)
        fast_v, fast_o = kernels.truncate_ragged(values, offsets, cap)
        naive_v, naive_o = kernels.naive_truncate_ragged(values, offsets, cap)
        assert np.array_equal(fast_v, naive_v)
        assert np.array_equal(fast_o, naive_o)


class TestSparseGradCoalesce:
    def test_matches_historic_semantics(self):
        indices = np.array([3, 1, 3, 3, 1])
        grads = np.random.default_rng(0).standard_normal((5, 4))
        grad = SparseGrad.coalesce(indices, grads)
        rows_n, summed_n = kernels.naive_coalesce_rows(indices, grads)
        assert np.array_equal(grad.rows, rows_n)
        np.testing.assert_allclose(grad.values, summed_n, rtol=1e-12, atol=1e-12)
        assert grad.nnz_rows == 2
