"""Conformance-suite bootstrap.

The conformance modules import shared strategies/helpers from
``backend_cases`` (this directory) and ``helpers`` (the parent test
directory); running ``pytest tests/conformance`` alone must work, so the
parent directory is put on ``sys.path`` here.
"""

from __future__ import annotations

import pathlib
import sys

_TESTS_DIR = str(pathlib.Path(__file__).resolve().parent.parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)
