"""Property tests for the backend seam (hypothesis over the whole model).

Arbitrary architectures (dense width, table count/dim, MLP widths,
interaction type), batch sizes, compute dtypes and backends must produce
predictions and gradients through a full :class:`Trainer` step that match
the ``"numpy"`` reference — bit-identically for bit-identical backends,
within the declared tolerance otherwise.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DLRM, Adagrad, InteractionType, MLPSpec, ModelConfig, SGD, Trainer, uniform_tables

from backend_cases import BACKEND_SPECS, assert_backend_matches, make_backend
from helpers import make_batch


@st.composite
def model_cases(draw):
    """(config, batch_size) spanning small but adversarial architectures."""
    dim = draw(st.integers(min_value=1, max_value=6))
    config = ModelConfig(
        name="prop",
        num_dense=draw(st.integers(min_value=1, max_value=8)),
        tables=uniform_tables(
            draw(st.integers(min_value=1, max_value=4)),
            draw(st.sampled_from([16, 50])),
            dim=dim,
            mean_lookups=draw(st.sampled_from([1.0, 2.5])),
        ),
        # the bottom stack must end at the embedding dim for DOT
        bottom_mlp=MLPSpec((draw(st.integers(min_value=2, max_value=8)), dim)),
        top_mlp=MLPSpec((draw(st.integers(min_value=1, max_value=6)),)),
        interaction=draw(
            st.sampled_from([InteractionType.DOT, InteractionType.CONCAT])
        ),
        compute_dtype=draw(st.sampled_from(["float64", "float32"])),
    )
    return config, draw(st.integers(min_value=1, max_value=24))


@settings(max_examples=12, deadline=None)
@given(
    case=model_cases(),
    spec=st.sampled_from(BACKEND_SPECS),
    optimizer=st.sampled_from(["adagrad", "sgd"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_trainer_step_matches_reference_for_any_architecture(
    case, spec, optimizer, seed
):
    config, batch_size = case
    be = make_backend(spec)
    batch = make_batch(config, batch_size, seed=seed)

    def run(backend):
        model = DLRM(config, rng=0, backend=backend)
        if optimizer == "adagrad":
            factory = lambda m: Adagrad(  # noqa: E731
                m.dense_parameters(), m.embedding_tables(), lr=0.05, backend=m.backend
            )
        else:
            factory = lambda m: SGD(  # noqa: E731
                m.dense_parameters(), m.embedding_tables(),
                lr=0.05, momentum=0.9, backend=m.backend,
            )
        trainer = Trainer(model, factory)
        pre = model.predict_proba(batch)
        loss = trainer.train_step(batch)
        post = model.predict_proba(batch)
        return model, pre, loss, post

    model_b, pre_b, loss_b, post_b = run(be)
    model_n, pre_n, loss_n, post_n = run("numpy")

    assert_backend_matches(be, pre_b, pre_n, "pre-step predictions")
    if be.bit_identical:
        assert loss_b == loss_n
    else:
        # the float64 loss scalar inherits the model dtype's rounding
        rtol, atol = be.tolerance(np.dtype(config.compute_dtype))
        assert np.isclose(loss_b, loss_n, rtol=rtol, atol=atol)
    # gradients of the step (still held on the parameters until the next
    # zero_grad) and the updated state must agree
    for pb, pn in zip(model_b.dense_parameters(), model_n.dense_parameters()):
        assert_backend_matches(be, pb.grad, pn.grad, f"grad {pn.name}")
        assert_backend_matches(be, pb.value, pn.value, f"value {pn.name}")
    for tb, tn in zip(model_b.embedding_tables(), model_n.embedding_tables()):
        assert_backend_matches(be, tb.weight, tn.weight, "table weight")
    assert_backend_matches(be, post_b, post_n, "post-step predictions")
