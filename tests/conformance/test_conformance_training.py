"""End-to-end training conformance: full Trainer runs per backend.

* The legacy ``fused_dense``-flag construction (fused model/optimizer/loss
  vs all-naive) stays pinned bit-for-bit, both dtypes, both optimizers.
* The generalized per-backend run compares every backend spec against a
  ``"numpy"`` model trained on the same batches — bit-identically for
  bit-identical backends, within tolerance otherwise.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    DLRM,
    Adagrad,
    InteractionType,
    MLPSpec,
    ModelConfig,
    SGD,
    Trainer,
    uniform_tables,
)

from backend_cases import BACKEND_SPECS, assert_backend_matches, make_backend
from helpers import make_batch


def _train_config(dtype_name: str, interaction=InteractionType.DOT) -> ModelConfig:
    return ModelConfig(
        name="conformance-e2e",
        num_dense=6,
        tables=uniform_tables(4, 64, dim=4, mean_lookups=2.0),
        bottom_mlp=MLPSpec((8, 4)),
        top_mlp=MLPSpec((6,)),
        interaction=interaction,
        compute_dtype=dtype_name,
    )


def _run_training(config: ModelConfig, batches, backend, optimizer: str):
    model = DLRM(config, rng=0, backend=backend)
    if optimizer == "adagrad":
        factory = lambda m: Adagrad(  # noqa: E731
            m.dense_parameters(), m.embedding_tables(), lr=0.05, backend=m.backend
        )
    else:
        factory = lambda m: SGD(  # noqa: E731
            m.dense_parameters(), m.embedding_tables(),
            lr=0.05, momentum=0.9, weight_decay=1e-4, backend=m.backend,
        )
    trainer = Trainer(model, factory)
    losses = [trainer.train_step(b) for b in batches]
    return losses, model


# ---------------------------------------------------------------------------
# generalized: every backend vs the numpy reference, end to end
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("spec", BACKEND_SPECS)
@pytest.mark.parametrize("dtype_name", ["float64", "float32"])
@pytest.mark.parametrize("optimizer", ["adagrad", "sgd"])
def test_end_to_end_training_conforms(spec, dtype_name, optimizer):
    be = make_backend(spec)
    config = _train_config(dtype_name)
    batches = [make_batch(config, 32, seed=s) for s in range(4)]

    losses_b, model_b = _run_training(config, batches, be, optimizer)
    losses_n, model_n = _run_training(config, batches, "numpy", optimizer)

    if be.bit_identical:
        assert losses_b == losses_n
    else:
        # the float64 loss scalar inherits the model dtype's rounding
        rtol, atol = be.tolerance(np.dtype(dtype_name))
        np.testing.assert_allclose(losses_b, losses_n, rtol=rtol, atol=atol)
    for a, b in zip(model_b.get_dense_state(), model_n.get_dense_state()):
        assert_backend_matches(be, a, b, "dense state")
    for ta, tb in zip(model_b.embedding_tables(), model_n.embedding_tables()):
        assert_backend_matches(be, ta.weight, tb.weight, "table weight")
    # and inference agrees too
    preds_b = model_b.predict_proba(batches[0])
    preds_n = model_n.predict_proba(batches[0])
    assert_backend_matches(be, preds_b, preds_n, "predict_proba")


@pytest.mark.parametrize("spec", BACKEND_SPECS)
def test_concat_interaction_training_conforms(spec):
    be = make_backend(spec)
    config = _train_config("float64", interaction=InteractionType.CONCAT)
    batches = [make_batch(config, 24, seed=s) for s in range(3)]
    losses_b, model_b = _run_training(config, batches, be, "adagrad")
    losses_n, model_n = _run_training(config, batches, "numpy", "adagrad")
    if be.bit_identical:
        assert losses_b == losses_n
    else:
        rtol, atol = be.tolerance(np.float64)
        np.testing.assert_allclose(losses_b, losses_n, rtol=rtol, atol=atol)
    assert_backend_matches(
        be, model_b.predict_proba(batches[0]), model_n.predict_proba(batches[0]),
        "concat predict_proba",
    )


# ---------------------------------------------------------------------------
# legacy fused_dense-flag path (pre-seam construction), pinned bit-for-bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype_name", ["float64", "float32"])
@pytest.mark.parametrize("optimizer", ["adagrad", "sgd"])
def test_end_to_end_training_bit_identical(dtype_name, optimizer):
    config = _train_config(dtype_name)
    batches = [make_batch(config, 32, seed=s) for s in range(6)]

    def run(fused: bool):
        model = DLRM(replace(config, fused_dense=fused), rng=0)
        if optimizer == "adagrad":
            factory = lambda m: Adagrad(  # noqa: E731
                m.dense_parameters(), m.embedding_tables(), lr=0.05, fused=fused
            )
        else:
            factory = lambda m: SGD(  # noqa: E731
                m.dense_parameters(), m.embedding_tables(),
                lr=0.05, momentum=0.9, weight_decay=1e-4, fused=fused,
            )
        trainer = Trainer(model, factory)
        losses = [trainer.train_step(b) for b in batches]
        return losses, model

    losses_f, model_f = run(True)
    losses_n, model_n = run(False)
    assert losses_f == losses_n
    for a, b in zip(model_f.get_dense_state(), model_n.get_dense_state()):
        assert np.array_equal(a, b)
    for ta, tb in zip(model_f.embedding_tables(), model_n.embedding_tables()):
        assert np.array_equal(ta.weight, tb.weight)
    # and inference agrees too
    preds_f = model_f.predict_proba(batches[0])
    preds_n = model_n.predict_proba(batches[0])
    assert np.array_equal(preds_f, preds_n)
