"""Op-level backend conformance: every protocol op vs the numpy reference.

These generalize the historical naive-vs-fused kernel equivalence tests
(formerly in ``tests/test_dense_kernels.py``) over *every* registered
backend: hypothesis draws adversarial shapes (batch 1, single features,
odd widths, saturating logits, exact-zero pre-activations) and each op
is asserted against the ``"numpy"`` reference — exactly for
bit-identical backends, within the declared tolerance otherwise.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dense_kernels

from backend_cases import (
    BACKEND_SPECS,
    DTYPES,
    assert_backend_matches,
    assert_scalar_matches,
    make_backend,
    make_workspace,
    rand,
    reference,
)

# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def mat_shapes(draw):
    """(batch, in_features, out_features) with degenerate sizes included."""
    return (
        draw(st.integers(min_value=1, max_value=17)),
        draw(st.integers(min_value=1, max_value=9)),
        draw(st.integers(min_value=1, max_value=9)),
    )


@st.composite
def dot_shapes(draw):
    """(batch, n_vec, dim) for pairwise-dot interaction tests."""
    return (
        draw(st.integers(min_value=1, max_value=9)),
        draw(st.integers(min_value=2, max_value=8)),
        draw(st.integers(min_value=1, max_value=6)),
    )


@st.composite
def ragged_layout(draw):
    """(lengths, offsets) of a CSR ragged batch with empty segments."""
    num_segments = draw(st.integers(min_value=0, max_value=10))
    lengths = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=6),
                min_size=num_segments,
                max_size=num_segments,
            )
        ),
        dtype=np.int64,
    )
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    return lengths, offsets


seeds = st.integers(min_value=0, max_value=2**31 - 1)
dtypes = st.sampled_from(DTYPES)
backend_specs = pytest.mark.parametrize("spec", BACKEND_SPECS)


# ---------------------------------------------------------------------------
# linear
# ---------------------------------------------------------------------------


@backend_specs
@settings(max_examples=25, deadline=None)
@given(shape=mat_shapes(), seed=seeds, dtype=dtypes)
def test_linear_forward_conforms(spec, shape, seed, dtype):
    be = make_backend(spec)
    batch, fin, fout = shape
    x = rand(seed, (batch, fin), dtype)
    w = rand(seed + 1, (fout, fin), dtype)
    b = rand(seed + 2, (fout,), dtype)
    ref = reference().linear_forward(x, w, b, None, "lin")
    out = be.linear_forward(x, w, b, make_workspace(be), "lin")
    assert_backend_matches(be, out, ref, "linear_forward")


@backend_specs
@settings(max_examples=25, deadline=None)
@given(shape=mat_shapes(), seed=seeds, dtype=dtypes)
def test_linear_backward_conforms(spec, shape, seed, dtype):
    be = make_backend(spec)
    batch, fin, fout = shape
    x = rand(seed, (batch, fin), dtype)
    w = rand(seed + 1, (fout, fin), dtype)
    g = rand(seed + 2, (batch, fout), dtype)
    wg0 = rand(seed + 3, (fout, fin), dtype)  # pre-existing accumulation
    bg0 = rand(seed + 4, (fout,), dtype)
    wg_ref, bg_ref = wg0.copy(), bg0.copy()
    dx_ref = reference().linear_backward(g, x, w, wg_ref, bg_ref, None, "lin")
    wg, bg = wg0.copy(), bg0.copy()
    dx = be.linear_backward(g, x, w, wg, bg, make_workspace(be), "lin")
    assert_backend_matches(be, dx, dx_ref, "linear_backward dx")
    assert_backend_matches(be, wg, wg_ref, "linear_backward dW accumulation")
    assert_backend_matches(be, bg, bg_ref, "linear_backward db accumulation")


# ---------------------------------------------------------------------------
# relu
# ---------------------------------------------------------------------------


@backend_specs
@settings(max_examples=25, deadline=None)
@given(shape=mat_shapes(), seed=seeds, dtype=dtypes)
def test_relu_conforms_including_zero_signs(spec, shape, seed, dtype):
    be = make_backend(spec)
    batch, fin, _ = shape
    x = rand(seed, (batch, fin), dtype)
    x.reshape(-1)[0] = 0.0  # force an exact-zero pre-activation
    g = rand(seed + 1, (batch, fin), dtype)
    y_ref, ctx_ref = reference().relu_forward(x.copy(), None, "r")
    ws = make_workspace(be)
    y, ctx = be.relu_forward(x.copy(), ws, "r")
    assert_backend_matches(be, y, y_ref, "relu_forward")
    gx_ref = reference().relu_backward(g.copy(), ctx_ref, None, "r")
    gx = be.relu_backward(g.copy(), ctx, ws, "r")
    assert_backend_matches(be, gx, gx_ref, "relu_backward")
    if be.bit_identical:
        # the mask-free path must not leak -0.0 where the reference has +0.0
        assert np.array_equal(np.signbit(y), np.signbit(y_ref))
        assert np.array_equal(np.signbit(gx), np.signbit(gx_ref))


@backend_specs
def test_relu_inference_mode_has_no_ctx(spec):
    be = make_backend(spec)
    x = rand(0, (5, 3), np.float64)
    y, ctx = be.relu_forward(x, make_workspace(be), "r", training=False)
    assert ctx is None
    assert_backend_matches(be, y, np.maximum(x, 0.0), "relu inference")


# ---------------------------------------------------------------------------
# bce loss
# ---------------------------------------------------------------------------


@backend_specs
@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=33),
    seed=seeds,
    scale=st.floats(min_value=0.1, max_value=50.0),
)
def test_bce_conforms(spec, batch, seed, scale):
    be = make_backend(spec)
    rng = np.random.default_rng(seed)
    logits = rng.standard_normal(batch) * scale  # include saturating logits
    labels = rng.integers(0, 2, size=batch).astype(np.float64)
    loss_ref, ctx_ref = reference().bce_forward(logits, labels, None)
    ws = make_workspace(be)
    loss, ctx = be.bce_forward(logits, labels, ws)
    assert_scalar_matches(be, loss, loss_ref, "bce loss")
    grad_ref = reference().bce_backward(logits, labels, ctx_ref, None)
    grad = be.bce_backward(logits, labels, ctx, ws)
    assert_backend_matches(be, grad, grad_ref, "bce grad")


# ---------------------------------------------------------------------------
# dot interaction
# ---------------------------------------------------------------------------


@backend_specs
@settings(max_examples=25, deadline=None)
@given(shape=dot_shapes(), seed=seeds, dtype=dtypes)
def test_dot_interaction_conforms(spec, shape, seed, dtype):
    be = make_backend(spec)
    batch, n_vec, dim = shape
    dense = rand(seed, (batch, dim), dtype)
    embs = [rand(seed + 1 + i, (batch, dim), dtype) for i in range(n_vec - 1)]
    tril = np.tril_indices(n_vec, k=-1)
    num_pairs = len(tril[0])
    flat_tril = (tril[0] * n_vec + tril[1]).astype(np.intp)
    pair_map = dense_kernels.symmetric_pair_map(n_vec, tril)

    out_ref, stack_ref = reference().dot_forward(dense, embs, tril, flat_tril, None, "d")
    ws = make_workspace(be)
    out, stack = be.dot_forward(dense, embs, tril, flat_tril, ws, "d")
    assert_backend_matches(be, out, out_ref, "dot_forward")

    grad_out = rand(seed + 50, (batch, dim + num_pairs), dtype)
    gd_ref, ge_ref = reference().dot_backward(
        stack_ref, grad_out, dim, tril, pair_map, None, "d"
    )
    gd, ge = be.dot_backward(stack, grad_out, dim, tril, pair_map, ws, "d")
    assert_backend_matches(be, gd, gd_ref, "dot_backward grad_dense")
    assert len(ge) == len(ge_ref)
    for i, (a, r) in enumerate(zip(ge, ge_ref)):
        assert_backend_matches(be, a, r, f"dot_backward grad_emb[{i}]")


@backend_specs
@settings(max_examples=15, deadline=None)
@given(shape=dot_shapes(), seed=seeds, dtype=dtypes)
def test_concat_forward_conforms(spec, shape, seed, dtype):
    be = make_backend(spec)
    batch, n_vec, dim = shape
    dense = rand(seed, (batch, dim), dtype)
    embs = [rand(seed + 1 + i, (batch, dim), dtype) for i in range(n_vec - 1)]
    ref = reference().concat_forward(dense, embs, dim, None, "c")
    out = be.concat_forward(dense, embs, dim, make_workspace(be), "c")
    assert_backend_matches(be, out, ref, "concat_forward")


# ---------------------------------------------------------------------------
# segment pooling (embedding bags)
# ---------------------------------------------------------------------------


@backend_specs
@settings(max_examples=25, deadline=None)
@given(layout=ragged_layout(), seed=seeds, dtype=dtypes)
def test_segment_pool_conforms(spec, layout, seed, dtype):
    be = make_backend(spec)
    lengths, offsets = layout
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((9, 3)).astype(dtype)
    values = rng.integers(0, 9, size=int(offsets[-1]))
    ref = reference().segment_pool(weight, values, offsets)
    out = be.segment_pool(weight, values, offsets)
    assert_backend_matches(be, out, ref, "segment_pool")


@backend_specs
@settings(max_examples=25, deadline=None)
@given(layout=ragged_layout(), seed=seeds, dtype=dtypes)
def test_segment_pool_backward_conforms(spec, layout, seed, dtype):
    be = make_backend(spec)
    lengths, offsets = layout
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 6, size=int(offsets[-1]))
    grad_out = rng.standard_normal((len(lengths), 3)).astype(dtype)
    rows_ref, summed_ref = reference().segment_pool_backward(values, lengths, grad_out)
    rows, summed = be.segment_pool_backward(values, lengths, grad_out)
    assert np.array_equal(rows, rows_ref)
    assert_backend_matches(be, summed, summed_ref, "segment_pool_backward")


# ---------------------------------------------------------------------------
# optimizer steps
# ---------------------------------------------------------------------------


@backend_specs
@settings(max_examples=25, deadline=None)
@given(shape=mat_shapes(), seed=seeds, dtype=dtypes)
def test_adagrad_dense_step_conforms(spec, shape, seed, dtype):
    be = make_backend(spec)
    rows, cols, _ = shape
    value = rand(seed, (rows, cols), dtype)
    grad = rand(seed + 1, (rows, cols), dtype)
    state = np.abs(rand(seed + 2, (rows, cols), dtype))
    v_ref, s_ref = value.copy(), state.copy()
    reference().adagrad_dense_step(v_ref, grad, s_ref, 0.05, 1e-10, None)
    be.adagrad_dense_step(value, grad, state, 0.05, 1e-10, make_workspace(be))
    assert_backend_matches(be, value, v_ref, "adagrad value")
    assert_backend_matches(be, state, s_ref, "adagrad state")


@backend_specs
@settings(max_examples=25, deadline=None)
@given(
    shape=mat_shapes(),
    seed=seeds,
    dtype=dtypes,
    momentum=st.sampled_from([0.0, 0.9]),
    weight_decay=st.sampled_from([0.0, 1e-3]),
)
def test_sgd_dense_step_conforms(spec, shape, seed, dtype, momentum, weight_decay):
    be = make_backend(spec)
    rows, cols, _ = shape
    value = rand(seed, (rows, cols), dtype)
    grad = rand(seed + 1, (rows, cols), dtype)
    vel = np.zeros_like(value) if momentum else None
    v_ref = value.copy()
    vel_ref = vel.copy() if vel is not None else None
    reference().sgd_dense_step(
        v_ref, grad, 0.1, None,
        weight_decay=weight_decay, momentum=momentum, velocity=vel_ref,
    )
    be.sgd_dense_step(
        value, grad, 0.1, make_workspace(be),
        weight_decay=weight_decay, momentum=momentum, velocity=vel,
    )
    assert_backend_matches(be, value, v_ref, "sgd value")
    if vel is not None:
        assert_backend_matches(be, vel, vel_ref, "sgd velocity")


@backend_specs
@settings(max_examples=25, deadline=None)
@given(
    num_rows=st.integers(min_value=1, max_value=40),
    touched=st.integers(min_value=1, max_value=12),
    dim=st.integers(min_value=1, max_value=6),
    seed=seeds,
    dtype=dtypes,
)
def test_adagrad_sparse_step_conforms(spec, num_rows, touched, dim, seed, dtype):
    """The single-gather/single-scatter sparse Adagrad must match the
    historical three-pass update on coalesced (duplicate-free sorted)
    rows — the form ``SparseGrad`` guarantees."""
    be = make_backend(spec)
    touched = min(touched, num_rows)
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((num_rows, dim)).astype(dtype)
    state = np.abs(rng.standard_normal((num_rows, dim))).astype(dtype)
    rows = np.sort(rng.choice(num_rows, size=touched, replace=False))
    values = rng.standard_normal((touched, dim)).astype(dtype)
    w_ref, s_ref = weight.copy(), state.copy()
    reference().adagrad_sparse_step(w_ref, s_ref, rows, values, 0.05, 1e-10, None)
    be.adagrad_sparse_step(weight, state, rows, values, 0.05, 1e-10, make_workspace(be))
    assert_backend_matches(be, weight, w_ref, "sparse adagrad weight")
    assert_backend_matches(be, state, s_ref, "sparse adagrad state")


@backend_specs
@settings(max_examples=15, deadline=None)
@given(
    num_rows=st.integers(min_value=1, max_value=40),
    touched=st.integers(min_value=1, max_value=12),
    dim=st.integers(min_value=1, max_value=6),
    seed=seeds,
    dtype=dtypes,
)
def test_sgd_sparse_step_conforms(spec, num_rows, touched, dim, seed, dtype):
    be = make_backend(spec)
    touched = min(touched, num_rows)
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((num_rows, dim)).astype(dtype)
    rows = np.sort(rng.choice(num_rows, size=touched, replace=False))
    values = rng.standard_normal((touched, dim)).astype(dtype)
    w_ref = weight.copy()
    reference().sgd_sparse_step(w_ref, rows, values, 0.05, None)
    be.sgd_sparse_step(weight, rows, values, 0.05, make_workspace(be))
    assert_backend_matches(be, weight, w_ref, "sparse sgd weight")
