"""Shared machinery for the backend conformance suite.

Every registered backend is validated against the ``"numpy"`` reference:
*bit-identically* (``np.array_equal``) when the backend claims
``bit_identical``, within its declared :meth:`Backend.tolerance` bound
otherwise.

Backends under test are named by *specs* so hypothesis tests can
parametrize over plain strings (function-scoped fixtures don't mix with
``@given``):

* every name in :func:`repro.core.known_backends` (``"numpy"``,
  ``"fused"``, ``"threaded"``, plus anything a plugin registered), and
* ``"threaded-forced"`` — a :class:`ThreadedBackend` built with
  ``workers=2, min_rows=4`` so the row-split GEMM path actually runs
  even on single-core CI machines and on the tiny shapes hypothesis
  draws (the registered instance would fall through to serial there).

``REPRO_CONFORMANCE_BACKENDS`` (comma-separated specs) restricts the
suite to a subset — the CI matrix runs one backend per job.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core import Workspace, get_backend, known_backends
from repro.core.backends import Backend, reference_backend
from repro.core.backends.threaded import ThreadedBackend

DTYPES = [np.float64, np.float32]

_DEFAULT_SPECS = list(known_backends()) + ["threaded-forced"]
_env = os.environ.get("REPRO_CONFORMANCE_BACKENDS", "")
BACKEND_SPECS = [s.strip() for s in _env.split(",") if s.strip()] or _DEFAULT_SPECS

_INSTANCES: dict[str, Backend] = {}


def make_backend(spec: str) -> Backend:
    """The backend instance under test for a spec (cached — the forced
    threaded instance keeps one pool for the whole suite).

    ``REPRO_BENCH_FORCE_THREADED`` (the same switch the benchmark suite
    honors) upgrades the plain ``"threaded"`` spec to the explicit
    2-worker instance, so the CI ``threaded`` matrix row exercises the
    row-split path instead of silently resolving to fused on
    single-core runners.
    """
    if spec not in _INSTANCES:
        force = bool(os.environ.get("REPRO_BENCH_FORCE_THREADED"))
        if spec == "threaded-forced" or (spec == "threaded" and force):
            _INSTANCES[spec] = ThreadedBackend(workers=2, min_rows=4)
        else:
            _INSTANCES[spec] = get_backend(spec)
    return _INSTANCES[spec]


def make_workspace(backend: Backend) -> Workspace | None:
    """A fresh arena when the backend needs one, else ``None``."""
    return Workspace() if backend.uses_workspace else None


def reference() -> Backend:
    return reference_backend()


def assert_backend_matches(backend: Backend, actual, expected, err: str = "") -> None:
    """The conformance contract for one array: exact when the backend
    claims bit-identity, tolerance-bounded otherwise (dtype always)."""
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    assert actual.dtype == expected.dtype, (
        f"{err}: dtype {actual.dtype} != reference {expected.dtype}"
    )
    if backend.bit_identical:
        np.testing.assert_array_equal(actual, expected, err_msg=err)
    else:
        rtol, atol = backend.tolerance(expected.dtype)
        np.testing.assert_allclose(actual, expected, rtol=rtol, atol=atol, err_msg=err)


def assert_scalar_matches(backend: Backend, actual: float, expected: float,
                          err: str = "") -> None:
    if backend.bit_identical:
        assert actual == expected, f"{err}: {actual!r} != {expected!r}"
    else:
        rtol, atol = backend.tolerance(np.float64)
        assert np.isclose(actual, expected, rtol=rtol, atol=atol), (
            f"{err}: {actual!r} !~ {expected!r}"
        )


def rand(seed: int, shape, dtype) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(shape).astype(dtype)
