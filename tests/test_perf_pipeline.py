"""Tests for repro.perf.pipeline: the headline paper shapes must hold.

These tests pin the qualitative reproduction targets from DESIGN.md: who
wins, in which regime, and roughly by how much.  They are deliberately
tolerant on magnitudes but strict on orderings and crossovers.
"""

import pytest

from repro.configs import (
    PRODUCTION_MODELS,
    PRODUCTION_SETUPS,
    make_test_model,
)
from repro.hardware import BIG_BASIN, DUAL_SOCKET_CPU, ZION, CapacityError
from repro.perf import (
    Calibration,
    cpu_cluster_throughput,
    gpu_server_throughput,
)
from repro.placement import PlacementStrategy, auto_plan, plan_gpu_memory, plan_placement


def _cpu(model, **kw):
    args = dict(batch_per_trainer=200, num_trainers=1, num_sparse_ps=1, num_dense_ps=1)
    args.update(kw)
    return cpu_cluster_throughput(model, **args)


def _gpu(model, batch=1600, platform=BIG_BASIN, strategy=PlacementStrategy.GPU_MEMORY, **kw):
    plan = plan_placement(
        model, platform, strategy,
        num_ps=kw.pop("num_ps", 0) or 0 if strategy is not PlacementStrategy.REMOTE_CPU else kw.pop("num_ps", 8),
        ps_platform=DUAL_SOCKET_CPU,
    )
    return gpu_server_throughput(model, batch, platform, plan, **kw)


class TestReportBasics:
    def test_report_fields(self):
        m = make_test_model(256, 16)
        r = _cpu(m)
        assert r.throughput > 0
        assert r.iteration_time_s > 0
        assert r.breakdown.total == pytest.approx(r.iteration_time_s)
        assert 0 <= min(r.utilizations.values()) and max(r.utilizations.values()) <= 1
        assert "ex/s" in r.describe()

    def test_gpu_report_fields(self):
        m = make_test_model(256, 16)
        r = _gpu(m)
        assert r.throughput > 0
        assert r.perf_per_watt == pytest.approx(r.throughput / r.power.nameplate_watts)

    def test_invalid_args_rejected(self):
        m = make_test_model(64, 4)
        with pytest.raises(ValueError):
            _cpu(m, batch_per_trainer=0)
        plan = plan_gpu_memory(m, BIG_BASIN)
        with pytest.raises(ValueError):
            gpu_server_throughput(m, 0, BIG_BASIN, plan)
        with pytest.raises(ValueError):
            gpu_server_throughput(m, 100, DUAL_SOCKET_CPU, plan)


class TestTableIIIShapes:
    """GPU/CPU throughput and efficiency ratios vs the paper's Table III."""

    @pytest.fixture(scope="class")
    def ratios(self):
        out = {}
        for name, setup in PRODUCTION_SETUPS.items():
            m = PRODUCTION_MODELS[name]()
            cpu = cpu_cluster_throughput(
                m,
                setup.cpu_batch_per_trainer,
                setup.cpu_trainers,
                setup.cpu_sparse_ps,
                setup.cpu_dense_ps,
            )
            if setup.gpu_placement is PlacementStrategy.REMOTE_CPU:
                plan = plan_placement(
                    m, BIG_BASIN, setup.gpu_placement,
                    num_ps=setup.gpu_remote_ps, ps_platform=DUAL_SOCKET_CPU,
                )
            else:
                plan = plan_placement(m, BIG_BASIN, setup.gpu_placement)
            gpu = gpu_server_throughput(m, setup.gpu_batch, BIG_BASIN, plan)
            out[name] = (
                gpu.throughput / cpu.throughput,
                gpu.perf_per_watt / cpu.perf_per_watt,
            )
        return out

    def test_m1_gpu_wins_clearly(self, ratios):
        thr, eff = ratios["M1_prod"]
        assert 1.5 < thr < 3.5  # paper: 2.25
        assert eff > 2.0  # paper: 4.3

    def test_m2_gpu_near_parity(self, ratios):
        thr, eff = ratios["M2_prod"]
        assert 0.6 < thr < 1.3  # paper: 0.85
        assert eff > 1.5  # paper: 2.8

    def test_m3_gpu_loses(self, ratios):
        thr, eff = ratios["M3_prod"]
        assert 0.4 < thr < 0.9  # paper: 0.67
        assert eff < 1.0  # paper: 0.43 — GPU is power-inefficient for M3

    def test_ordering_matches_paper(self, ratios):
        assert ratios["M1_prod"][0] > ratios["M2_prod"][0] > ratios["M3_prod"][0]


class TestFig10Shapes:
    def test_gpu_always_faster(self):
        for nd in (64, 4096):
            for ns in (4, 128):
                m = make_test_model(nd, ns)
                assert _gpu(m).throughput > _cpu(m).throughput

    def test_gpu_efficiency_best_for_dense_heavy(self):
        dense_heavy = make_test_model(4096, 4)
        sparse_heavy = make_test_model(64, 128)
        r_dense = _gpu(dense_heavy).throughput / _cpu(dense_heavy).throughput
        r_sparse = _gpu(sparse_heavy).throughput / _cpu(sparse_heavy).throughput
        assert r_dense > r_sparse

    def test_sparse_heavy_corner_loses_on_power(self):
        """§V-A: GPU perf/watt can fall below CPU for sparse-heavy models."""
        m = make_test_model(64, 128)
        ratio = _gpu(m).throughput / _cpu(m).throughput
        assert ratio < 7.3  # Big Basin power premium

    def test_throughput_decreases_with_more_features(self):
        base = _gpu(make_test_model(64, 4)).throughput
        more_sparse = _gpu(make_test_model(64, 128)).throughput
        more_dense = _gpu(make_test_model(4096, 4)).throughput
        assert more_sparse < base and more_dense < base


class TestFig11Shapes:
    def test_cpu_has_interior_optimum(self):
        m = make_test_model(1024, 64)
        batches = (50, 100, 200, 400, 800, 1600)
        thr = [_cpu(m, batch_per_trainer=b).throughput for b in batches]
        peak = thr.index(max(thr))
        assert 0 < peak < len(batches) - 1  # not monotone either way
        assert thr[-1] < max(thr) * 0.8  # clear decline past optimum

    def test_gpu_scales_then_saturates(self):
        m = make_test_model(1024, 64)
        batches = (100, 400, 1600, 6400, 25600)
        thr = [_gpu(m, batch=b).throughput for b in batches]
        assert all(b > a for a, b in zip(thr, thr[1:]))  # monotone rise
        early_gain = thr[1] / thr[0]
        late_gain = thr[-1] / thr[-2]
        assert late_gain < early_gain * 0.5  # saturating


class TestFig12Shapes:
    def test_cpu_flat_with_hash_size(self):
        thr = []
        for h in (100_000, 1_000_000, 5_000_000):
            m = make_test_model(1024, 64, hash_size=h)
            thr.append(_cpu(m, num_sparse_ps=2).throughput)
        assert max(thr) / min(thr) < 1.05

    def test_gpu_drops_when_spilling(self):
        fits = make_test_model(1024, 64, hash_size=3_000_000)
        spills = make_test_model(1024, 64, hash_size=12_000_000)
        r_fit = gpu_server_throughput(fits, 1600, BIG_BASIN, auto_plan(fits, BIG_BASIN))
        r_spill = gpu_server_throughput(spills, 1600, BIG_BASIN, auto_plan(spills, BIG_BASIN))
        assert r_spill.throughput < 0.6 * r_fit.throughput

    def test_gpu_eventually_infeasible(self):
        m = make_test_model(1024, 64, hash_size=60_000_000)
        with pytest.raises(CapacityError):
            auto_plan(m, BIG_BASIN)


class TestFig13Shapes:
    def test_flat_until_256_then_cpu_drops_faster(self):
        mlps = ("64^2", "256^3", "512^3", "1024^3", "2048^4")
        cpu, gpu = [], []
        for mlp in mlps:
            m = make_test_model(512, 64, mlp=mlp)
            cpu.append(_cpu(m).throughput)
            gpu.append(_gpu(m).throughput)
        cpu_rel = [v / cpu[0] for v in cpu]
        gpu_rel = [v / gpu[0] for v in gpu]
        # little movement up to 256^3
        assert cpu_rel[1] > 0.9 and gpu_rel[1] > 0.8
        # large MLPs: CPU falls further than GPU
        assert cpu_rel[-1] < gpu_rel[-1]
        assert cpu_rel[-1] < 0.25


class TestFig14Shapes:
    @pytest.fixture(scope="class")
    def m2(self):
        return PRODUCTION_MODELS["M2_prod"]()

    def _thr(self, m2, platform, strategy):
        plan = plan_placement(
            m2, platform, strategy, num_ps=8, ps_platform=DUAL_SOCKET_CPU
        )
        return gpu_server_throughput(m2, 3200, platform, plan).throughput

    def test_big_basin_ordering(self, m2):
        gpu_mem = self._thr(m2, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
        sys_mem = self._thr(m2, BIG_BASIN, PlacementStrategy.SYSTEM_MEMORY)
        remote = self._thr(m2, BIG_BASIN, PlacementStrategy.REMOTE_CPU)
        assert gpu_mem > sys_mem > remote
        # paper: system memory ~4x lower than GPU memory on Big Basin
        assert 2.0 < gpu_mem / sys_mem < 8.0

    def test_zion_ordering(self, m2):
        gpu_mem = self._thr(m2, ZION, PlacementStrategy.GPU_MEMORY)
        sys_mem = self._thr(m2, ZION, PlacementStrategy.SYSTEM_MEMORY)
        remote = self._thr(m2, ZION, PlacementStrategy.REMOTE_CPU)
        assert sys_mem > gpu_mem > remote

    def test_zion_gpu_mem_much_lower_than_big_basin(self, m2):
        """§VI-B: no GPU-GPU direct link on prototype Zion."""
        bb = self._thr(m2, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
        zion = self._thr(m2, ZION, PlacementStrategy.GPU_MEMORY)
        assert zion < 0.7 * bb

    def test_zion_sysmem_is_global_best(self, m2):
        zion_sys = self._thr(m2, ZION, PlacementStrategy.SYSTEM_MEMORY)
        bb_gpu = self._thr(m2, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
        assert zion_sys >= 0.95 * bb_gpu

    def test_remote_similar_on_both(self, m2):
        bb = self._thr(m2, BIG_BASIN, PlacementStrategy.REMOTE_CPU)
        zion = self._thr(m2, ZION, PlacementStrategy.REMOTE_CPU)
        assert zion == pytest.approx(bb, rel=0.3)
        assert zion >= bb  # "only slightly better"


class TestMultiNodeAndZionForM3:
    def test_zion_beats_multi_node_big_basin_for_m3(self):
        """§VI-B: Zion is far more efficient than multi-Big-Basin for M3."""
        m3 = PRODUCTION_MODELS["M3_prod"]()
        with pytest.raises(CapacityError):
            plan_gpu_memory(m3, BIG_BASIN, num_nodes=1)
        multi = plan_gpu_memory(m3, BIG_BASIN, num_nodes=2)
        multi_r = gpu_server_throughput(m3, 800, BIG_BASIN, multi)
        zion_plan = plan_placement(m3, ZION, PlacementStrategy.SYSTEM_MEMORY)
        zion_r = gpu_server_throughput(m3, 800, ZION, zion_plan)
        assert zion_r.throughput > 3 * multi_r.throughput
        assert zion_r.perf_per_watt > 5 * multi_r.perf_per_watt


class TestCalibrationValidation:
    def test_bad_calibration_rejected(self):
        with pytest.raises(ValueError):
            Calibration(cpu_parallel_efficiency=0.0)
        with pytest.raises(ValueError):
            Calibration(collective_inefficiency=0.5)
        with pytest.raises(ValueError):
            Calibration(cpu_llc_bytes=-1)

    def test_calibration_is_a_real_knob(self):
        m = make_test_model(1024, 16)
        slow = Calibration(cpu_parallel_efficiency=0.3)
        fast = Calibration(cpu_parallel_efficiency=0.9)
        assert (
            cpu_cluster_throughput(m, 200, 1, 1, 1, calib=fast).throughput
            > cpu_cluster_throughput(m, 200, 1, 1, 1, calib=slow).throughput
        )
