"""Cross-validation of the functional hot-row caches (repro.serving.cache)
against the analytic hit-rate models (repro.placement.cache), plus cache
data-structure invariants and the quantized-cache round-trip property.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.configs import make_test_model
from repro.core import EmbeddingTable, QuantizedEmbeddingTable, TableSpec
from repro.core.embedding import EmbeddingBagCollection
from repro.core.model import DLRM
from repro.data.distributions import sample_discrete_zipf
from repro.experiments.ext_serving import steady_state_hit_rate
from repro.placement import lru_hit_rate, zipf_hit_rate
from repro.serving import (
    CacheBank,
    CacheConfig,
    CachedEmbeddingBagCollection,
    HotRowCache,
    ServingConfig,
    TrafficConfig,
    generate_requests,
    requests_to_batch,
    simulate_serving,
)

MODEL = make_test_model(64, 8, hash_size=2000)


# -- measured vs analytic hit rates -------------------------------------------


class TestAnalyticCrossValidation:
    def test_lru_matches_che_approximation(self):
        """Measured steady-state LRU hit rate vs the Che characteristic-time
        prediction, across capacity ratios."""
        for n, c in ((2000, 100), (2000, 400), (20_000, 2000)):
            measured = steady_state_hit_rate("lru", n, c, skew=1.05,
                                             accesses=120_000, seed=1)
            predicted = lru_hit_rate(n, c, 1.05)
            assert measured == pytest.approx(predicted, abs=0.02), (n, c)

    def test_lfu_matches_topk_mass(self):
        """Measured steady-state LFU hit rate vs the top-k Zipf mass.  LFU
        converges to caching exactly the most popular rows, but finite
        windows keep it slightly below the ideal — top-k is an upper
        bound."""
        for n, c in ((2000, 200), (20_000, 2000)):
            measured = steady_state_hit_rate("lfu", n, c, skew=1.05,
                                             accesses=120_000, seed=1)
            predicted = zipf_hit_rate(n, c, 1.05)
            assert measured <= predicted + 0.01, (n, c)
            assert measured == pytest.approx(predicted, abs=0.04), (n, c)

    def test_lfu_beats_lru_on_skewed_traffic(self):
        lru = steady_state_hit_rate("lru", 5000, 500, accesses=100_000, seed=2)
        lfu = steady_state_hit_rate("lfu", 5000, 500, accesses=100_000, seed=2)
        assert lfu > lru

    def test_engine_measured_within_5pct_of_prediction(self):
        """End-to-end acceptance: serving-sim measured hit rate within 5%
        (relative) of the analytic prediction."""
        cfg = ServingConfig(cache=CacheConfig(capacity_rows=200, policy="lru"))
        res = simulate_serving(
            MODEL, TrafficConfig(qps=4000, duration_s=2.0), cfg
        )
        assert res.predicted_cache_hit_rate > 0.3
        rel = abs(res.measured_cache_hit_rate - res.predicted_cache_hit_rate)
        rel /= res.predicted_cache_hit_rate
        assert rel < 0.05

    def test_raw_and_warm_bracket_steady_state(self):
        """Finite-window raw (pessimistic) and warm (optimistic) rates
        bracket the steady-state measurement."""
        cfg = ServingConfig(cache=CacheConfig(capacity_rows=200, policy="lru"))
        res = simulate_serving(MODEL, TrafficConfig(qps=4000, duration_s=1.0), cfg)
        steady = steady_state_hit_rate("lru", 2000, 200, accesses=120_000)
        assert res.measured_cache_hit_rate <= steady + 0.02
        assert steady <= res.warm_cache_hit_rate + 0.02


# -- HotRowCache invariants ---------------------------------------------------


class TestHotRowCache:
    def test_capacity_never_exceeded(self):
        cache = HotRowCache(10, "lru")
        cache.access(np.arange(100))
        assert len(cache) == 10

    def test_lru_evicts_least_recent(self):
        cache = HotRowCache(2, "lru")
        cache.access(np.array([1, 2]))
        cache.access(np.array([1]))  # 2 is now LRU
        cache.access(np.array([3]))  # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_lfu_evicts_least_frequent(self):
        cache = HotRowCache(2, "lfu")
        cache.access(np.array([1, 1, 1, 2]))
        cache.access(np.array([3]))  # evicts 2 (freq 1) not 1 (freq 3)
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_hit_miss_accounting(self):
        cache = HotRowCache(4, "lru")
        hits = cache.access(np.array([5, 5, 6, 5]))
        assert hits == 2
        assert cache.hits == 2 and cache.misses == 2
        assert cache.compulsory_misses == 2  # rows 5 and 6, first touches
        assert cache.hit_rate == 0.5
        assert cache.warm_hit_rate == 1.0  # every non-first touch hit

    def test_invalidate_keeps_counters(self):
        cache = HotRowCache(4, "lru")
        cache.access(np.array([1, 1]))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.hits == 1 and cache.misses == 1
        # post-invalidation re-miss is NOT compulsory (row seen before)
        cache.access(np.array([1]))
        assert cache.misses == 2 and cache.compulsory_misses == 1

    def test_zero_capacity_never_stores(self):
        cache = HotRowCache(0, "lru")
        cache.access(np.array([1, 1, 1]))
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 3

    def test_get_rows_returns_exact_rows(self, rng):
        weights = rng.normal(size=(50, 8))
        cache = HotRowCache(16, "lru")
        rows = np.array([3, 7, 3, 11])
        out = cache.get_rows(rows, fetch=lambda r: weights[r], quant_bits=None)
        np.testing.assert_allclose(out, weights[rows])
        # hit path returns the cached copy, still exact
        out2 = cache.get_rows(rows, fetch=lambda r: weights[r], quant_bits=None)
        np.testing.assert_allclose(out2, weights[rows])
        assert cache.hits == 5  # one dup in first call, all four in second

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=1, max_value=32),
        st.sampled_from(["lru", "lfu"]),
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200),
    )
    def test_property_capacity_and_conservation(self, capacity, policy, rows):
        cache = HotRowCache(capacity, policy)
        hits = cache.access(np.array(rows, dtype=np.int64))
        assert len(cache) <= capacity
        assert hits == cache.hits
        assert cache.hits + cache.misses == len(rows)
        assert 0 <= cache.compulsory_misses <= cache.misses
        # every distinct row's first access is exactly one compulsory miss
        assert cache.compulsory_misses == len(set(rows))


# -- CacheBank / CachedEmbeddingBagCollection ---------------------------------


class TestCacheBankAndCachedEBC:
    def test_bank_capacity_clamped_to_hash_size(self):
        bank = CacheBank(MODEL, CacheConfig(capacity_rows=10_000))
        for spec in MODEL.tables:
            assert bank.caches[spec.name].capacity == spec.hash_size

    def test_bank_access_batch_counts(self):
        bank = CacheBank(MODEL, CacheConfig(capacity_rows=100))
        reqs = generate_requests(MODEL, TrafficConfig(qps=200, duration_s=0.2))
        batch = requests_to_batch(reqs, MODEL)
        hits = bank.access_batch(batch.sparse)
        assert bank.accesses == sum(r.total_lookups for r in reqs)
        assert hits == bank.hits

    def test_cached_ebc_matches_plain_forward_fp32(self):
        model = DLRM(MODEL, rng=0)
        cached = CachedEmbeddingBagCollection(
            model.embeddings, CacheConfig(capacity_rows=300)
        )
        reqs = generate_requests(MODEL, TrafficConfig(qps=500, duration_s=0.2))
        batch = requests_to_batch(reqs, MODEL)
        got = cached.forward(batch.sparse)
        want = model.embeddings.forward(batch.sparse, training=False)
        for name in want:
            np.testing.assert_allclose(got[name], want[name], atol=1e-12)

    def test_cached_ebc_quantized_close(self):
        model = DLRM(MODEL, rng=0)
        cached = CachedEmbeddingBagCollection(
            model.embeddings, CacheConfig(capacity_rows=300, bits=8)
        )
        reqs = generate_requests(MODEL, TrafficConfig(qps=500, duration_s=0.2))
        batch = requests_to_batch(reqs, MODEL)
        got = cached.forward(batch.sparse)
        want = model.embeddings.forward(batch.sparse, training=False)
        for name in want:
            err = np.abs(got[name] - want[name]).max()
            assert 0 < err < 0.1  # lossy hits, exact misses

    def test_row_bytes_shrink_with_bits(self):
        fp32 = CacheConfig(capacity_rows=10).row_bytes(64)
        int8 = CacheConfig(capacity_rows=10, bits=8).row_bytes(64)
        int4 = CacheConfig(capacity_rows=10, bits=4).row_bytes(64)
        assert fp32 > int8 > int4


# -- quantized-table round-trip property (serving-cache backing store) --------


class TestQuantizedRoundTripProperty:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=16),
        st.sampled_from([2, 4, 8]),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_gather_roundtrip_within_half_step(self, rows, dim, bits, seed):
        """QuantizedEmbeddingTable.gather reconstructs every row within
        half a quantization step of the original weights."""
        rng = np.random.default_rng(seed)
        spec = TableSpec(name="t", hash_size=rows, dim=dim, mean_lookups=1.0)
        table = EmbeddingTable(spec, rng)
        q = QuantizedEmbeddingTable(table, bits=bits)
        idx = np.arange(rows, dtype=np.int64)
        recon = q.gather(idx)
        step = q.scales[:, None]
        assert np.all(np.abs(recon - table.weight) <= 0.5 * step + 1e-12)

    def test_gather_matches_cache_payload_roundtrip(self, rng):
        """The hot-row cache's quantize-on-fill/dequantize-on-hit path
        agrees with QuantizedEmbeddingTable.gather row by row."""
        spec = TableSpec(name="t", hash_size=32, dim=8, mean_lookups=1.0)
        table = EmbeddingTable(spec, rng)
        q = QuantizedEmbeddingTable(table, bits=8)
        cache = HotRowCache(32, "lru")
        idx = np.arange(32, dtype=np.int64)
        via_cache = cache.get_rows(
            idx, fetch=lambda r: table.weight[r], quant_bits=8
        )
        np.testing.assert_allclose(via_cache, q.gather(idx), atol=1e-12)
