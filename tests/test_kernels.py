"""Unit tests for repro.core.kernels and the batched embedding path.

The hypothesis-driven naive-vs-fast *equivalence* tests that historically
lived here moved to the parametrized backend conformance suite
(``tests/conformance/test_conformance_sparse.py``).  What remains is
kernel-internal: edge-case handling (empty segments, bounds checks,
dtype preservation), the batched embedding forward/backward bookkeeping,
safe-bound certificates, and compute-dtype propagation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DLRM,
    Adagrad,
    EmbeddingBagCollection,
    EmbeddingTable,
    InteractionType,
    MLPSpec,
    ModelConfig,
    PoolingType,
    RaggedIndices,
    TableSpec,
    Trainer,
    hash_raw_ids,
    kernels,
    uniform_tables,
)
from repro.data import SyntheticDataGenerator

from helpers import make_batch


# ---------------------------------------------------------------------------
# kernel edge cases
# ---------------------------------------------------------------------------


class TestSegmentOps:
    def test_empty_segments_produce_zeros(self):
        data = np.arange(6, dtype=np.float64).reshape(3, 2)
        offsets = np.array([0, 0, 2, 2, 3, 3, 3])
        out = kernels.segment_sum(data, offsets)
        assert out.shape == (6, 2)
        assert np.array_equal(out[0], [0, 0])
        assert np.array_equal(out[1], data[0] + data[1])
        assert np.array_equal(out[3], data[2])
        assert np.all(out[[2, 4, 5]] == 0)

    def test_segment_mean_divides_by_length(self):
        data = np.array([[2.0], [4.0], [9.0]])
        offsets = np.array([0, 2, 2, 3])
        out = kernels.segment_mean(data, offsets)
        assert np.array_equal(out, [[3.0], [0.0], [9.0]])

    def test_offsets_mismatch_rejected(self):
        with pytest.raises(ValueError, match="must equal data length"):
            kernels.segment_sum(np.zeros((3, 2)), np.array([0, 1]))


class TestCoalesce:
    def test_deterministic_across_runs(self):
        # The cache + parallel-sweep contract needs run-to-run bit identity.
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 50, size=500)
        grads = rng.standard_normal((500, 8))
        first = kernels.coalesce_rows(indices, grads)
        second = kernels.coalesce_rows(indices.copy(), grads.copy())
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_preserves_float32(self):
        rows, summed = kernels.coalesce_rows(
            np.array([1, 1, 2]), np.ones((3, 2), dtype=np.float32)
        )
        assert summed.dtype == np.float32

    def test_empty(self):
        rows, summed = kernels.coalesce_rows(
            np.empty(0, dtype=np.int64), np.empty((0, 3))
        )
        assert len(rows) == 0 and summed.shape == (0, 3)


class TestGatherPool:
    """Edge cases of the fused forward (``S @ weight``)."""

    def test_bounds_checked_by_default(self):
        weight = np.zeros((4, 2))
        with pytest.raises(IndexError, match="out of range"):
            kernels.gather_pool(weight, np.array([0, 4]), np.array([0, 2]))
        with pytest.raises(IndexError, match="out of range"):
            kernels.gather_pool(weight, np.array([0, -1]), np.array([0, 2]))

    def test_offsets_mismatch_rejected(self):
        with pytest.raises(ValueError, match="must equal values length"):
            kernels.gather_pool(np.zeros((4, 2)), np.array([0, 1]), np.array([0, 1]))

    def test_empty_values_produce_zeros(self):
        out = kernels.gather_pool(
            np.ones((4, 2)), np.empty(0, dtype=np.int64), np.array([0, 0, 0])
        )
        assert out.shape == (2, 2) and np.all(out == 0)

    def test_float32_weight_preserved(self):
        weight = np.ones((4, 2), dtype=np.float32)
        out = kernels.gather_pool(weight, np.array([1, 2]), np.array([0, 2]))
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, [[2.0, 2.0]])


class TestExpandCoalesce:
    """Edge cases of the fused backward (``T @ grad_out``)."""

    def test_empty(self):
        rows, summed = kernels.expand_coalesce(
            np.empty(0, dtype=np.int64), np.array([0, 0]), np.zeros((2, 3))
        )
        assert len(rows) == 0 and summed.shape == (0, 3)

    def test_float32_preserved(self):
        rows, summed = kernels.expand_coalesce(
            np.array([3, 3, 1]),
            np.array([2, 1]),
            np.ones((2, 2), dtype=np.float32),
        )
        assert summed.dtype == np.float32
        assert np.array_equal(rows, [1, 3])
        np.testing.assert_array_equal(summed, [[1.0, 1.0], [2.0, 2.0]])


class TestTruncate:
    def test_noop_when_under_cap(self):
        values = np.array([1, 2, 3])
        offsets = np.array([0, 2, 3])
        out_v, out_o = kernels.truncate_ragged(values, offsets, 5)
        assert out_v is values  # fast path: no copy
        assert np.array_equal(out_o, offsets)

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            kernels.truncate_ragged(np.array([1]), np.array([0, 1]), 0)

    def test_position_in_segment(self):
        offsets = np.array([0, 3, 3, 5])
        assert np.array_equal(
            kernels.position_in_segment(offsets), [0, 1, 2, 0, 1]
        )


class TestCheckBounds:
    def test_in_range_passes(self):
        kernels.check_bounds(np.array([0, 4, 9]), 10)

    def test_negative_caught(self):
        with pytest.raises(IndexError, match="out of range"):
            kernels.check_bounds(np.array([0, -1]), 10)

    def test_overflow_caught(self):
        with pytest.raises(IndexError, match="out of range"):
            kernels.check_bounds(np.array([10]), 10)

    def test_empty_passes(self):
        kernels.check_bounds(np.empty(0, dtype=np.int64), 1)


# ---------------------------------------------------------------------------
# embedding integration: batched path, safe_bound, dtype
# ---------------------------------------------------------------------------


def _ragged(per_sample, **kw):
    return RaggedIndices.from_lists(
        [np.array(s, dtype=np.int64) for s in per_sample], **kw
    )


class TestBatchedForward:
    def _shared_collection(self, pooling=PoolingType.SUM):
        specs = (TableSpec("shared", hash_size=30, dim=4),)
        mapping = {"f_a": "shared", "f_b": "shared", "f_c": "shared"}
        return EmbeddingBagCollection(
            specs, np.random.default_rng(0), pooling=pooling, feature_to_table=mapping
        )

    def test_fused_gather_matches_per_feature_forward(self):
        coll = self._shared_collection()
        ref = self._shared_collection()
        batch = {
            "f_a": _ragged([[1, 2], [3]]),
            "f_b": _ragged([[], [4, 4, 5]]),
            "f_c": _ragged([[29], []]),
        }
        fused = coll.forward(batch)
        table = ref.tables["shared"]
        for name in ("f_a", "f_b", "f_c"):
            expected = table.forward(batch[name])
            assert np.array_equal(fused[name], expected)

    def test_backward_bookkeeping_with_shared_table(self):
        coll = self._shared_collection()
        batch = {
            "f_a": _ragged([[1], [2]]),
            "f_b": _ragged([[1], [3]]),
            "f_c": _ragged([[2, 2], []]),
        }
        coll.forward(batch)
        grads = {
            name: np.full((2, 4), float(i + 1))
            for i, name in enumerate(("f_a", "f_b", "f_c"))
        }
        coll.backward(grads)
        grad = coll.tables["shared"].pop_grad()
        # rows touched: 1 (f_a + f_b), 2 (f_a + 2x f_c), 3 (f_b)
        assert np.array_equal(grad.rows, [1, 2, 3])
        assert np.array_equal(grad.values[0], np.full(4, 1.0 + 2.0))
        assert np.array_equal(grad.values[1], np.full(4, 1.0 + 3.0 + 3.0))
        assert np.array_equal(grad.values[2], np.full(4, 2.0))

    def test_mean_pooling_fused_matches_serial(self):
        coll = self._shared_collection(pooling=PoolingType.MEAN)
        ref = self._shared_collection(pooling=PoolingType.MEAN)
        batch = {
            "f_a": _ragged([[1, 2, 3], []]),
            "f_b": _ragged([[4], [5, 6]]),
            "f_c": _ragged([[], []]),
        }
        fused = coll.forward(batch)
        for name, ind in batch.items():
            assert np.array_equal(fused[name], ref.tables["shared"].forward(ind))


class TestSafeBound:
    def test_out_of_range_raises_without_certificate(self):
        table = EmbeddingTable(TableSpec("t", hash_size=8, dim=2), np.random.default_rng(0))
        with pytest.raises(IndexError, match="table t"):
            table.forward(_ragged([[8]]))
        with pytest.raises(IndexError):
            table.forward(_ragged([[-1]]))

    def test_certificate_skips_rescan(self):
        table = EmbeddingTable(TableSpec("t", hash_size=8, dim=2), np.random.default_rng(0))
        ind = _ragged([[0, 7], [3]], safe_bound=8)
        out = table.forward(ind)
        assert out.shape == (2, 2)

    def test_insufficient_certificate_still_checked(self):
        # safe_bound larger than the table: the certificate proves nothing,
        # so the defensive scan must still run and catch the overflow.
        table = EmbeddingTable(TableSpec("t", hash_size=8, dim=2), np.random.default_rng(0))
        with pytest.raises(IndexError):
            table.forward(_ragged([[9]], safe_bound=16))

    def test_hash_raw_ids_output_is_certified_range(self):
        hashed = hash_raw_ids(np.arange(1000), 17)
        assert hashed.min() >= 0 and hashed.max() < 17

    def test_truncate_propagates_certificate(self):
        ind = _ragged([[1, 2, 3, 4]], safe_bound=50)
        assert ind.truncate(2).safe_bound == 50

    def test_synthetic_batches_carry_certificates(self, tiny_config, tiny_generator):
        batch = tiny_generator.batch(8)
        for spec in tiny_config.tables:
            ind = batch.sparse[spec.name]
            assert ind.safe_bound is not None
            assert ind.safe_bound <= spec.hash_size


class TestComputeDtype:
    def _config(self, dtype):
        return ModelConfig(
            name=f"dtype-{dtype}",
            num_dense=6,
            tables=uniform_tables(3, 50, dim=4, mean_lookups=2.0),
            bottom_mlp=MLPSpec((8, 4)),
            top_mlp=MLPSpec((6,)),
            interaction=InteractionType.DOT,
            compute_dtype=dtype,
        )

    def test_float32_propagates_to_parameters_and_activations(self):
        config = self._config("float32")
        model = DLRM(config, rng=0)
        assert model.dtype == np.float32
        for param in model.dense_parameters():
            assert param.value.dtype == np.float32
        for table in model.embedding_tables():
            assert table.dtype == np.float32
        batch = make_batch(config, 16)
        logits = model.forward(batch)
        assert logits.dtype == np.float32

    def test_float32_sparse_grads_are_float32(self):
        config = self._config("float32")
        model = DLRM(config, rng=0)
        batch = make_batch(config, 16)
        trainer = Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
        )
        loss = trainer.train_step(batch)
        assert np.isfinite(loss)

    def test_float32_training_converges(self):
        config = self._config("float32")
        gen = SyntheticDataGenerator(config, rng=3, seed_teacher=True)
        model = DLRM(config, rng=0)
        trainer = Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
        )
        result = trainer.train(gen.batches(64), max_steps=60)
        assert result.smoothed_final_loss < result.loss_history[0]

    def test_float64_default_unchanged(self):
        config = self._config("float64")
        model = DLRM(config, rng=0)
        assert model.dtype == np.float64
        assert model.forward(make_batch(config, 8)).dtype == np.float64

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="compute_dtype"):
            self._config("float16")

    def test_float32_close_to_float64(self):
        c64, c32 = self._config("float64"), self._config("float32")
        m64, m32 = DLRM(c64, rng=0), DLRM(c32, rng=0)
        b64, b32 = make_batch(c64, 32), make_batch(c32, 32)
        out64 = m64.forward(b64)
        out32 = m32.forward(b32)
        np.testing.assert_allclose(out32, out64, rtol=2e-4, atol=2e-4)
