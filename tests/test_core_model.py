"""Tests for repro.core.model: the assembled DLRM."""

import numpy as np
import pytest

from repro.core import (
    DLRM,
    Adagrad,
    Batch,
    BCEWithLogitsLoss,
    InteractionType,
    MLPSpec,
    ModelConfig,
    uniform_tables,
)

from helpers import make_batch, numeric_grad_scalar


class TestBatch:
    def test_valid_batch(self, tiny_config, tiny_generator):
        batch = tiny_generator.batch(8)
        assert batch.size == 8
        assert batch.dense.shape == (8, tiny_config.num_dense)
        assert set(batch.sparse) == {t.name for t in tiny_config.tables}

    def test_total_lookups(self, tiny_generator):
        batch = tiny_generator.batch(16)
        assert batch.total_lookups() == sum(
            r.total_lookups for r in batch.sparse.values()
        )

    def test_label_count_mismatch_rejected(self, tiny_generator):
        good = tiny_generator.batch(4)
        with pytest.raises(ValueError):
            Batch(good.dense, good.sparse, np.zeros(3))

    def test_sparse_batch_mismatch_rejected(self, tiny_config, tiny_generator):
        b4 = tiny_generator.batch(4)
        b8 = tiny_generator.batch(8)
        with pytest.raises(ValueError):
            Batch(b4.dense, b8.sparse, b4.labels)


class TestDLRMForward:
    def test_logit_shape(self, tiny_config, tiny_generator):
        model = DLRM(tiny_config, rng=0)
        logits = model.forward(tiny_generator.batch(8))
        assert logits.shape == (8,)

    def test_deterministic_given_seed(self, tiny_config, tiny_generator):
        batch = tiny_generator.batch(8)
        l1 = DLRM(tiny_config, rng=3).forward(batch)
        l2 = DLRM(tiny_config, rng=3).forward(batch)
        np.testing.assert_array_equal(l1, l2)

    def test_concat_variant_works(self, concat_config):
        model = DLRM(concat_config, rng=0)
        batch = make_batch(concat_config, 8)
        assert model.forward(batch).shape == (8,)

    def test_wrong_dense_width_rejected(self, tiny_config, tiny_generator):
        model = DLRM(tiny_config, rng=0)
        batch = tiny_generator.batch(4)
        bad = Batch(np.zeros((4, tiny_config.num_dense + 1)), batch.sparse, batch.labels)
        with pytest.raises(ValueError):
            model.forward(bad)

    def test_predict_proba_in_unit_interval(self, tiny_config, tiny_generator):
        model = DLRM(tiny_config, rng=0)
        probs = model.predict_proba(tiny_generator.batch(32))
        assert np.all((probs > 0) & (probs < 1))

    def test_repeated_inference_does_not_leak_state(self, tiny_config, tiny_generator):
        model = DLRM(tiny_config, rng=0)
        for _ in range(3):
            model.predict_proba(tiny_generator.batch(4))
        for table in model.embeddings.tables.values():
            assert not table._saved


class TestDLRMBackward:
    @pytest.mark.parametrize("interaction", [InteractionType.DOT, InteractionType.CONCAT])
    def test_full_gradient_check(self, interaction):
        config = ModelConfig(
            name="gradcheck",
            num_dense=3,
            tables=uniform_tables(2, 12, dim=3, mean_lookups=2.0),
            bottom_mlp=MLPSpec((4, 3)),
            top_mlp=MLPSpec((4,)),
            interaction=interaction,
        )
        model = DLRM(config, rng=1)
        # Nudge biases off zero: an all-dead hidden layer otherwise leaves
        # pre-activations exactly on the ReLU kink, where the analytic
        # subgradient (0) and the central difference (slope 1/2) disagree.
        nudge = np.random.default_rng(9)
        for p in model.dense_parameters():
            if "bias" in p.name:
                p.value += nudge.normal(0.0, 0.05, size=p.value.shape)
        batch = make_batch(config, 4, seed=2)
        crit = BCEWithLogitsLoss()

        def loss():
            value = crit.forward(model.forward(batch), batch.labels)
            model._discard_forward_state()
            return value

        # dense parameters
        for p in model.dense_parameters():
            expected = numeric_grad_scalar(loss, p.value)
            model.zero_grad()
            value = crit.forward(model.forward(batch), batch.labels)
            model.backward(crit.backward())
            np.testing.assert_allclose(
                p.grad, expected, rtol=1e-4, atol=1e-7,
                err_msg=f"gradient mismatch for {p.name}",
            )
        # one embedding table
        table = model.embedding_tables()[0]
        expected = numeric_grad_scalar(loss, table.weight)
        model.zero_grad()
        crit.forward(model.forward(batch), batch.labels)
        model.backward(crit.backward())
        g = table.pop_grad()
        dense = np.zeros_like(table.weight)
        if g is not None:
            dense[g.rows] = g.values
        np.testing.assert_allclose(dense, expected, rtol=1e-4, atol=1e-7)

    def test_training_reduces_loss(self, tiny_config, tiny_generator):
        model = DLRM(tiny_config, rng=0)
        opt = Adagrad(model.dense_parameters(), model.embedding_tables(), lr=0.05)
        crit = BCEWithLogitsLoss()
        losses = []
        for _ in range(60):
            batch = tiny_generator.batch(64)
            opt.zero_grad()
            losses.append(crit.forward(model.forward(batch), batch.labels))
            model.backward(crit.backward())
            opt.step()
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) - 0.01


class TestDLRMState:
    def test_dense_state_roundtrip(self, tiny_config):
        a = DLRM(tiny_config, rng=0)
        b = DLRM(tiny_config, rng=1)
        b.set_dense_state(a.get_dense_state())
        for pa, pb in zip(a.dense_parameters(), b.dense_parameters()):
            np.testing.assert_array_equal(pa.value, pb.value)

    def test_state_shape_mismatch_rejected(self, tiny_config, concat_config):
        a = DLRM(tiny_config, rng=0)
        b = DLRM(concat_config, rng=0)
        with pytest.raises(ValueError):
            b.set_dense_state(a.get_dense_state())

    def test_num_parameters_matches_config(self, tiny_config):
        model = DLRM(tiny_config, rng=0)
        assert model.num_parameters() == tiny_config.total_parameters
