"""Tests for embedding-table sharing (paper §III-A.2)."""

import numpy as np
import pytest

from repro.core import (
    EmbeddingBagCollection,
    TableSpec,
    merge_shared_tables,
    uniform_tables,
)
from helpers import simple_ragged


def _tables():
    return (
        TableSpec("item_id", 1_000_000, dim=16, mean_lookups=1.0),
        TableSpec("last_items", 800_000, dim=16, mean_lookups=20.0),
        TableSpec("country", 200, dim=16, mean_lookups=1.0),
    )


class TestMergeSharedTables:
    def test_merged_table_properties(self):
        physical, mapping = merge_shared_tables(
            _tables(), groups=(("item_id", "last_items"),)
        )
        assert len(physical) == 2
        merged = next(t for t in physical if t.name == "item_id")
        # shared hash sizing: the max of the group
        assert merged.hash_size == 1_000_000
        # lookups: every feature still looks up
        assert merged.mean_lookups == pytest.approx(21.0)
        assert mapping == {
            "item_id": "item_id",
            "last_items": "item_id",
            "country": "country",
        }

    def test_size_reduction(self):
        tables = _tables()
        physical, _ = merge_shared_tables(tables, (("item_id", "last_items"),))
        before = sum(t.size_bytes for t in tables)
        after = sum(t.size_bytes for t in physical)
        assert after < before

    def test_truncation_merged(self):
        tables = (
            TableSpec("a", 100, dim=8, mean_lookups=5, truncation=8),
            TableSpec("b", 100, dim=8, mean_lookups=5, truncation=16),
        )
        physical, _ = merge_shared_tables(tables, (("a", "b"),))
        assert physical[0].truncation == 16

    def test_no_groups_identity(self):
        tables = _tables()
        physical, mapping = merge_shared_tables(tables, ())
        assert physical == tables
        assert all(mapping[t.name] == t.name for t in tables)

    @pytest.mark.parametrize("groups", [
        (("item_id",),),                     # singleton
        (("item_id", "nope"),),              # unknown feature
        (("item_id", "last_items"), ("last_items", "country")),  # overlap
    ])
    def test_invalid_groups_rejected(self, groups):
        with pytest.raises(ValueError):
            merge_shared_tables(_tables(), groups)

    def test_mixed_dims_rejected(self):
        tables = (
            TableSpec("a", 100, dim=8),
            TableSpec("b", 100, dim=16),
        )
        with pytest.raises(ValueError):
            merge_shared_tables(tables, (("a", "b"),))


class TestSharedCollectionTraining:
    def test_shared_collection_from_merge(self, rng):
        """The merge output drives a working shared EmbeddingBagCollection."""
        physical, mapping = merge_shared_tables(
            uniform_tables(2, 100, dim=4, mean_lookups=2, prefix="f"),
            groups=(("f_0", "f_1"),),
        )
        coll = EmbeddingBagCollection(physical, rng, feature_to_table=mapping)
        batch = {
            "f_0": simple_ragged([[1], [2]]),
            "f_1": simple_ragged([[3], [1]]),
        }
        out = coll.forward(batch)
        table = coll.tables["f_0"]
        np.testing.assert_allclose(out["f_0"][0], table.weight[1])
        np.testing.assert_allclose(out["f_1"][1], table.weight[1])
        # gradients from both features land in one physical table
        coll.backward({k: np.ones((2, 4)) for k in batch})
        grad = table.pop_grad()
        assert set(grad.rows) == {1, 2, 3}
