"""Tests for heterogeneous-fleet workload assignment."""

import pytest

from repro.fleet import (
    FleetAssignment,
    assign_fleet,
    sample_workload_population,
)
from repro.perf import Objective


@pytest.fixture(scope="module")
def population():
    return sample_workload_population(4, seed=3)


@pytest.fixture(scope="module")
def assignment(population) -> FleetAssignment:
    return assign_fleet(population, objective=Objective.PERF_PER_WATT)


class TestAssignFleet:
    def test_every_workload_assigned(self, population, assignment):
        assert len(assignment.assignments) == len(population)
        names = {a.model_name for a in assignment.assignments}
        assert names == {m.name for m in population}

    def test_chosen_meets_throughput_floor(self, assignment):
        for a in assignment.assignments:
            assert a.chosen.throughput >= a.cpu_baseline.throughput * (1 - 1e-9)

    def test_efficiency_gains_positive(self, assignment):
        """Hardware-aware assignment never does worse than the CPU policy
        (the CPU baseline is always a candidate)."""
        for a in assignment.assignments:
            assert a.efficiency_gain >= 1.0

    def test_gains_in_plausible_range(self, assignment):
        """Per-workload perf/watt gains should sit in the regime Table III
        and Figure 10 establish — roughly 1x to ~15x, not orders more."""
        for a in assignment.assignments:
            assert a.efficiency_gain < 30

    def test_fleet_saving_consistent(self, assignment):
        assert 0 <= assignment.power_saving_fraction < 1
        assert assignment.total_power_watts <= assignment.cpu_only_power_watts

    def test_throughput_objective_prefers_speed(self, population):
        fast = assign_fleet(population, objective=Objective.THROUGHPUT)
        efficient = assign_fleet(population, objective=Objective.PERF_PER_WATT)
        total_fast = sum(a.chosen.throughput for a in fast.assignments)
        total_eff = sum(a.chosen.throughput for a in efficient.assignments)
        assert total_fast >= total_eff

    def test_gpu_share_reported(self, assignment):
        assert 0 <= assignment.gpu_share() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_fleet([])
        with pytest.raises(ValueError):
            sample_workload_population(0)
        with pytest.raises(ValueError):
            assign_fleet(sample_workload_population(1), throughput_floor_fraction=1.5)
