"""Shared-memory shard lifecycle: no /dev/shm leaks, clean or crashing.

``TableShards`` backs every embedding table with one
``multiprocessing.shared_memory`` segment per (table, kind).  The owner
process must unlink all of them exactly once — on clean exit AND when a
worker dies mid-step — or segments pile up in /dev/shm until reboot.
The crash tests use the trainer's fault-injection hook (``_crash``)
which calls ``os._exit`` inside a worker, the harshest death available
short of SIGKILL (no atexit, no finally blocks in the child).
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.core.config import InteractionType, MLPSpec, ModelConfig, uniform_tables
from repro.distributed.mp import (
    HybridRunConfig,
    KillSpec,
    TableShards,
    WorkerCrashError,
    run_hybrid,
)

SHM_DIR = pathlib.Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="needs a POSIX /dev/shm"
)


def shm_segments() -> set[str]:
    return {p.name for p in SHM_DIR.glob("repro_mp_*")}


def small_config() -> ModelConfig:
    return ModelConfig(
        name="mp-shm-test",
        num_dense=8,
        tables=uniform_tables(4, hash_size=64, dim=8, mean_lookups=2.0),
        bottom_mlp=MLPSpec((16, 8)),
        top_mlp=MLPSpec((16,)),
        interaction=InteractionType.DOT,
        compute_dtype="float64",
    )


class TestTableShards:
    def test_create_view_close_roundtrip(self):
        before = shm_segments()
        arrays = {"a": np.arange(12.0).reshape(4, 3), "b": np.ones((2, 5))}
        shards = TableShards.create(arrays)
        try:
            assert shm_segments() - before  # segments exist while open
            np.testing.assert_array_equal(shards.view("a", "weight"), arrays["a"])
            np.testing.assert_array_equal(
                shards.view("b", "accum"), np.zeros((2, 5))
            )
            shards.view("a", "weight")[0, 0] = 99.0
            assert shards.view("a", "weight")[0, 0] == 99.0
        finally:
            shards.close()
        assert shm_segments() == before

    def test_close_is_idempotent(self):
        shards = TableShards.create({"t": np.zeros((3, 2))})
        shards.close()
        shards.close()


class TestHybridLifecycle:
    def test_clean_run_leaves_no_segments(self):
        before = shm_segments()
        run_hybrid(small_config(), HybridRunConfig(workers=2, steps=2, batch_size=16))
        assert shm_segments() == before

    def test_worker_crash_cleans_up_and_attributes(self):
        before = shm_segments()
        with pytest.raises(WorkerCrashError) as exc_info:
            run_hybrid(
                small_config(),
                HybridRunConfig(workers=2, steps=3, batch_size=16),
                _crash=(1, 1),
            )
        err = exc_info.value
        # the injected death (os._exit(41) in rank 1) is blamed, not the
        # secondary casualties that die of broken pipes afterwards
        assert err.rank == 1
        assert err.exitcode == 41
        assert (1, 41) in err.dead
        assert shm_segments() == before

    def test_rank_zero_crash(self):
        before = shm_segments()
        with pytest.raises(WorkerCrashError) as exc_info:
            run_hybrid(
                small_config(),
                HybridRunConfig(workers=2, steps=2, batch_size=16),
                _crash=(0, 0),
            )
        assert exc_info.value.rank == 0
        assert exc_info.value.exitcode == 41
        assert shm_segments() == before

    def test_sigkill_mid_allreduce_cleans_up(self):
        """A real SIGKILL inside the ring protocol — the harshest death:
        no atexit, no finally, the peer is mid-reduction on its comm
        thread.  Attribution must name the signal and /dev/shm must
        still come back clean."""
        import signal

        before = shm_segments()
        with pytest.raises(WorkerCrashError) as exc_info:
            run_hybrid(
                small_config(),
                HybridRunConfig(workers=2, steps=3, batch_size=16),
                kills=[KillSpec(rank=1, step=1, phase="allreduce")],
            )
        err = exc_info.value
        assert err.rank == 1
        assert err.exitcode == -signal.SIGKILL
        assert (1, -signal.SIGKILL) in err.dead
        assert shm_segments() == before


class TestResourceTracker:
    """The stderr contract: python's resource tracker must stay silent.

    A segment closed in a child but unlinked by nobody makes the
    interpreter print ``resource_tracker: There appear to be N leaked
    shared_memory objects`` at exit — invisible to in-process asserts,
    so these run a fresh interpreter and inspect its stderr.
    """

    SCRIPT = """
import sys
from repro.distributed.mp import (
    HybridRunConfig, KillSpec, WorkerCrashError, run_hybrid,
)
from tests.test_mp_shm import small_config

mode = sys.argv[1]
run = HybridRunConfig(workers=2, steps=2, batch_size=16)
if mode == "clean":
    run_hybrid(small_config(), run)
else:
    kwargs = (
        {"_crash": (1, 0)} if mode == "crash"
        else {"kills": [KillSpec(rank=1, step=0, phase="allreduce")]}
    )
    try:
        run_hybrid(small_config(), run, **kwargs)
    except WorkerCrashError:
        pass
    else:
        raise SystemExit("expected WorkerCrashError")
print("OK")
"""

    @pytest.mark.parametrize("mode", ["clean", "crash", "sigkill"])
    def test_no_leak_warnings(self, mode, tmp_path):
        script = tmp_path / "drive.py"
        script.write_text(self.SCRIPT)
        repo = pathlib.Path(__file__).resolve().parent.parent
        proc = subprocess.run(
            [sys.executable, str(script), mode],
            capture_output=True, text=True, timeout=300,
            cwd=repo,
            env={
                "PYTHONPATH": f"{repo / 'src'}{os.pathsep}{repo}",
                "PATH": os.environ.get("PATH", ""),
            },
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert "leaked" not in proc.stderr.lower()
        assert "resource_tracker" not in proc.stderr
