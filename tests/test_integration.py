"""Integration tests: full-stack scenarios crossing module boundaries."""

import numpy as np
import pytest

from repro.configs import build_m1, build_m3, make_test_model
from repro.core import (
    Adagrad,
    DLRM,
    Trainer,
    evaluate,
    grid_search,
)
from repro.data import BatchReader, SyntheticDataGenerator
from repro.distributed import ClusterConfig, EASGDConfig, EASGDTrainer, simulate_cpu_cluster
from repro.hardware import BIG_BASIN, DUAL_SOCKET_CPU, ZION, CapacityError
from repro.perf import cpu_cluster_throughput, gpu_server_throughput
from repro.placement import (
    PlacementStrategy,
    auto_plan,
    feasible_strategies,
    plan_placement,
)


class TestTrainThenTune:
    """Data -> model -> training -> hyper-parameter search, end to end."""

    def test_lr_search_improves_over_bad_lr(self, tiny_config):
        def objective(lr: float) -> float:
            gen = SyntheticDataGenerator(tiny_config, rng=11, seed_teacher=True)
            model = DLRM(tiny_config, rng=2)
            trainer = Trainer(
                model,
                lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=lr),
            )
            trainer.train(gen.batches(64), max_examples=6_000)
            eval_gen = SyntheticDataGenerator(tiny_config, rng=11, seed_teacher=True)
            return evaluate(model, [eval_gen.batch(512)])["normalized_entropy"]

        result = grid_search(objective, 1e-4, 0.5, num=5)
        worst = max(t.loss for t in result.trials)
        assert result.best.loss < worst - 1e-4

    def test_reader_feeds_trainer(self, tiny_config):
        gen = SyntheticDataGenerator(tiny_config, rng=0, seed_teacher=True)
        reader = BatchReader(gen, batch_size=64, prefetch_depth=4)
        model = DLRM(tiny_config, rng=1)
        trainer = Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
        )
        result = trainer.train(reader.stream(), max_examples=3_200)
        assert result.examples_seen == 3_200
        assert reader.batches_produced >= result.steps


class TestPlacementPerfConsistency:
    """The placement planner and the perf model must agree on feasibility."""

    def test_m1_full_path(self):
        m1 = build_m1()
        plan = plan_placement(m1, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
        report = gpu_server_throughput(m1, 1600, BIG_BASIN, plan)
        assert report.throughput > 0
        assert report.breakdown.total == pytest.approx(report.iteration_time_s)

    def test_m3_cannot_take_the_m1_path(self):
        m3 = build_m3()
        with pytest.raises(CapacityError):
            plan_placement(m3, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
        feasible = feasible_strategies(
            m3, BIG_BASIN, ps_platform=DUAL_SOCKET_CPU, max_ps=8
        )
        assert PlacementStrategy.REMOTE_CPU in feasible
        plan = plan_placement(
            m3, BIG_BASIN, PlacementStrategy.REMOTE_CPU, num_ps=8,
            ps_platform=DUAL_SOCKET_CPU,
        )
        report = gpu_server_throughput(m3, 800, BIG_BASIN, plan)
        assert report.throughput > 0

    def test_auto_plan_throughput_ordering_is_sane(self):
        """auto_plan's choice should not be beaten badly by the rejected
        strategies it skipped (on platforms where both are feasible)."""
        m = make_test_model(512, 16, hash_size=1_000_000)
        plan = auto_plan(m, BIG_BASIN)
        auto_thr = gpu_server_throughput(m, 1600, BIG_BASIN, plan).throughput
        sys_plan = plan_placement(m, BIG_BASIN, PlacementStrategy.SYSTEM_MEMORY)
        sys_thr = gpu_server_throughput(m, 1600, BIG_BASIN, sys_plan).throughput
        assert auto_thr >= sys_thr

    def test_zion_auto_plan_for_giant_model(self):
        m = make_test_model(512, 64, hash_size=40_000_000)  # ~1.3 TB
        plan = auto_plan(m, ZION)
        report = gpu_server_throughput(m, 1600, ZION, plan)
        assert report.throughput > 0


class TestAnalyticVsEventSimulation:
    """The DES and the analytical model must tell the same story."""

    @pytest.mark.parametrize("trainers,ps", [(2, 1), (6, 3)])
    def test_throughput_within_2x(self, trainers, ps):
        m = make_test_model(512, 16)
        analytic = cpu_cluster_throughput(m, 200, trainers, ps, 1).throughput
        des = simulate_cpu_cluster(
            m, ClusterConfig(trainers, ps, 1, seed=0), horizon_s=1.0
        ).throughput
        assert 0.5 < des / analytic < 2.0

    def test_both_detect_ps_bottleneck(self):
        """Starving the sparse PS tier must cap throughput in both models."""
        m = make_test_model(64, 64, hash_size=1_000_000)
        rich = cpu_cluster_throughput(m, 200, 12, 8, 2).throughput
        starved = cpu_cluster_throughput(m, 200, 12, 1, 2).throughput
        assert starved < rich
        des_rich = simulate_cpu_cluster(
            m, ClusterConfig(12, 8, 2, seed=1), horizon_s=0.5
        ).throughput
        des_starved = simulate_cpu_cluster(
            m, ClusterConfig(12, 1, 2, seed=1), horizon_s=0.5
        ).throughput
        assert des_starved < des_rich


class TestDistributedQualityVsThroughputStory:
    """§VI-C in one test: async scaling buys throughput, costs quality."""

    def test_easgd_vs_single_worker_quality(self, tiny_config):
        budget = 12_000
        gen1 = SyntheticDataGenerator(tiny_config, rng=21, seed_teacher=True)
        single = Trainer(
            DLRM(tiny_config, rng=5),
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
        )
        single.train(gen1.batches(64), max_examples=budget)
        eval_gen = SyntheticDataGenerator(tiny_config, rng=21, seed_teacher=True)
        eval_batches = [eval_gen.batch(1024)]
        single_ne = evaluate(single.model, eval_batches)["normalized_entropy"]

        gen2 = SyntheticDataGenerator(tiny_config, rng=21, seed_teacher=True)
        multi = EASGDTrainer(
            tiny_config, EASGDConfig(num_workers=4, tau=8), lr=0.05, rng=5
        )
        multi.train(gen2.batches(64), max_examples=budget)
        multi_ne = evaluate(multi.center_dlrm(), eval_batches)["normalized_entropy"]

        # the tightly-synchronized setup is at least as good (paper §VI-C)
        assert single_ne <= multi_ne + 0.01
