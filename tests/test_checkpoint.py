"""Tests for checkpointing, restore, and failure injection."""

import numpy as np
import pytest

from repro.core import (
    Adagrad,
    DirtyRowTracker,
    DLRM,
    Trainer,
    apply_partial_checkpoint,
    checkpoint_bytes,
    load_checkpoint,
    save_checkpoint,
    save_partial_checkpoint,
)
from repro.data import SyntheticDataGenerator


def _trainer(model, lr=0.05):
    return Trainer(
        model,
        lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=lr),
    )


class TestFullCheckpoint:
    def test_roundtrip_exact(self, tiny_config, tiny_generator, tmp_path):
        model = DLRM(tiny_config, rng=0)
        trainer = _trainer(model)
        trainer.train(tiny_generator.batches(32), max_steps=10)
        path = tmp_path / "ckpt.npz"
        written = save_checkpoint(path, model, trainer.optimizer)
        assert written > 0

        # clone restored into a differently-initialized model
        other = DLRM(tiny_config, rng=99)
        other_opt = Adagrad(other.dense_parameters(), other.embedding_tables(), lr=0.05)
        load_checkpoint(path, other, other_opt)
        for a, b in zip(model.dense_parameters(), other.dense_parameters()):
            np.testing.assert_array_equal(a.value, b.value)
        for ta, tb in zip(model.embedding_tables(), other.embedding_tables()):
            np.testing.assert_array_equal(ta.weight, tb.weight)

    def test_restore_resumes_identically(self, tiny_config, tmp_path):
        """Failure injection: crash mid-training, restore, continue — the
        outcome must exactly match an uninterrupted run."""
        path = tmp_path / "ckpt.npz"

        # uninterrupted reference run: 20 steps
        gen_a = SyntheticDataGenerator(tiny_config, rng=7, seed_teacher=True)
        ref = DLRM(tiny_config, rng=0)
        ref_tr = _trainer(ref)
        ref_tr.train(gen_a.batches(32), max_steps=20)

        # interrupted run: 10 steps, checkpoint, "crash", restore, 10 more
        gen_b = SyntheticDataGenerator(tiny_config, rng=7, seed_teacher=True)
        first = DLRM(tiny_config, rng=0)
        first_tr = _trainer(first)
        stream = gen_b.batches(32)
        first_tr.train(stream, max_steps=10)
        save_checkpoint(path, first, first_tr.optimizer)
        del first, first_tr  # the crash

        resumed = DLRM(tiny_config, rng=123)  # wrong init, must not matter
        resumed_tr = _trainer(resumed)
        load_checkpoint(path, resumed, resumed_tr.optimizer)
        resumed_tr.train(stream, max_steps=10)  # same remaining data

        for a, b in zip(ref.dense_parameters(), resumed.dense_parameters()):
            np.testing.assert_allclose(a.value, b.value, atol=1e-12)
        for ta, tb in zip(ref.embedding_tables(), resumed.embedding_tables()):
            np.testing.assert_allclose(ta.weight, tb.weight, atol=1e-12)

    def test_wrong_config_rejected(self, tiny_config, concat_config, tmp_path):
        model = DLRM(tiny_config, rng=0)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        other = DLRM(concat_config, rng=0)
        with pytest.raises(ValueError):
            load_checkpoint(path, other)

    def test_garbage_file_rejected(self, tiny_config, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(ValueError):
            load_checkpoint(path, DLRM(tiny_config, rng=0))

    def test_checkpoint_bytes_dominated_by_tables(self, tiny_config):
        model = DLRM(tiny_config, rng=0)
        total = checkpoint_bytes(model)
        table_bytes = sum(t.weight.nbytes for t in model.embedding_tables())
        assert total >= table_bytes
        opt = Adagrad(model.dense_parameters(), model.embedding_tables(), lr=0.1)
        assert checkpoint_bytes(model, opt) > total


class TestPartialCheckpoint:
    def test_dirty_fraction_small_for_skewed_access(self, tiny_config, tiny_generator):
        model = DLRM(tiny_config, rng=0)
        tracker = DirtyRowTracker(model)
        for _ in range(3):
            tracker.record_batch(tiny_generator.batch(16))
        assert 0 < tracker.total_dirty_fraction() < 1.0

    def test_partial_restores_touched_rows(self, tiny_config, tiny_generator, tmp_path):
        model = DLRM(tiny_config, rng=0)
        trainer = _trainer(model)
        tracker = DirtyRowTracker(model)
        base = tmp_path / "full.npz"
        save_checkpoint(base, model)

        for _ in range(5):
            batch = tiny_generator.batch(32)
            tracker.record_batch(batch)
            trainer.train_step(batch)
        partial = tmp_path / "partial.npz"
        save_partial_checkpoint(partial, model, tracker)
        assert tracker.total_dirty_fraction() == 0.0  # cleared

        # recovery: full checkpoint, then partial on top == current state
        recovered = DLRM(tiny_config, rng=55)
        load_checkpoint(base, recovered)
        apply_partial_checkpoint(partial, recovered)
        for a, b in zip(model.dense_parameters(), recovered.dense_parameters()):
            np.testing.assert_array_equal(a.value, b.value)
        for ta, tb in zip(model.embedding_tables(), recovered.embedding_tables()):
            np.testing.assert_array_equal(ta.weight, tb.weight)

    def test_partial_smaller_than_full(self, tiny_config, tiny_generator, tmp_path):
        model = DLRM(tiny_config, rng=0)
        tracker = DirtyRowTracker(model)
        tracker.record_batch(tiny_generator.batch(4))  # touch few rows
        full = save_checkpoint(tmp_path / "full.npz", model)
        partial = save_partial_checkpoint(tmp_path / "part.npz", model, tracker)
        assert partial < full
