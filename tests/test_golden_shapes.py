"""Golden-shape regression tests: the paper's headline orderings as tier-1.

DESIGN.md's "headline shape targets" define what *reproduced* means for
this repo, but until now they were asserted only in the slow ``benchmarks/``
suite.  These tests pin the same qualitative claims on tiny, fast grids so
any perf-model PR that silently breaks a paper-claimed ordering fails
tier-1 immediately:

* Figure 11 — CPU throughput saturates/declines at modest batch; GPU scales
  near-linearly then saturates at large batch.
* Figure 12 — CPU throughput is flat with hash size; GPU throughput drops
  once tables spill out of HBM.
* Figure 14 — Big Basin best with GPU-memory placement; Zion best with
  system-memory placement; remote placement worst on both, with Zion
  slightly ahead of Big Basin.
* Table III — GPU:CPU throughput ratios per production model near the
  published 2.25x / 0.85x / 0.67x, and ordered M1 > M2 > M3.

Everything here uses the analytical model (no event simulation), so the
whole module runs in well under a second.
"""

from __future__ import annotations

import pytest

from repro.configs import make_test_model
from repro.experiments import (
    fig11_batch_scaling,
    fig12_hash_scaling,
    fig14_placement,
    table3_comparison,
)
from repro.placement import PlacementStrategy


# ---------------------------------------------------------------------------
# Figure 11: batch-size scaling
# ---------------------------------------------------------------------------


class TestFig11BatchScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_batch_scaling.run(
            model=make_test_model(1024, 64, name="golden-fig11"),
            cpu_batches=(25, 50, 100, 200, 400, 800, 1600),
            gpu_batches=(200, 400, 800, 1600, 6400, 25600),
        )

    def test_cpu_saturates_at_modest_batch(self, result):
        """CPU throughput peaks at an interior batch size, not the largest."""
        peak = result.cpu_optimal_batch
        assert peak < result.cpu_batches[-1]
        assert peak > result.cpu_batches[0]

    def test_cpu_declines_past_peak(self, result):
        """Past the peak (cache spill), bigger batches are strictly worse."""
        peak_tp = max(result.cpu_throughput)
        assert result.cpu_throughput[-1] < 0.9 * peak_tp

    def test_gpu_scales_then_saturates(self, result):
        """GPU throughput is monotonically increasing in batch size, with
        early doublings near-linear and the last doubling clearly sublinear."""
        tp = result.gpu_throughput
        assert all(b > a for a, b in zip(tp, tp[1:]))
        first_gain = tp[1] / tp[0]  # 200 -> 400
        assert first_gain > 1.7  # near-linear while overheads amortize
        # 6400 -> 25600 is a 4x batch bump; saturated means well under 4x.
        last_gain = tp[-1] / tp[-2]
        assert last_gain < 2.0

    def test_gpu_beats_cpu_at_scale(self, result):
        assert max(result.gpu_throughput) > 2.0 * max(result.cpu_throughput)


# ---------------------------------------------------------------------------
# Figure 12: hash-size scaling
# ---------------------------------------------------------------------------


class TestFig12HashScaling:
    @pytest.fixture(scope="class")
    def result(self):
        # Tiny grid spanning the replicated / sharded / spill regimes plus
        # the single-server capacity wall.
        return fig12_hash_scaling.run(
            hash_sweep=(100_000, 3_000_000, 10_000_000, 12_000_000, 16_000_000)
        )

    def test_cpu_flat_with_hash_size(self, result):
        """Table size does not change CPU lookup cost: near-perfectly flat."""
        assert result.cpu_flatness() < 1.05

    def test_gpu_drops_with_hash_size(self, result):
        """GPU throughput degrades markedly once tables outgrow HBM."""
        feasible = result.gpu_feasible_points()
        assert len(feasible) >= 3
        small = feasible[0]
        large = feasible[-1]
        assert small.hash_size < large.hash_size
        assert large.gpu_throughput < 0.8 * small.gpu_throughput

    def test_gpu_eventually_infeasible(self, result):
        """The sweep's largest point no longer fits one Big Basin at all."""
        assert result.points[-1].gpu_throughput is None

    def test_spill_grows_with_hash_size(self, result):
        spills = [p.system_spill_fraction for p in result.points]
        assert spills[0] == 0.0
        assert spills[-1] == 1.0
        assert all(b >= a for a, b in zip(spills, spills[1:]))


# ---------------------------------------------------------------------------
# Figure 14: placement ranking on Big Basin vs Zion
# ---------------------------------------------------------------------------


class TestFig14PlacementRanking:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_placement.run()

    def test_big_basin_best_with_gpu_memory(self, result):
        bb = {
            s: result.throughput("BigBasin", s)
            for s in (
                PlacementStrategy.GPU_MEMORY,
                PlacementStrategy.SYSTEM_MEMORY,
                PlacementStrategy.REMOTE_CPU,
            )
        }
        assert max(bb, key=bb.get) is PlacementStrategy.GPU_MEMORY

    def test_zion_best_with_system_memory(self, result):
        zion = {
            s: result.throughput("Zion", s)
            for s in (
                PlacementStrategy.GPU_MEMORY,
                PlacementStrategy.SYSTEM_MEMORY,
                PlacementStrategy.REMOTE_CPU,
            )
        }
        assert max(zion, key=zion.get) is PlacementStrategy.SYSTEM_MEMORY

    def test_remote_worst_on_both_platforms(self, result):
        for platform in ("BigBasin", "Zion"):
            remote = result.throughput(platform, PlacementStrategy.REMOTE_CPU)
            for s in (PlacementStrategy.GPU_MEMORY, PlacementStrategy.SYSTEM_MEMORY):
                assert remote < result.throughput(platform, s)

    def test_zion_remote_slightly_above_big_basin_remote(self, result):
        bb = result.throughput("BigBasin", PlacementStrategy.REMOTE_CPU)
        zion = result.throughput("Zion", PlacementStrategy.REMOTE_CPU)
        assert zion >= bb  # Zion slightly ahead...
        assert zion < 1.5 * bb  # ...but only slightly (both PS-bound)


# ---------------------------------------------------------------------------
# Table III: GPU:CPU throughput ratios for M1/M2/M3
# ---------------------------------------------------------------------------


class TestTable3Ratios:
    @pytest.fixture(scope="class")
    def by_name(self):
        return table3_comparison.run().by_name()

    @pytest.mark.parametrize(
        "name,tolerance",
        [
            # M1 reproduces at ~1.74x vs the paper's 2.25x (-23%): the
            # analytical model undercharges the CPU baseline's Hogwild
            # efficiency slightly.  Pinned at its honest tolerance so any
            # further drift fails loudly.
            ("M1_prod", 0.25),
            ("M2_prod", 0.20),
            ("M3_prod", 0.20),
        ],
    )
    def test_throughput_ratio_near_paper(self, by_name, name, tolerance):
        c = by_name[name]
        rel = c.throughput_ratio / c.paper_throughput_ratio
        assert 1 - tolerance <= rel <= 1 + tolerance, (
            f"{name}: GPU/CPU {c.throughput_ratio:.2f}x vs paper "
            f"{c.paper_throughput_ratio}x (rel {rel:.2f})"
        )

    def test_model_ordering_matches_paper(self, by_name):
        """M1 (MLP-heavy) gains most from GPUs; M3 (embedding-heavy) loses."""
        r1 = by_name["M1_prod"].throughput_ratio
        r2 = by_name["M2_prod"].throughput_ratio
        r3 = by_name["M3_prod"].throughput_ratio
        assert r1 > r2 > r3
        assert r1 > 1.0  # GPU wins M1 outright
        assert r3 < 1.0  # GPU loses M3 (remote placement)

    def test_power_efficiency_signs(self, by_name):
        """Paper: GPU is power-efficient for M1/M2, inefficient for M3."""
        assert by_name["M1_prod"].efficiency_ratio > 1.0
        assert by_name["M2_prod"].efficiency_ratio > 1.0
        assert by_name["M3_prod"].efficiency_ratio < 1.0
