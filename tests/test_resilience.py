"""Tests for repro.resilience: faults, retries, recovery economics, and the
fault-tolerant behavior of the cluster simulation and functional trainers."""

import numpy as np
import pytest

from repro.configs import make_test_model
from repro.core import MLPSpec, ModelConfig
from repro.core.config import InteractionType, uniform_tables
from repro.data import SyntheticDataGenerator
from repro.distributed import ClusterConfig, SyncMode, simulate_cpu_cluster
from repro.hardware import DUAL_SOCKET_CPU
from repro.obs.registry import MetricsRegistry
from repro.resilience import (
    ComponentKind,
    DegradationWindow,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    GoodputLedger,
    RetryPolicy,
    checkpoint_write_time_s,
    expected_goodput_fraction,
    kill_and_restore_run,
    model_checkpoint_bytes,
    restore_time_s,
    uninterrupted_run,
    young_daly_interval_s,
)


# ---------------------------------------------------------------------------
# RetryPolicy


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        p = RetryPolicy(max_attempts=6, base_delay_s=0.01, multiplier=2.0,
                        max_delay_s=0.05, jitter=0.0)
        delays = [p.backoff_s(a) for a in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_stays_in_band(self):
        p = RetryPolicy(base_delay_s=0.1, multiplier=1.0, max_delay_s=0.1,
                        jitter=0.5)
        rng = np.random.default_rng(0)
        for _ in range(100):
            d = p.backoff_s(1, rng)
            assert 0.05 <= d <= 0.1

    def test_no_rng_means_deterministic_even_with_jitter(self):
        p = RetryPolicy(base_delay_s=0.1, multiplier=1.0, max_delay_s=0.1,
                        jitter=0.5)
        assert p.backoff_s(1) == 0.1

    def test_total_penalty_counts_deadline_and_backoff(self):
        p = RetryPolicy(max_attempts=4, base_delay_s=0.01, multiplier=2.0,
                        max_delay_s=1.0, jitter=0.0, deadline_s=0.1)
        assert p.total_penalty_s(0) == 0.0
        assert p.total_penalty_s(2) == pytest.approx(0.1 + 0.01 + 0.1 + 0.02)

    def test_retries_excludes_first_attempt(self):
        assert RetryPolicy(max_attempts=4).retries() == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -0.1},
            {"multiplier": 0.5},
            {"base_delay_s": 0.5, "max_delay_s": 0.1},
            {"jitter": 1.5},
            {"deadline_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_bad_attempt_number(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)


# ---------------------------------------------------------------------------
# FaultPlan / FaultInjector


class TestFaultPlan:
    def test_noop_detection(self):
        assert FaultPlan().is_noop
        assert not FaultPlan(sparse_ps_mtbf_s=1.0).is_noop
        assert not FaultPlan(drop_probability=0.1).is_noop
        assert not FaultPlan(
            scheduled_crashes=(FaultEvent(ComponentKind.TRAINER, 0, 0.5),)
        ).is_noop

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(sparse_ps_mtbf_s=0.0)
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.0)
        with pytest.raises(ValueError):
            DegradationWindow(ComponentKind.TRAINER, 0, start_s=0.0,
                              duration_s=0.5, slowdown=0.5)
        with pytest.raises(ValueError):
            DegradationWindow("gpu", 0, start_s=0.0, duration_s=0.5)

    def test_scheduled_crashes_filtered_by_horizon(self):
        plan = FaultPlan(
            scheduled_crashes=(
                FaultEvent(ComponentKind.SPARSE_PS, 0, 0.25),
                FaultEvent(ComponentKind.SPARSE_PS, 1, 5.0),
            )
        )
        events = FaultInjector(plan).sample_crashes(
            {ComponentKind.SPARSE_PS: 2}, horizon_s=1.0
        )
        assert [e.time_s for e in events] == [0.25]

    def test_sampling_is_deterministic_in_seed(self):
        plan = FaultPlan(trainer_mtbf_s=0.2, seed=42)
        counts = {ComponentKind.TRAINER: 4}
        a = FaultInjector(plan).sample_crashes(counts, 1.0)
        b = FaultInjector(plan).sample_crashes(counts, 1.0)
        assert a == b
        c = FaultInjector(FaultPlan(trainer_mtbf_s=0.2, seed=43)).sample_crashes(
            counts, 1.0
        )
        assert a != c

    def test_sampled_events_sorted_and_capped(self):
        plan = FaultPlan(trainer_mtbf_s=0.001, max_random_crashes=5)
        events = FaultInjector(plan).sample_crashes({ComponentKind.TRAINER: 2}, 1.0)
        times = [e.time_s for e in events]
        assert times == sorted(times)
        assert len(events) <= 10  # 5 per component

    def test_drop_probability_rate(self):
        inj = FaultInjector(FaultPlan(drop_probability=0.3, seed=1))
        rate = sum(inj.drops_request() for _ in range(2000)) / 2000
        assert 0.25 < rate < 0.35
        assert not FaultInjector(FaultPlan()).drops_request()

    def test_slowdown_windows(self):
        w = DegradationWindow(ComponentKind.SPARSE_PS, 1, start_s=0.2,
                              duration_s=0.3, slowdown=4.0)
        inj = FaultInjector(FaultPlan(degradations=(w,)))
        assert inj.slowdown_at(ComponentKind.SPARSE_PS, 1, 0.1) == 1.0
        assert inj.slowdown_at(ComponentKind.SPARSE_PS, 1, 0.3) == 4.0
        assert inj.slowdown_at(ComponentKind.SPARSE_PS, 1, 0.5) == 1.0
        assert inj.slowdown_at(ComponentKind.SPARSE_PS, 0, 0.3) == 1.0


# ---------------------------------------------------------------------------
# Recovery economics


class TestRecovery:
    def test_checkpoint_bytes_match_config(self):
        model = make_test_model(64, 4)
        payload = model.dense_parameter_bytes + model.embedding_bytes
        assert model_checkpoint_bytes(model, include_optimizer=False) == payload
        assert model_checkpoint_bytes(model) == 2 * payload

    def test_sharding_speeds_up_write_and_restore(self):
        b = 1e9
        assert checkpoint_write_time_s(b, DUAL_SOCKET_CPU, shards=4) < \
            checkpoint_write_time_s(b, DUAL_SOCKET_CPU, shards=1)
        assert restore_time_s(b, DUAL_SOCKET_CPU, shards=4) < \
            restore_time_s(b, DUAL_SOCKET_CPU, shards=1)

    def test_restore_exceeds_write(self):
        # restore adds restart overhead + a cold memory fill
        b = 1e9
        assert restore_time_s(b, DUAL_SOCKET_CPU) > \
            checkpoint_write_time_s(b, DUAL_SOCKET_CPU)

    def test_young_daly_formula(self):
        assert young_daly_interval_s(200.0, 1.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            young_daly_interval_s(0.0, 1.0)

    def test_expected_goodput_peaks_near_young_daly(self):
        mtbf, cost = 100.0, 0.5
        yd = young_daly_interval_s(mtbf, cost)
        at_yd = expected_goodput_fraction(yd, cost, mtbf)
        assert at_yd > expected_goodput_fraction(yd / 20, cost, mtbf)
        assert at_yd > expected_goodput_fraction(yd * 20, cost, mtbf)
        assert 0.0 < at_yd < 1.0


class TestGoodputLedger:
    def test_credit_and_goodput(self):
        led = GoodputLedger()
        led.credit(100)
        led.credit(50)
        assert led.useful_examples == 150
        assert led.goodput(3.0) == pytest.approx(50.0)

    def test_rollback_to_watermark(self):
        led = GoodputLedger()
        led.credit(100)
        led.mark_checkpoint(0.1)
        led.credit(60)
        lost = led.rollback(1.0)
        assert lost == 60
        assert led.useful_examples == 100
        assert led.completed_examples == 160  # gross is monotone
        assert led.checkpoint_time_s == pytest.approx(0.1)

    def test_partial_rollback_is_shard_fraction(self):
        led = GoodputLedger()
        led.credit(100)
        assert led.rollback(0.25) == 25
        assert led.useful_examples == 75

    def test_rollback_twice_does_not_double_count(self):
        led = GoodputLedger()
        led.credit(100)
        led.rollback(1.0)
        assert led.rollback(1.0) == 0
        assert led.useful_examples == 0

    def test_validation(self):
        led = GoodputLedger()
        with pytest.raises(ValueError):
            led.credit(-1)
        with pytest.raises(ValueError):
            led.rollback(1.5)
        with pytest.raises(ValueError):
            led.goodput(0.0)


# ---------------------------------------------------------------------------
# Event-level cluster resilience (the paper's sync-vs-async argument)


class TestClusterResilience:
    @pytest.fixture(scope="class")
    def model(self):
        return make_test_model(128, 8)

    def _config(self, **kw):
        base = dict(num_trainers=8, num_sparse_ps=4, num_dense_ps=1, seed=0)
        base.update(kw)
        return ClusterConfig(**base)

    def test_failure_free_goodput_equals_throughput(self, model):
        result = simulate_cpu_cluster(model, self._config(), horizon_s=0.5)
        assert result.goodput == pytest.approx(result.throughput)
        assert result.availability == 1.0
        assert result.lost_examples == 0
        assert result.crashes == 0
        assert result.fault_events == []

    def test_noop_plan_is_bit_identical_to_no_plan(self, model):
        a = simulate_cpu_cluster(model, self._config(), horizon_s=0.5)
        b = simulate_cpu_cluster(
            model, self._config(fault_plan=FaultPlan()), horizon_s=0.5
        )
        assert a.throughput == b.throughput
        assert a.iterations_completed == b.iterations_completed
        assert a.trainer_cpu_utilization == b.trainer_cpu_utilization

    def test_async_survives_ps_crash_sync_drops_more(self, model):
        """The headline acceptance: under a single sparse-PS crash, async
        goodput stays within 25% of failure-free while sync loses strictly
        more (full rollback + global stall)."""
        horizon = 1.0
        baseline = simulate_cpu_cluster(model, self._config(), horizon_s=horizon)
        plan = FaultPlan(
            scheduled_crashes=(FaultEvent(ComponentKind.SPARSE_PS, 1, 0.5),)
        )
        outcomes = {}
        for mode in SyncMode.ALL:
            cfg = self._config(
                sync_mode=mode, fault_plan=plan, checkpoint_interval_s=0.25
            )
            outcomes[mode] = simulate_cpu_cluster(model, cfg, horizon_s=horizon)
        async_r, sync_r = outcomes[SyncMode.ASYNC], outcomes[SyncMode.SYNC]
        assert async_r.crashes == 1 and sync_r.crashes == 1
        # async keeps >= 75% of failure-free goodput
        assert async_r.goodput >= 0.75 * baseline.goodput
        # sync loses strictly more than async, every way you slice it
        assert sync_r.goodput < async_r.goodput
        assert sync_r.lost_examples > async_r.lost_examples
        assert sync_r.availability < async_r.availability
        # the crash costs something in both modes
        assert async_r.goodput < baseline.goodput

    def test_trainer_crash_cheaper_than_ps_crash(self, model):
        def run(kind):
            plan = FaultPlan(scheduled_crashes=(FaultEvent(kind, 0, 0.5),))
            cfg = self._config(fault_plan=plan, checkpoint_interval_s=0.25)
            return simulate_cpu_cluster(model, cfg, horizon_s=1.0)

        trainer_r = run(ComponentKind.TRAINER)
        ps_r = run(ComponentKind.SPARSE_PS)
        # a trainer holds no embedding shard: restoring it moves far fewer
        # bytes, so its downtime (and goodput dent) is smaller
        assert trainer_r.recovery_time < ps_r.recovery_time
        assert trainer_r.goodput > ps_r.goodput

    def test_request_drops_are_retried_not_fatal(self, model):
        # deadline sized to the ~3.5ms iteration (the default 50ms RPC
        # timeout would burn ~15 iterations per drop)
        retry = RetryPolicy(max_attempts=4, base_delay_s=0.001, multiplier=2.0,
                            max_delay_s=0.01, jitter=0.5, deadline_s=0.005)
        plan = FaultPlan(drop_probability=0.02, seed=3)
        cfg = self._config(fault_plan=plan, retry=retry)
        result = simulate_cpu_cluster(model, cfg, horizon_s=0.5)
        assert result.requests_dropped > 0
        assert result.retries > 0
        # with p=0.02 and 4 attempts, full-failure probability is ~2e-7:
        # the cluster keeps most of its throughput
        base = simulate_cpu_cluster(model, self._config(), horizon_s=0.5)
        assert result.goodput > 0.5 * base.goodput
        assert result.goodput < base.goodput

    def test_checkpoint_interval_tradeoff(self, model):
        """Too-frequent checkpointing costs goodput (write stalls)."""
        plan = FaultPlan(sparse_ps_mtbf_s=2.0, seed=0)

        def goodput(tau):
            cfg = self._config(fault_plan=plan, checkpoint_interval_s=tau)
            return simulate_cpu_cluster(model, cfg, horizon_s=1.0).goodput

        # checkpoint cost for this model/shard count is ~8ms; an interval
        # of 20ms spends ~1/3 of all time checkpointing
        assert goodput(0.25) > goodput(0.02)

    def test_resilience_summary_keys(self, model):
        result = simulate_cpu_cluster(model, self._config(), horizon_s=0.25)
        summary = result.resilience_summary()
        for key in ("goodput", "throughput", "availability", "lost_examples",
                    "crashes", "retries", "requests_dropped", "recovery_time_s",
                    "stall_time_s", "checkpoint_time_s", "checkpoints_taken"):
            assert key in summary
            assert isinstance(summary[key], float)

    def test_registry_receives_resilience_series(self, model):
        registry = MetricsRegistry()
        plan = FaultPlan(
            scheduled_crashes=(FaultEvent(ComponentKind.SPARSE_PS, 0, 0.1),)
        )
        cfg = self._config(fault_plan=plan, checkpoint_interval_s=0.2)
        simulate_cpu_cluster(model, cfg, horizon_s=0.5, registry=registry)
        assert registry.get("resilience.crashes").value == 1
        assert registry.get("resilience.goodput").value > 0
        assert 0 <= registry.get("resilience.availability").value <= 1

    def test_fault_spans_traced(self, model):
        from repro.obs import Tracer

        tracer = Tracer()
        plan = FaultPlan(
            scheduled_crashes=(FaultEvent(ComponentKind.SPARSE_PS, 0, 0.1),)
        )
        cfg = self._config(
            sync_mode=SyncMode.SYNC, fault_plan=plan, checkpoint_interval_s=0.2
        )
        simulate_cpu_cluster(model, cfg, horizon_s=0.5, tracer=tracer)
        fault_spans = [s for s in tracer.spans if s.category == "fault"]
        names = {s.name for s in fault_spans}
        assert any("sparse_ps0_down" in n for n in names)
        assert "sync_rollback" in names

    def test_config_validation(self, model):
        with pytest.raises(ValueError):
            self._config(sync_mode="bsp")
        with pytest.raises(ValueError):
            self._config(checkpoint_interval_s=0.0)


# ---------------------------------------------------------------------------
# Functional kill-and-restore (bit-identical resume)


def _kr_config() -> ModelConfig:
    return ModelConfig(
        name="kr",
        num_dense=6,
        tables=uniform_tables(2, 40, dim=4, mean_lookups=2.0),
        bottom_mlp=MLPSpec((8, 4)),
        top_mlp=MLPSpec((6,)),
        interaction=InteractionType.DOT,
    )


def _stream_factory(config, batch=32):
    def factory():
        gen = SyntheticDataGenerator(config, rng=11, seed_teacher=True)
        return gen.batches(batch)

    return factory


class TestKillRestore:
    def test_restored_run_is_bit_identical(self, tmp_path):
        config = _kr_config()
        factory = _stream_factory(config)
        ref_model, ref_history = uninterrupted_run(
            config, factory, total_steps=12, seed=0
        )
        model, report = kill_and_restore_run(
            config,
            factory,
            total_steps=12,
            kill_at_step=8,
            checkpoint_path=tmp_path / "ckpt.npz",
            checkpoint_at_step=5,
            seed=0,
        )
        # parameters: dense and embedding state must match exactly
        for p_ref, p in zip(ref_model.dense_parameters(), model.dense_parameters()):
            assert np.array_equal(p_ref.value, p.value)
        for t_ref, t in zip(ref_model.embedding_tables(), model.embedding_tables()):
            assert np.array_equal(t_ref.weight, t.weight)
        # the kept loss history equals the reference timeline
        assert report.loss_history == tuple(ref_history)
        assert report.final_loss == ref_history[-1]

    def test_report_accounting(self, tmp_path):
        config = _kr_config()
        _, report = kill_and_restore_run(
            config,
            _stream_factory(config),
            total_steps=10,
            kill_at_step=7,
            checkpoint_path=tmp_path / "c.npz",
            checkpoint_at_step=4,
            seed=1,
        )
        assert report.lost_steps == 3
        assert report.executed_steps == 7 + 6  # doomed run + resumed run
        assert report.recompute_overhead == pytest.approx(0.3)
        assert report.checkpoint_bytes > 0

    def test_checkpoint_at_kill_step_loses_nothing(self, tmp_path):
        config = _kr_config()
        _, report = kill_and_restore_run(
            config,
            _stream_factory(config),
            total_steps=8,
            kill_at_step=4,
            checkpoint_path=tmp_path / "c.npz",
            seed=0,
        )
        assert report.lost_steps == 0
        assert report.recompute_overhead == 0.0

    def test_validation(self, tmp_path):
        config = _kr_config()
        factory = _stream_factory(config)
        with pytest.raises(ValueError):
            kill_and_restore_run(config, factory, total_steps=0,
                                 kill_at_step=1, checkpoint_path=tmp_path / "c")
        with pytest.raises(ValueError):
            kill_and_restore_run(config, factory, total_steps=5,
                                 kill_at_step=5, checkpoint_path=tmp_path / "c")
        with pytest.raises(ValueError):
            kill_and_restore_run(config, factory, total_steps=5, kill_at_step=3,
                                 checkpoint_at_step=4,
                                 checkpoint_path=tmp_path / "c")


# ---------------------------------------------------------------------------
# Extension experiment wiring


class TestFaultToleranceExperiment:
    def test_run_and_render(self):
        from repro.experiments import ext_fault_tolerance

        result = ext_fault_tolerance.run(
            horizon_s=0.5, mtbf_s=1.0, intervals=(0.05, 0.2)
        )
        assert result.failure_free_goodput > 0
        assert result.young_daly_s > 0
        assert len(result.interval_points) == 2
        modes = {o.sync_mode for o in result.mode_outcomes}
        assert modes == {"async", "sync"}
        assert result.outcome("sync").goodput <= result.outcome("async").goodput
        text = ext_fault_tolerance.render(result)
        assert "goodput" in text
        assert "Young/Daly" in text
