"""Tests for the roofline report and the public gradient checker."""

import numpy as np
import pytest

from repro.configs import make_test_model
from repro.core import check_gradients
from repro.hardware.specs import SKYLAKE_SOCKET, V100_32GB
from repro.perf import roofline_report
from repro.perf.roofline import render


class TestRooflineReport:
    @pytest.fixture(scope="class")
    def report(self):
        return roofline_report(make_test_model(512, 32), batch=1600, device=V100_32GB)

    def test_all_operators_present(self, report):
        names = set(report.by_name())
        assert {"bottom_mlp_fwd", "top_mlp_bwd", "emb_lookup", "emb_update"} <= names
        assert len(report.operators) == 9

    def test_embedding_ops_memory_bound_everywhere(self):
        """The structural fact behind the paper: embedding ops sit deep in
        memory-bound territory on both CPU and GPU."""
        m = make_test_model(512, 32)
        for device in (V100_32GB, SKYLAKE_SOCKET):
            r = roofline_report(m, 1600, device).by_name()
            assert r["emb_lookup"].bound == "memory"
            assert r["emb_update"].bound == "memory"
            assert r["emb_lookup"].intensity < roofline_report(m, 1600, device).ridge_point

    def test_mlp_gemms_compute_bound_on_cpu(self):
        r = roofline_report(make_test_model(512, 32), 1600, SKYLAKE_SOCKET).by_name()
        assert r["bottom_mlp_fwd"].bound == "compute"
        assert r["top_mlp_fwd"].bound == "compute"

    def test_intensity_matches_cost(self, report):
        for op in report.operators:
            if op.bytes > 0:
                assert op.intensity == pytest.approx(op.flops / op.bytes)

    def test_memory_bound_fraction_in_range(self, report):
        assert 0 <= report.memory_bound_time_fraction <= 1

    def test_dominant_operator_has_max_time(self, report):
        dom = report.dominant_operator()
        assert dom.time_s == max(o.time_s for o in report.operators)

    def test_render_contains_ridge(self, report):
        out = render(report)
        assert "ridge point" in out and "emb_lookup" in out

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            roofline_report(make_test_model(64, 4), 0, V100_32GB)


class TestCheckGradients:
    def test_builtin_model_passes(self, tiny_config, tiny_generator):
        from repro.core import DLRM

        model = DLRM(tiny_config, rng=1)
        result = check_gradients(model, tiny_generator.batch(4), tolerance=1e-5)
        assert result.passed, result.worst()
        # every dense parameter and every table was checked
        assert any(k.startswith("table/") for k in result.max_abs_error)
        assert any("bottom" in k for k in result.max_abs_error)

    def test_detects_a_broken_backward(self, tiny_config, tiny_generator):
        from repro.core import DLRM

        model = DLRM(tiny_config, rng=1)
        # sabotage: scale the scorer's weight gradient
        original = model.scorer.backward

        def broken(grad_out):
            result = original(grad_out)
            model.scorer.weight.grad *= 2.0
            return result

        model.scorer.backward = broken
        result = check_gradients(model, tiny_generator.batch(4), tolerance=1e-5)
        assert not result.passed
        name, _ = result.worst()
        assert "scorer" in name

    def test_validation(self, tiny_config, tiny_generator):
        from repro.core import DLRM

        model = DLRM(tiny_config, rng=1)
        with pytest.raises(ValueError):
            check_gradients(model, tiny_generator.batch(2), eps=0.0)
