"""Tests for repro.data: distributions, synthetic generation, teacher, reader."""

import numpy as np
import pytest

from repro.data import (
    BatchReader,
    ClickModel,
    SyntheticDataGenerator,
    power_law_mean_lengths,
    sample_lengths,
    sample_lognormal_with_mean,
    sample_power_law,
    sample_zipf_indices,
    train_eval_split,
    zipf_probabilities,
)


class TestPowerLaw:
    def test_respects_bounds(self, rng):
        x = sample_power_law(rng, 5000, alpha=2.5, x_min=2.0, x_max=50.0)
        assert x.min() >= 2.0 and x.max() <= 50.0

    def test_heavier_tail_for_smaller_alpha(self, rng):
        light = sample_power_law(rng, 20000, alpha=3.5, x_min=1.0)
        heavy = sample_power_law(rng, 20000, alpha=1.8, x_min=1.0)
        assert np.percentile(heavy, 99) > np.percentile(light, 99)

    def test_alpha_at_most_one_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_power_law(rng, 10, alpha=1.0)

    def test_bad_bounds_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_power_law(rng, 10, alpha=2.0, x_min=5.0, x_max=2.0)


class TestLogNormal:
    def test_mean_targeting(self, rng):
        x = sample_lognormal_with_mean(rng, 200000, target_mean=5e6, sigma=1.0)
        assert x.mean() == pytest.approx(5e6, rel=0.05)

    def test_clipping(self, rng):
        x = sample_lognormal_with_mean(rng, 1000, 100.0, clip_min=30, clip_max=200)
        assert x.min() >= 30 and x.max() <= 200

    def test_bad_mean_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_lognormal_with_mean(rng, 10, target_mean=0.0)


class TestZipf:
    def test_probabilities_normalized(self):
        p = zipf_probabilities(100, exponent=1.1)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) <= 0)  # rank 1 most popular

    def test_zero_exponent_uniform(self):
        p = zipf_probabilities(10, exponent=0.0)
        np.testing.assert_allclose(p, 0.1)

    def test_indices_in_range(self, rng):
        idx = sample_zipf_indices(rng, 10000, hash_size=500, skew=1.05)
        assert idx.min() >= 0 and idx.max() < 500

    def test_skewed_access_concentration(self, rng):
        idx = sample_zipf_indices(rng, 50000, hash_size=10000, skew=1.05)
        counts = np.bincount(idx, minlength=10000)
        top_share = np.sort(counts)[::-1][:100].sum() / 50000
        assert top_share > 0.3  # top 1% of rows gets > 30% of accesses

    def test_zero_skew_near_uniform(self, rng):
        idx = sample_zipf_indices(rng, 50000, hash_size=100, skew=0.0)
        counts = np.bincount(idx, minlength=100)
        assert counts.max() / counts.min() < 1.5

    def test_empty(self, rng):
        assert len(sample_zipf_indices(rng, 0, 10)) == 0


class TestPowerLawMeanLengths:
    def test_exact_overall_mean(self, rng):
        lengths = power_law_mean_lengths(rng, 50, overall_mean=20.0)
        assert lengths.mean() == pytest.approx(20.0, rel=1e-6)

    def test_skew_exists(self, rng):
        lengths = power_law_mean_lengths(rng, 100, overall_mean=10.0)
        assert lengths.max() > 3 * np.median(lengths)

    def test_positive_floor(self, rng):
        lengths = power_law_mean_lengths(rng, 100, overall_mean=1.0)
        assert lengths.min() > 0


class TestSampleLengths:
    def test_truncation(self, rng):
        lengths = sample_lengths(rng, 1000, mean_lookups=20.0, truncation=8)
        assert lengths.max() <= 8

    def test_mean_roughly_matches(self, rng):
        lengths = sample_lengths(rng, 20000, mean_lookups=6.0)
        assert lengths.mean() == pytest.approx(6.0, rel=0.05)

    def test_min_length(self, rng):
        lengths = sample_lengths(rng, 100, mean_lookups=0.5, min_length=1)
        assert lengths.min() >= 1


class TestSyntheticGenerator:
    def test_batch_structure(self, tiny_config):
        gen = SyntheticDataGenerator(tiny_config, rng=0)
        batch = gen.batch(16)
        assert batch.size == 16
        for spec in tiny_config.tables:
            ragged = batch.sparse[spec.name]
            assert ragged.batch_size == 16
            if len(ragged.values):
                assert ragged.values.max() < spec.hash_size

    def test_labels_are_binary(self, tiny_config):
        gen = SyntheticDataGenerator(tiny_config, rng=0)
        labels = gen.batch(200).labels
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_default_ctr_without_teacher(self, tiny_config):
        gen = SyntheticDataGenerator(tiny_config, rng=0, default_ctr=0.3)
        labels = np.concatenate([gen.batch(500).labels for _ in range(4)])
        assert labels.mean() == pytest.approx(0.3, abs=0.05)

    def test_batches_generator_counts(self, tiny_config):
        gen = SyntheticDataGenerator(tiny_config, rng=0)
        assert len(list(gen.batches(8, num_batches=5))) == 5

    def test_zero_batch_rejected(self, tiny_config):
        gen = SyntheticDataGenerator(tiny_config, rng=0)
        with pytest.raises(ValueError):
            gen.batch(0)


class TestClickModel:
    def test_labels_learnable_signal(self, tiny_config):
        """Teacher AUC of its own labels must clearly beat random."""
        gen = SyntheticDataGenerator(tiny_config, rng=0, seed_teacher=True)
        batch = gen.batch(4000)
        logits = gen.teacher.logits(batch.dense, batch.sparse)
        from repro.core import auc

        assert auc(logits, batch.labels) > 0.62

    def test_target_ctr_honored_after_calibration(self, tiny_config):
        teacher = ClickModel(tiny_config, rng=0, target_ctr=0.2, noise_scale=0.0)
        gen = SyntheticDataGenerator(tiny_config, rng=1, teacher=teacher)
        sample = gen.batch(4000)
        teacher.calibrate(sample.dense, sample.sparse)
        labels = np.concatenate([gen.batch(1000).labels for _ in range(4)])
        assert labels.mean() == pytest.approx(0.2, abs=0.05)

    def test_bad_ctr_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            ClickModel(tiny_config, target_ctr=1.5)

    def test_dense_width_checked(self, tiny_config):
        teacher = ClickModel(tiny_config, rng=0)
        with pytest.raises(ValueError):
            teacher.logits(np.zeros((2, tiny_config.num_dense + 1)), {})

    def test_bayes_log_loss_positive(self, tiny_config):
        teacher = ClickModel(tiny_config, rng=0)
        assert 0 < teacher.bayes_log_loss() < np.log(2) + 0.2


class TestBatchReader:
    def test_prefetch_buffering(self, tiny_config):
        gen = SyntheticDataGenerator(tiny_config, rng=0)
        reader = BatchReader(gen, batch_size=8, prefetch_depth=3)
        batch = reader.next_batch()
        assert batch.size == 8
        assert reader.buffered == 2  # refilled to depth, one consumed
        assert reader.batches_produced == 3

    def test_stream_count(self, tiny_config):
        gen = SyntheticDataGenerator(tiny_config, rng=0)
        reader = BatchReader(gen, batch_size=4)
        assert len(list(reader.stream(num_batches=7))) == 7

    def test_bad_params_rejected(self, tiny_config):
        gen = SyntheticDataGenerator(tiny_config, rng=0)
        with pytest.raises(ValueError):
            BatchReader(gen, batch_size=0)
        with pytest.raises(ValueError):
            BatchReader(gen, batch_size=4, prefetch_depth=0)

    def test_train_eval_split(self, tiny_config):
        gen = SyntheticDataGenerator(tiny_config, rng=0)
        stream, eval_batches = train_eval_split(gen, batch_size=16, num_eval_batches=3)
        assert len(eval_batches) == 3
        assert next(stream).size == 16
