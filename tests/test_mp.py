"""Multi-process hybrid-parallel trainer: the determinism contract.

The headline claim of :mod:`repro.distributed.mp` is that an N-worker
run with ``reduction="ordered"`` is *bit-identical* — losses, dense
parameters, and every embedding shard — to the serial reference that
trains the same sub-batches on one model.  These tests spawn real
processes over shared-memory shards and sockets, so they are the
ground truth for that claim, in both float64 and float32.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DLRM, Adagrad, Batch, Trainer
from repro.core.config import InteractionType, MLPSpec, ModelConfig, uniform_tables
from repro.core.loss import BCEWithLogitsLoss
from repro.data import SyntheticDataGenerator
from repro.distributed.mp import (
    CommProfile,
    HybridRunConfig,
    ShardPlan,
    concat_batches,
    predict_step_time,
    run_hybrid,
    run_hybrid_serial,
)
from repro.runtime.runner import derive_seed


def small_config(dtype: str = "float64", num_tables: int = 5) -> ModelConfig:
    return ModelConfig(
        name=f"mp-test-{dtype}",
        num_dense=8,
        tables=uniform_tables(num_tables, hash_size=64, dim=8, mean_lookups=2.0),
        bottom_mlp=MLPSpec((16, 8)),
        top_mlp=MLPSpec((16,)),
        interaction=InteractionType.DOT,
        compute_dtype=dtype,
    )


def assert_bit_identical(a, b) -> None:
    assert a.per_rank_losses == b.per_rank_losses
    assert a.losses == b.losses
    assert a.dense_digest == b.dense_digest
    assert a.table_digests == b.table_digests
    assert a.state_digest() == b.state_digest()


class TestOrderedDeterminism:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_two_workers_bitwise_vs_serial(self, dtype):
        config = small_config(dtype)
        run = HybridRunConfig(workers=2, steps=3, batch_size=32, seed=7)
        assert_bit_identical(run_hybrid(config, run), run_hybrid_serial(config, run))

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_four_workers_bitwise_vs_serial(self, dtype):
        config = small_config(dtype)
        run = HybridRunConfig(workers=4, steps=2, batch_size=32, seed=3)
        assert_bit_identical(run_hybrid(config, run), run_hybrid_serial(config, run))

    def test_single_worker_degenerate(self):
        config = small_config()
        run = HybridRunConfig(workers=1, steps=2, batch_size=16)
        assert_bit_identical(run_hybrid(config, run), run_hybrid_serial(config, run))

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_two_workers_pipelined_bitwise_vs_serial(self, dtype):
        # the prefetched data path + overlapped sparse exchange must not
        # change a bit relative to the unpipelined serial reference
        config = small_config(dtype)
        run = HybridRunConfig(workers=2, steps=3, batch_size=32, seed=7, pipeline=True)
        assert_bit_identical(run_hybrid(config, run), run_hybrid_serial(config, run))

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_pipelined_equals_unpipelined_multiprocess(self, dtype):
        config = small_config(dtype)
        base = dict(workers=2, steps=3, batch_size=32, seed=5)
        piped = run_hybrid(config, HybridRunConfig(**base, pipeline=True))
        plain = run_hybrid(config, HybridRunConfig(**base))
        assert_bit_identical(piped, plain)
        assert plain.pipeline is None
        assert piped.pipeline is not None
        assert piped.pipeline["batches"] == 3
        assert 0.0 <= piped.pipeline["overlap_fraction"] <= 1.0
        assert len(piped.per_rank_pipeline) == 2
        assert all(p is not None for p in piped.per_rank_pipeline)

    def test_seed_changes_trajectory(self):
        config = small_config()
        a = run_hybrid_serial(config, HybridRunConfig(workers=2, steps=2, batch_size=16, seed=0))
        b = run_hybrid_serial(config, HybridRunConfig(workers=2, steps=2, batch_size=16, seed=1))
        assert a.losses != b.losses


class TestRingReduction:
    def test_two_workers_ring_bitwise(self):
        # two-term floating-point sums are order-insensitive, so even the
        # rotated ring association matches the serial reference exactly
        config = small_config()
        run = HybridRunConfig(workers=2, steps=3, batch_size=32, reduction="ring")
        assert_bit_identical(run_hybrid(config, run), run_hybrid_serial(config, run))

    def test_four_workers_ring_tolerance(self):
        # W > 2 rotates the per-chunk association: tolerance, not bitwise
        config = small_config()
        run = HybridRunConfig(workers=4, steps=3, batch_size=32, reduction="ring")
        got = run_hybrid(config, run)
        ref = run_hybrid_serial(config, run)
        np.testing.assert_allclose(got.losses, ref.losses, rtol=1e-9, atol=1e-12)


class TestAgainstPlainTrainer:
    def test_serial_reference_matches_full_batch_trainer(self):
        """The serial reference IS a full-batch train loop, up to rounding.

        Concatenating the per-rank sub-batches and running the plain
        :class:`Trainer` accumulates gradients in a different association
        (one backward over 32 rows vs. four over 8), so this is a
        tolerance check — it anchors the hybrid contract to the code path
        everything else in the repo uses.
        """
        config = small_config("float64")
        run = HybridRunConfig(workers=4, steps=3, batch_size=32, seed=5)
        ref = run_hybrid_serial(config, run)

        gens = [
            SyntheticDataGenerator(config, rng=derive_seed(run.seed, "data", r))
            for r in range(run.workers)
        ]
        rank_batches = [
            [g.batch(run.local_batch) for _ in range(run.steps)] for g in gens
        ]
        model = DLRM(config, rng=derive_seed(run.seed, "model"))
        trainer = Trainer(
            model,
            lambda m: Adagrad(
                m.dense_parameters(), m.embedding_tables(), lr=run.lr,
                backend=m.backend,
            ),
        )
        losses = [
            trainer.train_step(concat_batches([rank_batches[r][s] for r in range(run.workers)]))
            for s in range(run.steps)
        ]
        np.testing.assert_allclose(losses, ref.losses, rtol=1e-9, atol=1e-12)

    def test_concat_batches_shapes(self):
        config = small_config()
        gen = SyntheticDataGenerator(config, rng=0)
        parts = [gen.batch(4) for _ in range(3)]
        whole = concat_batches(parts)
        assert whole.dense.shape == (12, config.num_dense)
        assert whole.labels.shape == (12,)
        for t in config.tables:
            ragged = whole.sparse[t.name]
            assert ragged.offsets.shape == (13,)
            assert ragged.offsets[-1] == sum(p.sparse[t.name].values.size for p in parts)


class TestValidation:
    def test_indivisible_batch_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            HybridRunConfig(workers=3, batch_size=32)

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError, match="reduction"):
            HybridRunConfig(reduction="tree")


class TestShardPlan:
    def test_every_table_owned_once(self):
        config = small_config(num_tables=7)
        plan = ShardPlan.greedy(config, world=3)
        owned = [n for r in range(3) for n in plan.owned(r)]
        assert sorted(owned) == sorted(t.name for t in config.tables)

    def test_greedy_balances_bytes(self):
        config = ModelConfig(
            name="mp-skew",
            num_dense=4,
            tables=uniform_tables(2, hash_size=1000, dim=8)
            + uniform_tables(4, hash_size=50, dim=8, prefix="small"),
            bottom_mlp=MLPSpec((8,)),
            top_mlp=MLPSpec((8,)),
            interaction=InteractionType.DOT,
        )
        plan = ShardPlan.greedy(config, world=2)
        sizes = plan.owner_bytes(config)
        # largest-first greedy puts one big table on each rank
        assert max(sizes) < 2 * min(sizes)


class TestPredictor:
    def test_predicted_components_positive(self):
        config = small_config()
        comm = CommProfile(
            latency_s=10e-6, bandwidth_bps=4e9, barrier_s=30e-6,
            hop_overhead_s=80e-6, frame_fixed_s=50e-6, frame_byte_s=2e-10,
        )
        pred = predict_step_time(
            config, world=4, local_batch=64, sub_batch_step_s=2e-3,
            comm=comm, cores=1,
        )
        assert pred.total_s > pred.compute_s > 0
        assert pred.dense_comm_s > 0 and pred.sparse_comm_s > 0

    def test_oversubscription_serializes_compute(self):
        # with one core, four workers' compute time-shares: predicted
        # step must be at least ~4x the sub-batch compute
        config = small_config()
        comm = CommProfile(latency_s=10e-6, bandwidth_bps=4e9, barrier_s=30e-6)
        pred = predict_step_time(
            config, world=4, local_batch=64, sub_batch_step_s=2e-3,
            comm=comm, cores=1,
        )
        assert pred.compute_s >= 4 * 2e-3

    def test_dedicated_cores_overlap_credit(self):
        config = small_config()
        comm = CommProfile(latency_s=10e-6, bandwidth_bps=4e9, barrier_s=30e-6)
        cramped = predict_step_time(
            config, world=4, local_batch=64, sub_batch_step_s=2e-3,
            comm=comm, cores=4,
        )
        roomy = predict_step_time(
            config, world=4, local_batch=64, sub_batch_step_s=2e-3,
            comm=comm, cores=8,
        )
        assert roomy.overlap_credit_s > 0
        assert roomy.total_s <= cramped.total_s
