"""Tests for repro.core.interaction: concat and dot combiners + gradients."""

import numpy as np
import pytest

from repro.core import ConcatInteraction, DotInteraction, InteractionType, make_interaction

from helpers import numeric_grad_scalar


class TestConcatInteraction:
    def test_forward_layout(self, rng):
        inter = ConcatInteraction(num_sparse=2, dim=3)
        dense = rng.normal(size=(2, 5))
        embs = [rng.normal(size=(2, 3)) for _ in range(2)]
        out = inter.forward(dense, embs)
        assert out.shape == (2, 5 + 6)
        np.testing.assert_array_equal(out[:, :5], dense)
        np.testing.assert_array_equal(out[:, 5:8], embs[0])
        np.testing.assert_array_equal(out[:, 8:], embs[1])

    def test_out_features(self):
        assert ConcatInteraction(3, 4).out_features(10) == 10 + 12

    def test_backward_splits(self, rng):
        inter = ConcatInteraction(num_sparse=2, dim=3)
        dense = rng.normal(size=(2, 5))
        embs = [rng.normal(size=(2, 3)) for _ in range(2)]
        out = inter.forward(dense, embs)
        g_dense, g_embs = inter.backward(np.ones_like(out))
        assert g_dense.shape == (2, 5)
        assert len(g_embs) == 2 and g_embs[0].shape == (2, 3)

    def test_wrong_emb_count_rejected(self, rng):
        inter = ConcatInteraction(num_sparse=2, dim=3)
        with pytest.raises(ValueError):
            inter.forward(rng.normal(size=(2, 5)), [rng.normal(size=(2, 3))])

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ConcatInteraction(1, 2).backward(np.zeros((1, 4)))


class TestDotInteraction:
    def test_pair_count(self):
        inter = DotInteraction(num_sparse=3, dim=4)
        assert inter.num_pairs == 6  # C(4, 2)
        assert inter.out_features(4) == 4 + 6

    def test_out_features_requires_dim_match(self):
        with pytest.raises(ValueError):
            DotInteraction(2, 4).out_features(5)

    def test_forward_pairs_match_manual(self, rng):
        inter = DotInteraction(num_sparse=2, dim=3)
        dense = rng.normal(size=(1, 3))
        e1, e2 = rng.normal(size=(1, 3)), rng.normal(size=(1, 3))
        out = inter.forward(dense, [e1, e2])
        np.testing.assert_array_equal(out[:, :3], dense)
        pairs = out[0, 3:]
        # tril order over [dense, e1, e2]: (e1,dense), (e2,dense), (e2,e1)
        assert pairs[0] == pytest.approx(float((e1 * dense).sum()))
        assert pairs[1] == pytest.approx(float((e2 * dense).sum()))
        assert pairs[2] == pytest.approx(float((e2 * e1).sum()))

    def test_gradients_numeric(self, rng):
        inter = DotInteraction(num_sparse=2, dim=3)
        dense = rng.normal(size=(2, 3))
        embs = [rng.normal(size=(2, 3)) for _ in range(2)]
        coeff = rng.normal(size=(2, inter.out_features(3)))

        def loss():
            return float((inter.forward(dense, list(embs)) * coeff).sum())

        expected_dense = numeric_grad_scalar(loss, dense)
        expected_embs = [numeric_grad_scalar(loss, e) for e in embs]
        inter.forward(dense, list(embs))
        g_dense, g_embs = inter.backward(coeff)
        np.testing.assert_allclose(g_dense, expected_dense, rtol=1e-5, atol=1e-8)
        for got, want in zip(g_embs, expected_embs):
            np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-8)

    def test_dense_width_mismatch_rejected(self, rng):
        inter = DotInteraction(num_sparse=1, dim=3)
        with pytest.raises(ValueError):
            inter.forward(rng.normal(size=(1, 4)), [rng.normal(size=(1, 3))])


class TestFactory:
    def test_make_concat(self):
        assert isinstance(
            make_interaction(InteractionType.CONCAT, 2, 3), ConcatInteraction
        )

    def test_make_dot(self):
        assert isinstance(make_interaction(InteractionType.DOT, 2, 3), DotInteraction)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_interaction("nope", 2, 3)
