"""Tests for fleet capacity accounting and growth forecasting."""

import pytest

from repro.fleet import CapacityDemand, estimate_fleet_demand, forecast_growth


class TestEstimateFleetDemand:
    def test_components_positive_and_sum(self):
        demand = estimate_fleet_demand(num_sampled_runs=50, seed=0)
        assert demand.trainer_servers > 0
        assert demand.sparse_ps_servers > 0
        assert demand.total_servers == pytest.approx(
            demand.trainer_servers
            + demand.sparse_ps_servers
            + demand.dense_ps_servers
            + demand.reader_servers
        )

    def test_power_consistent_with_servers(self):
        demand = estimate_fleet_demand(num_sampled_runs=50, seed=0)
        assert demand.power_watts == pytest.approx(demand.total_servers * 500.0)

    def test_trainers_dominate_ps(self):
        """Fleet-wide, trainer servers outnumber parameter servers (Fig 9's
        typical runs use ~10 trainers vs a handful of PS)."""
        demand = estimate_fleet_demand(num_sampled_runs=100, seed=1)
        assert demand.trainer_servers > demand.sparse_ps_servers

    def test_deterministic_under_seed(self):
        a = estimate_fleet_demand(num_sampled_runs=30, seed=5)
        b = estimate_fleet_demand(num_sampled_runs=30, seed=5)
        assert a.total_servers == b.total_servers

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_fleet_demand(num_sampled_runs=0)


class TestForecastGrowth:
    def test_18_month_growth_matches_rate(self):
        base = CapacityDemand(100, 50, 10, 20, 90_000)
        series = forecast_growth(base, months=18, runs_growth_per_18mo=7.0)
        assert len(series) == 19
        month, final = series[-1]
        assert month == 18
        assert final.total_servers == pytest.approx(7.0 * base.total_servers, rel=1e-9)

    def test_compound_monotone(self):
        base = CapacityDemand(10, 5, 1, 2, 9_000)
        series = forecast_growth(base, months=6)
        totals = [d.total_servers for _, d in series]
        assert all(b > a for a, b in zip(totals, totals[1:]))

    def test_quadrupling_within_18_months(self):
        """§I: training capacity quadrupled over 18 months — the 7x runs
        growth implies crossing 4x well before month 18."""
        base = estimate_fleet_demand(num_sampled_runs=30, seed=2)
        series = forecast_growth(base, months=18)
        crossing = next(
            m for m, d in series if d.total_servers >= 4 * base.total_servers
        )
        assert crossing < 18

    def test_validation(self):
        base = CapacityDemand(1, 1, 1, 1, 2000)
        with pytest.raises(ValueError):
            forecast_growth(base, months=-1)
        with pytest.raises(ValueError):
            forecast_growth(base, months=2, runs_growth_per_18mo=0)
        with pytest.raises(ValueError):
            base.scaled(-1.0)
