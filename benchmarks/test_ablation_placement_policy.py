"""Ablation: placement-planner design choices.

DESIGN.md calls out three planner choices worth ablating:

* replication of small tables (vs forcing model-parallel sharding);
* hybrid spill priority (hot-tables-first into HBM vs byte-driven);
* remote-PS balancing by bytes vs by access frequency.
"""

from dataclasses import replace

from bench_utils import record, run_once

from repro.analysis import render_table
from repro.configs import make_test_model
from repro.core import InteractionType, MLPSpec, ModelConfig, TableSpec
from repro.hardware import BIG_BASIN, DUAL_SOCKET_CPU
from repro.perf import gpu_server_throughput
from repro.placement import (
    PlacementStrategy,
    PlannerConfig,
    plan_gpu_memory,
    plan_remote_cpu,
)


def _skewed_model() -> ModelConfig:
    """Half hot tables, half cold — where balancing policy matters."""
    tables = tuple(
        TableSpec(
            f"t{i}",
            hash_size=2_000_000,
            dim=64,
            mean_lookups=40.0 if i % 2 == 0 else 1.0,
        )
        for i in range(16)
    )
    return ModelConfig(
        "skewed", 256, tables, MLPSpec((512,)), MLPSpec((512,)), InteractionType.CONCAT
    )


def _run_ablation():
    rows = []

    # 1. replication on/off for a small-table model
    small = make_test_model(512, 32, hash_size=200_000)
    plan_repl = plan_gpu_memory(small, BIG_BASIN)
    plan_shard = plan_gpu_memory(
        small, BIG_BASIN, cfg=PlannerConfig(replicate_threshold_bytes=0.0)
    )
    t_repl = gpu_server_throughput(small, 1600, BIG_BASIN, plan_repl).throughput
    t_shard = gpu_server_throughput(small, 1600, BIG_BASIN, plan_shard).throughput
    rows.append(["replication (small tables)", f"{t_repl:,.0f}", f"{t_shard:,.0f}",
                 f"{t_repl / t_shard:.2f}x"])

    # 2. remote balancing by accesses vs bytes on a skewed model
    skewed = _skewed_model()
    by_bytes = plan_remote_cpu(skewed, DUAL_SOCKET_CPU, num_ps=4,
                               cfg=PlannerConfig(balance_by="bytes"))
    by_access = plan_remote_cpu(skewed, DUAL_SOCKET_CPU, num_ps=4,
                                cfg=PlannerConfig(balance_by="accesses"))

    def max_ps_load(plan, model):
        lookups = {t.name: t.effective_mean_lookups for t in model.tables}
        loads = {}
        for s in plan.shards:
            loads[s.location.index] = loads.get(s.location.index, 0.0) + lookups[s.table_name]
        return max(loads.values()) / (sum(loads.values()) / len(loads))

    imb_bytes = max_ps_load(by_bytes, skewed)
    imb_access = max_ps_load(by_access, skewed)
    rows.append(["remote balance (max/mean PS load)", f"{imb_bytes:.2f}",
                 f"{imb_access:.2f}", "accesses" if imb_access < imb_bytes else "bytes"])

    return rows, (t_repl, t_shard, imb_bytes, imb_access)


def test_ablation_placement_policy(benchmark):
    rows, (t_repl, t_shard, imb_bytes, imb_access) = run_once(benchmark, _run_ablation)
    record(
        "ablation_placement_policy",
        render_table(
            ["choice", "variant A", "variant B", "winner/effect"],
            rows,
            title="Ablation: placement-planner design choices",
        ),
    )
    # replication must not hurt, and removes the all-to-all
    assert t_repl >= 0.95 * t_shard
    # access-aware balancing reduces the hottest PS's load share
    assert imb_access <= imb_bytes + 1e-9


def _run_partitioning():
    """Partitioning policies on a hot-table model: naive table-wise (no hot
    splitting), the default (hot tables auto-striped), and full row-wise."""
    from repro.core import InteractionType, MLPSpec, ModelConfig, TableSpec

    tables = (TableSpec("hot", 4_000_000, dim=64, mean_lookups=200.0),) + tuple(
        TableSpec(f"cold{i}", 4_000_000, dim=64, mean_lookups=5.0) for i in range(7)
    )
    model = ModelConfig(
        "hot", 64, tables, MLPSpec((128,)), MLPSpec((128,)), InteractionType.CONCAT
    )
    naive = plan_gpu_memory(
        model, BIG_BASIN, cfg=PlannerConfig(hot_table_split_factor=1e9)
    )
    default = plan_gpu_memory(model, BIG_BASIN)
    row_wise = plan_gpu_memory(
        model, BIG_BASIN, cfg=PlannerConfig(partitioning="row_wise")
    )
    t_naive = gpu_server_throughput(model, 1600, BIG_BASIN, naive).throughput
    t_default = gpu_server_throughput(model, 1600, BIG_BASIN, default).throughput
    t_row = gpu_server_throughput(model, 1600, BIG_BASIN, row_wise).throughput
    return t_naive, t_default, t_row


def test_ablation_partitioning(benchmark):
    t_naive, t_default, t_row = run_once(benchmark, _run_partitioning)
    record(
        "ablation_partitioning",
        render_table(
            ["partitioning", "ex/s"],
            [
                ["table-wise, no hot splitting", f"{t_naive:,.0f}"],
                ["table-wise + hot-table striping (default)", f"{t_default:,.0f}"],
                ["full row-wise", f"{t_row:,.0f}"],
            ],
            title=(
                "Ablation: GPU partitioning with one ultra-hot table "
                "(striping the hot table removes the hot-GPU straggler)"
            ),
        ),
    )
    assert t_default > 1.2 * t_naive  # hot-table striping pays
    assert t_row >= 0.9 * t_default  # full row-wise is comparable here
