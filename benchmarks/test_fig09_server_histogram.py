"""Bench: regenerate Figure 9 (trainer / parameter-server count histograms).

Targets: over 40% of workflows share the modal trainer count; the PS-count
distribution is wider (memory-driven experimentation).
"""

from bench_utils import record, run_once

from repro.experiments import fig09_servers


def test_fig09_server_histogram(benchmark):
    result = run_once(benchmark, fig09_servers.run, 400, 0)
    record("fig09_server_histogram", fig09_servers.render(result))

    assert result.modal_trainer_share > 0.40  # paper: "over 40%"
    assert result.distinct_ps_counts > result.distinct_trainer_counts
    assert result.ps_spread > 0.2  # PS counts "vary greatly"
