"""Bench (extension): hybrid placement for M3 on Big Basin.

The paper evaluates M3 on Big Basin only with remote-CPU placement (Table
III: 0.67x of the CPU baseline) because the tables exceed HBM.  But M3
only *barely* exceeds HBM (241 GB of state vs ~230 GB usable), and the
paper's own §IV-B.1 describes the hybrid option: "placing as much as
tables as it can fit could reduce the pressure on the CPU".  Our planner
quantifies it: ~96% of bytes stay in HBM, the spill rides the host
pipeline, and predicted throughput lands several times above the remote
placement.  EXPERIMENTS.md discusses the headroom caveat.
"""

from bench_utils import record, run_once

from repro.analysis import render_table
from repro.configs import PRODUCTION_MODELS, PRODUCTION_SETUPS
from repro.hardware import BIG_BASIN, DUAL_SOCKET_CPU, CapacityError
from repro.perf import cpu_cluster_throughput, gpu_server_throughput
from repro.placement import LocationKind, PlacementStrategy, plan_gpu_memory, plan_placement


def _run():
    m3 = PRODUCTION_MODELS["M3_prod"]()
    setup = PRODUCTION_SETUPS["M3_prod"]
    cpu = cpu_cluster_throughput(
        m3, setup.cpu_batch_per_trainer, setup.cpu_trainers,
        setup.cpu_sparse_ps, setup.cpu_dense_ps,
    ).throughput
    gpu_mem_feasible = True
    try:
        plan_gpu_memory(m3, BIG_BASIN)
    except CapacityError:
        gpu_mem_feasible = False
    remote = gpu_server_throughput(
        m3, setup.gpu_batch, BIG_BASIN,
        plan_placement(m3, BIG_BASIN, PlacementStrategy.REMOTE_CPU,
                       num_ps=setup.gpu_remote_ps, ps_platform=DUAL_SOCKET_CPU),
    ).throughput
    hybrid_plan = plan_placement(m3, BIG_BASIN, PlacementStrategy.HYBRID)
    kinds = hybrid_plan.bytes_by_kind()
    hbm_fraction = kinds.get(LocationKind.GPU, 0.0) / sum(kinds.values())
    hybrid = gpu_server_throughput(m3, setup.gpu_batch, BIG_BASIN, hybrid_plan).throughput
    return cpu, remote, hybrid, hbm_fraction, gpu_mem_feasible


def test_extension_m3_hybrid(benchmark):
    cpu, remote, hybrid, hbm_fraction, gpu_mem_feasible = run_once(benchmark, _run)
    rows = [
        ["CPU production setup", f"{cpu:,.0f}", "1.00x"],
        ["Big Basin remote (paper's choice)", f"{remote:,.0f}", f"{remote / cpu:.2f}x"],
        ["Big Basin hybrid (this repo's planner)", f"{hybrid:,.0f}", f"{hybrid / cpu:.2f}x"],
    ]
    record(
        "extension_m3_hybrid",
        render_table(
            ["setup", "ex/s", "vs CPU"],
            rows,
            title=(
                "Extension: hybrid placement for M3 on one Big Basin "
                f"(HBM holds {hbm_fraction:.0%} of table bytes; pure GPU placement "
                f"feasible: {gpu_mem_feasible})"
            ),
        ),
    )
    assert not gpu_mem_feasible  # the paper's premise holds
    assert hbm_fraction > 0.6  # most bytes still fit in HBM
    assert hybrid > 2 * remote  # the untried option was worth a lot
