"""Ablation: model-architecture knobs the paper calls out.

* truncation size (§III-A.2: bounding lookup outliers buys throughput);
* interaction type (concat vs pairwise dot, §III-A.3);
* pooling type (sum vs mean) — functional equivalence check on quality.
"""

from dataclasses import replace

import numpy as np

from bench_utils import record, run_once

from repro.analysis import render_table
from repro.configs import make_test_model
from repro.core import (
    Adagrad,
    DLRM,
    InteractionType,
    MLPSpec,
    ModelConfig,
    PoolingType,
    Trainer,
    evaluate,
    uniform_tables,
)
from repro.data import SyntheticDataGenerator
from repro.hardware import BIG_BASIN
from repro.perf import cpu_cluster_throughput, gpu_server_throughput
from repro.placement import PlacementStrategy, plan_placement


def _throughput(model, batch=1600):
    plan = plan_placement(model, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
    return gpu_server_throughput(model, batch, BIG_BASIN, plan).throughput


def _run():
    rows = []

    # 1. truncation: long-tailed lookups with/without a cap of 32
    long_tail = make_test_model(512, 32, mean_lookups=60.0, truncation=None)
    capped = make_test_model(512, 32, mean_lookups=60.0, truncation=32)
    t_uncapped, t_capped = _throughput(long_tail), _throughput(capped)
    rows.append(["truncation=32 (lookups~60)", f"{t_uncapped:,.0f}", f"{t_capped:,.0f}",
                 f"{t_capped / t_uncapped:.2f}x"])

    # 2. interaction type: dot costs pairwise GEMMs over concat
    concat = ModelConfig(
        "concat", 512,
        uniform_tables(32, 100_000, dim=64, mean_lookups=10, truncation=32),
        MLPSpec((512, 64)), MLPSpec((512,)), InteractionType.CONCAT,
    )
    dot = replace(concat, name="dot", interaction=InteractionType.DOT)
    t_concat, t_dot = _throughput(concat), _throughput(dot)
    rows.append(["interaction concat vs dot", f"{t_concat:,.0f}", f"{t_dot:,.0f}",
                 f"{t_dot / t_concat:.2f}x"])

    # 3. pooling sum vs mean: quality parity on a real training run
    tiny = ModelConfig(
        "pool", 16, uniform_tables(4, 1000, dim=8, mean_lookups=3),
        MLPSpec((16, 8)), MLPSpec((8,)), InteractionType.DOT,
    )
    nes = {}
    for pooling in (PoolingType.SUM, PoolingType.MEAN):
        gen = SyntheticDataGenerator(tiny, rng=4, seed_teacher=True)
        model = DLRM(tiny, rng=1, pooling=pooling)
        Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=0.05),
        ).train(gen.batches(64), max_examples=12_000)
        eval_gen = SyntheticDataGenerator(tiny, rng=4, seed_teacher=True)
        nes[pooling] = evaluate(model, [eval_gen.batch(1024)])["normalized_entropy"]
    rows.append(["pooling sum vs mean (NE)", f"{nes[PoolingType.SUM]:.4f}",
                 f"{nes[PoolingType.MEAN]:.4f}", "parity"])

    return rows, t_uncapped, t_capped, t_concat, t_dot, nes


def test_ablation_model_knobs(benchmark):
    rows, t_uncapped, t_capped, t_concat, t_dot, nes = run_once(benchmark, _run)
    record(
        "ablation_model_knobs",
        render_table(
            ["knob", "variant A", "variant B", "effect"],
            rows,
            title="Ablation: model-architecture knobs (§III-A)",
        ),
    )
    # truncation buys throughput on long-tailed features
    assert t_capped > 1.1 * t_uncapped
    # the dot combiner itself costs FLOPs that concat does not, but it also
    # shrinks the top-MLP input (d + pairs vs n*d), so end-to-end the two
    # land close together — assert the op-level cost ordering and the
    # end-to-end proximity separately.
    from repro.perf import ops as perf_ops
    from repro.configs import make_test_model as _mtm
    from repro.core import InteractionType as _IT

    concat_cost = perf_ops.interaction_cost(
        _mtm(512, 32, interaction=_IT.CONCAT), 1600, backward=False
    )
    dot_model = _mtm(512, 32, mlp="512-64", interaction=_IT.DOT)
    dot_cost = perf_ops.interaction_cost(dot_model, 1600, backward=False)
    assert dot_cost.flops > concat_cost.flops
    assert 0.5 < t_dot / t_concat < 2.0
    # both pooling modes learn (NE < 1) and land close together
    assert nes[PoolingType.SUM] < 1.0 and nes[PoolingType.MEAN] < 1.0
    assert abs(nes[PoolingType.SUM] - nes[PoolingType.MEAN]) < 0.05
