"""Bench: regenerate Table I (hardware platform details)."""

from bench_utils import record, run_once

from repro.experiments import table1_platforms


def test_table1_platforms(benchmark):
    result = run_once(benchmark, table1_platforms.run)
    record("table1_platforms", table1_platforms.render(result))

    platforms = result.by_name()
    assert platforms["BigBasin"].nameplate_watts / platforms[
        "DualSocketCPU"
    ].nameplate_watts == 7.3
    assert platforms["Zion"].system_memory == 2e12
    assert platforms["BigBasin"].num_gpus == 8
