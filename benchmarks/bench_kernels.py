#!/usr/bin/env python
"""Old-vs-new kernel benchmark and sweep-runner benchmark, with a CI gate.

Measures the fast-path kernels (:mod:`repro.core.kernels`) against the
historical implementations they replaced (kept as ``naive_*`` references),
plus the Figure 15 sweep through the parallel/memoized
:class:`~repro.runtime.SweepRunner` against the serial path.

Usage::

    python benchmarks/bench_kernels.py --quick --out BENCH_kernels.json
    python benchmarks/bench_kernels.py --quick --check BENCH_kernels.json

``--check`` compares *speedup ratios* (old/new measured in the same
process, so machine speed cancels) against the committed baseline and
fails the run when any gated benchmark regresses by more than
``GATE_FACTOR`` (1.25x).  The fig15 sweep entry is gated on an absolute
floor instead: the runner (4 workers + result cache) must cut wall clock
by at least ``SWEEP_MIN_SPEEDUP`` (2x) — on single-core machines the win
comes from memoization, on multicore from both.

Timing protocol: two warm-up rounds, then best-of-N (min is the robust
estimator under scheduler noise; means drift badly on shared boxes).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

# Allow running as a plain script from the repo root without PYTHONPATH.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.core import EmbeddingTable, RaggedIndices, TableSpec, kernels  # noqa: E402

GATE_FACTOR = 1.25
SWEEP_MIN_SPEEDUP = 2.0


def best_of(fn, reps: int, warmup: int = 2) -> float:
    """Best-of-``reps`` wall time of ``fn()`` after ``warmup`` discarded runs."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------------------------------
# kernel benchmarks (old vs new)
# ---------------------------------------------------------------------------


def _make_ragged(rng, batch: int, hash_size: int, mean: float = 30.0):
    lengths = rng.poisson(mean, size=batch).astype(np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    values = rng.integers(0, hash_size, size=int(offsets[-1]))
    return RaggedIndices(values=values, offsets=offsets, safe_bound=hash_size)


def _old_fwd_bwd(weight, ind, grad_out, truncation):
    """The pre-optimization pooled fwd+bwd, composed from naive kernels."""
    v, o = kernels.naive_truncate_ragged(ind.values, ind.offsets, truncation)
    if (v < 0).any() or (v >= weight.shape[0]).any():  # two-pass bounds check
        raise IndexError("out of range")
    rows = weight[v]
    pooled = kernels.naive_segment_sum(rows, o)
    per_lookup = np.repeat(grad_out, np.diff(o), axis=0)
    return pooled, kernels.naive_coalesce_rows(v, per_lookup)


def _new_fwd_bwd(table, ind, grad_out):
    out = table.forward(ind)
    table.backward(grad_out)
    return out, table.pop_grad()


def bench_embedding(batch: int, reps: int) -> dict:
    rng = np.random.default_rng(0)
    spec = TableSpec("bench", hash_size=100_000, dim=64, mean_lookups=30.0, truncation=32)
    table = EmbeddingTable(spec, rng)
    ind = _make_ragged(rng, batch, spec.hash_size)
    grad = rng.standard_normal((batch, spec.dim))
    old_s = best_of(lambda: _old_fwd_bwd(table.weight, ind, grad, 32), reps)
    new_s = best_of(lambda: _new_fwd_bwd(table, ind, grad), reps)
    return {"old_s": old_s, "new_s": new_s, "speedup": old_s / new_s, "gate": True}


def bench_segment_pool(reps: int) -> dict:
    rng = np.random.default_rng(1)
    ind = _make_ragged(rng, 2048, 100_000)
    rows = rng.standard_normal((ind.total_lookups, 64))
    old_s = best_of(lambda: kernels.naive_segment_sum(rows, ind.offsets), reps)
    new_s = best_of(lambda: kernels.segment_sum(rows, ind.offsets), reps)
    return {"old_s": old_s, "new_s": new_s, "speedup": old_s / new_s, "gate": True}


def bench_coalesce(reps: int) -> dict:
    rng = np.random.default_rng(2)
    indices = rng.integers(0, 100_000, size=60_000)
    grads = rng.standard_normal((60_000, 64))
    old_s = best_of(lambda: kernels.naive_coalesce_rows(indices, grads), reps)
    new_s = best_of(lambda: kernels.coalesce_rows(indices, grads), reps)
    return {"old_s": old_s, "new_s": new_s, "speedup": old_s / new_s, "gate": True}


def bench_truncate(reps: int) -> dict:
    rng = np.random.default_rng(3)
    ind = _make_ragged(rng, 8192, 100_000)
    old_s = best_of(
        lambda: kernels.naive_truncate_ragged(ind.values, ind.offsets, 24), reps
    )
    new_s = best_of(lambda: kernels.truncate_ragged(ind.values, ind.offsets, 24), reps)
    return {"old_s": old_s, "new_s": new_s, "speedup": old_s / new_s, "gate": True}


# ---------------------------------------------------------------------------
# sweep runner benchmark (serial vs 4 workers + cache)
# ---------------------------------------------------------------------------


def bench_fig15_sweep(quick: bool) -> dict:
    from repro.experiments import fig15_accuracy as f15
    from repro.runtime import ResultCache, SweepRunner

    kw = dict(
        baseline_batch=64,
        gpu_batches=(128,) if quick else (128, 256),
        example_budget=2048 if quick else 8192,
        tuning_trials=2 if quick else 3,
        num_seeds=1 if quick else 2,
        seed=0,
    )
    t0 = time.perf_counter()
    serial = f15.run(**kw)
    serial_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        runner = SweepRunner(workers=4, cache=ResultCache(tmp))
        t0 = time.perf_counter()
        cold = f15.run(**kw, runner=runner)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = f15.run(**kw, runner=runner)
        warm_s = time.perf_counter() - t0
    if not (serial == cold == warm):  # determinism contract, checked for free
        raise AssertionError("fig15 runner results diverged from serial")
    return {
        "serial_s": serial_s,
        "parallel4_cold_s": cold_s,
        "parallel4_warm_s": warm_s,
        "parallel_speedup": serial_s / cold_s,
        "cached_speedup": serial_s / warm_s,
        "speedup": serial_s / min(cold_s, warm_s),
        "min_speedup": SWEEP_MIN_SPEEDUP,
        "gate": False,  # ratio-gated separately via min_speedup (absolute)
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def run_all(quick: bool) -> dict:
    reps = 5 if quick else 12
    results = {
        "embedding_fwd_bwd_b512": bench_embedding(512, reps),
        "embedding_fwd_bwd_b2048": bench_embedding(2048, reps),
        "segment_pool": bench_segment_pool(reps),
        "coalesce": bench_coalesce(reps),
        "truncate": bench_truncate(reps),
        "fig15_sweep": bench_fig15_sweep(quick),
    }
    return {
        "meta": {
            "mode": "quick" if quick else "full",
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "benchmarks": results,
    }


def check(current: dict, baseline_path: str) -> int:
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    failures = []
    for name, entry in current["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if entry.get("gate") and base is not None:
            floor = base["speedup"] / GATE_FACTOR
            if entry["speedup"] < floor:
                failures.append(
                    f"{name}: speedup {entry['speedup']:.2f}x < floor {floor:.2f}x "
                    f"(baseline {base['speedup']:.2f}x / {GATE_FACTOR})"
                )
        if "min_speedup" in entry:
            best = max(entry["parallel_speedup"], entry["cached_speedup"])
            if best < entry["min_speedup"]:
                failures.append(
                    f"{name}: best runner speedup {best:.2f}x < required "
                    f"{entry['min_speedup']:.2f}x"
                )
    if failures:
        print("REGRESSION GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"regression gate passed ({len(current['benchmarks'])} benchmarks)")
    return 0


def render(results: dict) -> str:
    lines = [f"kernel/runner benchmarks ({results['meta']['mode']} mode, "
             f"{results['meta']['cpu_count']} cpus, numpy {results['meta']['numpy']})"]
    for name, e in results["benchmarks"].items():
        if "old_s" in e:
            lines.append(
                f"  {name:<24} old {e['old_s'] * 1e3:8.2f} ms   "
                f"new {e['new_s'] * 1e3:8.2f} ms   {e['speedup']:5.2f}x"
            )
        else:
            lines.append(
                f"  {name:<24} serial {e['serial_s']:.2f} s   "
                f"4w cold {e['parallel4_cold_s']:.2f} s ({e['parallel_speedup']:.2f}x)   "
                f"warm {e['parallel4_warm_s']:.3f} s ({e['cached_speedup']:.0f}x)"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail if gated speedups regress >%.2fx vs BASELINE"
                             % GATE_FACTOR)
    args = parser.parse_args(argv)
    results = run_all(quick=args.quick)
    print(render(results))
    if args.out:
        pathlib.Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.check:
        return check(results, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
