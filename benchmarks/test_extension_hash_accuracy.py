"""Bench (extension): the hash-size / accuracy trade-off, measured.

§III-A.2 claims smaller hash sizes trade accuracy for memory via
collisions; the paper never plots it.  This bench trains real students at
shrinking hash sizes over a fixed raw-id space and asserts the monotone NE
degradation the claim implies.
"""

from bench_utils import record, run_once

from repro.experiments import ext_hash_accuracy


def test_extension_hash_accuracy(benchmark):
    result = run_once(benchmark, ext_hash_accuracy.run)
    record("extension_hash_accuracy", ext_hash_accuracy.render(result))

    nes = [p.normalized_entropy for p in result.points]  # largest -> smallest hash
    # quality degrades monotonically as collisions increase
    assert all(b >= a - 0.002 for a, b in zip(nes, nes[1:]))
    # the 1000-ids-per-row extreme pays a clearly visible penalty
    assert nes[-1] > result.baseline_ne * 1.02
    # while the 10x compression point stays within a modest budget
    assert nes[1] < result.baseline_ne * 1.02
