"""Ablation: the optimization opportunities of §III-A.2 — caching and
quantization — plus the multi-node scale-out the paper could not test.

* HBM hot-row caching recovers Big Basin's system-memory placement penalty;
* int8/int4 quantization makes M3 fit where FP32 could not, at negligible
  reconstruction error;
* multi-node Big Basin GPU placement for M3 vs a single Zion (§VI-B's
  analytical-model claim).
"""

import numpy as np

from bench_utils import record, run_once

from repro.analysis import render_table
from repro.configs import build_m2, build_m3
from repro.core import EmbeddingTable, QuantizedEmbeddingTable, quantization_error
from repro.hardware import BIG_BASIN, ZION
from repro.perf import (
    cached_system_memory_throughput,
    gpu_server_throughput,
    quantized_capacity_report,
)
from repro.placement import PlacementStrategy, plan_gpu_memory, plan_placement, plan_system_memory


def _run_caching():
    m2 = build_m2()
    base = gpu_server_throughput(m2, 3200, BIG_BASIN, plan_system_memory(m2, BIG_BASIN))
    rows = [["0 GB (baseline)", f"{base.throughput:,.0f}", "0%"]]
    outcomes = [base.throughput]
    for budget in (1e9, 4e9, 16e9):
        report, cache = cached_system_memory_throughput(m2, 3200, BIG_BASIN, budget)
        rows.append(
            [
                f"{budget / 1e9:.0f} GB",
                f"{report.throughput:,.0f}",
                f"{cache.absorbed_lookup_fraction:.0%}",
            ]
        )
        outcomes.append(report.throughput)
    return rows, outcomes


def test_ablation_caching(benchmark):
    rows, outcomes = run_once(benchmark, _run_caching)
    record(
        "ablation_caching",
        render_table(
            ["HBM cache budget", "ex/s", "lookups absorbed"],
            rows,
            title="Ablation: hot-row HBM cache over Big Basin system-memory placement (M2)",
        ),
    )
    assert outcomes[-1] > 1.5 * outcomes[0]  # cache recovers real throughput
    assert all(b >= a * 0.99 for a, b in zip(outcomes, outcomes[1:]))  # monotone


def _run_quantization():
    m3 = build_m3()
    capacity = quantized_capacity_report(m3, BIG_BASIN)
    rng = np.random.default_rng(0)
    # reconstruction error measured on a representative table sample
    from repro.core import TableSpec

    spec = TableSpec("sample", hash_size=5000, dim=64)
    table = EmbeddingTable(spec, rng)
    errors = {bits: quantization_error(table.weight, bits) for bits in (8, 4, 2)}
    rows = [
        [
            f"{r.bits}-bit",
            f"{r.table_bytes / 1e9:.0f} GB",
            "yes" if r.fits_gpu_memory else "no",
            r.min_gpus,
            f"{errors.get(r.bits, 0.0):.4f}" if r.bits in errors else "-",
        ]
        for r in capacity
    ]
    return rows, capacity, errors


def test_ablation_quantization(benchmark):
    rows, capacity, errors = run_once(benchmark, _run_quantization)
    record(
        "ablation_quantization",
        render_table(
            ["precision", "M3 table state", "fits 1x Big Basin HBM", "min GPUs", "RMS rel err"],
            rows,
            title="Ablation: embedding quantization vs M3 capacity (§III-A.2)",
        ),
    )
    by_bits = {r.bits: r for r in capacity}
    assert not by_bits[32].fits_gpu_memory
    assert by_bits[8].fits_gpu_memory
    assert errors[8] < 0.01  # int8 nearly lossless
    assert errors[4] < 0.1


def _run_multinode():
    m3 = build_m3()
    multi_plan = plan_gpu_memory(m3, BIG_BASIN, num_nodes=2)
    multi = gpu_server_throughput(m3, 800, BIG_BASIN, multi_plan)
    zion = gpu_server_throughput(
        m3, 800, ZION, plan_placement(m3, ZION, PlacementStrategy.SYSTEM_MEMORY)
    )
    return multi, zion


def test_ablation_multinode_vs_zion(benchmark):
    multi, zion = run_once(benchmark, _run_multinode)
    record(
        "ablation_multinode_vs_zion",
        render_table(
            ["setup", "ex/s", "ex/s/W"],
            [
                ["2x Big Basin (GPU memory, 100GbE exchange)",
                 f"{multi.throughput:,.0f}", f"{multi.perf_per_watt:.2f}"],
                ["1x Zion (system memory)",
                 f"{zion.throughput:,.0f}", f"{zion.perf_per_watt:.2f}"],
            ],
            title="Ablation: M3 on multi-node Big Basin vs one Zion (§VI-B)",
        ),
    )
    assert zion.throughput > 3 * multi.throughput
    assert zion.perf_per_watt > 5 * multi.perf_per_watt
