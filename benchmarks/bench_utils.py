"""Shared helpers for the benchmark harness.

Each benchmark regenerates one figure/table of the paper, asserts its
headline shape, and records the rendered output under
``benchmarks/results/`` so the reproduction artifacts survive pytest's
output capturing.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Set ``REPRO_BENCH_WORKERS`` to parallelize the figure sweeps during the
#: benchmark run; ``REPRO_CACHE_DIR`` (plus ``REPRO_BENCH_CACHE=1``) memoizes
#: grid points across benchmark invocations.
WORKERS_ENV = "REPRO_BENCH_WORKERS"
CACHE_ENV = "REPRO_BENCH_CACHE"


def make_runner():
    """A SweepRunner configured from the environment, or ``None``.

    Benchmarks stay pure-serial (and cache-free — timings must measure real
    work) unless explicitly asked otherwise, so default wall-clock numbers
    remain comparable across commits.
    """
    workers = int(os.environ.get(WORKERS_ENV, "1") or "1")
    use_cache = os.environ.get(CACHE_ENV, "") not in ("", "0")
    if workers <= 1 and not use_cache:
        return None
    from repro.runtime import ResultCache, SweepRunner

    cache = ResultCache() if use_cache else None
    return SweepRunner(workers=workers, cache=cache)


def record(name: str, text: str) -> None:
    """Print the rendered figure and persist it to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and some are expensive (real
    training), so one round is both sufficient and honest.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
