"""Shared helpers for the benchmark harness.

Each benchmark regenerates one figure/table of the paper, asserts its
headline shape, and records the rendered output under
``benchmarks/results/`` so the reproduction artifacts survive pytest's
output capturing.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Print the rendered figure and persist it to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and some are expensive (real
    training), so one round is both sufficient and honest.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
