"""Bench: regenerate Figure 1 (production models across platforms).

Targets: throughput grows CPU -> Big Basin -> Zion for M1/M2; M3 scales
poorly on Big Basin but Zion's 2 TB / ~1 TB/s memory recovers it.
"""

from bench_utils import record, run_once

from repro.experiments import fig01_production


def test_fig01_production_throughput(benchmark):
    result = run_once(benchmark, fig01_production.run)
    record("fig01_production_throughput", fig01_production.render(result))

    by_name = result.by_name()
    m1, m2, m3 = by_name["M1_prod"], by_name["M2_prod"], by_name["M3_prod"]

    # M1: CPU < Big Basin <= Zion
    assert m1.big_basin_relative > 1.5
    assert m1.zion_relative >= m1.big_basin_relative
    # M2: Zion best, all within the same ballpark
    assert m2.zion_relative >= m2.big_basin_relative
    assert m2.zion_relative > 0.9
    # M3: Big Basin below CPU; Zion well above both
    assert m3.big_basin_relative < 1.0
    assert m3.zion_relative > 1.5
    assert m3.zion_relative > 2 * m3.big_basin_relative
