"""Bench (extension): multi-terabyte models over multiple Zion servers.

The paper's conclusion names the open challenge: "model sizes grow into
multiple terabytes which requires scaling out on multiple Zion servers."
This bench takes a ~4 TB-state model, shows a single Zion cannot hold it,
and sweeps the node count with the performance model — inter-node exchange
over 4x IB-100 makes scaling sublinear but effective.
"""

import pytest

from bench_utils import record, run_once

from repro.analysis import render_table
from repro.configs import make_test_model
from repro.hardware import ZION, CapacityError
from repro.perf import gpu_server_throughput
from repro.placement import model_embedding_footprint, plan_system_memory


def _run():
    model = make_test_model(512, 64, hash_size=120_000_000, name="multi-tb")
    state_tb = model_embedding_footprint(model) / 1e12
    single_feasible = True
    try:
        plan_system_memory(model, ZION)
    except CapacityError:
        single_feasible = False
    points = []
    for nodes in (3, 4, 6, 8):
        plan = plan_system_memory(model, ZION, num_nodes=nodes)
        report = gpu_server_throughput(model, 1600, ZION, plan)
        points.append((nodes, report.throughput, report.perf_per_watt))
    return state_tb, single_feasible, points


def test_extension_zion_scaleout(benchmark):
    state_tb, single_feasible, points = run_once(benchmark, _run)
    rows = [
        [nodes, f"{thr:,.0f}", f"{ppw:.2f}", f"{thr / points[0][1]:.2f}x"]
        for nodes, thr, ppw in points
    ]
    record(
        "extension_zion_scaleout",
        render_table(
            ["Zion nodes", "ex/s", "ex/s/W", "vs 3 nodes"],
            rows,
            title=(
                f"Extension: {state_tb:.1f} TB of embedding state over multiple "
                f"Zions (single Zion feasible: {single_feasible})"
            ),
        ),
    )
    assert not single_feasible  # genuinely multi-TB
    assert state_tb > 2.0
    throughputs = [thr for _, thr, _ in points]
    # scale-out helps monotonically but sublinearly
    assert all(b > a for a, b in zip(throughputs, throughputs[1:]))
    assert throughputs[-1] / throughputs[0] < 8 / 3  # sublinear vs node ratio
