"""Bench: what hardware-aware assignment is worth at fleet scale.

The paper's framing (§I): operators must pick the right system per workload
in a heterogeneous datacenter.  This bench assigns a sampled workload
population with the setup optimizer and quantifies the fleet-level
power saving versus the homogeneous all-CPU policy at iso-throughput.
"""

from bench_utils import record, run_once

from repro.analysis import render_table
from repro.fleet import assign_fleet, sample_workload_population
from repro.perf import Objective


def _run():
    models = sample_workload_population(8, seed=3)
    return assign_fleet(models, objective=Objective.PERF_PER_WATT)


def test_fleet_heterogeneity(benchmark):
    fa = run_once(benchmark, _run)
    rows = [
        [
            a.model_name,
            a.cpu_baseline.label,
            a.chosen.label,
            f"{a.efficiency_gain:.2f}x",
            f"{a.power_saving_watts / 1e3:+.1f} kW",
        ]
        for a in fa.assignments
    ]
    footer = (
        f"fleet power {fa.total_power_watts / 1e3:.0f} kW vs iso-throughput "
        f"all-CPU {fa.cpu_only_power_watts / 1e3:.0f} kW -> "
        f"saving {fa.power_saving_fraction:.0%}; GPU share {fa.gpu_share():.0%}"
    )
    record(
        "fleet_heterogeneity",
        render_table(
            ["workload", "CPU policy", "chosen setup", "perf/W gain", "power saved"],
            rows,
            title="Fleet what-if: hardware-aware assignment vs all-CPU policy",
        )
        + "\n"
        + footer,
    )
    # heterogeneity must help, and never hurt any single workload
    assert fa.power_saving_fraction > 0.2
    assert all(a.efficiency_gain >= 1.0 for a in fa.assignments)
