"""Bench: regenerate Figure 2 (workload training frequency and duration)."""

from bench_utils import record, run_once

from repro.experiments import fig02_workloads


def test_fig02_workload_freq_duration(benchmark):
    result = run_once(benchmark, fig02_workloads.run, 0, 7)
    record("fig02_workload_freq_duration", fig02_workloads.render(result))

    by_family = result.by_family()
    # recommendation models are the most frequently trained (>50% of cycles)
    assert result.recommendation_share() > 0.5
    assert by_family["news_feed"].runs_per_day > by_family["facer"].runs_per_day
    assert (
        by_family["news_feed"].runs_per_day
        > by_family["language_translation"].runs_per_day
    )
    # translation runs are the longest
    durations = {f: s.mean_duration_hours for f, s in by_family.items()}
    assert max(durations, key=durations.get) == "language_translation"
