"""Bench: regenerate Figure 11 (batch-size scaling on CPU and GPU).

Targets: CPU throughput has an interior optimum and declines beyond it;
GPU throughput rises roughly linearly then saturates.
"""

from bench_utils import record, run_once

from repro.experiments import fig11_batch_scaling


def test_fig11_batch_scaling(benchmark):
    result = run_once(benchmark, fig11_batch_scaling.run)
    record("fig11_batch_scaling", fig11_batch_scaling.render(result))

    # CPU: interior optimum with a real decline after it
    peak = max(result.cpu_throughput)
    assert result.cpu_throughput[0] < peak  # rising edge
    assert result.cpu_throughput[-1] < 0.8 * peak  # falling edge
    assert result.cpu_optimal_batch not in (
        result.cpu_batches[0],
        result.cpu_batches[-1],
    )

    # GPU: monotone rise, early gains large, late gains small (saturation)
    gpu = result.gpu_throughput
    assert all(b > a for a, b in zip(gpu, gpu[1:]))
    early_gain = gpu[1] / gpu[0]
    assert early_gain > 1.5
    assert result.gpu_saturation_ratio < 1.2
