"""Bench: regenerate Figure 12 (hash-size scaling on CPU and GPU).

Targets: CPU throughput flat across hash sizes; GPU throughput holds while
tables fit in HBM, drops sharply once tables spill into system memory, and
the configuration eventually becomes infeasible on a single Big Basin.
"""

from bench_utils import record, run_once

from repro.experiments import fig12_hash_scaling


def test_fig12_hash_scaling(benchmark):
    result = run_once(benchmark, fig12_hash_scaling.run)
    record("fig12_hash_scaling", fig12_hash_scaling.render(result))

    # CPU flat
    assert result.cpu_flatness() < 1.05

    feasible = result.gpu_feasible_points()
    assert len(feasible) >= 3
    in_hbm = [p for p in feasible if p.system_spill_fraction < 0.05]
    spilled = [p for p in feasible if p.system_spill_fraction > 0.3]
    assert in_hbm and spilled
    best_in_hbm = max(p.gpu_throughput for p in in_hbm)
    worst_spilled = min(p.gpu_throughput for p in spilled)
    assert worst_spilled < 0.6 * best_in_hbm  # significant drop

    # smallest hash sizes use replication (no all-to-all needed)
    assert result.points[0].replicated_tables > 0
    # the sweep ends beyond single-server capacity
    assert result.points[-1].gpu_throughput is None
