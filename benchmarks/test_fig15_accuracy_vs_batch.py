"""Bench: regenerate Figure 15 (accuracy gap vs batch size) — real training.

This bench trains actual numpy DLRMs: per batch size, the learning rate is
re-tuned, the model is trained on a fixed example budget, and normalized
entropy is measured on a shared held-out set.  Targets: the NE gap versus
the small-batch baseline grows with batch size even after tuning, and the
largest batch shows a clearly intolerable gap (>> 0.1%, §VI-C).
"""

from bench_utils import record, run_once

from repro.experiments import fig15_accuracy


def test_fig15_accuracy_vs_batch(benchmark):
    result = run_once(benchmark, fig15_accuracy.run)
    record("fig15_accuracy_vs_batch", fig15_accuracy.render(result))

    gaps = result.gaps()
    # the largest batch is clearly worse than the baseline
    assert gaps[-1] > 1.0  # percent NE regression
    # gap grows with batch size (allow one noisy inversion)
    assert result.monotone_fraction() >= 0.66
    assert gaps[-1] > gaps[0]
    # even the smallest GPU batch pays a visible (>=0.1%-class) price or is
    # at worst neutral
    assert gaps[0] > -0.5


def test_fig15_sync_mode_quality(benchmark):
    """§VI-C side-finding: the GPU-style tightly-synchronized setup reaches
    equal or better quality than the async many-worker CPU setup."""
    result = run_once(
        benchmark, fig15_accuracy.run_sync_mode_comparison, 4, 128, 24_000
    )
    record(
        "fig15_sync_mode_quality",
        (
            f"async (EASGD, 4 workers) NE: {result.async_ne:.4f}\n"
            f"sync (single worker)    NE: {result.sync_ne:.4f}\n"
            f"GPU-style NE gap: {result.gpu_style_gap_percent:+.2f}% "
            f"(paper: -0.1% to -0.2%)"
        ),
    )
    assert result.gpu_style_gap_percent < 0.25  # not worse than async
