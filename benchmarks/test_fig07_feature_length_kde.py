"""Bench: regenerate Figure 7 (feature-length distributions with KDE).

Targets: power-law-like feature lengths (a few hot tables dominate
accesses) with the published per-model means of 28 / 17 / 49 lookups.
"""

import numpy as np
import pytest

from bench_utils import record, run_once

from repro.experiments import fig06_07_embedding_stats


def test_fig07_feature_length_kde(benchmark):
    result = run_once(benchmark, fig06_07_embedding_stats.run)
    record("fig07_feature_length_kde", fig06_07_embedding_stats.render(result))

    stats = result.by_name()
    for name, mean in (("M1_prod", 28.0), ("M2_prod", 17.0), ("M3_prod", 49.0)):
        s = stats[name]
        assert s.mean_feature_length == pytest.approx(mean, rel=0.01)
        # power-law shape: finite alpha and concentrated access mass
        assert 1.2 < s.power_law_alpha < 5.0
        assert s.access_gini > 0.25
        # the KDE is a proper density over the support
        integral = np.trapezoid(s.kde_density, s.kde_grid)
        assert integral > 0.5  # most mass inside the plotted range
        # density peaks below the mean (right-skewed distribution)
        peak_at = s.kde_grid[np.argmax(s.kde_density)]
        assert peak_at < s.mean_feature_length
