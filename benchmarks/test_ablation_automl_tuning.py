"""Ablation: AutoML (Bayesian) vs grid learning-rate search (§VI-C).

The paper re-tunes hyper-parameters with FBLearner's Bayesian-optimization
strategy.  At an equal trial budget on a rough objective landscape, the
Bayesian searcher should find an equal-or-better learning rate than the
log-grid — and both must beat an untuned guess.
"""

import numpy as np

from bench_utils import record, run_once

from repro.analysis import render_table
from repro.core import (
    Adagrad,
    DLRM,
    Trainer,
    bayesian_search,
    evaluate,
    grid_search,
)
from repro.data import ClickModel, SyntheticDataGenerator
from repro.experiments.fig15_accuracy import accuracy_model


def _run(trials: int = 6, budget: int = 12_000, seed: int = 0):
    config = accuracy_model()
    teacher = ClickModel(config, rng=seed + 999)
    eval_gen = SyntheticDataGenerator(config, rng=seed + 5000, teacher=teacher)
    eval_batches = [eval_gen.batch(2048)]

    def objective(lr: float) -> float:
        gen = SyntheticDataGenerator(config, rng=seed, teacher=teacher)
        model = DLRM(config, rng=seed + 1)
        trainer = Trainer(
            model,
            lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=lr),
        )
        trainer.train(gen.batches(256), max_examples=budget)
        return evaluate(model, eval_batches)["normalized_entropy"]

    untuned = objective(0.5)  # a plausible but aggressive default
    grid = grid_search(objective, 1e-3, 0.5, num=trials)
    bayes = bayesian_search(objective, 1e-3, 0.5, num=trials, num_init=3, rng=seed)
    return untuned, grid, bayes


def test_ablation_automl_tuning(benchmark):
    untuned, grid, bayes = run_once(benchmark, _run)
    rows = [
        ["untuned (lr=0.5)", "-", f"{untuned:.4f}"],
        ["grid", f"{grid.best.learning_rate:.4f}", f"{grid.best.loss:.4f}"],
        ["bayesian (AutoML)", f"{bayes.best.learning_rate:.4f}", f"{bayes.best.loss:.4f}"],
    ]
    record(
        "ablation_automl_tuning",
        render_table(
            ["strategy", "best lr", "held-out NE"],
            rows,
            title="Ablation: LR search strategies at equal trial budget (§VI-C)",
        ),
    )
    assert grid.best.loss < untuned  # tuning matters
    assert bayes.best.loss < untuned
    # AutoML is competitive with the grid (within noise)
    assert bayes.best.loss <= grid.best.loss + 0.01
