"""Bench: regenerate Figure 14 (M2 placement options, Big Basin vs Zion).

Targets (§VI-B): Big Basin best with GPU-memory placement, with system
memory several times slower; Zion best with system-memory placement (and
the global best); Zion's GPU-memory placement much slower than Big Basin's
(no direct GPU-GPU link); remote placement worst on both, Zion only
slightly ahead.
"""

from bench_utils import record, run_once

from repro.experiments import fig14_placement
from repro.placement import PlacementStrategy


def test_fig14_placement_comparison(benchmark):
    result = run_once(benchmark, fig14_placement.run)
    record("fig14_placement_comparison", fig14_placement.render(result))

    bb_gpu = result.throughput("BigBasin", PlacementStrategy.GPU_MEMORY)
    bb_sys = result.throughput("BigBasin", PlacementStrategy.SYSTEM_MEMORY)
    bb_remote = result.throughput("BigBasin", PlacementStrategy.REMOTE_CPU)
    zion_gpu = result.throughput("Zion", PlacementStrategy.GPU_MEMORY)
    zion_sys = result.throughput("Zion", PlacementStrategy.SYSTEM_MEMORY)
    zion_remote = result.throughput("Zion", PlacementStrategy.REMOTE_CPU)

    # Big Basin ordering and the ~4x GPU-vs-system gap
    assert bb_gpu > bb_sys > bb_remote
    assert 2.0 < bb_gpu / bb_sys < 8.0
    # Zion ordering: system memory wins
    assert zion_sys > zion_gpu > zion_remote
    # Zion GPU placement much slower than Big Basin's (no NVLink)
    assert zion_gpu < 0.7 * bb_gpu
    # Zion system-memory is the global best bar
    assert zion_sys == max(p.throughput for p in result.points)
    # remote: worst everywhere, Zion only slightly better
    assert zion_remote >= bb_remote
    assert zion_remote < 1.3 * bb_remote
