"""Bench: regenerate Figure 10 (dense x sparse feature sweep, CPU vs GPU).

Targets: GPU throughput higher in all configurations; throughput falls as
either feature count grows; GPU power efficiency is best for dense-heavy
models and loses to CPU in the sparse-heavy corner (speedup below the 7.3x
power premium).
"""

from bench_utils import record, run_once

from repro.experiments import fig10_feature_sweep


def test_fig10_sparse_dense_sweep(benchmark):
    result = run_once(benchmark, fig10_feature_sweep.run)
    record("fig10_sparse_dense_sweep", fig10_feature_sweep.render(result))

    # GPU faster everywhere
    assert all(p.speedup > 1.0 for p in result.points)
    # throughput decreases with feature counts on both systems
    assert result.at(64, 4).gpu_throughput > result.at(64, 128).gpu_throughput
    assert result.at(64, 4).cpu_throughput > result.at(4096, 4).cpu_throughput
    # efficiency: dense-heavy corner wins on perf/W, sparse-heavy loses
    assert result.at(4096, 4).gpu_power_efficient
    assert not result.at(64, 128).gpu_power_efficient
    # GPU advantage grows with dense features at fixed sparse count
    assert result.at(4096, 4).speedup > result.at(64, 4).speedup
