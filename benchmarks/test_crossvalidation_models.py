"""Bench: cross-validate the analytical performance model against the
event-level simulations.

The throughput figures come from the analytical model; the discrete-event
simulations make queueing, barriers, and imbalance emergent.  They are
independent implementations over the same operator costs, so agreement
within a factor is a meaningful internal-consistency check (the closest
thing to "measuring the hardware" this reproduction has).
"""

from bench_utils import record, run_once

from repro.analysis import render_table
from repro.configs import make_test_model
from repro.distributed import ClusterConfig, simulate_cpu_cluster, simulate_gpu_server
from repro.hardware import BIG_BASIN
from repro.perf import cpu_cluster_throughput, gpu_server_throughput
from repro.placement import PlacementStrategy, plan_placement


def _run():
    rows = []
    ratios = []
    # CPU clusters at three scales
    m = make_test_model(512, 16)
    for trainers, sparse_ps in ((2, 1), (6, 3), (12, 6)):
        analytic = cpu_cluster_throughput(m, 200, trainers, sparse_ps, 1).throughput
        des = simulate_cpu_cluster(
            m, ClusterConfig(trainers, sparse_ps, 1, seed=0), horizon_s=1.0
        ).throughput
        ratios.append(des / analytic)
        rows.append(
            [f"CPU {trainers}T/{sparse_ps}sPS", f"{analytic:,.0f}", f"{des:,.0f}",
             f"{des / analytic:.2f}"]
        )
    # GPU servers at two batch sizes
    g = make_test_model(512, 32, hash_size=2_000_000)
    plan = plan_placement(g, BIG_BASIN, PlacementStrategy.GPU_MEMORY)
    for batch in (800, 3200):
        analytic = gpu_server_throughput(g, batch, BIG_BASIN, plan).throughput
        des = simulate_gpu_server(g, batch, BIG_BASIN, plan, num_iterations=30).throughput
        ratios.append(des / analytic)
        rows.append(
            [f"BigBasin gpu_mem B{batch}", f"{analytic:,.0f}", f"{des:,.0f}",
             f"{des / analytic:.2f}"]
        )
    return rows, ratios


def test_crossvalidation_models(benchmark):
    rows, ratios = run_once(benchmark, _run)
    record(
        "crossvalidation_models",
        render_table(
            ["setup", "analytic ex/s", "event-sim ex/s", "ratio"],
            rows,
            title="Cross-validation: analytical model vs event-level simulation",
        ),
    )
    assert all(0.4 < r < 2.5 for r in ratios)
