#!/usr/bin/env python
"""Deprecated shim: the dense-path benchmarks moved to ``repro.bench``.

Equivalent invocation::

    python -m repro.bench --suite dense [--quick] [--out F] [--check F]

This shim forwards its arguments with ``--suite dense`` pinned so
existing automation keeps working.
"""

from __future__ import annotations

import pathlib
import sys

# Allow running as a plain script from the repo root without PYTHONPATH.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    print(
        "note: benchmarks/bench_dense.py is deprecated; "
        "use `python -m repro.bench --suite dense`",
        file=sys.stderr,
    )
    raise SystemExit(main(sys.argv[1:] + ["--suite", "dense"]))
