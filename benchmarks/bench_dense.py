#!/usr/bin/env python
"""Old-vs-new dense-path benchmark (fused kernels + workspace), with a CI gate.

Measures the fused dense kernels (:mod:`repro.core.dense_kernels`) against
the historical implementations they replaced (kept as ``naive_*``
references), plus the *end-to-end* fused train step — a full
:class:`~repro.core.Trainer` loop with ``fused_dense=True`` against the
identical model/optimizer with every fusion disabled.

Usage::

    python benchmarks/bench_dense.py --quick --out BENCH_dense.json
    python benchmarks/bench_dense.py --quick --check BENCH_dense.json

``--check`` compares *speedup ratios* (old/new measured in the same
process, so machine speed cancels) against the committed baseline and
fails when any gated benchmark regresses by more than ``GATE_FACTOR``
(1.25x).  The headline end-to-end entry
(``train_step_interaction_b2048``) is additionally gated on an absolute
floor: the fused step must be at least ``STEP_MIN_SPEEDUP`` (2x) faster
than the naive step at batch 2048 on the interaction-heavy config.

Interpreting the end-to-end numbers: the speedup is config-dependent.
Where GEMMs dominate (wide-MLP configs), both paths run the same
near-peak BLAS calls and the fused win is the allocation/temporary
traffic around them (~1.1-1.5x).  Where the pairwise-dot interaction and
elementwise traffic dominate (many tables, small dim — the M3 shape),
the naive path's zeros+scatter+symmetrize round trips and ``np.where``
ReLUs are most of the step and fusion wins >2x.

Timing protocol: warm-up rounds (which also warm the workspace arena to
steady state), then best-of-N (min is the robust estimator under
scheduler noise).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from dataclasses import replace

# Allow running as a plain script from the repo root without PYTHONPATH.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    Adagrad,
    Batch,
    DLRM,
    RaggedIndices,
    Trainer,
    Workspace,
    dense_kernels,
)
from repro.core.config import (  # noqa: E402
    InteractionType,
    MLPSpec,
    ModelConfig,
    TableSpec,
)

GATE_FACTOR = 1.25
STEP_MIN_SPEEDUP = 2.0


def best_of(fn, reps: int, warmup: int = 2) -> float:
    """Best-of-``reps`` wall time of ``fn()`` after ``warmup`` discarded runs."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _entry(old_s: float, new_s: float, **extra) -> dict:
    return {"old_s": old_s, "new_s": new_s, "speedup": old_s / new_s,
            "gate": True, **extra}


# ---------------------------------------------------------------------------
# per-kernel benchmarks (old vs new)
# ---------------------------------------------------------------------------


def bench_linear(reps: int) -> dict:
    """Forward + backward of a 512->512 layer at batch 2048 (float64)."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2048, 512))
    w = rng.standard_normal((512, 512))
    b = rng.standard_normal(512)
    g = rng.standard_normal((2048, 512))
    wg = np.zeros_like(w)
    bg = np.zeros_like(b)
    ws = Workspace()
    out = ws.get("y", (2048, 512), x.dtype)
    gin = ws.get("gin", (2048, 512), x.dtype)
    wbuf = ws.get("wg", w.shape, x.dtype)
    bbuf = ws.get("bg", b.shape, x.dtype)

    def old():
        dense_kernels.naive_linear_forward(x, w, b)
        dw, db, _ = dense_kernels.naive_linear_backward(g, x, w)
        wg_l = wg + dw  # historical accumulate allocates  # noqa: F841
        bg_l = bg + db  # noqa: F841

    def new():
        dense_kernels.linear_forward(x, w, b, out)
        dense_kernels.linear_backward(g, x, w, wg, bg, gin, wbuf, bbuf)

    return _entry(best_of(old, reps), best_of(new, reps))


def bench_relu(reps: int) -> dict:
    """Forward + backward over a (2048, 1024) activation (float64)."""
    rng = np.random.default_rng(1)
    x = rng.standard_normal((2048, 1024))
    g = rng.standard_normal((2048, 1024))
    ws = Workspace()
    y = ws.get("y", x.shape, x.dtype)
    gx = ws.get("gx", x.shape, x.dtype)
    m = ws.get("m", x.shape, np.bool_)

    def old():
        out, mask = dense_kernels.naive_relu_forward(x)
        dense_kernels.naive_relu_backward(g, mask)

    def new():
        dense_kernels.relu_forward(x, y)
        dense_kernels.relu_backward(g, y, gx, m)

    return _entry(best_of(old, reps), best_of(new, reps))


def bench_bce(reps: int) -> dict:
    """Loss forward + logit gradient at batch 65536 (float64)."""
    rng = np.random.default_rng(2)
    logits = rng.standard_normal(65536)
    labels = rng.integers(0, 2, size=65536).astype(np.float64)
    ws = Workspace()
    bufs = [ws.get(k, logits.shape, np.float64)
            for k in ("e", "per", "tmp", "sig", "den")]
    pos = ws.get("pos", logits.shape, np.bool_)
    grad = ws.get("grad", logits.shape, np.float64)

    def old():
        dense_kernels.naive_bce_forward(logits, labels)
        dense_kernels.naive_bce_backward(logits, labels)

    def new():
        dense_kernels.bce_forward(logits, labels, *bufs, pos)
        dense_kernels.bce_backward(bufs[3], labels, grad)

    return _entry(best_of(old, reps), best_of(new, reps))


def _dot_setup(batch: int, n_vec: int, dim: int):
    rng = np.random.default_rng(3)
    stack = rng.standard_normal((batch, n_vec, dim))
    tril = np.tril_indices(n_vec, k=-1)
    num_pairs = len(tril[0])
    grad_pairs = rng.standard_normal((batch, num_pairs))
    return stack, tril, num_pairs, grad_pairs


def bench_dot_forward(reps: int) -> dict:
    """Pairwise-dot forward at (2048, 101 vectors, dim 32)."""
    stack, tril, num_pairs, _ = _dot_setup(2048, 101, 32)
    dense = stack[:, 0, :].copy()
    flat = (tril[0] * 101 + tril[1]).astype(np.intp)
    ws = Workspace()
    gram = ws.get("gram", (2048, 101, 101), stack.dtype)
    pairs = ws.get("pairs", (2048, num_pairs), stack.dtype)
    out = ws.get("out", (2048, 32 + num_pairs), stack.dtype)
    old = best_of(lambda: dense_kernels.naive_dot_forward(stack, tril, dense), reps)
    new = best_of(
        lambda: dense_kernels.dot_forward(stack, flat, dense, gram, pairs, out), reps
    )
    return _entry(old, new)


def bench_dot_backward(reps: int) -> dict:
    """Pairwise-dot backward at (2048, 101 vectors, dim 32)."""
    stack, tril, num_pairs, grad_pairs = _dot_setup(2048, 101, 32)
    pair_map = dense_kernels.symmetric_pair_map(101, tril)
    ws = Workspace()
    ext = ws.get("ext", (2048, num_pairs + 1), stack.dtype)
    gram = ws.get("gram", (2048, 101, 101), stack.dtype)
    gstack = ws.get("gs", stack.shape, stack.dtype)
    old = best_of(
        lambda: dense_kernels.naive_dot_backward(stack, tril, grad_pairs), reps
    )
    new = best_of(
        lambda: dense_kernels.dot_backward(
            stack, pair_map, grad_pairs, ext, gram, gstack
        ),
        reps,
    )
    return _entry(old, new)


def bench_adagrad_dense(reps: int) -> dict:
    """Dense Adagrad update over a 1024x1024 parameter (float64)."""
    rng = np.random.default_rng(4)
    value = rng.standard_normal((1024, 1024))
    grad = rng.standard_normal((1024, 1024))
    state = np.abs(rng.standard_normal((1024, 1024)))
    ws = Workspace()
    t = ws.get("t", value.shape, value.dtype)
    u = ws.get("u", value.shape, value.dtype)
    old = best_of(
        lambda: dense_kernels.naive_adagrad_dense_step(value, grad, state, 0.01, 1e-10),
        reps,
    )
    new = best_of(
        lambda: dense_kernels.adagrad_dense_step(value, grad, state, 0.01, 1e-10, t, u),
        reps,
    )
    return _entry(old, new)


def bench_adagrad_sparse(reps: int) -> dict:
    """Row-sparse Adagrad over 20k unique rows of a 100k x 64 table."""
    rng = np.random.default_rng(5)
    weight = rng.standard_normal((100_000, 64))
    state = np.abs(rng.standard_normal((100_000, 64)))
    rows = np.sort(rng.choice(100_000, size=20_000, replace=False))
    values = rng.standard_normal((20_000, 64))
    ws = Workspace()
    t = ws.get_rows("t", len(rows), (64,), weight.dtype)
    u = ws.get_rows("u", len(rows), (64,), weight.dtype)
    old = best_of(
        lambda: dense_kernels.naive_adagrad_sparse_step(
            weight, state, rows, values, 0.01, 1e-10
        ),
        reps,
    )
    new = best_of(
        lambda: dense_kernels.adagrad_sparse_step(
            weight, state, rows, values, 0.01, 1e-10, t, u
        ),
        reps,
    )
    return _entry(old, new)


# ---------------------------------------------------------------------------
# end-to-end train step (fused model+optimizer+loss vs all-naive)
# ---------------------------------------------------------------------------


def _make_config(num_dense, n_tables, hash_size, dim, mean_lookups, bottom, top,
                 interaction, dtype) -> ModelConfig:
    tables = [
        TableSpec(f"t{i}", hash_size=hash_size, dim=dim, mean_lookups=mean_lookups)
        for i in range(n_tables)
    ]
    return ModelConfig(
        name="bench", num_dense=num_dense, tables=tables,
        bottom_mlp=MLPSpec(bottom), top_mlp=MLPSpec(top),
        interaction=interaction, compute_dtype=dtype,
    )


#: Interaction-heavy config (the production-M3 shape: ~120 tables, small
#: dim): the pairwise-dot triangle is (121 choose 2) = 7260 pairs, and the
#: naive path's (B, 121, 121) zeros/scatter/symmetrize round trips dominate.
INTERACTION_CONFIG = _make_config(
    16, 120, 1000, 16, 1.0, (32, 16), (64,), InteractionType.DOT, "float32"
)

#: MLP-heavy config (the production-M1/M2 shape: wide stacked MLPs, concat
#: interaction): GEMM-bound, so the fused win is the smaller remainder.
MLP_CONFIG = _make_config(
    256, 8, 5000, 64, 2.0, (512, 256, 64), (512, 512, 256),
    InteractionType.CONCAT, "float32",
)


def _make_batches(config: ModelConfig, batch: int, n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        dense = rng.standard_normal((batch, config.num_dense))
        sparse = {}
        for t in config.tables:
            lengths = np.maximum(
                rng.poisson(t.mean_lookups, size=batch), 1
            ).astype(np.int64)
            offsets = np.concatenate([[0], np.cumsum(lengths)])
            values = rng.integers(0, t.hash_size, size=int(offsets[-1]))
            sparse[t.name] = RaggedIndices(
                values=values, offsets=offsets, safe_bound=t.hash_size
            )
        labels = rng.integers(0, 2, size=batch)
        out.append(Batch(dense, sparse, labels))
    return out


def _time_train_step(config: ModelConfig, batches, fused: bool,
                     reps: int, warmup: int) -> float:
    model = DLRM(replace(config, fused_dense=fused), rng=0)
    trainer = Trainer(
        model,
        lambda m: Adagrad(
            m.dense_parameters(), m.embedding_tables(), lr=0.01, fused=fused
        ),
    )

    def run():
        for b in batches:
            trainer.train_step(b)

    return best_of(run, reps, warmup=warmup) / len(batches)


def bench_train_step(config: ModelConfig, batch: int, quick: bool,
                     **extra) -> dict:
    n_batches = 2 if quick else 4
    reps = 3 if quick else 5
    batches = _make_batches(config, batch, n_batches)
    old = _time_train_step(config, batches, fused=False, reps=reps, warmup=2)
    new = _time_train_step(config, batches, fused=True, reps=reps, warmup=2)
    return _entry(old, new, batch=batch, **extra)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def run_all(quick: bool) -> dict:
    reps = 5 if quick else 12
    results = {
        "linear_fwd_bwd": bench_linear(reps),
        "relu_fwd_bwd": bench_relu(reps),
        "bce_fwd_bwd": bench_bce(reps),
        "dot_forward": bench_dot_forward(reps),
        "dot_backward": bench_dot_backward(reps),
        "adagrad_dense": bench_adagrad_dense(reps),
        "adagrad_sparse": bench_adagrad_sparse(reps),
        "train_step_mlp_b512": bench_train_step(MLP_CONFIG, 512, quick),
        "train_step_mlp_b2048": bench_train_step(MLP_CONFIG, 2048, quick),
        "train_step_interaction_b512": bench_train_step(
            INTERACTION_CONFIG, 512, quick
        ),
        "train_step_interaction_b2048": bench_train_step(
            INTERACTION_CONFIG, 2048, quick, min_speedup=STEP_MIN_SPEEDUP
        ),
    }
    return {
        "meta": {
            "mode": "quick" if quick else "full",
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "benchmarks": results,
    }


def check(current: dict, baseline_path: str) -> int:
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    failures = []
    for name, entry in current["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if entry.get("gate") and base is not None:
            floor = base["speedup"] / GATE_FACTOR
            if entry["speedup"] < floor:
                failures.append(
                    f"{name}: speedup {entry['speedup']:.2f}x < floor {floor:.2f}x "
                    f"(baseline {base['speedup']:.2f}x / {GATE_FACTOR})"
                )
        if "min_speedup" in entry and entry["speedup"] < entry["min_speedup"]:
            failures.append(
                f"{name}: end-to-end fused speedup {entry['speedup']:.2f}x < "
                f"required {entry['min_speedup']:.2f}x"
            )
    if failures:
        print("REGRESSION GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"regression gate passed ({len(current['benchmarks'])} benchmarks)")
    return 0


def render(results: dict) -> str:
    lines = [f"dense-path benchmarks ({results['meta']['mode']} mode, "
             f"{results['meta']['cpu_count']} cpus, numpy {results['meta']['numpy']})"]
    for name, e in results["benchmarks"].items():
        tag = f" (B={e['batch']})" if "batch" in e else ""
        lines.append(
            f"  {name:<30} old {e['old_s'] * 1e3:9.3f} ms   "
            f"new {e['new_s'] * 1e3:9.3f} ms   {e['speedup']:5.2f}x{tag}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail if gated speedups regress >%.2fx vs BASELINE"
                             % GATE_FACTOR)
    args = parser.parse_args(argv)
    results = run_all(quick=args.quick)
    print(render(results))
    if args.out:
        pathlib.Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.check:
        return check(results, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
