"""Benchmark-suite configuration.

Everything under ``benchmarks/`` runs full paper-scale grids (minutes, not
milliseconds), so the whole directory is marked ``slow``; the fast
qualitative versions of the headline claims live in
``tests/test_golden_shapes.py`` and run in tier-1.  Deselect the slow set
with ``pytest benchmarks -m "not slow"`` (or select it explicitly with
``-m slow``).

Shared fixtures/helpers live in :mod:`bench_utils`; nothing else is shared
here.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: full paper-scale benchmark grids (excluded from tier-1 CI)",
    )


def pytest_collection_modifyitems(items):
    slow = pytest.mark.slow
    for item in items:
        item.add_marker(slow)
