"""Benchmark fixtures live in bench_utils; nothing shared here."""
