"""Bench: regenerate Figure 6 (hash size vs mean feature length per table).

Targets: hash sizes span 30..20M with model means 5.7M / 7.3M / 3.7M, and
table size is not strongly coupled to access frequency ("the access
frequency does not always correlate with the embedding table size").
"""

import pytest

from bench_utils import record, run_once

from repro.experiments import fig06_07_embedding_stats


def test_fig06_hash_vs_length(benchmark):
    result = run_once(benchmark, fig06_07_embedding_stats.run)
    record("fig06_hash_vs_length", fig06_07_embedding_stats.render(result))

    stats = result.by_name()
    for name, mean in (("M1_prod", 5.7e6), ("M2_prod", 7.3e6), ("M3_prod", 3.7e6)):
        assert stats[name].mean_hash_size == pytest.approx(mean, rel=0.02)
        assert stats[name].min_hash_size >= 30
        assert stats[name].max_hash_size <= 20_000_000
    # weak size-access coupling: |corr| well below 1 for every model
    for s in stats.values():
        assert abs(s.size_access_correlation) < 0.8
