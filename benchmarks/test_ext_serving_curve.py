"""Bench (extension): online serving at full scale — throughput-latency
curve, cache cross-validation, SLO-constrained capacity, and staleness.

Fast qualitative versions of these claims run in tier-1
(``tests/test_serving.py``, ``tests/test_serving_cache.py``); this bench
re-runs them at paper-scale request counts and asserts the headline
shapes:

* p99 rises monotonically with offered load over the congestion regime
  and stays within the default SLO (the serving analogue of §V-B's
  throughput-vs-batch-size trade-off);
* the measured steady-state cache hit rate tracks the analytic
  prediction (Che approximation for LRU, top-k Zipf mass for LFU)
  within 5 points at every (policy, capacity) grid point, and the
  finite-window raw/warm rates bracket it;
* SLO-constrained capacity plans are feasible and sit at or above the
  work-conserving lower bound;
* serving a stale snapshot loses accuracy, and an in-flight checkpoint
  refresh recovers most of it: fresh < refreshed < stale in log loss.
"""

from bench_utils import record, run_once

from repro.experiments import ext_serving


class TestServingCurve:
    def test_curve_monotone_within_slo(self, benchmark):
        result = run_once(
            benchmark, ext_serving.run_curve, requests_per_point=4000
        )
        record("ext_serving_curve", ext_serving.render_curve(result))
        assert result.p99_monotone
        assert not result.slo_violations()
        # adaptive batching: batches grow with load
        batches = [p.mean_batch for p in result.points]
        assert batches[-1] > batches[0]


class TestServingCache:
    def test_measured_tracks_analytic(self, benchmark):
        result = run_once(
            benchmark,
            ext_serving.run_cache,
            num_requests=8000,
            steady_accesses=400_000,
        )
        record("ext_serving_cache", ext_serving.render_cache(result))
        assert result.max_abs_error < 0.05
        assert all(p.brackets_prediction for p in result.points)
        # bigger caches hit more, for both policies
        for policy in ("lru", "lfu"):
            rates = [
                p.steady_state_hit_rate
                for p in result.points
                if p.policy == policy
            ]
            assert all(b > a for a, b in zip(rates, rates[1:]))


class TestServingSLO:
    def test_capacity_plans_feasible(self, benchmark):
        result = run_once(
            benchmark, ext_serving.run_slo, requests_per_point=1500
        )
        record("ext_serving_slo", ext_serving.render_slo(result))
        assert all(p.feasible for p in result.points)
        for p in result.points:
            assert p.num_replicas >= p.lower_bound_replicas
            assert p.p99_ms <= result.slo.p99_ms
        # more demand never needs fewer replicas
        replicas = [p.num_replicas for p in result.points]
        assert replicas == sorted(replicas)


class TestServingStaleness:
    def test_refresh_recovers_accuracy(self, benchmark):
        result = run_once(benchmark, ext_serving.run_staleness)
        record("ext_serving_staleness", ext_serving.render_staleness(result))
        fresh = result.phase("fresh")
        refreshed = result.phase("refreshed")
        stale = result.phase("stale")
        assert fresh.log_loss < refreshed.log_loss < stale.log_loss
        # the refresh itself costs tail latency but serves every request
        assert refreshed.p99_ms >= fresh.p99_ms
        assert refreshed.refreshes > 0
        assert refreshed.completed == fresh.completed
