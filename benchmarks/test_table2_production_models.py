"""Bench: regenerate Table II (production model descriptions)."""

from bench_utils import record, run_once

from repro.experiments import table2_models


def test_table2_production_models(benchmark):
    result = run_once(benchmark, table2_models.run)
    record("table2_production_models", table2_models.render(result))

    models = result.by_name()
    assert models["M1_prod"].num_sparse == 30
    assert models["M2_prod"].num_sparse == 13
    assert models["M3_prod"].num_sparse == 127
    # embedding sizes: tens / tens / hundreds of GB
    assert 1e10 < models["M1_prod"].embedding_bytes < 1e11
    assert 1e10 < models["M2_prod"].embedding_bytes < 1e11
    assert 1e11 < models["M3_prod"].embedding_bytes < 1e12
