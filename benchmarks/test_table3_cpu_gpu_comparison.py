"""Bench: regenerate Table III (CPU vs Big Basin optimal setups).

Paper targets — GPU/CPU throughput 2.25x / 0.85x / 0.67x; power efficiency
4.3x / 2.8x / 0.43x.  The reproduction must preserve who wins and the
ordering, within loose tolerance on the magnitudes.
"""

from bench_utils import record, run_once

from repro.experiments import table3_comparison


def test_table3_cpu_gpu_comparison(benchmark):
    result = run_once(benchmark, table3_comparison.run)
    record("table3_cpu_gpu_comparison", table3_comparison.render(result))

    by_name = result.by_name()
    m1, m2, m3 = by_name["M1_prod"], by_name["M2_prod"], by_name["M3_prod"]

    # who wins
    assert m1.throughput_ratio > 1.5  # GPU clearly wins M1 (paper 2.25x)
    assert 0.6 < m2.throughput_ratio < 1.3  # near parity (paper 0.85x)
    assert m3.throughput_ratio < 0.9  # GPU loses M3 (paper 0.67x)
    # ordering
    assert m1.throughput_ratio > m2.throughput_ratio > m3.throughput_ratio
    # power efficiency: M1/M2 favor GPU, M3 favors CPU
    assert m1.efficiency_ratio > 2.0
    assert m2.efficiency_ratio > 2.0
    assert m3.efficiency_ratio < 1.0
