"""Bench: regenerate Figure 5 (utilization distributions at fixed scale).

Targets: trainers show high mean utilization with a narrow spread;
parameter servers show lower means, wider spread, and a longer tail.
"""

import numpy as np

from bench_utils import record, run_once

from repro.experiments import fig05_utilization


def test_fig05_utilization_distribution(benchmark):
    result = run_once(benchmark, fig05_utilization.run, 30)
    record("fig05_utilization_distribution", fig05_utilization.render(result))

    trainer = result.summaries["trainer_cpu"]
    ps_nic = result.summaries["sparse_ps_nic"]
    dense_ps = result.summaries["dense_ps_nic"]

    # trainers: high and comparatively narrow
    assert trainer.mean > 0.5
    # parameter servers: lower mean than trainers
    assert ps_nic.mean < trainer.mean
    assert dense_ps.mean < trainer.mean
    # run-to-run variability exists everywhere (wide-Gaussian claim)
    for s in result.summaries.values():
        assert s.std > 0.0
    # every sample is a valid utilization
    for arr in result.samples.as_dict().values():
        assert np.all((arr >= 0) & (arr <= 1))
