"""Bench (extension): measured hybrid-parallel scaling vs. the predictor.

The acceptance gate for the multi-process trainer: the measured 1 -> 4
worker scaling curve must land within 25% of the simulator-composed
prediction at every point (all predictor parameters are *measured* —
socket latency/bandwidth, contended hop overhead, pickle frame cost —
none fitted to the curve).  The absolute 4-worker speedup floor only
applies on hosts that actually have >= 4 cores; on smaller runners the
predictor models the oversubscription and the error bound still binds.
"""

import pytest

from bench_utils import record, run_once

from repro.experiments import ext_mp_scaling
from repro.runtime.runner import available_cores

REL_ERR_BOUND = 0.25
MIN_SPEEDUP_4W = 2.0


def _run():
    return ext_mp_scaling.run(
        worker_counts=(1, 2, 4), batch_size=256, steps=10, reps=3
    )


def test_ext_mp_scaling_crossvalidation(benchmark):
    result = run_once(benchmark, _run)
    record("ext_mp_scaling", ext_mp_scaling.render(result))

    assert [p.workers for p in result.points] == [1, 2, 4]
    for p in result.points:
        assert p.measured_step_s > 0 and p.predicted_step_s > 0
        assert p.rel_err <= REL_ERR_BOUND, (
            f"W={p.workers}: predicted {p.predicted_step_s * 1e3:.2f} ms vs "
            f"measured {p.measured_step_s * 1e3:.2f} ms "
            f"({p.rel_err:.1%} > {REL_ERR_BOUND:.0%})"
        )
    if available_cores() >= 4:
        w4 = result.points[-1]
        assert w4.speedup >= MIN_SPEEDUP_4W, (
            f"4-worker speedup {w4.speedup:.2f}x < {MIN_SPEEDUP_4W}x "
            f"on a {available_cores()}-core host"
        )


def test_ext_mp_scaling_sweep(benchmark):
    results = run_once(
        benchmark,
        ext_mp_scaling.sweep,
        worker_counts=(1, 2),
        batch_sizes=(128, 256),
        mlp_widths=(64, 128),
        steps=8,
        reps=2,
    )
    record("ext_mp_scaling_sweep", ext_mp_scaling.render_sweep(results))
    assert len(results) == 4
    for result in results:
        for p in result.points:
            assert p.measured_step_s > 0 and p.predicted_step_s > 0
