"""Bench: regenerate Figure 13 (throughput under varying MLP dimensions).

Targets: normalized throughput near-flat through 256^3, then falling, with
CPU dropping faster than GPU at the largest stacks.
"""

from bench_utils import record, run_once

from repro.experiments import fig13_mlp_dims


def test_fig13_mlp_dims(benchmark):
    result = run_once(benchmark, fig13_mlp_dims.run)
    record("fig13_mlp_dims", fig13_mlp_dims.render(result))

    norm = {mlp: (cpu, gpu) for mlp, cpu, gpu in result.normalized()}
    # flat through 256^3
    assert norm["256^3"][0] > 0.85
    assert norm["256^3"][1] > 0.80
    # large stacks hurt, CPU more than GPU
    cpu_last, gpu_last = norm["2048^4"]
    assert cpu_last < 0.3
    assert cpu_last < gpu_last
    # monotone non-increasing trends
    cpu_series = [cpu for _, cpu, _ in result.normalized()]
    assert all(b <= a * 1.02 for a, b in zip(cpu_series, cpu_series[1:]))
