PYTHON ?= python

.PHONY: install test bench bench-smoke bench-baseline bench-dense bench-dense-baseline figures examples all clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# CI-sized old-vs-new kernel benchmark, gated against the committed baseline.
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_kernels.py --quick --check BENCH_kernels.json

# Refresh the committed baseline (run on a quiet machine, then commit).
bench-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_kernels.py --quick --out BENCH_kernels.json

# CI-sized dense fast-path benchmark (fused MLP/interaction/loss/optimizer
# kernels + workspace arena), gated against the committed baseline.
bench-dense:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_dense.py --quick --check BENCH_dense.json

# Refresh the committed dense baseline (quiet machine, then commit).
bench-dense-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_dense.py --quick --out BENCH_dense.json

figures:
	$(PYTHON) -m repro figures

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/capacity_planning.py
	$(PYTHON) examples/fleet_report.py
	$(PYTHON) examples/reliability.py
	$(PYTHON) examples/optimization_whatifs.py
	$(PYTHON) examples/roofline_analysis.py
	$(PYTHON) examples/batch_size_tradeoff.py

all: test bench

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
