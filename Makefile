PYTHON ?= python

.PHONY: install test conformance bench bench-backends bench-backends-baseline mp-smoke mp-scaling mp-faults tier-smoke figures examples all clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Backend conformance suite against the numpy reference, all backends.
conformance:
	PYTHONPATH=src $(PYTHON) -m pytest tests/conformance -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# CI-sized unified benchmark run (kernels + dense + backends suites),
# gated against the committed baseline.
bench-backends:
	PYTHONPATH=src $(PYTHON) -m repro.bench --quick --check BENCH_backends.json

# Refresh the committed baseline (run on a quiet machine, then commit).
bench-backends-baseline:
	PYTHONPATH=src $(PYTHON) -m repro.bench --quick --out BENCH_backends.json

# 2-worker hybrid-parallel run, bitwise-verified against the serial trainer.
mp-smoke:
	PYTHONPATH=src $(PYTHON) -m repro mp train --workers-n 2 --steps 3 --batch 64 --verify

# Measured multi-process scaling curve vs the simulator's prediction.
mp-scaling:
	PYTHONPATH=src $(PYTHON) -m repro mp scaling --workers 1,2,4 --steps 8 --reps 2

# SIGKILL one rank mid-run, restart from the sharded checkpoint, gate on
# bit-identity vs the uninterrupted reference.
mp-faults:
	PYTHONPATH=src $(PYTHON) -m repro mp faults --steps 6 --batch 64 --kill-step 3 --checkpoint-every 2

# Tiered embedding store: bit-identity of tiered vs flat training (both
# dtypes) and the measured-vs-analytic tier-miss overhead gate.
tier-smoke:
	PYTHONPATH=src $(PYTHON) -m repro tier train --steps 4 --batch 48
	PYTHONPATH=src $(PYTHON) -m repro tier sweep

figures:
	$(PYTHON) -m repro figures

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/capacity_planning.py
	$(PYTHON) examples/fleet_report.py
	$(PYTHON) examples/reliability.py
	$(PYTHON) examples/optimization_whatifs.py
	$(PYTHON) examples/roofline_analysis.py
	$(PYTHON) examples/batch_size_tradeoff.py

all: test bench

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
