PYTHON ?= python

.PHONY: install test bench figures examples all clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro figures

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/capacity_planning.py
	$(PYTHON) examples/fleet_report.py
	$(PYTHON) examples/reliability.py
	$(PYTHON) examples/optimization_whatifs.py
	$(PYTHON) examples/roofline_analysis.py
	$(PYTHON) examples/batch_size_tradeoff.py

all: test bench

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
