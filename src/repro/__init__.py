"""repro — reproduction of "Understanding Training Efficiency of Deep
Learning Recommendation Models at Scale" (Acun et al., HPCA 2021).

Subpackages
-----------

``repro.core``
    From-scratch numpy DLRM: embeddings (hash trick, pooled multi-hot
    lookups, sparse gradients), MLP stacks, feature interaction, losses,
    metrics (normalized entropy), sparse-aware optimizers, training loop,
    hyper-parameter search.
``repro.data``
    Synthetic workload substrate: dense/sparse feature generators with
    power-law feature lengths and Zipf index skew, a latent-factor teacher
    click model, batch readers.
``repro.hardware``
    Platform specs of Table I (dual-socket CPU, Big Basin, Zion), roofline
    device timing, interconnect collectives, memory pools, power.
``repro.placement``
    The four embedding-table placement strategies of Figure 8 plus the
    packing planner (table-wise, row-wise, replication, hybrid spill).
``repro.perf``
    Analytical performance model mapping (model config, platform,
    placement, batch) to iteration time, throughput and perf/watt.
``repro.distributed``
    Functional EASGD / Hogwild / synchronous trainers (real numpy
    training) and an event-level simulation of the CPU training pipeline.
``repro.fleet``
    Fleet-scale populations: workload families, server-count allocation,
    utilization telemetry.
``repro.obs``
    Observability layer: nestable span tracing with Chrome-trace export,
    counter/gauge/histogram metrics registry with fleet-wide merging, and
    ambient profiling hooks.  Off by default (NullTracer) on every hot
    path.
``repro.runtime``
    Experiment runtime: parallel memoized sweep runner with deterministic
    per-point seeding, a content-addressed on-disk result cache, and
    bounded retries for worker-process crashes.
``repro.resilience``
    Fault injection and recovery: declarative fault plans (MTBF crashes,
    request drops, degradation windows), retry policies with capped
    backoff, checkpoint-restore cost model with Young/Daly intervals,
    and the goodput ledger used by the cluster simulation.
``repro.analysis``
    KDE, distribution statistics, power-law fits, ASCII table rendering.
``repro.configs``
    Production models of Table II and the Section V sweep grids.
"""

from . import analysis, configs, core, data, distributed, fleet, hardware, perf, placement

__version__ = "1.0.0"

__all__ = [
    "core",
    "data",
    "hardware",
    "placement",
    "perf",
    "distributed",
    "fleet",
    "analysis",
    "configs",
    "__version__",
]
