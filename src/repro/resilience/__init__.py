"""Fault injection, retries, and checkpoint-recovery economics.

The paper's asynchronous production design (§III-A.6, §IV-B) is motivated
by resilience at scale: with hundreds of trainers and parameter servers,
host failures and degraded components are routine, and async (EASGD +
Hogwild) training degrades gracefully where fully-synchronous training
stalls.  This package supplies the three ingredients every layer shares:

* :mod:`~repro.resilience.faults` — declarative :class:`FaultPlan`
  (MTBF-sampled and scheduled crashes, transient request drops,
  degradation windows) and the deterministic :class:`FaultInjector`;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` with capped
  exponential backoff + jitter and per-attempt deadlines;
* :mod:`~repro.resilience.recovery` — checkpoint/restore cost model
  (bytes over NIC + memory bandwidth), Young/Daly optimal checkpoint
  interval, and the :class:`GoodputLedger` that turns completed/lost/
  recovered work into the headline **goodput** metric.

Consumers: :mod:`repro.distributed.cluster` (event-level failures and
recovery), :mod:`repro.distributed.sync` and :mod:`repro.core.training`
(functional worker dropout and kill-and-restore), and
:mod:`repro.runtime.runner` (worker-process crash retries).  See
``docs/resilience.md`` for the full fault model and the goodput math.
"""

from .faults import (
    ComponentKind,
    DegradationWindow,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from .harness import KillRestoreReport, kill_and_restore_run, uninterrupted_run
from .recovery import (
    GoodputLedger,
    checkpoint_write_time_s,
    expected_goodput_fraction,
    model_checkpoint_bytes,
    restore_time_s,
    young_daly_interval_s,
)
from .retry import DEFAULT_RETRY_POLICY, RetriesExhausted, RetryPolicy

__all__ = [
    "ComponentKind",
    "DegradationWindow",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GoodputLedger",
    "KillRestoreReport",
    "kill_and_restore_run",
    "uninterrupted_run",
    "RetryPolicy",
    "RetriesExhausted",
    "DEFAULT_RETRY_POLICY",
    "checkpoint_write_time_s",
    "expected_goodput_fraction",
    "model_checkpoint_bytes",
    "restore_time_s",
    "young_daly_interval_s",
]
