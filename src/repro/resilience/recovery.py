"""Checkpoint/restore cost model and goodput accounting.

Recovery in scale-out DLRM training is dominated by moving checkpoint
bytes: the embedding tables are GBs-to-TBs (paper §IV-B.1), so a crashed
parameter server is down for roughly::

    restart_overhead + bytes / NIC_bandwidth + bytes / memory_bandwidth

(pull the checkpoint over the network, then materialize it in DRAM).
This module derives those costs from the same
:class:`~repro.hardware.specs.PlatformSpec` numbers the rest of the
performance model uses, provides the classic Young/Daly optimal
checkpoint interval, and defines **goodput** — the metric the
fault-tolerance experiment sweeps:

    goodput = (useful examples) / wall-clock
            = (completed - lost-to-rollback) / horizon

where work done since the last checkpoint is lost when a failure forces a
rollback.  Frequent checkpoints shrink the loss term but add overhead;
the optimum is the Young/Daly point.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from ..core.config import ModelConfig
from ..hardware.specs import PlatformSpec

__all__ = [
    "model_checkpoint_bytes",
    "checkpoint_write_time_s",
    "restore_time_s",
    "young_daly_interval_s",
    "expected_goodput_fraction",
    "GoodputLedger",
]

#: Process restart + scheduling + reconnect cost before any bytes move.
#: Engineering estimate (documented in docs/resilience.md); small next to
#: checkpoint I/O for production-size tables.
RESTART_OVERHEAD_S = 0.05

#: Optimizer state multiplier: Adagrad keeps one accumulator per weight,
#: so checkpoints that include optimizer state double the payload.
ADAGRAD_STATE_FACTOR = 2.0


def model_checkpoint_bytes(
    model: ModelConfig, include_optimizer: bool = True
) -> int:
    """Checkpoint payload for a model *config* (no live model needed).

    Mirrors :func:`repro.core.checkpoint.checkpoint_bytes` — dense
    parameters + embedding tables, times the Adagrad accumulator factor
    when optimizer state is included — but computed from the config so the
    event-level simulator can price recovery without instantiating
    production-size tables.
    """
    payload = model.dense_parameter_bytes + model.embedding_bytes
    if include_optimizer:
        payload = int(payload * ADAGRAD_STATE_FACTOR)
    return payload


def checkpoint_write_time_s(
    checkpoint_bytes: float, platform: PlatformSpec, shards: int = 1
) -> float:
    """Time to write one checkpoint, sharded over ``shards`` writers.

    Each writer streams its shard out over its NIC (remote checkpoint
    store — the production pattern); memory reads overlap the send, so
    the NIC is the bottleneck.
    """
    if checkpoint_bytes < 0:
        raise ValueError("checkpoint_bytes must be >= 0")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    per_shard = checkpoint_bytes / shards
    return per_shard / platform.nic.bandwidth + platform.nic.latency_s


def restore_time_s(
    checkpoint_bytes: float, platform: PlatformSpec, shards: int = 1
) -> float:
    """Downtime of a crashed server restoring its checkpoint shard.

    Restart overhead + pull the shard over the NIC + materialize it
    through the memory system (writes do not overlap the fetch on the
    restoring host: it is cold).
    """
    if checkpoint_bytes < 0:
        raise ValueError("checkpoint_bytes must be >= 0")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    per_shard = checkpoint_bytes / shards
    nic_s = per_shard / platform.nic.bandwidth + platform.nic.latency_s
    mem_s = per_shard / platform.system_mem_effective_bandwidth
    return RESTART_OVERHEAD_S + nic_s + mem_s


def young_daly_interval_s(mtbf_s: float, checkpoint_cost_s: float) -> float:
    """Young's first-order optimal checkpoint interval
    ``sqrt(2 * delta * MTBF)`` (Daly's refinement matters only when the
    interval approaches the MTBF, which healthy plans avoid)."""
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    if checkpoint_cost_s <= 0:
        raise ValueError("checkpoint_cost_s must be positive")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def expected_goodput_fraction(
    interval_s: float, checkpoint_cost_s: float, mtbf_s: float, restore_s: float = 0.0
) -> float:
    """First-order expected goodput fraction of a checkpointed run.

    Three loss terms relative to failure-free throughput: checkpoint
    overhead ``delta / (tau + delta)``, expected rollback ``tau / 2`` per
    failure, and restore downtime per failure — the analytical curve the
    event simulation's measured goodput is compared against.
    """
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if checkpoint_cost_s < 0 or restore_s < 0:
        raise ValueError("costs must be >= 0")
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    overhead = interval_s / (interval_s + checkpoint_cost_s)
    loss_per_failure = interval_s / 2.0 + restore_s
    availability = max(0.0, 1.0 - loss_per_failure / mtbf_s)
    return overhead * availability


@dataclass
class GoodputLedger:
    """Running account of useful vs. lost work in one simulated window.

    The cluster simulation credits completed examples as they finish
    (``completed_examples`` is gross and monotone), marks checkpoints
    (moving the rollback watermark), and debits rollbacks on failure.
    ``useful = completed - lost``; ``goodput(horizon)`` is the headline
    number.
    """

    completed_examples: int = 0
    checkpointed_examples: int = 0
    lost_examples: int = 0
    checkpoints_taken: int = 0
    checkpoint_time_s: float = 0.0
    recovery_time_s: float = 0.0
    stall_time_s: float = 0.0
    crashes: int = 0
    retries: int = 0
    requests_dropped: int = 0
    failed_iterations: int = 0

    def credit(self, examples: int) -> None:
        if examples < 0:
            raise ValueError("examples must be >= 0")
        self.completed_examples += examples

    def mark_checkpoint(self, cost_s: float) -> None:
        """Advance the rollback watermark to the current useful total."""
        self.checkpointed_examples = self.useful_examples
        self.checkpoints_taken += 1
        self.checkpoint_time_s += cost_s

    def rollback(self, fraction: float = 1.0) -> int:
        """Lose ``fraction`` of the work since the last checkpoint;
        returns the examples lost.  Async crashes lose only the failed
        shard's share (fraction = 1/num_shards); sync crashes lose all."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        at_risk = self.useful_examples - self.checkpointed_examples
        lost = int(round(at_risk * fraction))
        self.lost_examples += lost
        return lost

    @property
    def useful_examples(self) -> int:
        return self.completed_examples - self.lost_examples

    def goodput(self, horizon_s: float) -> float:
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        return self.useful_examples / horizon_s
