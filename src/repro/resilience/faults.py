"""Fault model: what breaks, when, and for how long.

The paper's asynchronous production design (§III-A.6, §IV-B) exists
because at hundreds of trainers and parameter servers, host failures and
"the tail at scale" are routine.  This module describes those failures as
*data*:

* :class:`FaultPlan` — declarative plan: exponential MTBF per component
  class, explicitly scheduled crashes (for reproducible scenarios and
  tests), a transient request-drop probability, and degradation windows
  (a component running N-times slower for a while — the soft-failure
  mode behind stragglers).
* :class:`FaultInjector` — samples the plan into a concrete, seeded list
  of :class:`FaultEvent` s over a horizon and answers per-request
  questions ("does this request drop?") deterministically.

The injector never touches the simulator directly; the cluster model
(:mod:`repro.distributed.cluster`) consumes the sampled events and owns
the recovery semantics (sync stalls, async re-sharding, restore delays).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ComponentKind",
    "DegradationWindow",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
]


class ComponentKind:
    """String constants naming the failable component classes."""

    TRAINER = "trainer"
    SPARSE_PS = "sparse_ps"
    DENSE_PS = "dense_ps"

    ALL = (TRAINER, SPARSE_PS, DENSE_PS)


@dataclass(frozen=True)
class DegradationWindow:
    """A soft failure: ``component[index]`` runs ``slowdown``x slower
    during ``[start_s, start_s + duration_s)``."""

    kind: str
    index: int
    start_s: float
    duration_s: float
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.kind not in ComponentKind.ALL:
            raise ValueError(f"unknown component kind {self.kind!r}")
        if self.index < 0:
            raise ValueError("index must be >= 0")
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("window must have start >= 0 and duration > 0")
        if self.slowdown < 1:
            raise ValueError("slowdown must be >= 1")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class FaultEvent:
    """One sampled hard failure of ``kind[index]`` at ``time_s``."""

    kind: str
    index: int
    time_s: float


@dataclass(frozen=True)
class FaultPlan:
    """Declarative failure plan for one simulated training window.

    ``*_mtbf_s`` of ``None`` disables random crashes for that class;
    otherwise each component of the class draws crash times from an
    exponential inter-arrival distribution with that mean — the standard
    memoryless host-failure model (and the one Young/Daly checkpoint
    analysis assumes).

    ``scheduled_crashes`` adds deterministic crashes on top (the tool for
    scenario scripts and tests: "kill sparse PS 2 at t=0.5").

    ``drop_probability`` is the per-request chance a trainer->PS request
    is lost in flight (transient network fault); dropped requests burn a
    deadline and are retried per the cluster's
    :class:`~repro.resilience.retry.RetryPolicy`.
    """

    trainer_mtbf_s: float | None = None
    sparse_ps_mtbf_s: float | None = None
    dense_ps_mtbf_s: float | None = None
    scheduled_crashes: tuple[FaultEvent, ...] = ()
    drop_probability: float = 0.0
    degradations: tuple[DegradationWindow, ...] = ()
    #: Safety valve: at most this many *sampled* crashes per component
    #: class (scheduled crashes are never capped).
    max_random_crashes: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("trainer_mtbf_s", "sparse_ps_mtbf_s", "dense_ps_mtbf_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        if not 0 <= self.drop_probability < 1:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {self.drop_probability}"
            )
        if self.max_random_crashes < 0:
            raise ValueError("max_random_crashes must be >= 0")

    def mtbf_for(self, kind: str) -> float | None:
        return {
            ComponentKind.TRAINER: self.trainer_mtbf_s,
            ComponentKind.SPARSE_PS: self.sparse_ps_mtbf_s,
            ComponentKind.DENSE_PS: self.dense_ps_mtbf_s,
        }[kind]

    @property
    def is_noop(self) -> bool:
        """True when the plan can never perturb a run."""
        return (
            self.trainer_mtbf_s is None
            and self.sparse_ps_mtbf_s is None
            and self.dense_ps_mtbf_s is None
            and not self.scheduled_crashes
            and self.drop_probability == 0.0
            and not self.degradations
        )


class FaultInjector:
    """Samples a :class:`FaultPlan` into concrete events, deterministically.

    One injector is built per simulated run; its RNG stream is seeded from
    ``plan.seed`` alone, so identical plans produce identical fault
    timelines regardless of what else the simulation draws.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._crash_rng = np.random.default_rng(plan.seed + 0x5AFE)
        self._drop_rng = np.random.default_rng(plan.seed + 0xD509)
        self.injected: list[FaultEvent] = []

    def sample_crashes(
        self, counts: dict[str, int], horizon_s: float
    ) -> list[FaultEvent]:
        """All hard failures over ``[0, horizon_s)``: scheduled + sampled.

        ``counts`` maps component kind -> population size.  Returned
        events are sorted by time; the list is also retained on
        ``self.injected`` for reporting.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        events: list[FaultEvent] = [
            e for e in self.plan.scheduled_crashes if e.time_s < horizon_s
        ]
        for kind in ComponentKind.ALL:
            mtbf = self.plan.mtbf_for(kind)
            if mtbf is None:
                continue
            for index in range(counts.get(kind, 0)):
                t = 0.0
                drawn = 0
                while drawn < self.plan.max_random_crashes:
                    t += float(self._crash_rng.exponential(mtbf))
                    if t >= horizon_s:
                        break
                    events.append(FaultEvent(kind=kind, index=index, time_s=t))
                    drawn += 1
        events.sort(key=lambda e: (e.time_s, e.kind, e.index))
        self.injected = events
        return events

    def drops_request(self) -> bool:
        """Per-request transient-loss draw (independent Bernoulli)."""
        p = self.plan.drop_probability
        if p == 0.0:
            return False
        return bool(self._drop_rng.uniform() < p)

    def slowdown_at(self, kind: str, index: int, now: float) -> float:
        """Multiplicative service-time factor from any active degradation
        window covering ``(kind, index)`` at time ``now`` (1.0 = healthy)."""
        factor = 1.0
        for w in self.plan.degradations:
            if w.kind == kind and w.index == index and w.start_s <= now < w.end_s:
                factor = max(factor, w.slowdown)
        return factor
