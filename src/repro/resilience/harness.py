"""Functional kill-and-restore harness for the single-node trainer.

The event-level simulator prices failures in *time*; this harness measures
them in *model state*: it actually kills a numpy training run, restores it
from its last :mod:`repro.core.checkpoint`, replays the lost window, and
hands back the final parameters so tests can assert the paper-relevant
guarantee — **a restored run is bit-identical to an uninterrupted one**
(same seed, same data order).  The accuracy cost of a failure is therefore
exactly the wall-clock cost of recomputing the lost window, never silent
model divergence.

Determinism contract: ``stream_factory()`` must return a fresh iterator
producing the same batch sequence every call (seeded generator), and all
model randomness must come from ``seed``.  The harness replays the stream
from the start on restore and skips the first ``checkpoint_at_step``
batches — the position cursor a production reader checkpoint would hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..core.config import ModelConfig
from ..core.model import Batch, DLRM
from ..core.optim import Adagrad
from ..core.training import Trainer

__all__ = ["KillRestoreReport", "kill_and_restore_run", "uninterrupted_run"]


@dataclass(frozen=True)
class KillRestoreReport:
    """Outcome of one kill-and-restore training run."""

    total_steps: int
    checkpoint_at_step: int
    kill_at_step: int
    #: steps whose work was thrown away by the crash (kill - checkpoint).
    lost_steps: int
    #: steps executed in total, including the replayed window.
    executed_steps: int
    final_loss: float
    loss_history: tuple[float, ...]
    checkpoint_bytes: int

    @property
    def recompute_overhead(self) -> float:
        """Fraction of extra work paid to recover (lost / total)."""
        return self.lost_steps / self.total_steps


def _make_trainer(config: ModelConfig, lr: float, seed: int) -> Trainer:
    model = DLRM(config, rng=seed)
    return Trainer(
        model,
        lambda m: Adagrad(m.dense_parameters(), m.embedding_tables(), lr=lr),
    )


def _skip(stream: Iterator[Batch], n: int) -> Iterator[Batch]:
    for _ in range(n):
        next(stream)
    return stream


def uninterrupted_run(
    config: ModelConfig,
    stream_factory: Callable[[], Iterator[Batch]],
    total_steps: int,
    lr: float = 0.05,
    seed: int = 0,
) -> tuple[DLRM, list[float]]:
    """The failure-free reference: train ``total_steps`` straight through."""
    trainer = _make_trainer(config, lr, seed)
    result = trainer.train(stream_factory(), max_steps=total_steps)
    return trainer.model, result.loss_history


def kill_and_restore_run(
    config: ModelConfig,
    stream_factory: Callable[[], Iterator[Batch]],
    total_steps: int,
    kill_at_step: int,
    checkpoint_path,
    checkpoint_at_step: int | None = None,
    lr: float = 0.05,
    seed: int = 0,
) -> tuple[DLRM, KillRestoreReport]:
    """Train, checkpoint, crash at step ``kill_at_step``, restore, finish.

    ``checkpoint_at_step`` (default: the kill step) is where the last
    checkpoint landed; any steps between it and the kill are lost work that
    the resumed run replays from the stream.  Returns the post-recovery
    model plus a report; the model's final state is bit-identical to
    :func:`uninterrupted_run` with the same arguments.
    """
    if total_steps < 1:
        raise ValueError("total_steps must be >= 1")
    if not 1 <= kill_at_step < total_steps:
        raise ValueError(
            f"kill_at_step must be in [1, total_steps), got {kill_at_step}"
        )
    if checkpoint_at_step is None:
        checkpoint_at_step = kill_at_step
    if not 1 <= checkpoint_at_step <= kill_at_step:
        raise ValueError(
            "checkpoint_at_step must be in [1, kill_at_step], got "
            f"{checkpoint_at_step}"
        )

    # Phase 1: the doomed incarnation.  Train to the checkpoint, persist,
    # keep going until the crash; everything after the checkpoint is lost.
    victim = _make_trainer(config, lr, seed)
    stream = stream_factory()
    history_kept: list[float] = []
    result = victim.train(stream, max_steps=checkpoint_at_step)
    history_kept.extend(result.loss_history)
    ckpt_bytes = victim.save_checkpoint(checkpoint_path)
    if kill_at_step > checkpoint_at_step:
        victim.train(stream, max_steps=kill_at_step - checkpoint_at_step)
    del victim  # the host is gone

    # Phase 2: a fresh process restores the checkpoint and resumes.  The
    # replacement model's init RNG is irrelevant — restore overwrites every
    # parameter and the optimizer accumulators.
    survivor = _make_trainer(config, lr, seed + 991)
    survivor.load_checkpoint(checkpoint_path, step_index=checkpoint_at_step)
    resumed = _skip(stream_factory(), checkpoint_at_step)
    result2 = survivor.train(resumed, max_steps=total_steps - checkpoint_at_step)
    history_kept.extend(result2.loss_history)

    report = KillRestoreReport(
        total_steps=total_steps,
        checkpoint_at_step=checkpoint_at_step,
        kill_at_step=kill_at_step,
        lost_steps=kill_at_step - checkpoint_at_step,
        executed_steps=kill_at_step + (total_steps - checkpoint_at_step),
        final_loss=float(history_kept[-1]),
        loss_history=tuple(float(x) for x in history_kept),
        checkpoint_bytes=int(ckpt_bytes),
    )
    return survivor.model, report
