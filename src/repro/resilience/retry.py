"""Retry policy: capped exponential backoff with decorrelated jitter.

One policy object serves every layer that retries:

* the event-level cluster simulation (trainer requests against parameter
  servers that drop packets or are down),
* the :class:`~repro.runtime.runner.SweepRunner` (worker-process crashes),
* any future RPC-ish surface.

The policy itself is a frozen value object — it never sleeps and holds no
randomness.  Delay sequences are *derived* from a caller-supplied
``numpy`` generator (simulated time) or consumed by a caller that sleeps
(wall-clock time), so the same policy is exact in the simulator and
practical in the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY", "RetriesExhausted"]


class RetriesExhausted(RuntimeError):
    """Raised when an operation fails on every permitted attempt."""

    def __init__(self, what: str, attempts: int, last_error: str = "") -> None:
        msg = f"{what}: failed after {attempts} attempt(s)"
        if last_error:
            msg += f" (last error: {last_error})"
        super().__init__(msg)
        self.what = what
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff + jitter, plus a per-request deadline.

    Attributes:
        max_attempts: total tries including the first (>= 1).
        base_delay_s: backoff before the first retry.
        multiplier: exponential growth factor between retries.
        max_delay_s: cap on any single backoff delay.
        jitter: fraction of the delay randomized away, in ``[0, 1]``.
            ``0.5`` means the drawn delay is uniform in
            ``[0.5 * d, d]`` — "equal jitter", which decorrelates
            retry storms without ever halving below ``d/2``.
        deadline_s: how long a single attempt may be outstanding before
            it is declared failed (request timeout).  The simulator
            charges this much waiting per failed attempt.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.5
    deadline_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    def backoff_s(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Backoff before retry number ``attempt`` (1-based: the delay
        between the first failure and the second try is ``attempt=1``)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        if self.jitter and rng is not None:
            lo = delay * (1.0 - self.jitter)
            delay = float(rng.uniform(lo, delay))
        return delay

    def total_penalty_s(self, failures: int, rng: np.random.Generator | None = None) -> float:
        """Simulated-time cost of ``failures`` consecutive failed attempts:
        each burns its deadline plus the backoff before the next try."""
        if failures < 0:
            raise ValueError("failures must be >= 0")
        total = 0.0
        for attempt in range(1, failures + 1):
            total += self.deadline_s + self.backoff_s(attempt, rng)
        return total

    def retries(self) -> int:
        """Number of *re*-tries permitted after the first attempt."""
        return self.max_attempts - 1


DEFAULT_RETRY_POLICY = RetryPolicy()
