"""Test-suite model factory and the Section V sweep grids.

The paper's design-space exploration (§V) uses a parameterized model with
uniform tables: dense features 64..4096, sparse features 4..128, fixed hash
size 100000, lookups truncated at 32, MLP dims 512^3, batch 200 (CPU) /
1600 (GPU).  :func:`make_test_model` builds exactly that family.
"""

from __future__ import annotations

from ..core.config import InteractionType, MLPSpec, ModelConfig, uniform_tables

__all__ = [
    "make_test_model",
    "DENSE_SWEEP",
    "SPARSE_SWEEP",
    "BATCH_SWEEP_CPU",
    "BATCH_SWEEP_GPU",
    "HASH_SWEEP",
    "MLP_SWEEP",
    "DEFAULT_CPU_BATCH",
    "DEFAULT_GPU_BATCH",
    "DEFAULT_HASH_SIZE",
    "DEFAULT_MLP",
    "TEST_SUITE_MEAN_LOOKUPS",
    "TEST_SUITE_TRUNCATION",
]

#: §V fixed parameters.
DEFAULT_CPU_BATCH = 200
DEFAULT_GPU_BATCH = 1600
DEFAULT_HASH_SIZE = 100_000
DEFAULT_MLP = "512^3"
#: "We truncate number of look-ups per table to 32, to limit outliers."
TEST_SUITE_TRUNCATION = 32
#: Mean lookups per table in the sweep (the paper fixes the truncation but
#: not the mean; 10 sits inside the Figure 7 bulk).
TEST_SUITE_MEAN_LOOKUPS = 10.0

#: §V-A: "numbers of dense features between 64 and 4096".
DENSE_SWEEP = (64, 256, 1024, 4096)
#: §V-A: "counts of sparse features ranging between 4 and 128".
SPARSE_SWEEP = (4, 16, 64, 128)
#: §V-B batch-size scaling ranges.
BATCH_SWEEP_CPU = (25, 50, 100, 200, 400, 800, 1600)
BATCH_SWEEP_GPU = (100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600)
#: §V-C hash-size scaling: spans the replicated regime (tables fit on every
#: GPU), the sharded regime, the hybrid-spill regime (tables overflow HBM
#: into system memory) and the single-server capacity wall.
HASH_SWEEP = (
    100_000,
    1_000_000,
    3_000_000,
    6_000_000,
    8_000_000,
    10_000_000,
    12_000_000,
    16_000_000,
)
#: §V-D MLP dimension scaling (width^layers notation).
MLP_SWEEP = ("64^2", "128^2", "256^3", "512^3", "1024^3", "2048^4")


def make_test_model(
    num_dense: int,
    num_sparse: int,
    mlp: str = DEFAULT_MLP,
    hash_size: int = DEFAULT_HASH_SIZE,
    dim: int = 64,
    mean_lookups: float = TEST_SUITE_MEAN_LOOKUPS,
    truncation: int | None = TEST_SUITE_TRUNCATION,
    interaction: InteractionType = InteractionType.CONCAT,
    name: str | None = None,
) -> ModelConfig:
    """Build one point of the §V design-space test suite.

    The same MLP spec is used for the bottom and top stacks (the paper
    sweeps a single ``width^layers`` knob for "the MLP dimensions").
    """
    spec = MLPSpec.from_notation(mlp)
    return ModelConfig(
        name=name or f"test-d{num_dense}-s{num_sparse}-{mlp}-h{hash_size}",
        num_dense=num_dense,
        tables=uniform_tables(
            num_sparse,
            hash_size,
            dim=dim,
            mean_lookups=mean_lookups,
            truncation=truncation,
        ),
        bottom_mlp=spec,
        top_mlp=spec,
        interaction=interaction,
    )
