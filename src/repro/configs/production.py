"""The three production models of Table II, with per-table detail sampled to
match Figures 6 and 7.

Table II publishes aggregates (feature counts, MLP dimensions, mean lookups,
embedding size order-of-magnitude); Figures 6 and 7 publish the per-table
distributions (log-normal-looking hash sizes between 30 and 20M with means
of 5.7M / 7.3M / 3.7M; power-law feature lengths).  We sample per-table hash
sizes and mean lookups from those shapes with fixed seeds, then rescale so
the aggregates match Table II exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import InteractionType, MLPSpec, ModelConfig, TableSpec
from ..data.distributions import power_law_mean_lengths, sample_lognormal_with_mean
from ..placement.strategies import PlacementStrategy

__all__ = [
    "ProductionSetup",
    "build_m1",
    "build_m2",
    "build_m3",
    "PRODUCTION_MODELS",
    "PRODUCTION_SETUPS",
    "EMBEDDING_DIM",
    "HASH_SIZE_MIN",
    "HASH_SIZE_MAX",
]

#: Fixed embedding dimension d for all sparse features (§III-A.1 fixes d).
EMBEDDING_DIM = 64
#: Observed hash-size range in Figure 6: "from 30 being smallest, to 20
#: million the largest".
HASH_SIZE_MIN = 30
HASH_SIZE_MAX = 20_000_000


@dataclass(frozen=True)
class ProductionSetup:
    """Table III: the production CPU setup and the tuned GPU prototype."""

    model_name: str
    cpu_trainers: int
    cpu_sparse_ps: int
    cpu_dense_ps: int
    cpu_batch_per_trainer: int
    gpu_batch: int
    gpu_placement: PlacementStrategy
    gpu_remote_ps: int  # only for REMOTE_CPU placement
    hogwild_threads: int
    paper_relative_throughput: float  # GPU/CPU from Table III
    paper_power_efficiency: float  # GPU/CPU perf/watt from Table III


def _sample_tables(
    name_prefix: str,
    num_tables: int,
    mean_hash_size: float,
    mean_lookups: float,
    seed: int,
    truncation: int | None = None,
) -> tuple[TableSpec, ...]:
    """Per-table hash sizes (clipped log-normal, exact mean) and mean
    feature lengths (power law, exact overall mean)."""
    rng = np.random.default_rng(seed)
    raw = sample_lognormal_with_mean(
        rng,
        num_tables,
        target_mean=mean_hash_size,
        sigma=1.4,
        clip_min=HASH_SIZE_MIN,
        clip_max=HASH_SIZE_MAX,
    )
    # Iteratively rescale and re-clip so the *realized* mean matches
    # Figure 6's number (clipping at the 20M cap biases a single rescale).
    for _ in range(25):
        raw = np.clip(raw * (mean_hash_size / raw.mean()), HASH_SIZE_MIN, HASH_SIZE_MAX)
    hash_sizes = np.maximum(raw.astype(np.int64), HASH_SIZE_MIN)
    lengths = power_law_mean_lengths(rng, num_tables, overall_mean=mean_lookups)
    return tuple(
        TableSpec(
            name=f"{name_prefix}_sparse_{i}",
            hash_size=int(hash_sizes[i]),
            dim=EMBEDDING_DIM,
            mean_lookups=float(lengths[i]),
            truncation=truncation,
        )
        for i in range(num_tables)
    )


def build_m1(seed: int = 101) -> ModelConfig:
    """M1_prod: 30 sparse / 800 dense, tens of GB of tables, 28 mean lookups."""
    return ModelConfig(
        name="M1_prod",
        num_dense=800,
        tables=_sample_tables("m1", 30, mean_hash_size=5.7e6, mean_lookups=28, seed=seed),
        bottom_mlp=MLPSpec.from_notation("512"),
        top_mlp=MLPSpec.from_notation("512-512-512"),
        interaction=InteractionType.CONCAT,
    )


def build_m2(seed: int = 202) -> ModelConfig:
    """M2_prod: 13 sparse / 504 dense, tens of GB of tables, 17 mean lookups."""
    return ModelConfig(
        name="M2_prod",
        num_dense=504,
        tables=_sample_tables("m2", 13, mean_hash_size=7.3e6, mean_lookups=17, seed=seed),
        bottom_mlp=MLPSpec.from_notation("1024"),
        top_mlp=MLPSpec.from_notation("1024-1024-512"),
        interaction=InteractionType.CONCAT,
    )


def build_m3(seed: int = 303) -> ModelConfig:
    """M3_prod: 127 sparse / 809 dense, hundreds of GB, 49 mean lookups —
    the embedding-dominant model that scales poorly on Big Basin."""
    return ModelConfig(
        name="M3_prod",
        num_dense=809,
        tables=_sample_tables("m3", 127, mean_hash_size=3.7e6, mean_lookups=49, seed=seed),
        bottom_mlp=MLPSpec.from_notation("512"),
        top_mlp=MLPSpec.from_notation("512-256-512-256-512"),
        interaction=InteractionType.CONCAT,
    )


PRODUCTION_MODELS = {
    "M1_prod": build_m1,
    "M2_prod": build_m2,
    "M3_prod": build_m3,
}

#: Table III, including the paper's measured ratios as reproduction targets.
PRODUCTION_SETUPS = {
    "M1_prod": ProductionSetup(
        model_name="M1_prod",
        cpu_trainers=6,
        cpu_sparse_ps=6,
        cpu_dense_ps=2,
        cpu_batch_per_trainer=200,
        gpu_batch=1600,
        gpu_placement=PlacementStrategy.GPU_MEMORY,
        gpu_remote_ps=0,
        hogwild_threads=1,
        paper_relative_throughput=2.25,
        paper_power_efficiency=4.3,
    ),
    "M2_prod": ProductionSetup(
        model_name="M2_prod",
        cpu_trainers=20,
        cpu_sparse_ps=12,
        cpu_dense_ps=4,
        cpu_batch_per_trainer=200,
        gpu_batch=3200,
        gpu_placement=PlacementStrategy.GPU_MEMORY,
        gpu_remote_ps=0,
        hogwild_threads=1,
        paper_relative_throughput=0.85,
        paper_power_efficiency=2.8,
    ),
    "M3_prod": ProductionSetup(
        model_name="M3_prod",
        cpu_trainers=8,
        cpu_sparse_ps=7,
        cpu_dense_ps=1,
        cpu_batch_per_trainer=200,
        gpu_batch=800,
        gpu_placement=PlacementStrategy.REMOTE_CPU,
        gpu_remote_ps=18,
        hogwild_threads=4,
        paper_relative_throughput=0.67,
        paper_power_efficiency=0.43,
    ),
}
