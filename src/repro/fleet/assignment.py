"""Heterogeneous-fleet workload assignment.

The paper's introduction poses the operator's problem: given "a
heterogeneous datacenter with a mix of CPU and GPU servers", pick the right
system for each workload (§I).  :mod:`repro.perf.setup_optimizer` solves it
for one model; this module lifts it to a *population*: assign every sampled
workload its best setup under an objective and aggregate the fleet's server
and power bill — then compare against a homogeneous all-CPU policy to
quantify what hardware-aware placement is worth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import ModelConfig
from ..perf.calibration import DEFAULT_CALIBRATION, Calibration
from ..perf.setup_optimizer import CandidateSetup, Objective, optimize_setup
from .workloads import sample_ranking_model

__all__ = ["WorkloadAssignment", "FleetAssignment", "assign_fleet", "sample_workload_population"]


@dataclass(frozen=True)
class WorkloadAssignment:
    """One workload's chosen setup, compared at iso-throughput.

    The chosen setup usually delivers far more throughput than the CPU
    baseline cluster, so raw power numbers are not comparable; the saving
    is computed against the CPU power that *would be needed* to deliver
    the chosen throughput at the baseline's perf/watt.
    """

    model_name: str
    chosen: CandidateSetup
    cpu_baseline: CandidateSetup

    @property
    def efficiency_gain(self) -> float:
        """perf/watt of the chosen setup over the CPU baseline."""
        return self.chosen.perf_per_watt / self.cpu_baseline.perf_per_watt

    @property
    def iso_throughput_cpu_watts(self) -> float:
        """CPU power required to match the chosen setup's throughput."""
        return self.chosen.throughput / self.cpu_baseline.perf_per_watt

    @property
    def power_saving_watts(self) -> float:
        """Watts saved at iso-throughput by using the chosen setup."""
        return self.iso_throughput_cpu_watts - self.chosen.report.power.nameplate_watts


@dataclass(frozen=True)
class FleetAssignment:
    """The full fleet's assignment under one objective."""

    assignments: tuple[WorkloadAssignment, ...]
    objective: Objective

    @property
    def total_power_watts(self) -> float:
        return sum(a.chosen.report.power.nameplate_watts for a in self.assignments)

    @property
    def cpu_only_power_watts(self) -> float:
        """CPU power required to deliver every workload's chosen throughput."""
        return sum(a.iso_throughput_cpu_watts for a in self.assignments)

    @property
    def power_saving_fraction(self) -> float:
        baseline = self.cpu_only_power_watts
        if baseline <= 0:
            return 0.0
        return 1.0 - self.total_power_watts / baseline

    def gpu_share(self) -> float:
        """Fraction of workloads assigned to a GPU platform."""
        gpu = sum(1 for a in self.assignments if "CPU x" not in a.chosen.label)
        return gpu / len(self.assignments)


def sample_workload_population(
    num_workloads: int, seed: int = 0
) -> list[ModelConfig]:
    """Sample a diverse ranking-model population for assignment studies."""
    if num_workloads < 1:
        raise ValueError("num_workloads must be >= 1")
    rng = np.random.default_rng(seed)
    return [
        sample_ranking_model(rng, name=f"workload_{i}") for i in range(num_workloads)
    ]


def assign_fleet(
    models: list[ModelConfig],
    objective: Objective = Objective.PERF_PER_WATT,
    throughput_floor_fraction: float = 1.0,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> FleetAssignment:
    """Assign each workload its best setup.

    Every candidate must deliver at least ``throughput_floor_fraction`` of
    what the workload's CPU baseline achieves (training SLAs do not regress
    when hardware changes).  The CPU baseline is the best CPU-cluster
    candidate by throughput.

    Raises:
        ValueError: if ``models`` is empty or a workload has no feasible setup.
    """
    if not models:
        raise ValueError("need at least one workload")
    if not 0 <= throughput_floor_fraction <= 1:
        raise ValueError("throughput_floor_fraction must be in [0, 1]")
    assignments = []
    for model in models:
        all_candidates = optimize_setup(
            model, objective=Objective.THROUGHPUT, calib=calib
        )
        cpu_candidates = [
            c for c in all_candidates.candidates if c.label.startswith("CPU ")
        ]
        if not cpu_candidates:
            raise ValueError(f"no CPU baseline feasible for {model.name}")
        # The homogeneous policy would pick its own most power-efficient
        # cluster size, so that is the fair baseline.
        cpu_best = max(cpu_candidates, key=lambda c: c.perf_per_watt)
        floor = throughput_floor_fraction * cpu_best.throughput
        eligible = [c for c in all_candidates.candidates if c.throughput >= floor]
        if objective is Objective.PERF_PER_WATT:
            chosen = max(eligible, key=lambda c: c.perf_per_watt)
        else:
            chosen = max(eligible, key=lambda c: c.throughput)
        assignments.append(
            WorkloadAssignment(
                model_name=model.name, chosen=chosen, cpu_baseline=cpu_best
            )
        )
    return FleetAssignment(assignments=tuple(assignments), objective=objective)
