"""Utilization telemetry over repeated training runs (paper Figure 5).

Figure 5 shows the utilization distributions of one ranking model trained
repeatedly at a *fixed scale* (same server counts, same hardware): trainer
CPU and memory-bandwidth utilization are high with small variance, while
parameter-server utilizations are lower-mean with a wide spread and a long
tail.  The spread comes from run-to-run *model-configuration* differences
(feature sets change between experiments) plus system-level jitter.

:func:`collect_utilization_samples` regenerates that population by jittering
the model configuration and hardware service rates across runs and pushing
each run through the event-level cluster simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.config import ModelConfig
from ..distributed.cluster import ClusterConfig, simulate_cpu_cluster
from ..obs.registry import MetricsRegistry, merge_all
from ..perf.calibration import DEFAULT_CALIBRATION, Calibration

__all__ = [
    "UtilizationSamples",
    "jitter_model",
    "collect_utilization_samples",
    "aggregate_run_registries",
]


@dataclass
class UtilizationSamples:
    """Per-run utilization samples for each resource class of Figure 5."""

    trainer_cpu: list[float] = field(default_factory=list)
    trainer_nic: list[float] = field(default_factory=list)
    sparse_ps_mem: list[float] = field(default_factory=list)
    sparse_ps_nic: list[float] = field(default_factory=list)
    dense_ps_nic: list[float] = field(default_factory=list)

    def as_dict(self) -> dict[str, np.ndarray]:
        return {
            "trainer_cpu": np.array(self.trainer_cpu),
            "trainer_nic": np.array(self.trainer_nic),
            "sparse_ps_mem": np.array(self.sparse_ps_mem),
            "sparse_ps_nic": np.array(self.sparse_ps_nic),
            "dense_ps_nic": np.array(self.dense_ps_nic),
        }

    def to_registry(self, registry: MetricsRegistry | None = None) -> MetricsRegistry:
        """Express the Figure 5 samples as a mergeable metrics registry: one
        ``utilization`` histogram with a labeled child per resource class."""
        registry = registry if registry is not None else MetricsRegistry()
        hist = registry.histogram("utilization")
        for resource, values in self.as_dict().items():
            child = hist.labels(resource=resource)
            for v in values:
                hist.observe(float(v))
                child.observe(float(v))
        return registry


def jitter_model(
    model: ModelConfig, rng: np.random.Generator, sigma: float = 0.25
) -> ModelConfig:
    """A run-to-run variant of ``model``: same architecture, jittered
    per-table feature lengths (different experiment data / feature sets)."""
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    tables = tuple(
        replace(
            t,
            mean_lookups=float(
                max(0.1, t.mean_lookups * rng.lognormal(0.0, sigma))
            ),
        )
        for t in model.tables
    )
    return replace(model, tables=tables)


def collect_utilization_samples(
    model: ModelConfig,
    num_runs: int = 40,
    num_trainers: int = 10,
    num_sparse_ps: int = 8,
    num_dense_ps: int = 2,
    horizon_s: float = 1.0,
    seed: int = 0,
    config_sigma: float = 0.25,
    hardware_jitter: float = 0.15,
    calib: Calibration = DEFAULT_CALIBRATION,
    registry: MetricsRegistry | None = None,
) -> UtilizationSamples:
    """Simulate ``num_runs`` training runs of one model at fixed scale and
    collect per-server utilization samples.

    When ``registry`` is given, each run records per-resource queue/busy
    histograms into its *own* registry (exactly what a per-trainer collector
    would ship) and the per-run registries are merged into ``registry`` —
    the fleet-wide aggregation path, order-independent by construction (see
    :mod:`repro.obs.registry`).
    """
    if num_runs < 1:
        raise ValueError(f"num_runs must be >= 1, got {num_runs}")
    rng = np.random.default_rng(seed)
    samples = UtilizationSamples()
    run_registries: list[MetricsRegistry] = []
    for run in range(num_runs):
        variant = jitter_model(model, rng, sigma=config_sigma)
        cfg = ClusterConfig(
            num_trainers=num_trainers,
            num_sparse_ps=num_sparse_ps,
            num_dense_ps=num_dense_ps,
            jitter_sigma=hardware_jitter,
            seed=int(rng.integers(2**31)),
        )
        run_registry = MetricsRegistry() if registry is not None else None
        result = simulate_cpu_cluster(
            variant, cfg, horizon_s=horizon_s, calib=calib, registry=run_registry
        )
        if run_registry is not None:
            run_registry.counter("runs").inc()
            run_registries.append(run_registry)
        samples.trainer_cpu.extend(result.trainer_cpu_utilization)
        samples.trainer_nic.extend(result.trainer_nic_utilization)
        samples.sparse_ps_mem.extend(result.sparse_ps_mem_utilization)
        samples.sparse_ps_nic.extend(result.sparse_ps_nic_utilization)
        samples.dense_ps_nic.extend(result.dense_ps_nic_utilization)
    if registry is not None:
        registry.update(aggregate_run_registries(run_registries))
        samples.to_registry(registry)
    return samples


def aggregate_run_registries(
    registries: list[MetricsRegistry],
) -> MetricsRegistry:
    """Fold per-run (or per-trainer) registries into one fleet-wide view.

    Thin, intention-revealing wrapper over :func:`repro.obs.merge_all`;
    merging is associative and commutative, so sharded collection pipelines
    may pre-combine in any grouping.
    """
    return merge_all(registries)
