"""Fleet simulation: workload populations (Fig 2, 9) and utilization telemetry (Fig 5)."""

from .assignment import (
    FleetAssignment,
    WorkloadAssignment,
    assign_fleet,
    sample_workload_population,
)
from .capacity import CapacityDemand, estimate_fleet_demand, forecast_growth
from .telemetry import (
    UtilizationSamples,
    aggregate_run_registries,
    collect_utilization_samples,
    jitter_model,
)
from .workloads import (
    WORKLOAD_FAMILIES,
    ServerCounts,
    TrainingRun,
    WorkloadFamily,
    sample_fleet_runs,
    sample_ranking_model,
    sample_server_counts,
)

__all__ = [
    "WorkloadFamily",
    "WORKLOAD_FAMILIES",
    "TrainingRun",
    "sample_fleet_runs",
    "sample_ranking_model",
    "ServerCounts",
    "sample_server_counts",
    "UtilizationSamples",
    "collect_utilization_samples",
    "aggregate_run_registries",
    "jitter_model",
    "CapacityDemand",
    "estimate_fleet_demand",
    "forecast_growth",
    "FleetAssignment",
    "WorkloadAssignment",
    "assign_fleet",
    "sample_workload_population",
]
