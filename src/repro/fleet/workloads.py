"""Fleet-level workload generation (paper §II, Figures 2 and 9).

The paper characterizes *populations*: how often each workload family
trains and for how long (Figure 2), and how many trainer / parameter
servers the ranking workflows use over a month (Figure 9).  We regenerate
those populations from first principles:

* per-family training frequency and duration distributions calibrated to
  Figure 2's qualitative placement (recommendation models train by far the
  most frequently; translation runs are long; Facer runs are short);
* per-run ranking-model configurations whose *memory requirements* drive
  the parameter-server count — reproducing Figure 9's contrast between a
  concentrated trainer-count distribution (throughput requirements change
  rarely; >40% of runs share one trainer count) and a wide PS-count
  distribution (feature experimentation changes memory needs constantly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import InteractionType, MLPSpec, ModelConfig, TableSpec
from ..data.distributions import power_law_mean_lengths, sample_lognormal_with_mean
from ..placement.planner import PlannerConfig, model_embedding_footprint

__all__ = [
    "WorkloadFamily",
    "WORKLOAD_FAMILIES",
    "TrainingRun",
    "sample_fleet_runs",
    "sample_ranking_model",
    "ServerCounts",
    "sample_server_counts",
]


@dataclass(frozen=True)
class WorkloadFamily:
    """One workload family of Figure 2."""

    name: str
    model_kind: str
    #: Mean training runs per day across the fleet (log-normal spread).
    runs_per_day_mean: float
    #: Mean run duration in hours (log-normal spread).
    duration_hours_mean: float
    spread_sigma: float = 0.6

    def __post_init__(self) -> None:
        if self.runs_per_day_mean <= 0 or self.duration_hours_mean <= 0:
            raise ValueError(f"{self.name}: means must be positive")


#: Figure 2 placement: recommendation (News Feed, Search) top-right — most
#: frequent; translation long-running but rare; Facer rare and shorter.
#: Recommendation training runs grew 7x over 18 months (§II-A).
WORKLOAD_FAMILIES = (
    WorkloadFamily("news_feed", "recommendation", runs_per_day_mean=400.0, duration_hours_mean=8.0),
    WorkloadFamily("search", "recommendation", runs_per_day_mean=250.0, duration_hours_mean=6.0),
    WorkloadFamily("language_translation", "rnn", runs_per_day_mean=15.0, duration_hours_mean=30.0),
    WorkloadFamily("facer", "cnn", runs_per_day_mean=8.0, duration_hours_mean=4.0),
)


@dataclass(frozen=True)
class TrainingRun:
    """One sampled training run."""

    family: str
    model_kind: str
    duration_hours: float
    day: int


def sample_fleet_runs(
    rng: np.random.Generator | int | None = None,
    num_days: int = 7,
    families: tuple[WorkloadFamily, ...] = WORKLOAD_FAMILIES,
) -> list[TrainingRun]:
    """Sample every training run launched over ``num_days``."""
    if num_days < 1:
        raise ValueError(f"num_days must be >= 1, got {num_days}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    runs: list[TrainingRun] = []
    for day in range(num_days):
        for family in families:
            count = rng.poisson(family.runs_per_day_mean)
            durations = sample_lognormal_with_mean(
                rng, count, family.duration_hours_mean, sigma=family.spread_sigma
            )
            runs.extend(
                TrainingRun(family.name, family.model_kind, float(d), day)
                for d in durations
            )
    return runs


def sample_ranking_model(
    rng: np.random.Generator, name: str = "ranking"
) -> ModelConfig:
    """One experimental ranking-model configuration.

    ML engineers sweep features and architecture constantly (§IV-B.2:
    "memory capacity requirement changes frequently"); sampling ranges
    bracket the production models of Table II.
    """
    num_sparse = int(rng.integers(8, 128))
    num_dense = int(rng.integers(128, 1200))
    mean_hash = float(10 ** rng.uniform(5.0, 7.4))  # 100K .. 25M rows
    mean_lookups = float(rng.uniform(5, 60))
    hash_sizes = sample_lognormal_with_mean(
        rng, num_sparse, mean_hash, sigma=1.4, clip_min=30, clip_max=2e7
    )
    lengths = power_law_mean_lengths(rng, num_sparse, overall_mean=mean_lookups)
    tables = tuple(
        TableSpec(
            name=f"{name}_s{i}",
            hash_size=max(30, int(hash_sizes[i])),
            dim=64,
            mean_lookups=float(lengths[i]),
        )
        for i in range(num_sparse)
    )
    width = int(rng.choice([256, 512, 1024]))
    depth = int(rng.integers(2, 5))
    return ModelConfig(
        name=name,
        num_dense=num_dense,
        tables=tables,
        bottom_mlp=MLPSpec((width,)),
        top_mlp=MLPSpec(tuple([width] * depth)),
        interaction=InteractionType.CONCAT,
    )


@dataclass(frozen=True)
class ServerCounts:
    """Trainer / parameter-server allocation of one workflow run."""

    trainers: int
    sparse_ps: int
    dense_ps: int

    @property
    def parameter_servers(self) -> int:
        return self.sparse_ps + self.dense_ps


#: Usable DRAM of one CPU parameter server for table shards.
_PS_USABLE_BYTES = 230e9
#: Discrete trainer tiers; throughput requirements change rarely, so most
#: workflows reuse the standard tier (>40% share one count, Fig 9).
_TRAINER_TIERS = (5, 10, 15, 20, 30)
_TRAINER_TIER_WEIGHTS = (0.2, 0.45, 0.15, 0.12, 0.08)


def sample_server_counts(
    rng: np.random.Generator,
    model: ModelConfig,
    planner: PlannerConfig = PlannerConfig(),
) -> ServerCounts:
    """Allocate servers for one run the way the fleet does.

    Trainers come from a coarse throughput tier; sparse PS count is
    *derived* from the model's embedding footprint (memory-capacity
    driven), which is exactly why the PS histogram is wide while the
    trainer histogram is concentrated.
    """
    trainers = int(rng.choice(_TRAINER_TIERS, p=_TRAINER_TIER_WEIGHTS))
    footprint = model_embedding_footprint(model, planner)
    sparse_ps = max(1, int(np.ceil(footprint / _PS_USABLE_BYTES)))
    # Headroom factor: operators over-provision a little, sometimes a lot.
    sparse_ps = max(1, int(np.ceil(sparse_ps * rng.uniform(1.0, 1.8))))
    dense_ps = max(1, trainers // 5)
    return ServerCounts(trainers=trainers, sparse_ps=sparse_ps, dense_ps=dense_ps)
