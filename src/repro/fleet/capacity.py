"""Fleet-level capacity accounting and growth forecasting.

Two fleet facts anchor the paper's motivation: recommendation-training
compute "quadrupled over the last 18 months" and recommendation workflow
runs grew 7x over the same period (§I, §II-A).  This module turns the
sampled workload population into aggregate capacity demand (servers and
power by role) and forecasts it under a growth rate — the planning exercise
that motivated building Zion in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.specs import DUAL_SOCKET_CPU, PlatformSpec
from .workloads import (
    WORKLOAD_FAMILIES,
    WorkloadFamily,
    sample_ranking_model,
    sample_server_counts,
)

__all__ = ["CapacityDemand", "estimate_fleet_demand", "forecast_growth"]


@dataclass(frozen=True)
class CapacityDemand:
    """Aggregate concurrent server demand of the recommendation fleet."""

    trainer_servers: float
    sparse_ps_servers: float
    dense_ps_servers: float
    reader_servers: float
    power_watts: float

    @property
    def total_servers(self) -> float:
        return (
            self.trainer_servers
            + self.sparse_ps_servers
            + self.dense_ps_servers
            + self.reader_servers
        )

    def scaled(self, factor: float) -> "CapacityDemand":
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return CapacityDemand(
            trainer_servers=self.trainer_servers * factor,
            sparse_ps_servers=self.sparse_ps_servers * factor,
            dense_ps_servers=self.dense_ps_servers * factor,
            reader_servers=self.reader_servers * factor,
            power_watts=self.power_watts * factor,
        )


def estimate_fleet_demand(
    num_sampled_runs: int = 200,
    seed: int = 0,
    families: tuple[WorkloadFamily, ...] = WORKLOAD_FAMILIES,
    platform: PlatformSpec = DUAL_SOCKET_CPU,
    readers_per_run: float = 2.0,
) -> CapacityDemand:
    """Expected *concurrent* server demand of the recommendation families.

    Concurrency per family = runs/day * duration_hours / 24 (Little's law);
    per-run server counts are sampled from the workload model and averaged.
    """
    if num_sampled_runs < 1:
        raise ValueError("num_sampled_runs must be >= 1")
    rng = np.random.default_rng(seed)
    counts = [
        sample_server_counts(rng, sample_ranking_model(rng))
        for _ in range(num_sampled_runs)
    ]
    mean_trainers = float(np.mean([c.trainers for c in counts]))
    mean_sparse = float(np.mean([c.sparse_ps for c in counts]))
    mean_dense = float(np.mean([c.dense_ps for c in counts]))

    concurrent_runs = sum(
        f.runs_per_day_mean * f.duration_hours_mean / 24.0
        for f in families
        if f.model_kind == "recommendation"
    )
    trainers = concurrent_runs * mean_trainers
    sparse = concurrent_runs * mean_sparse
    dense = concurrent_runs * mean_dense
    readers = concurrent_runs * readers_per_run
    servers = trainers + sparse + dense + readers
    return CapacityDemand(
        trainer_servers=trainers,
        sparse_ps_servers=sparse,
        dense_ps_servers=dense,
        reader_servers=readers,
        power_watts=servers * platform.nameplate_watts,
    )


def forecast_growth(
    base: CapacityDemand,
    months: int,
    runs_growth_per_18mo: float = 7.0,
) -> list[tuple[int, CapacityDemand]]:
    """Project demand month by month under compound workflow growth.

    The paper observed 7x workflow growth over 18 months (§II-A); demand
    scales with it.  Returns ``[(month, demand), ...]`` including month 0.
    """
    if months < 0:
        raise ValueError("months must be >= 0")
    if runs_growth_per_18mo <= 0:
        raise ValueError("growth must be positive")
    monthly = runs_growth_per_18mo ** (1.0 / 18.0)
    return [(m, base.scaled(monthly**m)) for m in range(months + 1)]
