"""Statistics helpers for the characterization figures.

Histograms (Figures 5, 9), distribution summaries (mean/percentiles/tails),
power-law tail fitting for feature-length distributions (Figure 7's
"resembles a power-law" observation), and a normality-width measure for the
"wide Gaussian" utilization claim (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "histogram",
    "DistributionSummary",
    "summarize",
    "fit_power_law_alpha",
    "gini_coefficient",
    "cdf_points",
]


def histogram(
    samples: np.ndarray, bins: int = 10, range_: tuple[float, float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Counts and bin edges (thin wrapper with validation)."""
    x = np.asarray(samples, dtype=np.float64).reshape(-1)
    if len(x) == 0:
        raise ValueError("cannot histogram empty data")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    counts, edges = np.histogram(x, bins=bins, range=range_)
    return counts, edges


@dataclass(frozen=True)
class DistributionSummary:
    """Compact description of one utilization/metric distribution."""

    mean: float
    std: float
    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    minimum: float
    maximum: float
    count: int

    @property
    def iqr(self) -> float:
        return self.p75 - self.p25

    @property
    def tail_ratio(self) -> float:
        """p95/median — long-tail indicator (the PS distributions of Fig 5
        have a visibly longer tail than the trainer distributions)."""
        if self.median == 0:
            return float("inf")
        return self.p95 / self.median

    def row(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "p5": self.p5,
            "median": self.median,
            "p95": self.p95,
            "tail_ratio": self.tail_ratio,
        }


def summarize(samples: np.ndarray) -> DistributionSummary:
    x = np.asarray(samples, dtype=np.float64).reshape(-1)
    if len(x) == 0:
        raise ValueError("cannot summarize empty data")
    p5, p25, p50, p75, p95 = np.percentile(x, [5, 25, 50, 75, 95])
    return DistributionSummary(
        mean=float(x.mean()),
        std=float(x.std(ddof=1)) if len(x) > 1 else 0.0,
        p5=float(p5),
        p25=float(p25),
        median=float(p50),
        p75=float(p75),
        p95=float(p95),
        minimum=float(x.min()),
        maximum=float(x.max()),
        count=len(x),
    )


def fit_power_law_alpha(samples: np.ndarray, x_min: float = 1.0) -> float:
    """Maximum-likelihood (Hill) estimator of the power-law exponent alpha
    for the tail ``x >= x_min``: ``alpha = 1 + n / sum(ln(x / x_min))``."""
    x = np.asarray(samples, dtype=np.float64).reshape(-1)
    if x_min <= 0:
        raise ValueError(f"x_min must be positive, got {x_min}")
    tail = x[x >= x_min]
    if len(tail) < 2:
        raise ValueError("need at least 2 tail samples to fit alpha")
    logs = np.log(tail / x_min)
    total = logs.sum()
    if total <= 0:
        raise ValueError("tail samples are all at x_min; alpha undefined")
    return float(1.0 + len(tail) / total)


def gini_coefficient(samples: np.ndarray) -> float:
    """Inequality of access/size distributions in [0, 1); 0 == uniform.

    Used to quantify the "small number of tables accessed much more
    frequently than others" observation (§III-A.2).
    """
    x = np.sort(np.asarray(samples, dtype=np.float64).reshape(-1))
    if len(x) == 0:
        raise ValueError("cannot compute Gini of empty data")
    if np.any(x < 0):
        raise ValueError("Gini requires non-negative samples")
    total = x.sum()
    if total == 0:
        return 0.0
    n = len(x)
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * x).sum() / (n * total)) - (n + 1.0) / n)


def cdf_points(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative fractions)."""
    x = np.sort(np.asarray(samples, dtype=np.float64).reshape(-1))
    if len(x) == 0:
        raise ValueError("cannot compute CDF of empty data")
    fractions = np.arange(1, len(x) + 1) / len(x)
    return x, fractions
