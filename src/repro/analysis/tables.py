"""ASCII table / bar rendering for bench output.

The benchmark harness prints paper-style tables and bar charts to stdout;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

__all__ = ["render_table", "render_bars", "format_si"]


def format_si(value: float, digits: int = 3) -> str:
    """Human-scale formatting: 1234567 -> '1.23M'."""
    if value != value:  # NaN
        return "nan"
    magnitude = abs(value)
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if magnitude >= threshold:
            return f"{value / threshold:.{digits}g}{suffix}"
    return f"{value:.{digits}g}"


def render_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    """Fixed-width table with a header rule."""
    if not headers:
        raise ValueError("need at least one header")
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    labels: list[str], values: list[float], width: int = 40, title: str = ""
) -> str:
    """Horizontal ASCII bar chart, scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        raise ValueError("nothing to render")
    if width < 1:
        raise ValueError("width must be >= 1")
    peak = max(values)
    if peak <= 0:
        raise ValueError("need at least one positive value")
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| {format_si(value)}")
    return "\n".join(lines)
