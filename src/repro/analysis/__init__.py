"""Characterization analytics: KDE, distribution stats, table rendering."""

from .kde import GaussianKDE, scott_bandwidth
from .stats import (
    DistributionSummary,
    cdf_points,
    fit_power_law_alpha,
    gini_coefficient,
    histogram,
    summarize,
)
from .tables import format_si, render_bars, render_table

__all__ = [
    "GaussianKDE",
    "scott_bandwidth",
    "histogram",
    "DistributionSummary",
    "summarize",
    "fit_power_law_alpha",
    "gini_coefficient",
    "cdf_points",
    "render_table",
    "render_bars",
    "format_si",
]
