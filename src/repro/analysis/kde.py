"""Gaussian kernel density estimation.

Figure 7 overlays KDE curves on the feature-length histograms; this is a
self-contained Gaussian KDE with Scott's-rule bandwidth (numerically
validated against ``scipy.stats.gaussian_kde`` in the test suite).
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianKDE", "scott_bandwidth"]


def scott_bandwidth(samples: np.ndarray) -> float:
    """Scott's rule: ``sigma * n^(-1/5)`` for 1-D data."""
    x = np.asarray(samples, dtype=np.float64).reshape(-1)
    if len(x) < 2:
        raise ValueError("need at least 2 samples for a bandwidth estimate")
    sigma = x.std(ddof=1)
    if sigma == 0:
        raise ValueError("samples are constant; KDE bandwidth undefined")
    return float(sigma * len(x) ** (-1.0 / 5.0))


class GaussianKDE:
    """1-D Gaussian kernel density estimate."""

    def __init__(self, samples: np.ndarray, bandwidth: float | None = None) -> None:
        self.samples = np.asarray(samples, dtype=np.float64).reshape(-1)
        if len(self.samples) == 0:
            raise ValueError("need at least one sample")
        self.bandwidth = bandwidth if bandwidth is not None else scott_bandwidth(self.samples)
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    def evaluate(self, grid: np.ndarray) -> np.ndarray:
        """Density at each grid point; integrates to ~1 over the real line."""
        grid = np.asarray(grid, dtype=np.float64).reshape(-1)
        z = (grid[:, None] - self.samples[None, :]) / self.bandwidth
        kernel = np.exp(-0.5 * z**2) / np.sqrt(2 * np.pi)
        return kernel.mean(axis=1) / self.bandwidth

    def __call__(self, grid: np.ndarray) -> np.ndarray:
        return self.evaluate(grid)
