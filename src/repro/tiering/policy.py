"""Generic keyed cache with pluggable admission/eviction policies.

This is the one functional cache implementation in the repo.  The serving
hot-row caches (:class:`repro.serving.cache.HotRowCache`) and the tiered
embedding store's hot tier (:class:`repro.tiering.store.TieredEmbeddingTable`)
are both built on :class:`PolicyCache`, so eviction semantics, hit/miss
accounting, and the warm/raw hit-rate bracket are written (and
cross-validated against :mod:`repro.tiering.analytic`) exactly once.

Policies:

* ``"lru"`` — evict the least recently used key (an
  :class:`~collections.OrderedDict` used as a recency list).
* ``"lfu"`` — evict the least frequently used key (per-key counts plus a
  lazy min-heap of ``(count, seq, key)`` candidates; stale heap entries
  are skipped on pop, so worst-case cost stays O(log n) per access).
* ``"freq"`` — frequency-*admission*: eviction picks the cached key with
  the lowest external score (a caller-supplied ``scorer``, e.g. a decayed
  access-frequency EMA from :class:`repro.tiering.freq.FreqStats`), and a
  missing key is only admitted when it outscores that victim.  This is
  the policy MTrainS-style tiered stores use — the hot set converges to
  the most-popular items and then stops churning, unlike insert-on-miss
  LRU/LFU which pay a movement on every miss.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Callable

import numpy as np

__all__ = ["PolicyCache", "POLICIES"]

POLICIES = ("lru", "lfu", "freq")


class PolicyCache:
    """A capacity-bounded key -> payload cache with a measured hit rate.

    ``touch(key)`` records one access (hit bookkeeping only); ``insert``
    admits a missing key, possibly evicting — the two-step split lets
    callers price hits, misses and movements separately.  ``access`` is
    the fused convenience loop (touch + insert-on-miss).
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "lru",
        scorer: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if policy == "freq" and scorer is None:
            raise ValueError("policy 'freq' requires a scorer")
        self.capacity = capacity
        self.policy = policy
        self.scorer = scorer
        self.hits = 0
        self.misses = 0
        #: Misses on keys never seen before (cold-start fills).  A finite
        #: window cannot avoid these, but the steady-state analytics
        #: (:mod:`repro.tiering.analytic`) assume a warmed cache — so
        #: cross-validation compares against :attr:`warm_hit_rate`.
        self.compulsory_misses = 0
        #: Admissions that actually landed (each one is a tier movement).
        self.insertions = 0
        #: "freq"-policy misses whose key did not outscore the coldest
        #: cached key — the miss is served from the cold tier with no
        #: movement (the churn-avoidance that makes the policy cheap).
        self.rejections = 0
        self.evictions = 0
        self._seen: set[int] = set()
        self._store: OrderedDict[int, object] = OrderedDict()
        # LFU state: key -> access count, plus a lazy min-heap of
        # (count, seq, key) candidates.
        self._freq: dict[int, int] = {}
        self._heap: list[tuple[int, int, int]] = []
        self._seq = 0
        # "freq" victim memo: (victim, score), valid while neither the
        # store membership nor the external scores have changed — so a
        # run of rejected misses costs one scan, not one scan each.
        self._victim_memo: tuple[int, float] | None = None

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: int) -> bool:
        return key in self._store

    def keys(self) -> np.ndarray:
        """Currently cached keys (insertion/recency order), int64."""
        return np.fromiter(self._store.keys(), dtype=np.int64, count=len(self._store))

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def warm_hit_rate(self) -> float:
        """Hit rate with cold-start (first-touch) misses excluded.

        An *optimistic* estimator: in steady state rare keys would still
        miss on most accesses, but here their first touch is simply
        dropped.  Together with the pessimistic raw :attr:`hit_rate`
        (which charges every cold fill) the pair brackets the
        steady-state hit rate over a finite window:
        ``hit_rate <= steady_state <= warm_hit_rate``.
        """
        warm = self.accesses - self.compulsory_misses
        return self.hits / warm if warm else 0.0

    def invalidate(self) -> None:
        """Drop all entries (checkpoint refresh / replica cold start).

        Hit/miss counters survive — measured hit rates deliberately
        include the cold re-warm cost of invalidations.
        """
        self._store.clear()
        self._freq.clear()
        self._heap.clear()
        self._victim_memo = None

    def note_scores_changed(self) -> None:
        """Invalidate the cached "freq" victim after the external scorer's
        state moved (call once per stats update, not per access)."""
        self._victim_memo = None

    # -- internals ----------------------------------------------------------

    def _lfu_push(self, key: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._freq[key], self._seq, key))

    def _evict_one(self) -> int | None:
        """Evict one key per policy (lru/lfu); returns the evicted key."""
        if self.policy == "lru":
            key, _ = self._store.popitem(last=False)
            return key
        while self._heap:
            count, _, key = heapq.heappop(self._heap)
            if key in self._store and self._freq.get(key) == count:
                del self._store[key]
                del self._freq[key]
                return key
        # Heap exhausted by stale entries: rebuild from live keys.
        for key in self._store:  # pragma: no cover - defensive
            self._lfu_push(key)
        if self._heap:  # pragma: no cover - defensive
            return self._evict_one()
        return None  # pragma: no cover - defensive

    def _freq_victim(self) -> tuple[int, float]:
        """Lowest-scored cached key (ties broken by smallest key)."""
        if self._victim_memo is None:
            cached = self.keys()
            scores = np.asarray(self.scorer(cached), dtype=np.float64)
            idx = int(np.lexsort((cached, scores))[0])
            self._victim_memo = (int(cached[idx]), float(scores[idx]))
        return self._victim_memo

    # -- access primitives ---------------------------------------------------

    def touch(self, key: int) -> bool:
        """Record one access; returns True on hit."""
        hit = key in self._store
        if hit:
            self.hits += 1
            if self.policy == "lru":
                self._store.move_to_end(key)
            elif self.policy == "lfu":
                self._freq[key] += 1
                self._lfu_push(key)
            # "freq": recency/count state lives in the external scorer.
        else:
            self.misses += 1
            if key not in self._seen:
                self.compulsory_misses += 1
                self._seen.add(key)
        return hit

    def insert(
        self, key: int, payload: object = None, score: float | None = None
    ) -> tuple[bool, int | None]:
        """Admit a (missing) key; returns ``(inserted, evicted_key)``.

        LRU/LFU always admit (insert-on-miss); "freq" only admits when the
        key outscores the coldest cached key, otherwise the insert is
        rejected and nothing moves.  ``score`` optionally supplies the
        key's already-computed scorer value (must equal ``scorer([key])``)
        so batch callers skip the per-miss scorer round trip.
        """
        if self.capacity == 0:
            return False, None
        evicted: int | None = None
        if len(self._store) >= self.capacity:
            if self.policy == "freq":
                victim, victim_score = self._freq_victim()
                if score is None:
                    score = float(np.asarray(self.scorer(np.array([key])))[0])
                if score <= victim_score:
                    self.rejections += 1
                    return False, None
                del self._store[victim]
                evicted = victim
            else:
                evicted = self._evict_one()
            self.evictions += 1
        self._store[key] = payload
        self._victim_memo = None
        if self.policy == "lfu":
            self._freq[key] = self._freq.get(key, 0) + 1
            self._lfu_push(key)
        self.insertions += 1
        return True, evicted

    def get(self, key: int) -> object:
        """Payload of a cached key (KeyError when absent)."""
        return self._store[key]

    # -- fused loop ----------------------------------------------------------

    def access(self, keys: np.ndarray) -> int:
        """Bookkeeping-only pass over an access stream; returns hits.

        Misses insert a ``None`` payload (the pricing path): cache state
        and hit statistics evolve exactly as the functional path, but no
        data moves.
        """
        batch_hits = 0
        for key in keys.tolist():
            if self.touch(key):
                batch_hits += 1
            else:
                self.insert(key, None)
        return batch_hits
