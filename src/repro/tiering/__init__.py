"""Software-managed tiered embedding store (ROADMAP item 2).

DLRM embedding tables reach multiple TB (paper §III, Table II) and row
access is heavily Zipf-skewed, so a small DRAM hot tier backed by cheap
SCM/SSD capacity recovers most of the fast-tier performance — the
MTrainS argument.  This package provides:

* :mod:`~repro.tiering.analytic` — the repo's single home for analytic
  cache/tier hit-rate models (Che LRU approximation, top-k Zipf mass,
  and their pmf-general forms);
* :mod:`~repro.tiering.policy` — the one functional cache
  (:class:`PolicyCache`: lru / lfu / frequency-admission), shared with
  :mod:`repro.serving.cache`;
* :mod:`~repro.tiering.freq` — per-row access-frequency statistics
  (segmentation-invariant per-access EMA + sliding window);
* :mod:`~repro.tiering.costs` — tier access/migration pricing from
  :class:`repro.hardware.memory.MemoryTierSpec`;
* :mod:`~repro.tiering.store` — :class:`TieredEmbeddingTable`, the
  bit-identical drop-in for :class:`repro.core.embedding.EmbeddingTable`
  whose accesses are priced by tier placement.

``python -m repro tier {train,sweep}`` exercises the store end to end and
cross-validates measured overhead against the analytic cost model.
"""

from .analytic import (
    che_hit_rate_pmf,
    lru_hit_rate,
    policy_hit_rate,
    policy_hit_rate_pmf,
    topk_hit_rate_pmf,
    zipf_hit_rate,
)
from .costs import TierCostModel
from .freq import FreqStats
from .policy import POLICIES, PolicyCache
from .store import TieredEmbeddingTable, TieredStoreConfig, TierStats

__all__ = [
    "zipf_hit_rate",
    "lru_hit_rate",
    "topk_hit_rate_pmf",
    "che_hit_rate_pmf",
    "policy_hit_rate",
    "policy_hit_rate_pmf",
    "PolicyCache",
    "POLICIES",
    "FreqStats",
    "TierCostModel",
    "TieredStoreConfig",
    "TierStats",
    "TieredEmbeddingTable",
]
