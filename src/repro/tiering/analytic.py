"""Analytic cache/tier hit-rate models, written once for the whole repo.

Historically :mod:`repro.placement.cache` (capacity planning) and
:mod:`repro.serving.cache` (online serving) each carried their own copy of
the hit-rate math.  This module is now the single home; both old locations
re-export from here for compatibility.

Two families of predictors, each available in a *rank* form (Zipf
popularity over ``num_rows`` ranks) and a *pmf* form (arbitrary access
probabilities — e.g. chunk-granular popularity after rows are hashed into
chunks, the :mod:`repro.tiering.store` case):

* :func:`zipf_hit_rate` / :func:`topk_hit_rate_pmf` — hit rate of a cache
  pinning the most popular items (the steady state of LFU and of
  frequency-driven admission); generalized-harmonic top-k mass.
* :func:`lru_hit_rate` / :func:`che_hit_rate_pmf` — LRU under the
  independent-reference model via Che's characteristic-time approximation
  (strictly below the top-k mass on skewed traffic).

Both are cross-validated against the *functional* caches built on
:mod:`repro.tiering.policy` — by ``tests/test_serving_cache.py`` (serving
hot-row caches) and ``tests/test_tiering.py`` (chunked embedding tiers).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zipf_hit_rate",
    "lru_hit_rate",
    "topk_hit_rate_pmf",
    "che_hit_rate_pmf",
    "policy_hit_rate",
    "policy_hit_rate_pmf",
]

#: Below this rank count the generalized harmonic number is summed directly;
#: beyond it the Euler–Maclaurin tail keeps the cost O(1).
_EXACT_HARMONIC_LIMIT = 262_144


def _generalized_harmonic(n: int, s: float) -> float:
    """``H_n(s) = sum_{i=1..n} i^-s``, exact to ~1e-10 relative error.

    Small ``n`` is summed directly (the old single-term integral
    approximation drifted ~4-5% at n <~ 500, which broke the analytic vs.
    measured cache cross-validation).  Large ``n`` splits into an exact
    head plus the Euler–Maclaurin expansion of the tail::

        sum_{i=m..n} i^-s ~= int_m^n x^-s dx + (m^-s + n^-s)/2
                             + s/12 * (m^-(s+1) - n^-(s+1))
    """
    if n <= 0:
        return 0.0
    if n <= _EXACT_HARMONIC_LIMIT:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        return float(np.sum(ranks**-s))
    m = _EXACT_HARMONIC_LIMIT
    ranks = np.arange(1, m, dtype=np.float64)  # exact head: 1 .. m-1
    head = float(np.sum(ranks**-s))
    if abs(s - 1.0) < 1e-12:
        integral = float(np.log(n) - np.log(m))
    else:
        integral = (n ** (1.0 - s) - m ** (1.0 - s)) / (1.0 - s)
    tail = (
        integral
        + 0.5 * (m**-s + float(n) ** -s)
        + (s / 12.0) * (m ** -(s + 1.0) - float(n) ** -(s + 1.0))
    )
    return head + tail


def _validate_cache_args(num_rows: int, cached_rows: int, skew: float) -> None:
    if num_rows < 1:
        raise ValueError(f"num_rows must be >= 1, got {num_rows}")
    if cached_rows < 0:
        raise ValueError(f"cached_rows must be >= 0, got {cached_rows}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")


def zipf_hit_rate(num_rows: int, cached_rows: int, skew: float = 1.05) -> float:
    """Fraction of accesses hitting the ``cached_rows`` most popular rows.

    Zipf(s) mass of the top-k ranks, ``H_k(s) / H_n(s)`` with generalized
    harmonic numbers (exact; see :func:`_generalized_harmonic`).  This is
    the hit rate of a cache that pins the hottest rows — the limit LFU and
    frequency-admission policies converge to, and an upper bound for LRU
    (see :func:`lru_hit_rate`).
    """
    _validate_cache_args(num_rows, cached_rows, skew)
    k = min(cached_rows, num_rows)
    if k == 0:
        return 0.0
    if k == num_rows:
        return 1.0
    return min(
        1.0, _generalized_harmonic(k, skew) / _generalized_harmonic(num_rows, skew)
    )


def topk_hit_rate_pmf(p: np.ndarray, capacity: int) -> float:
    """Hit rate of a cache pinning the ``capacity`` most probable items of
    an arbitrary access pmf ``p`` (need not be Zipf — e.g. chunk-granular
    popularity).  The steady state of LFU / frequency-driven admission."""
    p = np.asarray(p, dtype=np.float64)
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    c = min(capacity, len(p))
    if c == 0:
        return 0.0
    if c == len(p):
        return 1.0
    top = np.partition(p, len(p) - c)[len(p) - c :]
    return min(1.0, float(top.sum() / p.sum()))


#: Rank count beyond which the Che fixed point uses log-spaced rank
#: quadrature instead of the dense pmf (bounds memory at ~tens of KB).
_CHE_DENSE_LIMIT = 2_097_152


def _che_popularities(num_rows: int, skew: float) -> tuple[np.ndarray, np.ndarray]:
    """Per-rank access probabilities ``p`` and multiplicities ``w`` such
    that ``sum(w) == num_rows`` and ``sum(w * p) == 1``."""
    if num_rows <= _CHE_DENSE_LIMIT:
        ranks = np.arange(1, num_rows + 1, dtype=np.float64)
        p = ranks**-skew
        return p / p.sum(), np.ones_like(p)
    # Log-spaced representative ranks; each bucket [lo, hi) is represented
    # by its geometric-mean rank with multiplicity (hi - lo).
    edges = np.unique(
        np.round(np.geomspace(1, num_rows + 1, num=4096)).astype(np.int64)
    )
    lo, hi = edges[:-1], edges[1:]
    w = (hi - lo).astype(np.float64)
    reps = np.sqrt(lo * hi.astype(np.float64))
    p = reps**-skew
    p /= float(np.sum(w * p))
    return p, w


def _che_fixed_point(p: np.ndarray, w: np.ndarray, capacity: float) -> float:
    """Solve ``sum_i w_i (1 - exp(-p_i T)) = C`` for the characteristic
    time ``T`` and return the hit rate ``sum_i w_i p_i (1 - exp(-p_i T))``."""

    def occupancy(t: float) -> float:
        return float(np.sum(w * -np.expm1(-p * t)))

    # Bracket then bisect the monotone fixed point (no scipy dependency in
    # this hot path; 60 iterations give ~1e-12 relative precision).
    lo, hi = 0.0, float(capacity)
    while occupancy(hi) < capacity:
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - defensive
            break
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if occupancy(mid) < capacity:
            lo = mid
        else:
            hi = mid
    t = 0.5 * (lo + hi)
    return min(1.0, float(np.sum(w * p * -np.expm1(-p * t))))


def che_hit_rate_pmf(p: np.ndarray, capacity: int) -> float:
    """Expected LRU hit rate under an arbitrary access pmf ``p`` via Che's
    characteristic-time approximation (independent-reference model)."""
    p = np.asarray(p, dtype=np.float64)
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    c = min(capacity, len(p))
    if c == 0:
        return 0.0
    if c == len(p):
        return 1.0
    total = float(p.sum())
    if total <= 0:
        raise ValueError("pmf must have positive mass")
    return _che_fixed_point(p / total, np.ones_like(p), float(c))


def lru_hit_rate(num_rows: int, cached_rows: int, skew: float = 1.05) -> float:
    """Expected *LRU* hit rate under the independent-reference model.

    Che's approximation: the characteristic time ``T`` solves
    ``sum_i (1 - exp(-p_i T)) = C`` and the hit rate is
    ``sum_i p_i (1 - exp(-p_i T))``.  Accurate to ~1% against the
    functional LRU cache in :mod:`repro.serving.cache` on discrete-Zipf
    traffic (pinned by ``tests/test_serving_cache.py``).
    """
    _validate_cache_args(num_rows, cached_rows, skew)
    c = min(cached_rows, num_rows)
    if c == 0:
        return 0.0
    if c == num_rows:
        return 1.0
    p, w = _che_popularities(num_rows, skew)
    return _che_fixed_point(p, w, float(c))


def policy_hit_rate(
    policy: str, num_rows: int, cached_rows: int, skew: float = 1.05
) -> float:
    """Analytic steady-state hit rate for a named eviction policy.

    ``"lfu"`` and ``"freq"`` converge to pinning the most popular items
    (top-k Zipf mass); ``"lru"`` keeps recently-used items and lands
    strictly lower (Che).
    """
    if policy in ("lfu", "freq"):
        return zipf_hit_rate(num_rows, cached_rows, skew)
    if policy == "lru":
        return lru_hit_rate(num_rows, cached_rows, skew)
    raise ValueError(f"unknown policy {policy!r}; expected lru/lfu/freq")


def policy_hit_rate_pmf(policy: str, p: np.ndarray, capacity: int) -> float:
    """pmf-form of :func:`policy_hit_rate` (arbitrary popularity vector)."""
    if policy in ("lfu", "freq"):
        return topk_hit_rate_pmf(p, capacity)
    if policy == "lru":
        return che_hit_rate_pmf(p, capacity)
    raise ValueError(f"unknown policy {policy!r}; expected lru/lfu/freq")
