"""Pricing model for the two-tier embedding store.

The store is *functional* — every lookup really reads the flat weight
array, so numerics are unchanged — but each access is priced as if the
row lived in its current tier, using :class:`repro.hardware.memory.
MemoryTierSpec` access characteristics.  This is the same
simulate-the-cost-not-the-data approach the perf models use elsewhere
in the repo, applied at row granularity.

Overhead convention: the *tier-miss overhead* of a run is the simulated
time in excess of an all-hot (everything in DRAM) run::

    overhead = misses * (cold_access - hot_access) + moves * chunk_move

:meth:`TierCostModel.predicted_overhead_s` evaluates the same expression
from an analytic hit rate (:mod:`repro.tiering.analytic`), which is what
the measured-vs-analytic gate in ``experiments/ext_tiering.py`` compares.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.memory import DRAM_TIER, SCM_TIER, MemoryTierSpec

__all__ = ["TierCostModel"]


@dataclass(frozen=True)
class TierCostModel:
    """Access and movement costs for a hot/cold tier pair."""

    hot: MemoryTierSpec = DRAM_TIER
    cold: MemoryTierSpec = SCM_TIER

    def hot_access_s(self, row_bytes: float) -> float:
        """Seconds to serve one row from the hot tier."""
        return self.hot.access_s(row_bytes)

    def cold_access_s(self, row_bytes: float) -> float:
        """Seconds to serve one row from the cold tier."""
        return self.cold.access_s(row_bytes)

    def miss_penalty_s(self, row_bytes: float) -> float:
        """Extra seconds a cold-tier access costs over a hot-tier one."""
        return self.cold_access_s(row_bytes) - self.hot_access_s(row_bytes)

    def chunk_move_s(self, chunk_bytes: float) -> float:
        """Seconds to migrate one chunk between tiers (read + write).

        Promotion reads the chunk from the cold tier and writes it to the
        hot tier; demotion is the mirror image and costs the same, so one
        number prices both directions.
        """
        return self.cold.access_s(chunk_bytes) + self.hot.access_s(chunk_bytes)

    def predicted_overhead_s(
        self,
        lookups: float,
        hit_rate: float,
        row_bytes: float,
        chunk_bytes: float,
        moves_per_miss: float,
    ) -> float:
        """Analytic tier-miss overhead for ``lookups`` accesses.

        ``moves_per_miss`` captures the policy's steady-state migration
        behaviour: insert-on-miss policies (lru/lfu) move a chunk on every
        miss, frequency-admission ("freq") converges to a stable hot set
        and stops moving (0).
        """
        if not 0.0 <= hit_rate <= 1.0:
            raise ValueError(f"hit_rate must be in [0, 1], got {hit_rate}")
        misses = lookups * (1.0 - hit_rate)
        return misses * (
            self.miss_penalty_s(row_bytes)
            + moves_per_miss * self.chunk_move_s(chunk_bytes)
        )
