"""Per-row access-frequency statistics gathered during training.

Tier admission (MTrainS-style) needs to know which rows are hot *right
now*.  :class:`FreqStats` tracks three signals over the row-access stream:

* cumulative access counts,
* an exponentially-decayed access frequency (EMA) — decayed **per access**
  rather than per batch, so the statistic is a pure function of the global
  access stream and therefore invariant to how the stream is segmented
  into batches (pinned by hypothesis tests in
  ``tests/test_tiering_freq.py``),
* a sliding window of the last ``window`` accesses (a circular buffer),
  giving exact recent-popularity counts.

The EMA uses *lazy decay*: each row stores its value as of its own last
access position; :meth:`scores` re-references values to the current stream
position on demand.  Updates are fully vectorized (stable sort + segmented
reduction), so recording a batch costs O(L log L) regardless of how many
distinct rows it touches.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FreqStats"]


class FreqStats:
    """Frequency statistics over a stream of item accesses in ``[0, n)``."""

    def __init__(self, num_items: int, decay: float = 0.999, window: int = 4096) -> None:
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {num_items}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.num_items = num_items
        self.decay = float(decay)
        self.window = int(window)
        #: Total accesses recorded so far (the global stream position).
        self.pos = 0
        #: Cumulative access counts per item.
        self.counts = np.zeros(num_items, dtype=np.int64)
        #: Exact access counts within the trailing ``window`` accesses.
        self.win_counts = np.zeros(num_items, dtype=np.int64)
        # Lazy-decay EMA state: value as of the item's last access, and
        # that access's (1-based) global position.  Unseen items keep
        # ema == 0, which re-references to 0 for any gap.
        self._ema = np.zeros(num_items, dtype=np.float64)
        self._last = np.zeros(num_items, dtype=np.int64)
        # Circular buffer of the last `window` accessed item ids (-1 =
        # slot never written).
        self._ring = np.full(self.window, -1, dtype=np.int64)
        self._ring_pos = 0

    def record(self, items: np.ndarray) -> None:
        """Fold one batch of accesses (in stream order) into the stats."""
        items = np.asarray(items, dtype=np.int64).ravel()
        n = len(items)
        if n == 0:
            return
        if items.min() < 0 or items.max() >= self.num_items:
            raise IndexError(
                f"items must be in [0, {self.num_items}), "
                f"got range [{items.min()}, {items.max()}]"
            )
        positions = self.pos + 1 + np.arange(n, dtype=np.int64)
        np.add.at(self.counts, items, 1)

        # EMA: group this batch's accesses by item (stable sort keeps
        # stream order within each group).  For item r with in-batch
        # positions q_1 < ... < q_k and previous state (f, q_old):
        #   f_new = f * d^(q_k - q_old) + sum_j d^(q_k - q_j)
        # Exponents are taken relative to q_k, so they never overflow;
        # long gaps underflow to 0.0, which is the correct limit.
        order = np.argsort(items, kind="stable")
        s_items = items[order]
        s_pos = positions[order]
        uniq, start, counts = np.unique(s_items, return_index=True, return_counts=True)
        last = s_pos[start + counts - 1]
        with np.errstate(under="ignore"):
            weights = self.decay ** (np.repeat(last, counts) - s_pos).astype(np.float64)
            contrib = np.add.reduceat(weights, start)
            gap = (last - self._last[uniq]).astype(np.float64)
            self._ema[uniq] = self._ema[uniq] * self.decay**gap + contrib
        self._last[uniq] = last

        # Sliding window: overwrite the oldest slots of the ring.  A batch
        # at least `window` long replaces the whole window, so only its
        # tail matters — both paths leave state identical to feeding the
        # stream one access at a time.
        w = self.window
        if n >= w:
            tail = items[n - w :]
            self.win_counts[:] = 0
            np.add.at(self.win_counts, tail, 1)
            self._ring[:] = tail
            self._ring_pos = 0
        else:
            idx = (self._ring_pos + np.arange(n)) % w
            old = self._ring[idx]
            valid = old >= 0
            if valid.any():
                np.add.at(self.win_counts, old[valid], -1)
            self._ring[idx] = items
            np.add.at(self.win_counts, items, 1)
            self._ring_pos = (self._ring_pos + n) % w
        self.pos += n

    def scores(self, items: np.ndarray | None = None) -> np.ndarray:
        """Decayed access frequency, re-referenced to the current position.

        Directly comparable across items (unlike the internal lazy state):
        ``scores()[i]`` is the EMA item ``i`` would hold if every value had
        been decayed through the full stream.  Used as the admission
        scorer of the "freq" :class:`~repro.tiering.policy.PolicyCache`.
        """
        if items is None:
            ema, last = self._ema, self._last
        else:
            items = np.asarray(items, dtype=np.int64)
            ema, last = self._ema[items], self._last[items]
        with np.errstate(under="ignore"):
            return ema * self.decay ** (self.pos - last).astype(np.float64)

    def topk(self, k: int) -> np.ndarray:
        """The ``k`` hottest items by decayed frequency.

        Deterministic: ties break toward the smaller item id.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        scores = self.scores()
        order = np.lexsort((np.arange(self.num_items), -scores))
        return order[: min(k, self.num_items)]
