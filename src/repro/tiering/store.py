"""The chunked, software-managed two-tier embedding store.

Multi-TB DLRM embedding tables exceed DRAM on any realistic host (paper
§III, Table II); ROADMAP item 2 asks for a software-managed tier in the
spirit of MTrainS: keep the frequently-accessed rows in a fast hot tier
(DRAM), spill the long Zipf tail to a cheap cold tier (SCM/SSD), and use
training-time access-frequency statistics to decide placement.

:class:`TieredEmbeddingTable` is a drop-in replacement for
:class:`~repro.core.embedding.EmbeddingTable` that is **bit-identical** to
the flat table at every precision: all rows live in the one flat weight
array, so forward/backward/optimizer numerics never change — only the
*simulated cost* of each access depends on tier placement.  Rows are
grouped into fixed-size chunks (the migration granule); a
:class:`~repro.tiering.policy.PolicyCache` over chunk ids decides which
chunks are hot, scored by a per-chunk decayed access frequency
(:class:`~repro.tiering.freq.FreqStats`); and a
:class:`~repro.tiering.costs.TierCostModel` prices every hit, miss and
chunk migration into :class:`TierStats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..core.config import PoolingType, TableSpec
from ..core.embedding import EmbeddingTable, RaggedIndices, TablePlan
from ..hardware.memory import DRAM_TIER, SCM_TIER, MemoryTierSpec
from .costs import TierCostModel
from .freq import FreqStats
from .policy import POLICIES, PolicyCache

__all__ = ["TieredStoreConfig", "TierStats", "TieredEmbeddingTable"]


@dataclass(frozen=True)
class TieredStoreConfig:
    """Sizing, policy and pricing of a two-tier embedding store.

    Hot-tier capacity is given either as a fraction of the table's rows
    (``hot_fraction``) or as a byte budget (``hot_bytes``, priced via the
    table's :meth:`~repro.core.embedding.EmbeddingTable.bytes_per_row` so
    quantized rows count at their true width).
    """

    hot_fraction: float | None = 0.05
    hot_bytes: float | None = None
    chunk_rows: int = 8
    policy: str = "freq"
    ema_decay: float = 0.999
    window: int = 4096
    hot_tier: MemoryTierSpec = DRAM_TIER
    cold_tier: MemoryTierSpec = SCM_TIER

    def __post_init__(self) -> None:
        if self.hot_bytes is None and self.hot_fraction is None:
            raise ValueError("one of hot_fraction / hot_bytes must be set")
        if self.hot_bytes is not None and self.hot_bytes < 0:
            raise ValueError(f"hot_bytes must be >= 0, got {self.hot_bytes}")
        if self.hot_bytes is None and not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )
        if self.chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {self.chunk_rows}")
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")

    def capacity_chunks(self, hash_size: int, bytes_per_row: float) -> int:
        """Whole chunks that fit in the hot tier for a given table."""
        if self.hot_bytes is not None:
            hot_rows = int(self.hot_bytes // bytes_per_row) if bytes_per_row else 0
        else:
            hot_rows = int(round(self.hot_fraction * hash_size))
        num_chunks = math.ceil(hash_size / self.chunk_rows)
        return min(num_chunks, hot_rows // self.chunk_rows)


@dataclass
class TierStats:
    """Simulated-cost accounting of one tiered table's access stream."""

    hot_hits: int = 0
    cold_misses: int = 0
    #: Chunk migrations into the hot tier (each priced as a read + write).
    promotions: int = 0
    #: Misses whose chunk failed frequency admission — served cold, no move.
    rejected: int = 0
    hot_time_s: float = 0.0
    cold_time_s: float = 0.0
    move_time_s: float = 0.0

    @property
    def accesses(self) -> int:
        return self.hot_hits + self.cold_misses

    @property
    def hit_rate(self) -> float:
        return self.hot_hits / self.accesses if self.accesses else 0.0

    @property
    def total_time_s(self) -> float:
        return self.hot_time_s + self.cold_time_s + self.move_time_s

    @property
    def overhead_s(self) -> float:
        """Simulated time in excess of an all-hot (pure DRAM) run."""
        if not self.accesses:
            return 0.0
        hot_access_s = self.hot_time_s / self.hot_hits if self.hot_hits else 0.0
        if self.hot_hits:
            all_hot = self.accesses * hot_access_s
            return self.total_time_s - all_hot
        # Degenerate all-miss window: charge the full cold+move time.
        return self.cold_time_s + self.move_time_s

    def snapshot(self) -> "TierStats":
        return TierStats(
            hot_hits=self.hot_hits,
            cold_misses=self.cold_misses,
            promotions=self.promotions,
            rejected=self.rejected,
            hot_time_s=self.hot_time_s,
            cold_time_s=self.cold_time_s,
            move_time_s=self.move_time_s,
        )

    def delta(self, since: "TierStats") -> "TierStats":
        """Accounting accrued after ``since`` (a prior :meth:`snapshot`)."""
        return TierStats(
            hot_hits=self.hot_hits - since.hot_hits,
            cold_misses=self.cold_misses - since.cold_misses,
            promotions=self.promotions - since.promotions,
            rejected=self.rejected - since.rejected,
            hot_time_s=self.hot_time_s - since.hot_time_s,
            cold_time_s=self.cold_time_s - since.cold_time_s,
            move_time_s=self.move_time_s - since.move_time_s,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "hot_hits": self.hot_hits,
            "cold_misses": self.cold_misses,
            "promotions": self.promotions,
            "rejected": self.rejected,
            "hit_rate": self.hit_rate,
            "hot_time_s": self.hot_time_s,
            "cold_time_s": self.cold_time_s,
            "move_time_s": self.move_time_s,
            "overhead_s": self.overhead_s,
        }


class TieredEmbeddingTable(EmbeddingTable):
    """A two-tier :class:`EmbeddingTable`: identical numerics, priced tiers.

    The weight array, rng consumption, forward/backward math and saved
    state are exactly the base class's — training with this table is
    bit-identical to the flat table at any ``hot_fraction`` (pinned by
    ``tests/test_tiering.py``).  On top, every prepared lookup stream is
    folded into per-row frequency stats and run through the chunk-granular
    hot-tier cache, charging simulated seconds per access and migration.
    """

    #: Duck-type marker so the Trainer can spot tiered tables without
    #: importing this module (avoids a core -> tiering import cycle).
    is_tiered = True

    def __init__(
        self,
        spec: TableSpec,
        rng: np.random.Generator,
        pooling: PoolingType = PoolingType.SUM,
        init_scale: float | None = None,
        dtype: np.dtype | type = np.float64,
        tiering: TieredStoreConfig | None = None,
    ) -> None:
        super().__init__(spec, rng, pooling=pooling, init_scale=init_scale, dtype=dtype)
        self.tiering = tiering if tiering is not None else TieredStoreConfig()
        cfg = self.tiering
        self.chunk_rows = cfg.chunk_rows
        self.num_chunks = math.ceil(spec.hash_size / cfg.chunk_rows)
        self.capacity_chunks = cfg.capacity_chunks(spec.hash_size, self.bytes_per_row())
        #: Per-row access-frequency stats (EMA + window), published to the
        #: Trainer's metrics registry.
        self.freq = FreqStats(spec.hash_size, decay=cfg.ema_decay, window=cfg.window)
        # Chunk-granular stats drive admission/eviction scoring; kept
        # separate so row stats stay exact for observability.
        self._chunk_freq = FreqStats(
            self.num_chunks, decay=cfg.ema_decay, window=cfg.window
        )
        self.hot = PolicyCache(
            self.capacity_chunks, cfg.policy, scorer=self._chunk_freq.scores
        )
        self.cost_model = TierCostModel(hot=cfg.hot_tier, cold=cfg.cold_tier)
        self.stats = TierStats()

    @property
    def hot_capacity_rows(self) -> int:
        return self.capacity_chunks * self.chunk_rows

    def chunk_of(self, rows: np.ndarray) -> np.ndarray:
        return np.asarray(rows, dtype=np.int64) // self.chunk_rows

    def record_accesses(self, rows: np.ndarray) -> None:
        """Fold one prepared lookup stream into stats, cache and pricing.

        This is the whole tiering mechanism: frequency bookkeeping, the
        chunk-id pass through the hot-tier cache (hits stay hot, misses
        are served cold and considered for promotion), and the simulated
        cost of each outcome.  ``forward_batched`` calls it on the
        training path; the tier sweep drives it directly.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        if len(rows) == 0:
            return
        self.freq.record(rows)
        chunks = self.chunk_of(rows)
        self._chunk_freq.record(chunks)
        row_b = self.bytes_per_row()
        chunk_b = row_b * self.chunk_rows
        hot_s = self.cost_model.hot_access_s(row_b)
        cold_s = self.cost_model.cold_access_s(row_b)
        move_s = self.cost_model.chunk_move_s(chunk_b)
        stats = self.stats
        hot = self.hot
        # Chunk scores are frozen for the rest of this batch (the stats
        # update above was the only one), so score every touched chunk in
        # one vectorized pass and let the cache memoize its victim.
        hot.note_scores_changed()
        chunk_scores = dict(
            zip(chunks.tolist(), self._chunk_freq.scores(chunks).tolist())
        )
        for chunk in chunks.tolist():
            if hot.touch(chunk):
                stats.hot_hits += 1
                stats.hot_time_s += hot_s
            else:
                stats.cold_misses += 1
                stats.cold_time_s += cold_s
                inserted, _evicted = hot.insert(chunk, score=chunk_scores[chunk])
                if inserted:
                    stats.promotions += 1
                    stats.move_time_s += move_s
                else:
                    stats.rejected += 1

    def plan_forward(
        self, features: list[RaggedIndices], *, training: bool = True
    ) -> TablePlan:
        # Account on the *prepared* (truncated, bounds-checked) stream so
        # priced lookups match what the kernel actually gathers.  Accounting
        # happens at *plan* time: inline forwards build their plan right
        # here (same stream order as before), while the prefetch pipeline
        # builds plans ahead on its prep thread — the captured per-batch
        # ``tier_delta`` lets the Trainer publish stats for the batch it is
        # actually stepping, not whatever the prep thread touched since.
        plan = super().plan_forward(features, training=training)
        if training:
            before = self.stats.snapshot()
            for p in plan.prepared:
                self.record_accesses(p.values)
            plan = replace(plan, tier_delta=self.stats.delta(before))
        return plan
