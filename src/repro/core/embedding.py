"""Embedding tables with the hashing trick, pooled multi-hot lookups and
sparse gradients.

This module implements the sparse half of the recommendation model
(paper §III-A.1/2): each sparse feature owns (or shares) an embedding table
of ``hash_size x dim`` rows; a training example activates ``n`` indices whose
rows are fetched and pooled (summed or averaged) into one d-dimensional
vector, optionally truncating ``n`` to bound outliers.

Gradients are kept *sparse*: a backward pass records only the touched rows,
because production tables have millions of rows (Figure 6 shows hash sizes
up to 20M) and a dense gradient would be both wrong in spirit and infeasible
in memory.

Hot paths (pooling, coalescing, truncation, bounds checks) are implemented
by the vectorized kernels in :mod:`repro.core.kernels`; features sharing a
physical table are gathered in **one** batched pass
(:meth:`EmbeddingTable.forward_batched`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import kernels
from .config import PoolingType, TableSpec

__all__ = [
    "RaggedIndices",
    "SparseGrad",
    "TablePlan",
    "EmbeddingTable",
    "EmbeddingBagCollection",
    "hash_raw_ids",
]

# Knuth's multiplicative constant; gives a cheap, deterministic, well-mixing
# hash for the hashing trick without pulling in an external dependency.
_HASH_MULTIPLIER = np.uint64(2654435761)
_HASH_SHIFT = np.uint64(16)


def hash_raw_ids(raw_ids: np.ndarray, hash_size: int) -> np.ndarray:
    """Map arbitrary non-negative integer ids into ``[0, hash_size)``.

    This is the hash function ``h_m: S_X -> {0..m-1}`` of paper §III-A.1.
    Deterministic, vectorized, and collision-prone by design for small
    ``hash_size`` (the accuracy/size trade-off the paper discusses).

    The output is range-safe by construction; wrap it in
    ``RaggedIndices(values, offsets, safe_bound=hash_size)`` to let the
    lookup skip its bounds re-scan.
    """
    if hash_size < 1:
        raise ValueError(f"hash_size must be >= 1, got {hash_size}")
    ids = np.asarray(raw_ids, dtype=np.uint64)
    mixed = (ids * _HASH_MULTIPLIER) ^ (ids >> _HASH_SHIFT)
    return (mixed % np.uint64(hash_size)).astype(np.int64)


@dataclass(frozen=True)
class RaggedIndices:
    """Multi-hot sparse input for one feature over a batch.

    ``values[offsets[i]:offsets[i+1]]`` are the activated indices of sample
    ``i`` — the standard jagged/CSR layout.

    ``safe_bound``, when set, asserts that every value is already known to
    lie in ``[0, safe_bound)`` — e.g. because the values came from
    :func:`hash_raw_ids` — which lets :class:`EmbeddingTable` skip its
    defensive bounds re-scan for tables with ``hash_size >= safe_bound``.
    """

    values: np.ndarray  # int64, shape (total_lookups,)
    offsets: np.ndarray  # int64, shape (batch+1,), offsets[0] == 0
    safe_bound: int | None = None  # values proven to be in [0, safe_bound)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.int64)
        offsets = np.asarray(self.offsets, dtype=np.int64)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "offsets", offsets)
        if offsets.ndim != 1 or len(offsets) < 1 or offsets[0] != 0:
            raise ValueError("offsets must be 1-D and start at 0")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if offsets[-1] != len(values):
            raise ValueError(
                f"offsets[-1]={offsets[-1]} must equal len(values)={len(values)}"
            )

    @classmethod
    def from_lists(
        cls,
        per_sample: list[np.ndarray | list[int]],
        safe_bound: int | None = None,
    ) -> "RaggedIndices":
        """Build from one index list per sample."""
        arrays = [np.asarray(a, dtype=np.int64) for a in per_sample]
        lengths = np.array([len(a) for a in arrays], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        values = np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int64)
        return cls(values=values, offsets=offsets, safe_bound=safe_bound)

    @property
    def batch_size(self) -> int:
        return len(self.offsets) - 1

    @property
    def total_lookups(self) -> int:
        return int(self.offsets[-1])

    def lengths(self) -> np.ndarray:
        """Number of activated indices per sample (the feature lengths of Fig 7)."""
        return np.diff(self.offsets)

    def sample(self, i: int) -> np.ndarray:
        return self.values[self.offsets[i] : self.offsets[i + 1]]

    def truncate(self, max_per_sample: int) -> "RaggedIndices":
        """Cap each sample at ``max_per_sample`` lookups (paper's truncation size).

        Vectorized (see :func:`repro.core.kernels.truncate_ragged`); the
        ``safe_bound`` certificate survives truncation since truncation only
        drops values.
        """
        values, offsets = kernels.truncate_ragged(
            self.values, self.offsets, max_per_sample
        )
        return RaggedIndices(values=values, offsets=offsets, safe_bound=self.safe_bound)


@dataclass
class SparseGrad:
    """Coalesced sparse gradient of one embedding table.

    ``rows`` are unique row indices; ``values[i]`` is the summed gradient for
    ``rows[i]``.  Sparse-aware optimizers (:mod:`repro.core.optim`) consume
    this directly, updating only the touched rows.
    """

    rows: np.ndarray  # int64, shape (k,)
    values: np.ndarray  # float, shape (k, dim)

    @classmethod
    def coalesce(cls, indices: np.ndarray, grads: np.ndarray) -> "SparseGrad":
        """Sum duplicate row contributions into one entry per unique row.

        Sort-based group reduction (:func:`repro.core.kernels.coalesce_rows`)
        — agrees with the historical ``np.unique`` + ``np.add.at``
        implementation to ~1 ULP and preserves the gradient dtype (float32
        tables produce float32 sparse grads).
        """
        rows, summed = kernels.coalesce_rows(indices, grads)
        return cls(rows=rows, values=summed)

    @property
    def nnz_rows(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class TablePlan:
    """Model-state-independent precompute of one fused table lookup.

    Everything :meth:`EmbeddingTable.forward_batched` and
    :meth:`EmbeddingTable.backward` need that does *not* depend on the
    weights: the prepared (truncated, bounds-checked) index streams, the
    fused multi-feature CSR layout, per-sample lengths, and the per-feature
    backward :class:`~repro.core.kernels.CoalescePlan`.  A plan built on a
    prefetch thread and applied later produces bit-identical results to the
    inline path, because the inline path *is* ``plan_forward`` + apply —
    one implementation, not two.
    """

    #: Prepared per-feature index streams (truncation + bounds applied).
    prepared: tuple[RaggedIndices, ...]
    #: Per-feature per-sample lookup counts (MEAN divisors / backward).
    lengths: tuple[np.ndarray, ...]
    #: Per-feature backward coalesce plans (stable argsort precomputed).
    grad_plans: tuple[kernels.CoalescePlan, ...]
    #: Fused CSR layout over all features (the single gather dispatch).
    all_values: np.ndarray
    all_offsets: np.ndarray
    #: Split points of the fused pooled output; ``None`` for one feature.
    split_bounds: np.ndarray | None
    #: Per-batch tier accounting captured at plan time (tiered tables only;
    #: see :class:`repro.tiering.store.TieredEmbeddingTable.plan_forward`).
    tier_delta: object | None = None

    def touched_rows(self) -> np.ndarray:
        """Unique rows this batch's backward will produce gradients for.

        Matches the ``rows`` of :meth:`EmbeddingTable.pop_grad` exactly:
        features with no lookups contribute nothing (their backward is
        skipped), a single contributing feature passes its already-unique
        rows through, and multiple contributors coalesce to the sorted
        union.  Weight-independent, so the hybrid trainer can exchange the
        next batch's row plan while the current batch is still computing.
        """
        nonempty = [g.rows for g in self.grad_plans if len(g.rows)]
        if not nonempty:
            return np.empty(0, dtype=np.int64)
        if len(nonempty) == 1:
            return nonempty[0]
        return np.unique(np.concatenate(nonempty))


class EmbeddingTable:
    """One embedding lookup table with pooled multi-hot reads.

    The forward pass is the EmbeddingBag operation: gather ``n`` rows per
    sample, pool them (sum or mean), and return a ``(batch, dim)`` matrix.
    ``dtype`` selects the compute/storage precision (float64 default;
    float32 halves bandwidth — the paper's production precision, §VI).
    """

    def __init__(
        self,
        spec: TableSpec,
        rng: np.random.Generator,
        pooling: PoolingType = PoolingType.SUM,
        init_scale: float | None = None,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        self.spec = spec
        self.pooling = pooling
        scale = init_scale if init_scale is not None else 1.0 / np.sqrt(spec.dim)
        weight = rng.uniform(-scale, scale, size=(spec.hash_size, spec.dim))
        self.weight = weight.astype(np.dtype(dtype), copy=False)
        # A stack of forward contexts: shared tables are looked up once per
        # feature, and the collection walks features in reverse on backward.
        self._saved: list[tuple[RaggedIndices, np.ndarray, kernels.CoalescePlan]] = []
        self.sparse_grads: list[SparseGrad] = []

    @property
    def dim(self) -> int:
        return self.spec.dim

    @property
    def hash_size(self) -> int:
        return self.spec.hash_size

    @property
    def dtype(self) -> np.dtype:
        return self.weight.dtype

    def bytes_per_row(self) -> float:
        """Stored bytes per row at this table's actual precision.

        Tier-capacity planning (:mod:`repro.tiering`) sizes hot tiers in
        bytes; pricing rows at their true width (f32 vs f64, and int8/int4
        for :class:`~repro.core.quantization.QuantizedEmbeddingTable`)
        instead of assuming fp32 is what makes quantization and tiering
        compose — a 4-bit table fits ~8x more rows in the same hot tier.
        """
        return float(self.weight.dtype.itemsize * self.spec.dim)

    def _prepare(self, indices: RaggedIndices) -> RaggedIndices:
        """Apply truncation and validate bounds (single pass; skipped when
        the indices carry a sufficient ``safe_bound`` certificate)."""
        if self.spec.truncation is not None:
            indices = indices.truncate(self.spec.truncation)
        if indices.safe_bound is None or indices.safe_bound > self.hash_size:
            kernels.check_bounds(
                indices.values,
                self.hash_size,
                what=f"indices for table {self.spec.name}",
            )
        return indices

    def forward(self, indices: RaggedIndices, *, training: bool = True) -> np.ndarray:
        """Pooled lookup; returns ``(batch, dim)``.

        Samples with zero activated indices produce a zero vector (a
        legitimate event for optional sparse features).
        """
        return self.forward_batched([indices], training=training)[0]

    def plan_forward(
        self, features: list[RaggedIndices], *, training: bool = True
    ) -> TablePlan:
        """Precompute everything about a lookup that the weights don't touch.

        Truncation, bounds validation, the fused multi-feature CSR layout,
        per-sample lengths and the backward coalesce plans are all pure
        functions of the *indices* — this is the work the prefetch pipeline
        (:mod:`repro.pipeline`) moves off the critical path.  ``training``
        is unused here but part of the signature so stat-keeping subclasses
        (the tiered store) can restrict accounting to training streams.
        """
        # _prepare validates bounds (or accepts the safe_bound certificate),
        # so the pooled product may skip its own check.
        prepared = [self._prepare(ind) for ind in features]
        lengths = tuple(p.lengths() for p in prepared)
        grad_plans = tuple(kernels.coalesce_plan(p.values) for p in prepared)
        if len(prepared) == 1:
            all_values = prepared[0].values
            all_offsets = prepared[0].offsets
            split_bounds = None
        else:
            all_values = np.concatenate([p.values for p in prepared])
            shifts = np.cumsum([0] + [p.total_lookups for p in prepared])
            all_offsets = np.concatenate(
                [[0]] + [p.offsets[1:] + s for p, s in zip(prepared, shifts)]
            )
            split_bounds = np.cumsum([p.batch_size for p in prepared])[:-1]
        return TablePlan(
            prepared=tuple(prepared),
            lengths=lengths,
            grad_plans=grad_plans,
            all_values=all_values,
            all_offsets=all_offsets,
            split_bounds=split_bounds,
        )

    def forward_batched(
        self,
        features: list[RaggedIndices],
        *,
        training: bool = True,
        plan: TablePlan | None = None,
    ) -> list[np.ndarray]:
        """Pooled lookups for several features sharing this table in one
        fused kernel dispatch.

        All features' ragged layouts are concatenated into a single CSR
        layout and pooled with one :func:`repro.core.kernels.gather_pool`
        product — the ``(total_lookups, dim)`` gathered-row temporary of
        the gather-then-pool formulation is never materialized, and shared
        tables pay one kernel dispatch per step regardless of how many
        features map to them.  Saved forward contexts are pushed in
        feature order, so :meth:`backward` (called in reverse feature
        order by the collection) pops them correctly.

        ``plan`` supplies the index-side precompute from an earlier
        :meth:`plan_forward` (the pipelined path); without one, the plan is
        built inline — the two paths share every instruction that touches
        data, so pipelined and unpipelined runs are bit-identical.

        ``training=False`` (the inference fast path) skips pushing forward
        contexts entirely: nothing is saved, nothing needs discarding, and
        the ``_saved`` stack cannot grow across inference-only forwards.
        """
        if plan is None:
            plan = self.plan_forward(features, training=training)
        pooled_cat = kernels.gather_pool(
            self.weight, plan.all_values, plan.all_offsets, check=False
        )
        if plan.split_bounds is None:
            splits = [pooled_cat]
        else:
            splits = np.split(pooled_cat, plan.split_bounds)
        outs: list[np.ndarray] = []
        for p, lengths, gplan, pooled in zip(
            plan.prepared, plan.lengths, plan.grad_plans, splits
        ):
            if self.pooling is PoolingType.MEAN:
                divisor = np.maximum(lengths, 1).astype(pooled.dtype)
                pooled = pooled / divisor[:, None]
            if training:
                self._saved.append((p, lengths, gplan))
            outs.append(pooled)
        return outs

    def backward(self, grad_out: np.ndarray) -> None:
        """Scatter ``(batch, dim)`` output gradients back into touched rows."""
        if not self._saved:
            raise RuntimeError("backward called before forward")
        indices, lengths, gplan = self._saved.pop()
        if grad_out.shape != (indices.batch_size, self.dim):
            raise ValueError(
                f"grad shape {grad_out.shape} != ({indices.batch_size}, {self.dim})"
            )
        if not len(indices.values):
            return
        grad_out = np.asarray(grad_out, dtype=self.weight.dtype)
        if self.pooling is PoolingType.MEAN:
            divisor = np.maximum(lengths, 1).astype(self.weight.dtype)[:, None]
            grad_out = grad_out / divisor
        summed = kernels.expand_apply(gplan, lengths, grad_out)
        self.sparse_grads.append(SparseGrad(rows=gplan.rows, values=summed))

    def adopt_weight(self, storage: np.ndarray) -> None:
        """Swap the table's weight for externally-owned storage (zero copy).

        The hybrid-parallel trainer (:mod:`repro.distributed.mp`) backs
        every table with a ``multiprocessing.shared_memory`` segment: all
        worker processes read rows straight out of the shared mapping, and
        the shard's owner writes sparse updates into it.  ``storage`` must
        match the existing weight's shape and dtype exactly — values are
        *not* copied, the caller is responsible for initializing them.
        """
        storage = np.asarray(storage)
        if storage.shape != self.weight.shape:
            raise ValueError(
                f"adopted storage shape {storage.shape} != {self.weight.shape}"
            )
        if storage.dtype != self.weight.dtype:
            raise ValueError(
                f"adopted storage dtype {storage.dtype} != {self.weight.dtype}"
            )
        self.weight = storage

    def zero_grad(self) -> None:
        self.sparse_grads.clear()

    def pop_grad(self) -> SparseGrad | None:
        """Coalesce and clear all accumulated sparse gradients."""
        if not self.sparse_grads:
            return None
        if len(self.sparse_grads) == 1:
            grad = self.sparse_grads[0]
        else:
            rows = np.concatenate([g.rows for g in self.sparse_grads])
            vals = np.concatenate([g.values for g in self.sparse_grads])
            grad = SparseGrad.coalesce(rows, vals)
        self.sparse_grads.clear()
        return grad


class EmbeddingBagCollection:
    """All embedding tables of a model, with optional table sharing.

    ``feature_to_table`` lets several semantically-similar sparse features
    share one physical table (paper §III-A.2); by default each feature owns
    its own table.  Features mapped to the same physical table are looked
    up through the batched fast path — one fused gather per table per step.

    ``table_factory`` swaps the table implementation — e.g.
    :class:`repro.tiering.store.TieredEmbeddingTable` for the two-tier
    store — and must accept the same ``(spec, rng, pooling=, dtype=)``
    signature and consume rng identically (any drop-in subclass of
    :class:`EmbeddingTable` does).
    """

    def __init__(
        self,
        specs: tuple[TableSpec, ...],
        rng: np.random.Generator,
        pooling: PoolingType = PoolingType.SUM,
        feature_to_table: dict[str, str] | None = None,
        dtype: np.dtype | type = np.float64,
        table_factory=None,
    ) -> None:
        if feature_to_table is None:
            feature_to_table = {s.name: s.name for s in specs}
        table_names = {s.name for s in specs}
        unknown = set(feature_to_table.values()) - table_names
        if unknown:
            raise ValueError(f"feature_to_table references unknown tables: {unknown}")
        if table_factory is None:
            table_factory = EmbeddingTable
        self.specs = specs
        self.feature_to_table = dict(feature_to_table)
        self.tables: dict[str, EmbeddingTable] = {
            s.name: table_factory(s, rng, pooling=pooling, dtype=dtype) for s in specs
        }
        self.feature_names = list(feature_to_table.keys())
        # Features grouped by physical table, preserving feature order within
        # each group — the unit of the fused multi-feature gather.
        self._table_groups: list[tuple[str, list[str]]] = []
        by_table: dict[str, list[str]] = {}
        for feature in self.feature_names:
            by_table.setdefault(self.feature_to_table[feature], []).append(feature)
        self._table_groups = list(by_table.items())

    def plan_batch(
        self, batch: dict[str, RaggedIndices], *, training: bool = True
    ) -> dict[str, TablePlan]:
        """Precompute every table's :class:`TablePlan` for one batch.

        Walks the table groups in the same order as :meth:`forward`, so a
        plan built ahead of time (on the prefetch thread) touches streams
        and stat-keeping subclass state in exactly the inline order.
        Returns table name -> plan.
        """
        missing = set(self.feature_names) - set(batch.keys())
        if missing:
            raise KeyError(f"batch is missing sparse features: {sorted(missing)}")
        return {
            table_name: self.tables[table_name].plan_forward(
                [batch[f] for f in features], training=training
            )
            for table_name, features in self._table_groups
        }

    def forward(
        self,
        batch: dict[str, RaggedIndices],
        *,
        training: bool = True,
        plans: dict[str, TablePlan] | None = None,
    ) -> dict[str, np.ndarray]:
        """Look up every feature; returns feature name -> (batch, dim).

        ``plans`` (from an earlier :meth:`plan_batch`) skips the per-table
        index precompute — the pipelined path.
        """
        missing = set(self.feature_names) - set(batch.keys())
        if missing:
            raise KeyError(f"batch is missing sparse features: {sorted(missing)}")
        out: dict[str, np.ndarray] = {}
        for table_name, features in self._table_groups:
            table = self.tables[table_name]
            pooled = table.forward_batched(
                [batch[f] for f in features],
                training=training,
                plan=None if plans is None else plans[table_name],
            )
            for feature, vec in zip(features, pooled):
                out[feature] = vec
        return out

    def backward(self, grads: dict[str, np.ndarray]) -> None:
        # Reverse order mirrors forward bookkeeping for shared tables.
        for feature in reversed(self.feature_names):
            table = self.tables[self.feature_to_table[feature]]
            table.backward(grads[feature])

    def zero_grad(self) -> None:
        for table in self.tables.values():
            table.zero_grad()

    @property
    def total_bytes(self) -> int:
        return sum(t.weight.nbytes for t in self.tables.values())
