"""Hyper-parameter search strategies (paper §VI-C).

FBLearner's parameter sweep supports grid, random and Bayesian-optimization
search; the paper uses the Bayesian strategy to re-tune learning rates when
porting models to GPU batch sizes.  We reproduce all three strategies over a
one-dimensional learning-rate space (the knob the paper re-tunes), with a
lightweight expected-improvement Bayesian loop built on a Gaussian-kernel
surrogate — no external optimizer dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.special import erf

__all__ = ["Trial", "SearchResult", "grid_search", "random_search", "bayesian_search"]

Objective = Callable[[float], float]


@dataclass(frozen=True)
class Trial:
    """One evaluated configuration."""

    learning_rate: float
    loss: float


@dataclass(frozen=True)
class SearchResult:
    """All trials plus the incumbent."""

    trials: tuple[Trial, ...]

    @property
    def best(self) -> Trial:
        return min(self.trials, key=lambda t: t.loss)

    @property
    def num_trials(self) -> int:
        return len(self.trials)


def _validate_bounds(low: float, high: float) -> None:
    if not (0 < low < high):
        raise ValueError(f"need 0 < low < high, got ({low}, {high})")


def _evaluate_grid(
    objective: Objective, lrs: list[float], runner, namespace: str
) -> tuple[Trial, ...]:
    """Evaluate a known-upfront LR grid, optionally through a SweepRunner.

    All candidate points are independent, so a runner can fan them out
    across processes; results come back in input order (the runner's
    determinism contract), keeping trial order — and therefore tie-breaks
    in :attr:`SearchResult.best` — identical to serial execution.
    """
    if runner is None:
        losses = [float(objective(lr)) for lr in lrs]
    else:
        losses = [
            float(v) for v in runner.map_values(objective, lrs, namespace=namespace)
        ]
    return tuple(Trial(lr, loss) for lr, loss in zip(lrs, losses))


def grid_search(
    objective: Objective,
    low: float,
    high: float,
    num: int = 8,
    runner=None,
) -> SearchResult:
    """Log-spaced grid over ``[low, high]`` (learning rates live on a log scale).

    Pass a :class:`~repro.runtime.SweepRunner` to evaluate the grid points
    in parallel (the objective must be picklable to actually fan out;
    closures fall back to serial execution inside the runner).
    """
    _validate_bounds(low, high)
    if num < 2:
        raise ValueError(f"num must be >= 2, got {num}")
    lrs = [float(lr) for lr in np.logspace(np.log10(low), np.log10(high), num)]
    return SearchResult(_evaluate_grid(objective, lrs, runner, "tuning.grid"))


def random_search(
    objective: Objective,
    low: float,
    high: float,
    num: int = 8,
    rng: np.random.Generator | int | None = None,
    runner=None,
) -> SearchResult:
    """Log-uniform random sampling over ``[low, high]``.

    The candidate set is drawn upfront, so like :func:`grid_search` it can
    be fanned out over a :class:`~repro.runtime.SweepRunner`.
    """
    _validate_bounds(low, high)
    if num < 1:
        raise ValueError(f"num must be >= 1, got {num}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    lrs = [float(lr) for lr in 10 ** rng.uniform(np.log10(low), np.log10(high), size=num)]
    return SearchResult(_evaluate_grid(objective, lrs, runner, "tuning.random"))


def _expected_improvement(
    candidates: np.ndarray,
    observed_x: np.ndarray,
    observed_y: np.ndarray,
    length_scale: float,
) -> np.ndarray:
    """EI under a Nadaraya-Watson surrogate with distance-based uncertainty.

    A full GP is unnecessary for a 1-D learning-rate sweep; this keeps the
    explore/exploit behaviour (prefer low predicted loss, prefer regions far
    from all observations) that Bayesian optimization provides.
    """
    dists = np.abs(candidates[:, None] - observed_x[None, :])
    weights = np.exp(-0.5 * (dists / length_scale) ** 2)
    norm = weights.sum(axis=1)
    mean = np.where(norm > 1e-12, (weights * observed_y).sum(axis=1) / np.maximum(norm, 1e-12), observed_y.mean())
    # Uncertainty grows with distance to the nearest observation.
    sigma = observed_y.std() * (1.0 - np.exp(-dists.min(axis=1) / length_scale)) + 1e-9
    best = observed_y.min()
    z = (best - mean) / sigma
    # Gaussian EI: sigma * (z * Phi(z) + phi(z))
    phi = np.exp(-0.5 * z**2) / np.sqrt(2 * np.pi)
    big_phi = 0.5 * (1.0 + erf(z / np.sqrt(2)))
    return sigma * (z * big_phi + phi)


def bayesian_search(
    objective: Objective,
    low: float,
    high: float,
    num: int = 8,
    num_init: int = 3,
    rng: np.random.Generator | int | None = None,
) -> SearchResult:
    """Sequential model-based search: random warm-up then EI maximization.

    Operates in log10(lr) space.  This mirrors the AutoML flow the paper
    uses to re-tune learning rate after changing batch size (§VI-C).
    """
    _validate_bounds(low, high)
    if num < num_init or num_init < 1:
        raise ValueError(f"need num >= num_init >= 1, got num={num}, num_init={num_init}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    lo, hi = np.log10(low), np.log10(high)
    xs: list[float] = list(rng.uniform(lo, hi, size=num_init))
    ys: list[float] = [float(objective(float(10**x))) for x in xs]
    length_scale = (hi - lo) / 4.0
    while len(xs) < num:
        candidates = rng.uniform(lo, hi, size=256)
        ei = _expected_improvement(
            candidates, np.array(xs), np.array(ys), length_scale
        )
        x_next = float(candidates[int(np.argmax(ei))])
        xs.append(x_next)
        ys.append(float(objective(float(10**x_next))))
    trials = tuple(Trial(float(10**x), y) for x, y in zip(xs, ys))
    return SearchResult(trials)
