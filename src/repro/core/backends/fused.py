"""The ``"fused"`` backend: allocation-free kernels through the arena.

Every op routes to :mod:`repro.core.dense_kernels` /
:mod:`repro.core.kernels`, acquiring its scratch and output buffers from
the caller's :class:`~repro.core.dense_kernels.Workspace` under the same
``(key, slot)`` scheme the layers historically used — so a steady-state
train step performs zero fresh large dense allocations.

Bit-identical to the ``"numpy"`` reference in both float64 and float32;
see the numerical contract in :mod:`repro.core.dense_kernels` for the
argument, and ``tests/conformance/`` for the enforcement.
"""

from __future__ import annotations

import numpy as np

from .. import dense_kernels as dk
from ..kernels import expand_coalesce, gather_pool
from .base import Backend

__all__ = ["FusedBackend"]


class FusedBackend(Backend):
    """Fused, workspace-backed kernels (bit-identical to the reference)."""

    name = "fused"
    bit_identical = True
    uses_workspace = True

    # -- linear --------------------------------------------------------------

    def linear_forward(self, x, weight, bias, ws, key):
        out = ws.get((key, "out"), (x.shape[0], weight.shape[0]), x.dtype)
        return dk.linear_forward(x, weight, bias, out)

    def linear_backward(self, grad_out, x, weight, weight_grad, bias_grad, ws, key):
        dtype = weight.dtype
        grad_in = ws.get((key, "gin"), (grad_out.shape[0], weight.shape[1]), dtype)
        wg = ws.get((key, "wg"), weight.shape, dtype)
        bg = ws.get((key, "bg"), bias_grad.shape, dtype)
        return dk.linear_backward(
            grad_out, x, weight, weight_grad, bias_grad, grad_in, wg, bg
        )

    # -- relu ----------------------------------------------------------------

    def relu_forward(self, x, ws, key, *, training=True):
        if ws.owns(x):
            out = x  # in-place: the pre-activation is dead after this
        else:
            out = ws.get((key, "y"), x.shape, x.dtype)
        dk.relu_forward(x, out)
        # activity is recovered from the *output* sign in the backward
        return out, (out if training else None)

    def relu_backward(self, grad_out, ctx, ws, key):
        y = ctx
        mask_buf = ws.get((key, "m"), y.shape, bool)
        if ws.owns(grad_out) and grad_out.dtype == y.dtype:
            out = grad_out  # in-place on the incoming gradient buffer
        else:
            out = ws.get((key, "g"), grad_out.shape, grad_out.dtype)
        return dk.relu_backward(grad_out, y, out, mask_buf)

    # -- bce loss ------------------------------------------------------------

    def bce_forward(self, logits, labels, ws):
        shape = logits.shape
        sig = ws.get(("bce", "sig"), shape, np.float64)
        loss = dk.bce_forward(
            logits,
            labels,
            ws.get(("bce", "e"), shape, np.float64),
            ws.get(("bce", "per"), shape, np.float64),
            ws.get(("bce", "tmp"), shape, np.float64),
            sig,
            ws.get(("bce", "denom"), shape, np.float64),
            ws.get(("bce", "pos"), shape, bool),
        )
        return loss, sig

    def bce_backward(self, logits, labels, ctx, ws):
        return dk.bce_backward(
            ctx, labels, ws.get(("bce", "grad"), logits.shape, np.float64)
        )

    # -- feature interaction -------------------------------------------------

    def dot_forward(self, dense, embs, tril, flat_tril, ws, key, *, training=True):
        batch, dim = dense.shape
        n_vec = len(embs) + 1
        num_pairs = len(flat_tril)
        dt = dense.dtype
        stack = ws.get((key, "stack"), (batch, n_vec, dim), dt)
        stack[:, 0, :] = dense
        for i, emb in enumerate(embs):
            stack[:, i + 1, :] = emb
        out = dk.dot_forward(
            stack,
            flat_tril,
            dense,
            ws.get((key, "gram"), (batch, n_vec, n_vec), dt),
            ws.get((key, "pairs"), (batch, num_pairs), dt),
            ws.get((key, "out"), (batch, dim + num_pairs), dt),
        )
        return out, stack

    def dot_backward(self, stack, grad_out, dim, tril, pair_map, ws, key):
        batch, n_vec, _ = stack.shape
        num_sparse = n_vec - 1
        num_pairs = grad_out.shape[1] - dim
        dt = stack.dtype
        grad_dense_direct = grad_out[:, :dim]
        grad_pairs = grad_out[:, dim:]
        # The forward's gram buffer is dead by now — reuse it for the
        # symmetrized pair gradients.
        grad_stack = dk.dot_backward(
            stack,
            pair_map,
            grad_pairs,
            ws.get((key, "pairs_ext"), (batch, num_pairs + 1), dt),
            ws.get((key, "gram"), (batch, n_vec, n_vec), dt),
            ws.get((key, "gstack"), (batch, n_vec, dim), dt),
        )
        grad_dense = ws.get((key, "gdense"), (batch, dim), dt)
        np.add(grad_stack[:, 0, :], grad_dense_direct, out=grad_dense)
        grad_embs = [grad_stack[:, i + 1, :] for i in range(num_sparse)]
        return grad_dense, grad_embs

    def concat_forward(self, dense, embs, dim, ws, key):
        batch, w = dense.shape
        out = ws.get((key, "out"), (batch, w + len(embs) * dim), dense.dtype)
        out[:, :w] = dense
        for i, emb in enumerate(embs):
            out[:, w + i * dim : w + (i + 1) * dim] = emb
        return out

    # -- segment pooling -----------------------------------------------------

    def segment_pool(self, weight, values, offsets):
        return gather_pool(weight, values, offsets)

    def segment_pool_backward(self, values, lengths, grad_out):
        return expand_coalesce(values, lengths, grad_out)

    # -- optimizer steps -----------------------------------------------------

    def adagrad_dense_step(self, value, grad, state, lr, eps, ws):
        dk.adagrad_dense_step(
            value, grad, state, lr, eps,
            ws.get("opt.t", value.shape, value.dtype),
            ws.get("opt.u", value.shape, value.dtype),
        )

    def adagrad_sparse_step(self, weight, state, rows, values, lr, eps, ws):
        trailing = values.shape[1:]
        dk.adagrad_sparse_step(
            weight, state, rows, values, lr, eps,
            ws.get_rows("opt.rows.t", len(rows), trailing, values.dtype),
            ws.get_rows("opt.rows.u", len(rows), trailing, values.dtype),
        )

    def sgd_dense_step(self, value, grad, lr, ws, *, weight_decay=0.0,
                       momentum=0.0, velocity=None):
        dk.sgd_dense_step(
            value, grad, lr,
            ws.get("opt.t", value.shape, value.dtype),
            weight_decay=weight_decay, momentum=momentum, velocity=velocity,
        )

    def sgd_sparse_step(self, weight, rows, values, lr, ws):
        u = ws.get_rows("opt.rows.u", len(rows), values.shape[1:], values.dtype)
        np.multiply(values, lr, out=u)
        weight[rows] -= u
