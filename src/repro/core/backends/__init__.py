"""Pluggable compute backends for the dense training path.

See :mod:`repro.core.backends.base` for the protocol and the registry;
``tests/conformance/`` validates every registered backend against the
``"numpy"`` reference, and ``python -m repro.bench`` benchmarks them.
"""

from .base import (
    DEFAULT_BACKEND,
    Backend,
    available_backends,
    get_backend,
    known_backends,
    reference_backend,
    register_backend,
    resolve_backend,
)
from .fused import FusedBackend
from .numpy_ref import NumpyBackend
from .threaded import ThreadedBackend

__all__ = [
    "Backend",
    "NumpyBackend",
    "FusedBackend",
    "ThreadedBackend",
    "register_backend",
    "get_backend",
    "known_backends",
    "available_backends",
    "reference_backend",
    "resolve_backend",
    "DEFAULT_BACKEND",
]

# The registration order is the conformance/benchmark iteration order:
# reference first, then the claims-bit-identity fused path, then the
# tolerance-bounded threaded path.
register_backend(NumpyBackend())
register_backend(FusedBackend())
register_backend(ThreadedBackend())
