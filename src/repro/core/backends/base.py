"""The compute-backend seam: one protocol for the dense-path hot ops.

The paper's core method is running the *same* DLRM workload across
hardware/software configurations and comparing training efficiency
(§II, §VI).  Our functional model mirrors that by routing every hot
dense-path operation — GEMM/linear forward+backward, ReLU, the fused
sigmoid+BCE loss, the dot-product feature interaction, segment pooling
and the optimizer update steps — through a small :class:`Backend`
protocol, selected per :class:`repro.core.config.ModelConfig` via its
``backend`` field.

Three backends register here:

* ``"numpy"`` — the naive reference implementations (the historical
  layer code, one temporary per operation).  Every other backend is
  validated *against* this one by the conformance suite
  (``tests/conformance/``).
* ``"fused"`` — the allocation-free kernels of
  :mod:`repro.core.dense_kernels` / :mod:`repro.core.kernels` running
  through a :class:`~repro.core.dense_kernels.Workspace` arena.
  Bit-identical to ``"numpy"`` in both float64 and float32.
* ``"threaded"`` — the fused kernels with the large GEMMs
  row-partitioned across a thread pool (numpy releases the GIL inside
  ``matmul``).  Tolerance-bounded rather than bit-identical: BLAS may
  select different micro-kernels per block shape.  Falls back to
  ``"fused"`` when fewer than two cores are available.

A new backend is validated by registration alone: the conformance suite
parametrizes over :func:`known_backends` and asserts every op against
the ``"numpy"`` reference — exactly (``np.array_equal``) when the
backend claims :attr:`Backend.bit_identical`, within
:meth:`Backend.tolerance` otherwise.

Pickling contract (``SweepRunner`` process pools): registered backends
reduce to ``get_backend(name)``, so a model shipped to a worker process
re-resolves the *worker's* registered instance — thread pools and other
unpicklable state never cross the process boundary.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Backend",
    "register_backend",
    "get_backend",
    "known_backends",
    "available_backends",
    "resolve_backend",
    "reference_backend",
    "DEFAULT_BACKEND",
]

#: The backend selected when a config does not say otherwise.
DEFAULT_BACKEND = "fused"

_REGISTRY: dict[str, "Backend"] = {}


class Backend:
    """Protocol for the dense-path hot ops.

    Subclasses set the class attributes and implement every op.  Ops
    that take ``ws``/``key`` may use the workspace arena for buffer
    reuse (``uses_workspace=True`` backends are only dispatched with an
    arena attached); reference-style backends ignore both.

    ``linear_backward`` / the optimizer steps mutate their gradient /
    parameter arguments in place, matching the layer contract.
    """

    #: Registry name (``ModelConfig.backend`` value).
    name: str = ""
    #: True if every op is bit-identical (``np.array_equal``) to the
    #: ``"numpy"`` reference in both float64 and float32 — the claim the
    #: conformance suite enforces.
    bit_identical: bool = False
    #: True if the backend's ops require a :class:`Workspace` arena.
    uses_workspace: bool = False
    #: Name of the backend :func:`resolve_backend` falls back to when
    #: :meth:`available` is False (``None`` = no fallback).
    fallback: str | None = None

    # -- capability ----------------------------------------------------------

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run on the current machine."""
        return True

    def tolerance(self, dtype) -> tuple[float, float]:
        """``(rtol, atol)`` bound vs the reference for non-bit-identical
        backends; bit-identical backends return ``(0.0, 0.0)``."""
        return (0.0, 0.0)

    # -- linear --------------------------------------------------------------

    def linear_forward(self, x, weight, bias, ws, key):
        """``y = x @ W.T + b`` — returns ``(batch, out_features)``."""
        raise NotImplementedError

    def linear_backward(self, grad_out, x, weight, weight_grad, bias_grad, ws, key):
        """Accumulate ``dW``/``db`` into ``weight_grad``/``bias_grad`` in
        place and return ``dx``."""
        raise NotImplementedError

    # -- relu ----------------------------------------------------------------

    def relu_forward(self, x, ws, key, *, training=True):
        """Returns ``(y, ctx)``; ``ctx`` is backend-private state the
        matching :meth:`relu_backward` consumes (``None`` if not training)."""
        raise NotImplementedError

    def relu_backward(self, grad_out, ctx, ws, key):
        raise NotImplementedError

    # -- bce loss ------------------------------------------------------------

    def bce_forward(self, logits, labels, ws):
        """Returns ``(loss, ctx)`` where ``loss`` is the float mean BCE."""
        raise NotImplementedError

    def bce_backward(self, logits, labels, ctx, ws):
        """Returns the flat logit gradient ``(sigmoid(x) - y) / batch``."""
        raise NotImplementedError

    # -- feature interaction -------------------------------------------------

    def dot_forward(self, dense, embs, tril, flat_tril, ws, key, *, training=True):
        """Pairwise-dot interaction; returns ``(out, stack)`` where
        ``stack`` is the ``(batch, n+1, d)`` feature stack the backward
        consumes."""
        raise NotImplementedError

    def dot_backward(self, stack, grad_out, dim, tril, pair_map, ws, key):
        """Returns ``(grad_dense, [grad_emb_i ...])``."""
        raise NotImplementedError

    def concat_forward(self, dense, embs, dim, ws, key):
        """Concatenate ``[dense, emb_1, ..., emb_n]`` along features."""
        raise NotImplementedError

    # -- segment pooling (embedding bags) ------------------------------------

    def segment_pool(self, weight, values, offsets):
        """Pooled sum lookup: ``segment_sum(weight[values], offsets)``."""
        raise NotImplementedError

    def segment_pool_backward(self, values, lengths, grad_out):
        """Coalesced row gradients of a pooled lookup; returns
        ``(unique_rows, summed)``."""
        raise NotImplementedError

    # -- optimizer steps -----------------------------------------------------

    def adagrad_dense_step(self, value, grad, state, lr, eps, ws):
        raise NotImplementedError

    def adagrad_sparse_step(self, weight, state, rows, values, lr, eps, ws):
        raise NotImplementedError

    def sgd_dense_step(self, value, grad, lr, ws, *, weight_decay=0.0,
                       momentum=0.0, velocity=None):
        raise NotImplementedError

    def sgd_sparse_step(self, weight, rows, values, lr, ws):
        raise NotImplementedError

    # -- pickling ------------------------------------------------------------

    def __reduce__(self):
        # Registered instances reduce to a name lookup so process-pool
        # workers re-resolve their own instance (satellite fix: sweeps
        # round-trip the selected backend; thread pools never pickle).
        if _REGISTRY.get(self.name) is self:
            return (get_backend, (self.name,))
        return super().__reduce__()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def register_backend(backend: Backend, *, overwrite: bool = False) -> Backend:
    """Register ``backend`` under its :attr:`~Backend.name`.

    Registration is all a new backend needs to be picked up by
    ``ModelConfig(backend=...)``, the conformance suite and the unified
    benchmark harness.
    """
    if not backend.name:
        raise ValueError("backend must set a non-empty name")
    if backend.name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def known_backends() -> tuple[str, ...]:
    """Names of all registered backends, in registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> Backend:
    """The registered backend instance for ``name`` (no fallback)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> tuple[Backend, ...]:
    """Registered backends whose :meth:`~Backend.available` is True."""
    return tuple(b for b in _REGISTRY.values() if b.available())


def reference_backend() -> Backend:
    """The ``"numpy"`` reference every backend is validated against."""
    return get_backend("numpy")


def resolve_backend(spec: "str | Backend | None") -> Backend:
    """Resolve a config value to a usable backend instance.

    ``None`` means :data:`DEFAULT_BACKEND`; instances pass through;
    names resolve via the registry, walking each backend's
    :attr:`~Backend.fallback` chain while :meth:`~Backend.available`
    is False (e.g. ``"threaded"`` → ``"fused"`` on a single-core host).
    """
    if isinstance(spec, Backend):
        return spec
    backend = get_backend(spec if spec is not None else DEFAULT_BACKEND)
    seen: set[str] = set()
    while not backend.available():
        if backend.fallback is None or backend.name in seen:
            raise RuntimeError(
                f"backend {backend.name!r} is unavailable and has no fallback"
            )
        seen.add(backend.name)
        backend = get_backend(backend.fallback)
    return backend
