"""The ``"threaded"`` backend: row-partitioned GEMMs on a thread pool.

Kalamkar et al. (arXiv:2005.04680) show the MLP GEMMs dominate DLRM
training compute on CPUs and respond directly to intra-op threading.
Numpy's ``matmul`` releases the GIL, so partitioning the *rows* of the
batch (forward / ``dx``) or of the output features (``dW``) across a
``ThreadPoolExecutor`` overlaps the BLAS calls without any re-association
of the K-dimension reduction — each output element is still one
contiguous dot product.

Everything except the linear fwd/bwd GEMMs inherits the fused kernels.

Numerical contract: *tolerance-bounded*, not bit-identical — BLAS
implementations may select different micro-kernels (gemv vs gemm,
different vector widths) for different block shapes, so per-element
results can differ by rounding even though the reduction order of each
dot product is unchanged.  In practice results are usually exact; the
conformance suite asserts the :meth:`tolerance` bound.

Availability: requires >= 2 cores; :func:`~repro.core.backends.base.
resolve_backend` falls back to ``"fused"`` otherwise.  Small problems
(fewer than ``2 * min_rows`` rows) skip the pool entirely.

Fork/pickle safety: the pool is created lazily, per process (a pool
inherited across ``fork`` has dead worker threads, so it is keyed by
pid), and is dropped from pickles — a model shipped through a
``SweepRunner`` process pool re-resolves the worker's own registered
instance (see :meth:`Backend.__reduce__`).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .fused import FusedBackend

__all__ = ["ThreadedBackend"]


class ThreadedBackend(FusedBackend):
    """Fused kernels with thread-parallel linear-layer GEMMs."""

    name = "threaded"
    bit_identical = False
    fallback = "fused"

    def __init__(self, workers: int | None = None, min_rows: int = 64) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if min_rows < 1:
            raise ValueError(f"min_rows must be >= 1, got {min_rows}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        #: Minimum rows per partition — below ``2 * min_rows`` total the
        #: pool dispatch overhead exceeds the BLAS win and we run serial.
        self.min_rows = min_rows
        self._pool: ThreadPoolExecutor | None = None
        self._pool_pid: int | None = None

    @classmethod
    def available(cls) -> bool:
        return (os.cpu_count() or 1) >= 2

    def tolerance(self, dtype) -> tuple[float, float]:
        if np.dtype(dtype) == np.float32:
            return (1e-4, 1e-6)
        return (1e-9, 1e-12)

    # -- pool management -----------------------------------------------------

    def _get_pool(self) -> ThreadPoolExecutor:
        pid = os.getpid()
        if self._pool is None or self._pool_pid != pid:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-gemm"
            )
            self._pool_pid = pid
        return self._pool

    def _spans(self, rows: int) -> list[tuple[int, int]] | None:
        """Balanced row partitions, or ``None`` to run serial."""
        parts = min(self.workers, rows // self.min_rows)
        if parts < 2:
            return None
        bounds = [(rows * i) // parts for i in range(parts + 1)]
        return list(zip(bounds[:-1], bounds[1:]))

    def _matmul_rows(self, a, b, out) -> np.ndarray:
        """``out = a @ b`` with ``a``'s rows partitioned across the pool."""
        spans = self._spans(a.shape[0])
        if spans is None:
            return np.matmul(a, b, out=out)
        pool = self._get_pool()
        futures = [
            pool.submit(np.matmul, a[lo:hi], b, out=out[lo:hi])
            for lo, hi in spans
        ]
        for f in futures:
            f.result()  # propagate worker exceptions
        return out

    # -- threaded linear ops -------------------------------------------------

    def linear_forward(self, x, weight, bias, ws, key):
        out = ws.get((key, "out"), (x.shape[0], weight.shape[0]), x.dtype)
        self._matmul_rows(x, weight.T, out)
        out += bias
        return out

    def linear_backward(self, grad_out, x, weight, weight_grad, bias_grad, ws, key):
        dtype = weight.dtype
        grad_in = ws.get((key, "gin"), (grad_out.shape[0], weight.shape[1]), dtype)
        wg = ws.get((key, "wg"), weight.shape, dtype)
        bg = ws.get((key, "bg"), bias_grad.shape, dtype)
        self._matmul_rows(grad_out.T, x, wg)  # rows = out_features
        weight_grad += wg
        np.sum(grad_out, axis=0, out=bg)
        bias_grad += bg
        self._matmul_rows(grad_out, weight, grad_in)
        return grad_in

    # -- pickling ------------------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_pool_pid"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
