"""The ``"numpy"`` reference backend.

Every op is the historical naive implementation — one temporary per
operation, no workspace, no fusion.  This is the ground truth the
conformance suite (``tests/conformance/``) validates every other
backend against, and the opt-out path selected by
``ModelConfig(fused_dense=False)`` or ``ModelConfig(backend="numpy")``.
"""

from __future__ import annotations

import numpy as np

from ..dense_kernels import (
    naive_adagrad_dense_step,
    naive_adagrad_sparse_step,
    naive_bce_backward,
    naive_bce_forward,
    naive_dot_backward,
    naive_dot_forward,
    naive_linear_backward,
    naive_linear_forward,
    naive_relu_backward,
    naive_relu_forward,
    naive_sgd_dense_step,
)
from ..kernels import naive_segment_sum
from .base import Backend

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    """Naive single-threaded numpy reference (bit-exact ground truth)."""

    name = "numpy"
    bit_identical = True  # it *is* the reference
    uses_workspace = False

    # -- linear --------------------------------------------------------------

    def linear_forward(self, x, weight, bias, ws, key):
        return naive_linear_forward(x, weight, bias)

    def linear_backward(self, grad_out, x, weight, weight_grad, bias_grad, ws, key):
        dw, db, dx = naive_linear_backward(grad_out, x, weight)
        weight_grad += dw
        bias_grad += db
        return dx

    # -- relu ----------------------------------------------------------------

    def relu_forward(self, x, ws, key, *, training=True):
        if not training:
            return np.maximum(x, 0.0), None
        y, mask = naive_relu_forward(x)
        return y, mask

    def relu_backward(self, grad_out, ctx, ws, key):
        return naive_relu_backward(grad_out, ctx)

    # -- bce loss ------------------------------------------------------------

    def bce_forward(self, logits, labels, ws):
        return naive_bce_forward(logits, labels), None

    def bce_backward(self, logits, labels, ctx, ws):
        return naive_bce_backward(logits, labels)

    # -- feature interaction -------------------------------------------------

    def dot_forward(self, dense, embs, tril, flat_tril, ws, key, *, training=True):
        stack = np.stack([dense] + list(embs), axis=1)  # (B, n+1, d)
        return naive_dot_forward(stack, tril, dense), stack

    def dot_backward(self, stack, grad_out, dim, tril, pair_map, ws, key):
        num_sparse = stack.shape[1] - 1
        grad_dense_direct = grad_out[:, :dim]
        grad_pairs = grad_out[:, dim:]
        grad_stack = naive_dot_backward(stack, tril, grad_pairs)
        grad_dense = grad_stack[:, 0, :] + grad_dense_direct
        grad_embs = [grad_stack[:, i + 1, :] for i in range(num_sparse)]
        return grad_dense, grad_embs

    def concat_forward(self, dense, embs, dim, ws, key):
        return np.concatenate([dense] + list(embs), axis=1)

    # -- segment pooling -----------------------------------------------------

    def segment_pool(self, weight, values, offsets):
        values = np.asarray(values, dtype=np.int64)
        return naive_segment_sum(np.asarray(weight)[values], offsets)

    def segment_pool_backward(self, values, lengths, grad_out):
        per_lookup = np.repeat(grad_out, lengths, axis=0)
        rows, inverse = np.unique(
            np.asarray(values, dtype=np.int64), return_inverse=True
        )
        summed = np.zeros((len(rows),) + per_lookup.shape[1:], dtype=per_lookup.dtype)
        if per_lookup.shape[0]:
            np.add.at(summed, inverse, per_lookup)
        return rows, summed

    # -- optimizer steps -----------------------------------------------------

    def adagrad_dense_step(self, value, grad, state, lr, eps, ws):
        naive_adagrad_dense_step(value, grad, state, lr, eps)

    def adagrad_sparse_step(self, weight, state, rows, values, lr, eps, ws):
        naive_adagrad_sparse_step(weight, state, rows, values, lr, eps)

    def sgd_dense_step(self, value, grad, lr, ws, *, weight_decay=0.0,
                       momentum=0.0, velocity=None):
        naive_sgd_dense_step(
            value, grad, lr,
            weight_decay=weight_decay, momentum=momentum, velocity=velocity,
        )

    def sgd_sparse_step(self, weight, rows, values, lr, ws):
        weight[rows] -= lr * values
