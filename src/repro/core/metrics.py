"""Model-quality metrics.

The paper tracks model quality as *normalized entropy* (NE) — cross-entropy
normalized by the entropy of the empirical CTR — plus calibration.  A loss
regression of 0.1–0.2% NE is called out as intolerable for recommendation
use cases (§VI-C), so the metrics here report enough precision to resolve
such gaps.
"""

from __future__ import annotations

import numpy as np

from .loss import sigmoid

__all__ = [
    "log_loss",
    "normalized_entropy",
    "calibration",
    "auc",
    "accuracy",
    "ne_gap_percent",
]

_EPS = 1e-12


def log_loss(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy from probabilities."""
    p = np.clip(np.asarray(predictions, dtype=np.float64).reshape(-1), _EPS, 1 - _EPS)
    y = np.asarray(labels, dtype=np.float64).reshape(-1)
    if p.shape != y.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {y.shape}")
    if len(p) == 0:
        raise ValueError("empty input")
    return float(-(y * np.log(p) + (1 - y) * np.log(1 - p)).mean())


def normalized_entropy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Cross-entropy divided by the entropy of the background CTR.

    NE < 1 means the model beats the constant-CTR predictor; lower is better.
    """
    y = np.asarray(labels, dtype=np.float64).reshape(-1)
    ctr = float(np.clip(y.mean(), _EPS, 1 - _EPS))
    background = -(ctr * np.log(ctr) + (1 - ctr) * np.log(1 - ctr))
    return log_loss(predictions, y) / background


def calibration(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Ratio of mean predicted CTR to empirical CTR (ideal == 1.0)."""
    p = np.asarray(predictions, dtype=np.float64).reshape(-1)
    y = np.asarray(labels, dtype=np.float64).reshape(-1)
    empirical = y.mean()
    if empirical <= 0:
        raise ValueError("calibration undefined when no positive labels")
    return float(p.mean() / empirical)


def auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (ties averaged)."""
    s = np.asarray(scores, dtype=np.float64).reshape(-1)
    y = np.asarray(labels).reshape(-1).astype(bool)
    n_pos = int(y.sum())
    n_neg = len(y) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC needs both positive and negative labels")
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty(len(s), dtype=np.float64)
    sorted_scores = s[order]
    # average ranks over tied groups
    i = 0
    while i < len(s):
        j = i
        while j + 1 < len(s) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[y].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def accuracy(scores: np.ndarray, labels: np.ndarray, threshold: float = 0.0) -> float:
    """Fraction of correct hard decisions at ``score > threshold``."""
    s = np.asarray(scores, dtype=np.float64).reshape(-1)
    y = np.asarray(labels).reshape(-1).astype(bool)
    if len(s) == 0:
        raise ValueError("empty input")
    return float(((s > threshold) == y).mean())


def ne_gap_percent(ne_candidate: float, ne_baseline: float) -> float:
    """Relative NE regression in percent (positive == candidate is worse).

    This is the quantity plotted in Figure 15 (accuracy/loss gap vs. the CPU
    baseline as GPU batch size grows).
    """
    if ne_baseline <= 0:
        raise ValueError("baseline NE must be positive")
    return 100.0 * (ne_candidate - ne_baseline) / ne_baseline


def predictions_from_logits(logits: np.ndarray) -> np.ndarray:
    """Convenience: convert raw logits to probabilities."""
    return sigmoid(np.asarray(logits, dtype=np.float64).reshape(-1))
