"""The DLRM-style recommendation model (paper Figure 3).

``DLRM`` assembles the four architecture blocks the paper characterizes:

1. bottom MLP over the concatenated dense features,
2. embedding-table lookups for each sparse feature,
3. feature interaction (concat or pairwise dot),
4. top MLP producing the click logit.

Forward and backward are explicit; the model exposes its dense
:class:`~repro.core.mlp.Parameter` list and its embedding tables so
optimizers and distributed-sync algorithms can treat the two halves
differently (data-parallel dense, model-parallel sparse) — the same split
that drives the systems design in the paper.
"""

from __future__ import annotations

import numpy as np

from .backends import Backend, resolve_backend
from .config import InteractionType, ModelConfig, PoolingType
from .dense_kernels import Workspace
from .embedding import EmbeddingBagCollection, RaggedIndices
from .interaction import make_interaction
from .mlp import MLP, Linear, Parameter

__all__ = ["Batch", "DLRM"]


class Batch:
    """One mini-batch of training data.

    Attributes:
        dense: ``(batch, num_dense)`` float matrix of dense features.
        sparse: mapping from sparse-feature name to :class:`RaggedIndices`.
        labels: ``(batch,)`` array of {0, 1} click labels.
    """

    def __init__(
        self,
        dense: np.ndarray,
        sparse: dict[str, RaggedIndices],
        labels: np.ndarray,
    ) -> None:
        self.dense = np.asarray(dense, dtype=np.float64)
        self.sparse = sparse
        self.labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        if self.dense.ndim != 2:
            raise ValueError(f"dense must be 2-D, got shape {self.dense.shape}")
        if len(self.labels) != self.dense.shape[0]:
            raise ValueError(
                f"label count {len(self.labels)} != batch size {self.dense.shape[0]}"
            )
        for name, ragged in sparse.items():
            if ragged.batch_size != self.size:
                raise ValueError(
                    f"sparse feature {name!r} batch {ragged.batch_size} != {self.size}"
                )

    @property
    def size(self) -> int:
        return self.dense.shape[0]

    def total_lookups(self) -> int:
        """Total embedding lookups this batch triggers (cost driver, §III-A.2)."""
        return sum(r.total_lookups for r in self.sparse.values())


class DLRM:
    """Deep learning recommendation model with explicit backprop.

    The forward pass returns raw logits of shape ``(batch,)``; combine with
    :class:`repro.core.loss.BCEWithLogitsLoss` for training.
    """

    def __init__(
        self,
        config: ModelConfig,
        rng: np.random.Generator | int | None = None,
        pooling: PoolingType = PoolingType.SUM,
        backend: Backend | str | None = None,
        tiering=None,
    ) -> None:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.config = config
        #: Compute precision for weights/activations (``config.compute_dtype``).
        self.dtype = config.np_dtype
        self.bottom_mlp = MLP(
            config.num_dense, config.bottom_mlp, rng, name="bottom", dtype=self.dtype
        )
        #: With a :class:`repro.tiering.store.TieredStoreConfig`, embedding
        #: tables become two-tier stores — numerically identical, but every
        #: row access is priced by tier placement (see docs/tiering.md).
        table_factory = None
        if tiering is not None:
            # Lazy import: repro.tiering depends on repro.core, not vice versa.
            from ..tiering.store import TieredEmbeddingTable

            def table_factory(spec, table_rng, pooling, dtype):
                return TieredEmbeddingTable(
                    spec, table_rng, pooling=pooling, dtype=dtype, tiering=tiering
                )

        self.embeddings = EmbeddingBagCollection(
            config.tables, rng, pooling=pooling, dtype=self.dtype,
            table_factory=table_factory,
        )
        self.interaction = make_interaction(
            config.interaction, config.num_sparse, config.embedding_dim
        )
        interaction_width = self.interaction.out_features(config.bottom_mlp.out_features)
        self.top_mlp = MLP(
            interaction_width, config.top_mlp, rng, name="top", dtype=self.dtype
        )
        self.scorer = Linear(
            config.top_mlp.out_features, 1, rng, name="scorer", dtype=self.dtype
        )
        self._feature_order = [t.name for t in config.tables]
        #: The compute backend of the dense path (see
        #: :mod:`repro.core.backends`): ``config.effective_backend`` unless
        #: overridden by the ``backend`` argument (a registered name or a
        #: :class:`Backend` instance, no availability fallback applied to
        #: explicit instances).  ``"fused"`` is bit-identical to the
        #: ``"numpy"`` reference; ``"threaded"`` is tolerance-bounded.
        self.backend: Backend = resolve_backend(
            backend
            if backend is not None
            else getattr(config, "effective_backend", "fused")
        )
        #: Buffer arena of the workspace-backed backends; ``None`` under the
        #: naive ``"numpy"`` reference (``config.fused_dense=False``).
        self.workspace: Workspace | None = (
            Workspace() if self.backend.uses_workspace else None
        )
        self.bottom_mlp.set_backend(self.backend, self.workspace)
        self.top_mlp.set_backend(self.backend, self.workspace)
        self.scorer.set_backend(self.backend, self.workspace, key="scorer")
        self.interaction.set_backend(self.backend, self.workspace, key="interaction")

    # -- forward / backward -------------------------------------------------

    def forward(self, batch: Batch, *, training: bool = True) -> np.ndarray:
        """Compute click logits for a batch; returns shape ``(batch,)``.

        ``training=False`` is the inference fast path: no activations are
        cached anywhere in the stack (MLP inputs, ReLU masks, interaction
        stacks, embedding forward contexts), so inference-only forwards
        allocate less, run faster, and leave no state to discard — the
        serving replicas (:mod:`repro.serving.replica`) and
        :meth:`predict_proba` use it.  ``backward`` after an
        inference-only forward raises.
        """
        if batch.dense.shape[1] != self.config.num_dense:
            raise ValueError(
                f"batch has {batch.dense.shape[1]} dense features, "
                f"model expects {self.config.num_dense}"
            )
        dense_out = self.bottom_mlp.forward(
            batch.dense.astype(self.dtype, copy=False), training=training
        )
        # Prefetch-pipelined batches (repro.pipeline.PreparedBatch) carry the
        # precomputed per-table lookup plans; plain batches don't, and the
        # collection rebuilds them inline from the same code path.
        emb_out = self.embeddings.forward(
            batch.sparse, training=training, plans=getattr(batch, "plans", None)
        )
        embs = [emb_out[name] for name in self._feature_order]
        interacted = self.interaction.forward(dense_out, embs, training=training)
        top_out = self.top_mlp.forward(interacted, training=training)
        logits = self.scorer.forward(top_out, training=training)
        out = logits.reshape(-1)
        if self.workspace is not None and self.workspace.owns(out):
            # The caller owns the returned logits (they must survive the
            # next forward); peel them off the arena.  (batch,) floats —
            # the only steady-state allocation of the fused forward.
            return out.copy()
        return out

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate ``dLoss/dlogits`` of shape ``(batch, 1)`` or ``(batch,)``."""
        grad = np.asarray(grad_logits, dtype=self.dtype).reshape(-1, 1)
        grad = self.scorer.backward(grad)
        grad = self.top_mlp.backward(grad)
        grad_dense, grad_embs = self.interaction.backward(grad)
        self.embeddings.backward(
            {name: g for name, g in zip(self._feature_order, grad_embs)}
        )
        self.bottom_mlp.backward(grad_dense)

    def predict_proba(self, batch: Batch) -> np.ndarray:
        """Click probabilities via the inference fast path.

        Runs ``forward(training=False)``: activations are never cached in
        the first place (rather than cached and then discarded via
        :meth:`_discard_forward_state`, the historical behaviour), which
        skips the per-layer stash writes and the embedding forward-context
        pushes entirely — see ``docs/perf_notes.md`` for the measured win.
        """
        from .loss import sigmoid

        logits = self.forward(batch, training=False)
        return sigmoid(logits)

    def _discard_forward_state(self) -> None:
        """Drop cached activations after a *training-mode* forward whose
        backward will never run (e.g. numeric gradient checks that probe
        ``forward`` directly).

        Embedding tables stack forward contexts (to support shared tables),
        so such forwards must clear them or the stack grows.  Inference
        callers should prefer ``forward(training=False)``, which never
        saves state in the first place.
        """
        for table in self.embeddings.tables.values():
            table._saved.clear()
        if hasattr(self.interaction, "_stack"):
            self.interaction._stack = None
        if hasattr(self.interaction, "_dense_width"):
            self.interaction._dense_width = None

    # -- parameter access ----------------------------------------------------

    def dense_parameters(self) -> list[Parameter]:
        """MLP + scorer parameters — the data-parallel ("dense PS") half."""
        return (
            self.bottom_mlp.parameters()
            + self.top_mlp.parameters()
            + self.scorer.parameters()
        )

    def embedding_tables(self):
        """The model-parallel ("sparse PS") half, in config order."""
        return [self.embeddings.tables[name] for name in self._feature_order]

    def zero_grad(self) -> None:
        for p in self.dense_parameters():
            p.zero_grad()
        self.embeddings.zero_grad()

    def num_parameters(self) -> int:
        dense = sum(p.size for p in self.dense_parameters())
        sparse = sum(t.weight.size for t in self.embeddings.tables.values())
        return dense + sparse

    # -- state serialization (for EASGD / checkpoint tests) -------------------

    def get_dense_state(self) -> list[np.ndarray]:
        return [p.value.copy() for p in self.dense_parameters()]

    def set_dense_state(self, state: list[np.ndarray]) -> None:
        params = self.dense_parameters()
        if len(state) != len(params):
            raise ValueError(f"state has {len(state)} tensors, expected {len(params)}")
        for p, s in zip(params, state):
            if p.value.shape != s.shape:
                raise ValueError(f"shape mismatch for {p.name}: {p.value.shape} vs {s.shape}")
            p.value[...] = s
