"""The paper's model family: a from-scratch numpy DLRM.

Public surface:

* :class:`ModelConfig` / :class:`TableSpec` / :class:`MLPSpec` — architecture
  description shared with the performance model.
* :class:`DLRM` / :class:`Batch` — the functional model.
* :class:`SGD` / :class:`Adagrad` — sparse-aware optimizers.
* :class:`Trainer` / :func:`evaluate` — training loop and metrics.
"""

from .config import (
    FP32_BYTES,
    InteractionType,
    MLPSpec,
    ModelConfig,
    PoolingType,
    TableSpec,
    merge_shared_tables,
    uniform_tables,
)
from .embedding import (
    EmbeddingBagCollection,
    EmbeddingTable,
    RaggedIndices,
    SparseGrad,
    hash_raw_ids,
)
from . import backends, dense_kernels, kernels
from .backends import (
    Backend,
    available_backends,
    get_backend,
    known_backends,
    register_backend,
    resolve_backend,
)
from .dense_kernels import Workspace, stable_sigmoid
from .interaction import ConcatInteraction, DotInteraction, make_interaction
from .loss import BCEWithLogitsLoss, sigmoid
from .metrics import (
    accuracy,
    auc,
    calibration,
    log_loss,
    ne_gap_percent,
    normalized_entropy,
)
from .mlp import MLP, Linear, Parameter, ReLU, Sigmoid
from .model import Batch, DLRM
from .optim import SGD, Adagrad
from .checkpoint import (
    DirtyRowTracker,
    apply_partial_checkpoint,
    checkpoint_bytes,
    load_checkpoint,
    save_checkpoint,
    save_partial_checkpoint,
)
from .gradcheck import GradCheckResult, check_gradients
from .run_telemetry import InstrumentedTrainer, MetricSeries, MetricsLogger
from .schedule import (
    ConstantLR,
    PolynomialDecayLR,
    ScheduledOptimizer,
    WarmupLR,
)
from .quantization import (
    QuantizedEmbeddingTable,
    dequantize_rows,
    quantization_error,
    quantize_rows,
    quantized_table_bytes,
)
from .training import Trainer, TrainResult, evaluate
from .tuning import SearchResult, Trial, bayesian_search, grid_search, random_search

__all__ = [
    "kernels",
    "dense_kernels",
    "backends",
    "Backend",
    "register_backend",
    "get_backend",
    "known_backends",
    "available_backends",
    "resolve_backend",
    "Workspace",
    "stable_sigmoid",
    "FP32_BYTES",
    "InteractionType",
    "PoolingType",
    "TableSpec",
    "MLPSpec",
    "ModelConfig",
    "uniform_tables",
    "merge_shared_tables",
    "RaggedIndices",
    "SparseGrad",
    "EmbeddingTable",
    "EmbeddingBagCollection",
    "hash_raw_ids",
    "ConcatInteraction",
    "DotInteraction",
    "make_interaction",
    "BCEWithLogitsLoss",
    "sigmoid",
    "log_loss",
    "normalized_entropy",
    "calibration",
    "auc",
    "accuracy",
    "ne_gap_percent",
    "MLP",
    "Linear",
    "Parameter",
    "ReLU",
    "Sigmoid",
    "Batch",
    "DLRM",
    "SGD",
    "Adagrad",
    "Trainer",
    "TrainResult",
    "evaluate",
    "Trial",
    "SearchResult",
    "grid_search",
    "random_search",
    "bayesian_search",
    "quantize_rows",
    "dequantize_rows",
    "quantization_error",
    "quantized_table_bytes",
    "QuantizedEmbeddingTable",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_bytes",
    "DirtyRowTracker",
    "save_partial_checkpoint",
    "apply_partial_checkpoint",
    "ConstantLR",
    "WarmupLR",
    "PolynomialDecayLR",
    "ScheduledOptimizer",
    "MetricsLogger",
    "MetricSeries",
    "InstrumentedTrainer",
    "GradCheckResult",
    "check_gradients",
]
