"""Public gradient-checking utility.

Anyone extending the model family (new interaction ops, new layers) needs
to validate hand-written backward passes.  ``check_gradients`` compares the
analytic gradients of a :class:`~repro.core.model.DLRM` against central
finite differences on a batch and reports the worst relative error per
parameter — the same verification the test suite applies to the built-in
layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .loss import BCEWithLogitsLoss
from .model import Batch, DLRM

__all__ = ["GradCheckResult", "check_gradients"]


@dataclass(frozen=True)
class GradCheckResult:
    """Worst-case gradient errors, per parameter tensor."""

    max_abs_error: dict[str, float]
    tolerance: float

    @property
    def passed(self) -> bool:
        return all(err <= self.tolerance for err in self.max_abs_error.values())

    def worst(self) -> tuple[str, float]:
        name = max(self.max_abs_error, key=self.max_abs_error.get)
        return name, self.max_abs_error[name]


def _numeric_grad(f, x: np.ndarray, eps: float) -> np.ndarray:
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(
    model: DLRM,
    batch: Batch,
    include_embeddings: bool = True,
    eps: float = 1e-6,
    tolerance: float = 1e-5,
    bias_nudge: float = 0.05,
    seed: int = 0,
) -> GradCheckResult:
    """Verify the model's analytic gradients on one batch.

    ``bias_nudge`` perturbs zero-initialized biases first: a freshly-built
    model can have pre-activations sitting exactly on the ReLU kink, where
    the analytic subgradient and a central difference legitimately differ.

    Warning: cost is O(parameters x batch forward passes) — use a tiny
    model and batch.
    """
    if eps <= 0 or tolerance <= 0:
        raise ValueError("eps and tolerance must be positive")
    if bias_nudge:
        rng = np.random.default_rng(seed)
        for p in model.dense_parameters():
            if "bias" in p.name:
                p.value += rng.normal(0.0, bias_nudge, size=p.value.shape)
    crit = BCEWithLogitsLoss()

    def loss() -> float:
        value = crit.forward(model.forward(batch), batch.labels)
        model._discard_forward_state()
        return value

    errors: dict[str, float] = {}
    for p in model.dense_parameters():
        expected = _numeric_grad(loss, p.value, eps)
        model.zero_grad()
        crit.forward(model.forward(batch), batch.labels)
        model.backward(crit.backward())
        errors[p.name] = float(np.abs(p.grad - expected).max())
    if include_embeddings:
        for table in model.embedding_tables():
            expected = _numeric_grad(loss, table.weight, eps)
            model.zero_grad()
            crit.forward(model.forward(batch), batch.labels)
            model.backward(crit.backward())
            grad = table.pop_grad()
            dense = np.zeros_like(table.weight)
            if grad is not None:
                dense[grad.rows] = grad.values
            errors[f"table/{table.spec.name}"] = float(
                np.abs(dense - expected).max()
            )
    return GradCheckResult(max_abs_error=errors, tolerance=tolerance)
