"""Losses for click-through-rate training.

Recommendation models at Facebook are binary classifiers trained with
cross-entropy; model quality is tracked as *normalized entropy* (paper §VI-C).
The loss here is binary cross-entropy computed directly from logits in a
numerically stable form.

With a :class:`~repro.core.dense_kernels.Workspace` attached,
:class:`BCEWithLogitsLoss` runs the fused sigmoid+BCE kernel: one
``exp(-|x|)`` pass serves both the loss value and the logit gradient (the
naive pair evaluates the sigmoid's exponential twice), and every temporary
lands in a reused arena buffer.  Bit-identical to the naive path — see
:mod:`repro.core.dense_kernels` for the argument.
"""

from __future__ import annotations

import numpy as np

from . import dense_kernels
from .dense_kernels import Workspace, stable_sigmoid

__all__ = ["BCEWithLogitsLoss", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function.

    Delegates to the single shared implementation
    (:func:`repro.core.dense_kernels.stable_sigmoid`); float inputs keep
    their dtype (historically this copy silently upcast float32 logits to
    float64, diverging from :class:`repro.core.mlp.Sigmoid`).
    """
    return stable_sigmoid(x)


class BCEWithLogitsLoss:
    """Mean binary cross-entropy over a batch, from raw logits.

    Uses ``max(x, 0) - x * y + log(1 + exp(-|x|))`` which never overflows.
    ``backward`` returns the gradient with respect to the logits:
    ``(sigmoid(x) - y) / batch``.

    The loss computes in float64 regardless of the model's compute dtype
    (the historical contract: a float32 model still gets a float64 loss
    scalar and logit gradient, which :meth:`repro.core.model.DLRM.backward`
    casts back down).
    """

    def __init__(self, workspace: Workspace | None = None) -> None:
        self._saved: tuple[np.ndarray, np.ndarray] | None = None
        #: Optional buffer arena enabling the fused sigmoid+BCE kernel.
        self.workspace = workspace
        self._sig: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64).reshape(-1)
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        if logits.shape != labels.shape:
            raise ValueError(f"shape mismatch: {logits.shape} vs {labels.shape}")
        if len(logits) == 0:
            raise ValueError("empty batch")
        if labels.min() < 0 or labels.max() > 1:
            raise ValueError("labels must lie in [0, 1]")
        self._saved = (logits, labels)
        ws = self.workspace
        if ws is not None:
            shape = logits.shape
            sig = ws.get(("bce", "sig"), shape, np.float64)
            loss = dense_kernels.bce_forward(
                logits,
                labels,
                ws.get(("bce", "e"), shape, np.float64),
                ws.get(("bce", "per"), shape, np.float64),
                ws.get(("bce", "tmp"), shape, np.float64),
                sig,
                ws.get(("bce", "denom"), shape, np.float64),
                ws.get(("bce", "pos"), shape, bool),
            )
            self._sig = sig
            return loss
        self._sig = None
        per_example = (
            np.maximum(logits, 0.0)
            - logits * labels
            + np.log1p(np.exp(-np.abs(logits)))
        )
        return float(per_example.mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits, shape ``(batch, 1)``."""
        if self._saved is None:
            raise RuntimeError("backward called before forward")
        logits, labels = self._saved
        self._saved = None
        ws = self.workspace
        if ws is not None and self._sig is not None:
            sig = self._sig
            self._sig = None
            grad = dense_kernels.bce_backward(
                sig, labels, ws.get(("bce", "grad"), logits.shape, np.float64)
            )
            return grad.reshape(-1, 1)
        grad = (sigmoid(logits) - labels) / len(logits)
        return grad.reshape(-1, 1)
