"""Losses for click-through-rate training.

Recommendation models at Facebook are binary classifiers trained with
cross-entropy; model quality is tracked as *normalized entropy* (paper §VI-C).
The loss here is binary cross-entropy computed directly from logits in a
numerically stable form.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BCEWithLogitsLoss", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class BCEWithLogitsLoss:
    """Mean binary cross-entropy over a batch, from raw logits.

    Uses ``max(x, 0) - x * y + log(1 + exp(-|x|))`` which never overflows.
    ``backward`` returns the gradient with respect to the logits:
    ``(sigmoid(x) - y) / batch``.
    """

    def __init__(self) -> None:
        self._saved: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64).reshape(-1)
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        if logits.shape != labels.shape:
            raise ValueError(f"shape mismatch: {logits.shape} vs {labels.shape}")
        if len(logits) == 0:
            raise ValueError("empty batch")
        if labels.min() < 0 or labels.max() > 1:
            raise ValueError("labels must lie in [0, 1]")
        self._saved = (logits, labels)
        per_example = (
            np.maximum(logits, 0.0)
            - logits * labels
            + np.log1p(np.exp(-np.abs(logits)))
        )
        return float(per_example.mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits, shape ``(batch, 1)``."""
        if self._saved is None:
            raise RuntimeError("backward called before forward")
        logits, labels = self._saved
        self._saved = None
        grad = (sigmoid(logits) - labels) / len(logits)
        return grad.reshape(-1, 1)
