"""Losses for click-through-rate training.

Recommendation models at Facebook are binary classifiers trained with
cross-entropy; model quality is tracked as *normalized entropy* (paper §VI-C).
The loss here is binary cross-entropy computed directly from logits in a
numerically stable form.

With a :class:`~repro.core.dense_kernels.Workspace` attached,
:class:`BCEWithLogitsLoss` runs the fused sigmoid+BCE kernel: one
``exp(-|x|)`` pass serves both the loss value and the logit gradient (the
naive pair evaluates the sigmoid's exponential twice), and every temporary
lands in a reused arena buffer.  Bit-identical to the naive path — see
:mod:`repro.core.dense_kernels` for the argument.
"""

from __future__ import annotations

import numpy as np

from .backends import Backend, get_backend, reference_backend
from .dense_kernels import Workspace, stable_sigmoid

__all__ = ["BCEWithLogitsLoss", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function.

    Delegates to the single shared implementation
    (:func:`repro.core.dense_kernels.stable_sigmoid`); float inputs keep
    their dtype (historically this copy silently upcast float32 logits to
    float64, diverging from :class:`repro.core.mlp.Sigmoid`).
    """
    return stable_sigmoid(x)


class BCEWithLogitsLoss:
    """Mean binary cross-entropy over a batch, from raw logits.

    Uses ``max(x, 0) - x * y + log(1 + exp(-|x|))`` which never overflows.
    ``backward`` returns the gradient with respect to the logits:
    ``(sigmoid(x) - y) / batch``.

    The loss computes in float64 regardless of the model's compute dtype
    (the historical contract: a float32 model still gets a float64 loss
    scalar and logit gradient, which :meth:`repro.core.model.DLRM.backward`
    casts back down).
    """

    def __init__(
        self,
        workspace: Workspace | None = None,
        backend: Backend | str | None = None,
    ) -> None:
        self._saved: tuple[np.ndarray, np.ndarray] | None = None
        #: Optional buffer arena enabling the fused sigmoid+BCE kernel.
        self.workspace = workspace
        if backend is None:
            backend = "fused"
        self.backend: Backend = (
            backend if isinstance(backend, Backend) else get_backend(backend)
        )
        self._ctx: np.ndarray | None = None
        self._ctx_backend: Backend | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64).reshape(-1)
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        if logits.shape != labels.shape:
            raise ValueError(f"shape mismatch: {logits.shape} vs {labels.shape}")
        if len(logits) == 0:
            raise ValueError("empty batch")
        if labels.min() < 0 or labels.max() > 1:
            raise ValueError("labels must lie in [0, 1]")
        self._saved = (logits, labels)
        be = self.backend
        if be.uses_workspace and self.workspace is None:
            be = reference_backend()
        loss, ctx = be.bce_forward(logits, labels, self.workspace)
        self._ctx = ctx
        # The backward must consume ctx with the backend that made it.
        self._ctx_backend = be
        return loss

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits, shape ``(batch, 1)``."""
        if self._saved is None:
            raise RuntimeError("backward called before forward")
        logits, labels = self._saved
        self._saved = None
        be = self._ctx_backend or reference_backend()
        ctx = self._ctx
        self._ctx = None
        self._ctx_backend = None
        grad = be.bce_backward(logits, labels, ctx, self.workspace)
        return grad.reshape(-1, 1)
