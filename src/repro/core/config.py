"""Model architecture configuration shared by the numpy DLRM and the perf model.

The paper (Section III) enumerates the model-architecture knobs that drive
training efficiency: dense/sparse feature counts, per-table hash sizes,
lookups per table (pooling factor), feature-interaction type, MLP dimensions
and batch size.  ``ModelConfig`` captures exactly those knobs so that the
functional implementation (:mod:`repro.core.model`) and the analytical
performance model (:mod:`repro.perf`) consume one description.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

__all__ = [
    "InteractionType",
    "PoolingType",
    "TableSpec",
    "MLPSpec",
    "ModelConfig",
    "uniform_tables",
    "merge_shared_tables",
]

#: Bytes per FP32 element; the paper's production models train in FP32 (§VI).
FP32_BYTES = 4


class InteractionType(enum.Enum):
    """Feature-interaction combiner (paper §III-A.3)."""

    CONCAT = "concat"
    DOT = "dot"


class PoolingType(enum.Enum):
    """How the ``n`` looked-up embedding vectors of one sparse feature are
    aggregated into a single d-dimensional representation (paper §III-A.2)."""

    SUM = "sum"
    MEAN = "mean"


@dataclass(frozen=True)
class TableSpec:
    """One embedding table / sparse feature.

    Attributes:
        name: Identifier of the sparse feature served by this table.
        hash_size: Number of rows ``m`` (the hashing-trick modulus, §III-A.1).
        dim: Embedding dimension ``d`` (fixed across features in the paper).
        mean_lookups: Mean number of activated indices (feature length) per
            example; drives lookup cost (Figure 7).
        truncation: Optional upper bound on lookups per example (§III-A.2,
            "truncation size").  ``None`` means unbounded.
    """

    name: str
    hash_size: int
    dim: int = 64
    mean_lookups: float = 1.0
    truncation: int | None = None

    def __post_init__(self) -> None:
        if self.hash_size < 1:
            raise ValueError(f"hash_size must be >= 1, got {self.hash_size}")
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if self.mean_lookups < 0:
            raise ValueError(f"mean_lookups must be >= 0, got {self.mean_lookups}")
        if self.truncation is not None and self.truncation < 1:
            raise ValueError(f"truncation must be >= 1, got {self.truncation}")

    @property
    def effective_mean_lookups(self) -> float:
        """Mean lookups after truncation is applied."""
        if self.truncation is None:
            return self.mean_lookups
        return min(self.mean_lookups, float(self.truncation))

    @property
    def num_parameters(self) -> int:
        """Learned parameters in this table (``m x d``)."""
        return self.hash_size * self.dim

    @property
    def size_bytes(self) -> int:
        """FP32 weight footprint of the table."""
        return self.num_parameters * FP32_BYTES


@dataclass(frozen=True)
class MLPSpec:
    """A stack of fully-connected layers.

    ``layer_sizes`` lists hidden/output widths; the input width comes from
    the surrounding model.  The paper writes a stack as ``width^num_layers``
    (e.g. ``512^3``); :meth:`from_notation` parses that form.
    """

    layer_sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.layer_sizes:
            raise ValueError("MLPSpec needs at least one layer")
        if any(w < 1 for w in self.layer_sizes):
            raise ValueError(f"layer widths must be >= 1, got {self.layer_sizes}")

    @classmethod
    def from_notation(cls, notation: str) -> "MLPSpec":
        """Parse the paper's ``width^num_layers`` notation, e.g. ``"512^3"``.

        Also accepts dash-separated explicit widths, e.g. ``"512-256-512"``.
        """
        notation = notation.strip()
        if "^" in notation:
            width_s, depth_s = notation.split("^", 1)
            width, depth = int(width_s), int(depth_s)
            if depth < 1:
                raise ValueError(f"depth must be >= 1 in {notation!r}")
            return cls(tuple([width] * depth))
        return cls(tuple(int(tok) for tok in notation.split("-")))

    @property
    def depth(self) -> int:
        return len(self.layer_sizes)

    @property
    def out_features(self) -> int:
        return self.layer_sizes[-1]

    def num_parameters(self, in_features: int) -> int:
        """Weights + biases when fed ``in_features`` inputs."""
        total = 0
        prev = in_features
        for width in self.layer_sizes:
            total += prev * width + width
            prev = width
        return total

    def notation(self) -> str:
        """Inverse of :meth:`from_notation` (compact when uniform)."""
        widths = set(self.layer_sizes)
        if len(widths) == 1:
            return f"{self.layer_sizes[0]}^{self.depth}"
        return "-".join(str(w) for w in self.layer_sizes)


@dataclass(frozen=True)
class ModelConfig:
    """Complete architecture description of one recommendation model.

    Mirrors the red-highlighted configuration points of the paper's Figure 3:
    dense features, sparse features (embedding tables), feature interaction,
    bottom and top MLP stacks.
    """

    name: str
    num_dense: int
    tables: tuple[TableSpec, ...]
    bottom_mlp: MLPSpec
    top_mlp: MLPSpec
    interaction: InteractionType = InteractionType.DOT
    #: Numeric precision of the functional model's weights and activations.
    #: ``"float64"`` (default) preserves the historical bit-exact results;
    #: ``"float32"`` matches the paper's production precision (§VI) and
    #: halves memory bandwidth on the embedding/MLP hot paths.
    compute_dtype: str = "float64"
    #: Run the fused dense-path kernels (:mod:`repro.core.dense_kernels`)
    #: through a per-model workspace arena: ``Linear``/``ReLU``/interaction
    #: forward+backward and the fused BCE write into reused buffers, so the
    #: steady-state train step performs zero fresh large dense allocations.
    #: Bit-identical to the naive path in both compute dtypes; set ``False``
    #: to fall back for debugging.
    fused_dense: bool = True
    #: Compute backend for the dense path (see :mod:`repro.core.backends`):
    #: ``"numpy"`` (naive reference), ``"fused"`` (allocation-free arena
    #: kernels, bit-identical to the reference — the default) or
    #: ``"threaded"`` (fused + thread-parallel GEMMs, tolerance-bounded,
    #: auto-falling back to ``"fused"`` on single-core hosts).  Any name
    #: registered via :func:`repro.core.backends.register_backend` is
    #: accepted.  ``fused_dense=False`` overrides this to ``"numpy"``.
    backend: str = "fused"

    def __post_init__(self) -> None:
        if self.compute_dtype not in ("float32", "float64"):
            raise ValueError(
                f"compute_dtype must be 'float32' or 'float64', got {self.compute_dtype!r}"
            )
        from .backends import known_backends

        if self.backend not in known_backends():
            raise ValueError(
                f"unknown backend {self.backend!r}; registered: "
                f"{sorted(known_backends())}"
            )
        if self.num_dense < 0:
            raise ValueError(f"num_dense must be >= 0, got {self.num_dense}")
        if not self.tables:
            raise ValueError("ModelConfig needs at least one embedding table")
        dims = {t.dim for t in self.tables}
        if len(dims) != 1:
            raise ValueError(
                f"the paper uses a fixed embedding dim d across features; got {dims}"
            )
        if self.interaction is InteractionType.DOT and self.bottom_mlp.out_features != self.embedding_dim:
            raise ValueError(
                "dot interaction requires bottom MLP output width == embedding dim "
                f"({self.bottom_mlp.out_features} != {self.embedding_dim})"
            )

    # -- derived sizes -----------------------------------------------------

    @property
    def np_dtype(self):
        """The numpy dtype implied by :attr:`compute_dtype`."""
        import numpy as np

        return np.dtype(self.compute_dtype)

    @property
    def effective_backend(self) -> str:
        """The backend the model actually runs: :attr:`backend`, unless
        ``fused_dense=False`` forces the naive ``"numpy"`` reference."""
        return self.backend if self.fused_dense else "numpy"

    @property
    def num_sparse(self) -> int:
        """Number of sparse features (== number of embedding tables)."""
        return len(self.tables)

    @property
    def embedding_dim(self) -> int:
        return self.tables[0].dim

    @property
    def embedding_parameters(self) -> int:
        return sum(t.num_parameters for t in self.tables)

    @property
    def embedding_bytes(self) -> int:
        """Total FP32 embedding-table footprint in bytes."""
        return sum(t.size_bytes for t in self.tables)

    @property
    def mean_total_lookups(self) -> float:
        """Mean embedding lookups per example summed over all tables."""
        return sum(t.effective_mean_lookups for t in self.tables)

    @property
    def interaction_features(self) -> int:
        """Width of the feature-interaction output fed to the top MLP."""
        d = self.embedding_dim
        n = self.num_sparse + 1  # pooled embeddings plus projected dense
        if self.interaction is InteractionType.DOT:
            return d + n * (n - 1) // 2
        return n * d

    @property
    def mlp_parameters(self) -> int:
        bottom = self.bottom_mlp.num_parameters(self.num_dense)
        top = self.top_mlp.num_parameters(self.interaction_features)
        # final scoring layer to a single logit
        top += self.top_mlp.out_features + 1
        return bottom + top

    @property
    def total_parameters(self) -> int:
        return self.embedding_parameters + self.mlp_parameters

    @property
    def dense_parameter_bytes(self) -> int:
        return self.mlp_parameters * FP32_BYTES

    def with_batch_tables(self, **changes) -> "ModelConfig":
        """Return a copy with top-level fields replaced (convenience)."""
        return replace(self, **changes)

    def describe(self) -> dict[str, object]:
        """Summary dict in the shape of the paper's Table II."""
        return {
            "name": self.name,
            "num_sparse": self.num_sparse,
            "num_dense": self.num_dense,
            "embedding_gb": self.embedding_bytes / 1e9,
            "mean_lookups": self.mean_total_lookups / self.num_sparse,
            "bottom_mlp": self.bottom_mlp.notation(),
            "top_mlp": self.top_mlp.notation(),
            "interaction": self.interaction.value,
        }


def uniform_tables(
    num_tables: int,
    hash_size: int,
    dim: int = 64,
    mean_lookups: float = 1.0,
    truncation: int | None = None,
    prefix: str = "table",
) -> tuple[TableSpec, ...]:
    """Build ``num_tables`` identical tables — the paper's test-suite setup
    (§V fixes a constant hash size for all sparse features).
    """
    if num_tables < 1:
        raise ValueError(f"num_tables must be >= 1, got {num_tables}")
    return tuple(
        TableSpec(
            name=f"{prefix}_{i}",
            hash_size=hash_size,
            dim=dim,
            mean_lookups=mean_lookups,
            truncation=truncation,
        )
        for i in range(num_tables)
    )


def merge_shared_tables(
    tables: tuple[TableSpec, ...],
    groups: tuple[tuple[str, ...], ...],
) -> tuple[tuple[TableSpec, ...], dict[str, str]]:
    """Merge groups of semantically-similar sparse features onto shared
    physical tables (paper §III-A.2: "sparse features can be configured to
    share embedding tables to reduce the overall size of the model").

    Each group becomes one physical table named after its first feature,
    adopting the group's *maximum* hash size ("this requires a shared hash
    sizing") and the *sum* of lookup rates (every feature still performs
    its own lookups against the shared rows).  Returns the physical table
    specs plus the feature-name -> physical-table mapping consumed by
    :class:`~repro.core.embedding.EmbeddingBagCollection` and by capacity
    planning.

    Raises:
        ValueError: on unknown feature names, singleton/overlapping groups,
            or mixed embedding dimensions within a group.
    """
    by_name = {t.name: t for t in tables}
    seen: set[str] = set()
    for group in groups:
        if len(group) < 2:
            raise ValueError(f"sharing group {group} needs at least two features")
        for name in group:
            if name not in by_name:
                raise ValueError(f"unknown feature {name!r} in sharing group")
            if name in seen:
                raise ValueError(f"feature {name!r} appears in multiple groups")
            seen.add(name)
        dims = {by_name[name].dim for name in group}
        if len(dims) != 1:
            raise ValueError(f"sharing group {group} mixes embedding dims {dims}")

    feature_to_table: dict[str, str] = {}
    physical: list[TableSpec] = []
    grouped_by_leader = {group[0]: group for group in groups}
    for spec in tables:
        if spec.name in seen and spec.name not in grouped_by_leader:
            # non-leader member: points at its leader's physical table
            continue
        if spec.name in grouped_by_leader:
            group = grouped_by_leader[spec.name]
            members = [by_name[name] for name in group]
            truncations = [m.truncation for m in members if m.truncation is not None]
            merged = TableSpec(
                name=spec.name,
                hash_size=max(m.hash_size for m in members),
                dim=spec.dim,
                mean_lookups=sum(m.mean_lookups for m in members),
                truncation=max(truncations) if truncations else None,
            )
            physical.append(merged)
            for name in group:
                feature_to_table[name] = spec.name
        else:
            physical.append(spec)
            feature_to_table[spec.name] = spec.name
    return tuple(physical), feature_to_table
