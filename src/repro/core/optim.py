"""Optimizers with sparse-aware updates.

The dense half of the model (MLP stacks) is updated with ordinary dense
steps; embedding tables receive *row-sparse* updates touching only the rows
looked up in the batch — production tables have millions of rows (Figure 6),
so dense embedding updates are never materialized.

SGD and Adagrad are provided (Adagrad is the de-facto standard for sparse
embedding training); EASGD's elastic update lives in
:mod:`repro.distributed.sync` since it couples multiple workers.
"""

from __future__ import annotations

import numpy as np

from . import dense_kernels
from .dense_kernels import Workspace
from .embedding import EmbeddingTable, SparseGrad
from .mlp import Parameter

__all__ = ["SGD", "Adagrad"]


class _OptimizerBase:
    """Shared bookkeeping: the optimizer owns dense params and sparse tables.

    ``fused=True`` (default) runs the allocation-free update kernels of
    :mod:`repro.core.dense_kernels` through a private buffer arena; the
    updates are bit-identical to the naive temporary-per-operation path
    (``fused=False``), which is kept for debugging.
    """

    def __init__(
        self,
        dense_params: list[Parameter],
        tables: list[EmbeddingTable] | None = None,
        lr: float = 0.01,
        fused: bool = True,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.dense_params = list(dense_params)
        self.tables = list(tables or [])
        self.lr = lr
        self.fused = fused
        self.workspace: Workspace | None = Workspace() if fused else None

    def _row_buffers(self, rows: int, dim: int, dtype) -> tuple[np.ndarray, np.ndarray]:
        """Two ``(rows, dim)`` scratch slabs from the capacity-grown arena
        (the row count varies per batch; steady state stops allocating)."""
        ws = self.workspace
        return (
            ws.get_rows("opt.rows.t", rows, (dim,), dtype),
            ws.get_rows("opt.rows.u", rows, (dim,), dtype),
        )

    def zero_grad(self) -> None:
        for p in self.dense_params:
            p.zero_grad()
        for t in self.tables:
            t.zero_grad()

    def step(self) -> None:
        for i, p in enumerate(self.dense_params):
            self._dense_step(i, p)
        for i, t in enumerate(self.tables):
            grad = t.pop_grad()
            if grad is not None:
                self._sparse_step(i, t, grad)

    # subclass hooks ---------------------------------------------------------

    def _dense_step(self, idx: int, p: Parameter) -> None:
        raise NotImplementedError

    def _sparse_step(self, idx: int, table: EmbeddingTable, grad: SparseGrad) -> None:
        raise NotImplementedError


class SGD(_OptimizerBase):
    """Plain stochastic gradient descent, optionally with momentum on the
    dense parameters (momentum is not applied to embedding rows: momentum
    state for multi-million-row tables would double their footprint, and
    sparse momentum is ill-defined for rarely-touched rows)."""

    def __init__(
        self,
        dense_params: list[Parameter],
        tables: list[EmbeddingTable] | None = None,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        fused: bool = True,
    ) -> None:
        super().__init__(dense_params, tables, lr, fused=fused)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = (
            [np.zeros_like(p.value) for p in self.dense_params] if momentum else None
        )

    def _dense_step(self, idx: int, p: Parameter) -> None:
        velocity = self._velocity[idx] if self._velocity is not None else None
        if self.workspace is not None:
            dense_kernels.sgd_dense_step(
                p.value,
                p.grad,
                self.lr,
                self.workspace.get("opt.t", p.value.shape, p.value.dtype),
                weight_decay=self.weight_decay,
                momentum=self.momentum,
                velocity=velocity,
            )
            return
        dense_kernels.naive_sgd_dense_step(
            p.value,
            p.grad,
            self.lr,
            weight_decay=self.weight_decay,
            momentum=self.momentum,
            velocity=velocity,
        )

    def _sparse_step(self, idx: int, table: EmbeddingTable, grad: SparseGrad) -> None:
        if self.workspace is not None:
            u = self.workspace.get_rows(
                "opt.rows.u", len(grad.rows), grad.values.shape[1:], grad.values.dtype
            )
            np.multiply(grad.values, self.lr, out=u)
            table.weight[grad.rows] -= u
            return
        table.weight[grad.rows] -= self.lr * grad.values


class Adagrad(_OptimizerBase):
    """Adagrad with per-row accumulator state for embedding tables.

    The accumulator doubles the memory footprint of each table — exactly the
    optimizer-state overhead that makes large models spill out of GPU HBM in
    the paper's placement analysis (§IV-B.1).
    """

    def __init__(
        self,
        dense_params: list[Parameter],
        tables: list[EmbeddingTable] | None = None,
        lr: float = 0.01,
        eps: float = 1e-10,
        initial_accumulator: float = 0.0,
        fused: bool = True,
    ) -> None:
        super().__init__(dense_params, tables, lr, fused=fused)
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if initial_accumulator < 0:
            raise ValueError("initial_accumulator must be >= 0")
        self.eps = eps
        self._dense_state = [
            np.full_like(p.value, initial_accumulator) for p in self.dense_params
        ]
        self._table_state = [
            np.full_like(t.weight, initial_accumulator) for t in self.tables
        ]

    def _dense_step(self, idx: int, p: Parameter) -> None:
        state = self._dense_state[idx]
        if self.workspace is not None:
            dense_kernels.adagrad_dense_step(
                p.value,
                p.grad,
                state,
                self.lr,
                self.eps,
                self.workspace.get("opt.t", p.value.shape, p.value.dtype),
                self.workspace.get("opt.u", p.value.shape, p.value.dtype),
            )
            return
        dense_kernels.naive_adagrad_dense_step(p.value, p.grad, state, self.lr, self.eps)

    def _sparse_step(self, idx: int, table: EmbeddingTable, grad: SparseGrad) -> None:
        # ``SparseGrad.rows`` are coalesced (sorted unique), so the
        # single-gather/single-scatter update below is exact; see the
        # regression test pinning bit-identity against the historical
        # three-pass form.
        if self.workspace is not None:
            t, u = self._row_buffers(
                len(grad.rows), grad.values.shape[1], grad.values.dtype
            )
            dense_kernels.adagrad_sparse_step(
                table.weight,
                self._table_state[idx],
                grad.rows,
                grad.values,
                self.lr,
                self.eps,
                t,
                u,
            )
            return
        dense_kernels.naive_adagrad_sparse_step(
            table.weight,
            self._table_state[idx],
            grad.rows,
            grad.values,
            self.lr,
            self.eps,
        )

    def state_bytes(self) -> int:
        """Optimizer-state footprint (used by the placement planner)."""
        dense = sum(s.nbytes for s in self._dense_state)
        sparse = sum(s.nbytes for s in self._table_state)
        return dense + sparse
