"""Optimizers with sparse-aware updates.

The dense half of the model (MLP stacks) is updated with ordinary dense
steps; embedding tables receive *row-sparse* updates touching only the rows
looked up in the batch — production tables have millions of rows (Figure 6),
so dense embedding updates are never materialized.

SGD and Adagrad are provided (Adagrad is the de-facto standard for sparse
embedding training); EASGD's elastic update lives in
:mod:`repro.distributed.sync` since it couples multiple workers.
"""

from __future__ import annotations

import numpy as np

from .backends import Backend, resolve_backend
from .dense_kernels import Workspace
from .embedding import EmbeddingTable, SparseGrad
from .mlp import Parameter

__all__ = ["SGD", "Adagrad"]


class _OptimizerBase:
    """Shared bookkeeping: the optimizer owns dense params and sparse tables.

    Updates route through the compute-backend seam
    (:mod:`repro.core.backends`).  ``fused=True`` (default) selects the
    ``"fused"`` backend — the allocation-free update kernels of
    :mod:`repro.core.dense_kernels` through a private buffer arena,
    bit-identical to the naive path — and ``fused=False`` the ``"numpy"``
    reference (kept for debugging).  ``backend`` overrides either with an
    explicit registered name or instance (e.g. the model's own backend).
    """

    def __init__(
        self,
        dense_params: list[Parameter],
        tables: list[EmbeddingTable] | None = None,
        lr: float = 0.01,
        fused: bool = True,
        backend: Backend | str | None = None,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.dense_params = list(dense_params)
        self.tables = list(tables or [])
        self.lr = lr
        if backend is None:
            backend = "fused" if fused else "numpy"
        self.backend: Backend = resolve_backend(backend)
        self.fused = self.backend.uses_workspace
        self.workspace: Workspace | None = (
            Workspace() if self.backend.uses_workspace else None
        )

    def zero_grad(self) -> None:
        for p in self.dense_params:
            p.zero_grad()
        for t in self.tables:
            t.zero_grad()

    def step(self) -> None:
        self.dense_step()
        for i, t in enumerate(self.tables):
            grad = t.pop_grad()
            if grad is not None:
                self._sparse_step(i, t, grad)

    def dense_step(self) -> None:
        """Apply the dense half of :meth:`step` only.

        The hybrid-parallel trainer (:mod:`repro.distributed.mp`) sequences
        the two halves itself: dense parameters update on every replica
        after the allreduce, while sparse updates run only on each shard's
        owner from gradients merged across workers (:meth:`sparse_update`).
        """
        for i, p in enumerate(self.dense_params):
            self._dense_step(i, p)

    def sparse_update(self, idx: int, grad: SparseGrad) -> None:
        """Apply one explicit sparse update to table ``idx``.

        Unlike :meth:`step`, the gradient is supplied by the caller rather
        than popped off the table — the mp shard owner passes the
        rank-order-merged gradient of all workers' contributions here.
        """
        self._sparse_step(idx, self.tables[idx], grad)

    # subclass hooks ---------------------------------------------------------

    def _dense_step(self, idx: int, p: Parameter) -> None:
        raise NotImplementedError

    def _sparse_step(self, idx: int, table: EmbeddingTable, grad: SparseGrad) -> None:
        raise NotImplementedError


class SGD(_OptimizerBase):
    """Plain stochastic gradient descent, optionally with momentum on the
    dense parameters (momentum is not applied to embedding rows: momentum
    state for multi-million-row tables would double their footprint, and
    sparse momentum is ill-defined for rarely-touched rows)."""

    def __init__(
        self,
        dense_params: list[Parameter],
        tables: list[EmbeddingTable] | None = None,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        fused: bool = True,
        backend: Backend | str | None = None,
    ) -> None:
        super().__init__(dense_params, tables, lr, fused=fused, backend=backend)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = (
            [np.zeros_like(p.value) for p in self.dense_params] if momentum else None
        )

    def _dense_step(self, idx: int, p: Parameter) -> None:
        velocity = self._velocity[idx] if self._velocity is not None else None
        self.backend.sgd_dense_step(
            p.value,
            p.grad,
            self.lr,
            self.workspace,
            weight_decay=self.weight_decay,
            momentum=self.momentum,
            velocity=velocity,
        )

    def _sparse_step(self, idx: int, table: EmbeddingTable, grad: SparseGrad) -> None:
        self.backend.sgd_sparse_step(
            table.weight, grad.rows, grad.values, self.lr, self.workspace
        )


class Adagrad(_OptimizerBase):
    """Adagrad with per-row accumulator state for embedding tables.

    The accumulator doubles the memory footprint of each table — exactly the
    optimizer-state overhead that makes large models spill out of GPU HBM in
    the paper's placement analysis (§IV-B.1).
    """

    def __init__(
        self,
        dense_params: list[Parameter],
        tables: list[EmbeddingTable] | None = None,
        lr: float = 0.01,
        eps: float = 1e-10,
        initial_accumulator: float = 0.0,
        fused: bool = True,
        backend: Backend | str | None = None,
    ) -> None:
        super().__init__(dense_params, tables, lr, fused=fused, backend=backend)
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if initial_accumulator < 0:
            raise ValueError("initial_accumulator must be >= 0")
        self.eps = eps
        self._dense_state = [
            np.full_like(p.value, initial_accumulator) for p in self.dense_params
        ]
        self._table_state = [
            np.full_like(t.weight, initial_accumulator) for t in self.tables
        ]

    def adopt_table_state(self, idx: int, state: np.ndarray) -> None:
        """Swap table ``idx``'s accumulator for externally-owned storage.

        Mirror of :meth:`EmbeddingTable.adopt_weight` for the optimizer
        state: the mp shard owner keeps each table's Adagrad accumulator in
        the same shared-memory segment family as its weights, so a restarted
        or co-located process sees one consistent (weight, accumulator)
        pair.  Shape/dtype must match; values are not copied.
        """
        state = np.asarray(state)
        current = self._table_state[idx]
        if state.shape != current.shape:
            raise ValueError(f"adopted state shape {state.shape} != {current.shape}")
        if state.dtype != current.dtype:
            raise ValueError(f"adopted state dtype {state.dtype} != {current.dtype}")
        self._table_state[idx] = state

    def _dense_step(self, idx: int, p: Parameter) -> None:
        self.backend.adagrad_dense_step(
            p.value, p.grad, self._dense_state[idx], self.lr, self.eps, self.workspace
        )

    def _sparse_step(self, idx: int, table: EmbeddingTable, grad: SparseGrad) -> None:
        # ``SparseGrad.rows`` are coalesced (sorted unique), so the fused
        # single-gather/single-scatter update is exact; see the conformance
        # test pinning bit-identity against the historical three-pass form.
        self.backend.adagrad_sparse_step(
            table.weight,
            self._table_state[idx],
            grad.rows,
            grad.values,
            self.lr,
            self.eps,
            self.workspace,
        )

    def state_bytes(self) -> int:
        """Optimizer-state footprint (used by the placement planner)."""
        dense = sum(s.nbytes for s in self._dense_state)
        sparse = sum(s.nbytes for s in self._table_state)
        return dense + sparse
