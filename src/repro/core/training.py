"""Single-node training loop and evaluation harness.

This is the functional training path used by the accuracy experiments
(Figure 15): train a numpy DLRM on synthetic click data for a fixed example
budget, evaluate normalized entropy on a held-out set, and compare across
batch sizes / sync modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from ..obs.registry import MetricsRegistry
from ..obs.tracer import NULL_TRACER, NullTracer, Tracer
from .loss import BCEWithLogitsLoss, sigmoid
from .metrics import auc, normalized_entropy
from .model import Batch, DLRM

__all__ = ["TrainResult", "Trainer", "evaluate"]


@dataclass
class TrainResult:
    """Outcome of one training run."""

    steps: int
    examples_seen: int
    final_loss: float
    loss_history: list[float] = field(default_factory=list)
    #: Stall ledger of the prefetch pipeline (``None`` for inline runs):
    #: ``prep_busy_s`` / ``prep_stall_s`` / ``compute_stall_s`` /
    #: ``overlap_fraction`` / ``batches`` — see :mod:`repro.pipeline`.
    pipeline: dict | None = None

    @property
    def smoothed_final_loss(self) -> float:
        """Mean of the last 10% of steps — less noisy than the last batch."""
        tail = max(1, len(self.loss_history) // 10)
        return float(np.mean(self.loss_history[-tail:]))


def evaluate(model: DLRM, batches: Iterable[Batch]) -> dict[str, float]:
    """Evaluate NE / log-loss / AUC over held-out batches."""
    all_preds: list[np.ndarray] = []
    all_labels: list[np.ndarray] = []
    for batch in batches:
        all_preds.append(model.predict_proba(batch))
        all_labels.append(batch.labels)
    if not all_preds:
        raise ValueError("no evaluation batches provided")
    preds = np.concatenate(all_preds)
    labels = np.concatenate(all_labels)
    result = {
        "normalized_entropy": normalized_entropy(preds, labels),
        "log_loss": float(
            -np.mean(
                labels * np.log(np.clip(preds, 1e-12, 1))
                + (1 - labels) * np.log(np.clip(1 - preds, 1e-12, 1))
            )
        ),
        "num_examples": float(len(labels)),
    }
    if 0 < labels.sum() < len(labels):
        result["auc"] = auc(preds, labels)
    return result


class Trainer:
    """Drives forward/backward/step over a batch stream.

    The optimizer is built by ``optimizer_factory(model)`` so hyper-parameter
    sweeps (:mod:`repro.core.tuning`) can rebuild fresh state per trial.
    """

    def __init__(
        self,
        model: DLRM,
        optimizer_factory: Callable[[DLRM], object],
        loss: BCEWithLogitsLoss | None = None,
        tracer: Tracer | NullTracer | None = None,
        metrics: "MetricsRegistry | None" = None,
        pipeline: "bool | object" = False,
    ) -> None:
        self.model = model
        self.optimizer = optimizer_factory(model)
        #: The model's compute backend (``None`` for models predating the
        #: backend seam); the default loss shares it and trace spans carry
        #: its name.
        self.backend = getattr(model, "backend", None)
        # The default loss joins the model's backend and workspace arena so
        # e.g. the fused sigmoid+BCE kernel runs allocation-free
        # (bit-identical either way).
        self.loss = loss or BCEWithLogitsLoss(
            workspace=getattr(model, "workspace", None),
            backend=self.backend,
        )
        #: Whether the model runs a workspace-backed (fused-style) dense
        #: path (annotated on trace spans so Chrome traces distinguish
        #: fast-path slices).
        self.fused = getattr(model, "workspace", None) is not None
        self._backend_name = getattr(
            self.backend, "name", "fused" if self.fused else "numpy"
        )
        #: Observability hook (see :mod:`repro.obs`); defaults to the no-op
        #: tracer, so instrumentation costs nothing unless opted in.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional :class:`repro.obs.MetricsRegistry`.  When the model's
        #: embedding tables are tiered stores (:mod:`repro.tiering`), each
        #: step publishes per-table tier counters (hits/misses/promotions)
        #: and simulated-cost gauges, and emits a ``tier`` trace span.
        self.metrics = metrics
        #: Tiered embedding tables, detected by duck type (``is_tiered``)
        #: so core never imports repro.tiering.
        self._tiered_tables = [
            t for t in model.embedding_tables() if getattr(t, "is_tiered", False)
        ]
        self._tier_snapshots = {
            t.spec.name: t.stats.snapshot() for t in self._tiered_tables
        }
        #: Opt-in prefetch pipelining (``True`` or a
        #: :class:`repro.pipeline.PipelineConfig`): :meth:`train` runs all
        #: model-state-independent batch preparation on a background thread
        #: behind a double buffer.  Bit-identical to inline training —
        #: pinned by ``tests/test_pipeline.py``.  Lazy import: repro.core
        #: must not depend on repro.pipeline at module level.
        from ..pipeline import as_pipeline_config

        self.pipeline_config = as_pipeline_config(pipeline)
        #: Stall ledger of the most recent pipelined :meth:`train` call.
        self.pipeline_stats = None
        self._step_index = 0

    # -- kill-and-restore (see repro.resilience.harness) ---------------------

    @property
    def step_index(self) -> int:
        """Number of optimizer steps taken so far (resume cursor)."""
        return self._step_index

    def _checkpointable_optimizer(self):
        """The optimizer, when :mod:`repro.core.checkpoint` can serialize
        its state (Adagrad-shaped); ``None`` otherwise."""
        opt = self.optimizer
        if hasattr(opt, "_dense_state") and hasattr(opt, "_table_state"):
            return opt
        return None

    def save_checkpoint(self, path) -> int:
        """Write model + optimizer state to ``path``; returns bytes written.

        Together with :meth:`load_checkpoint` this is the kill-and-restore
        path: a run interrupted after step *k* and restored from a step-*k*
        checkpoint continues bit-identically to an uninterrupted run (the
        guarantee pinned by ``tests/test_resilience.py``).
        """
        from .checkpoint import save_checkpoint

        with self.tracer.span("checkpoint_save", "checkpoint", step=self._step_index):
            return save_checkpoint(path, self.model, self._checkpointable_optimizer())

    def load_checkpoint(self, path, step_index: int | None = None) -> None:
        """Restore model + optimizer state in place.

        ``step_index`` (optional) resets the step cursor so traces/logs of
        a resumed run line up with the original timeline; it does not
        affect the numerics.
        """
        from .checkpoint import load_checkpoint

        with self.tracer.span("checkpoint_restore", "checkpoint"):
            load_checkpoint(path, self.model, self._checkpointable_optimizer())
        if step_index is not None:
            if step_index < 0:
                raise ValueError("step_index must be >= 0")
            self._step_index = step_index

    def train_step(self, batch: Batch) -> float:
        """One forward/backward/update; returns the batch loss."""
        tracer = self.tracer
        fused = self.fused
        with tracer.span(
            "train_step", "iteration",
            step=self._step_index, batch=batch.size, fused=fused,
            backend=self._backend_name,
        ):
            self.optimizer.zero_grad()
            with tracer.span("forward", "compute", fused=fused):
                with tracer.span("model_forward", "compute"):
                    logits = self.model.forward(batch)
                with tracer.span("loss_forward", "compute"):
                    loss_value = self.loss.forward(logits, batch.labels)
            with tracer.span("backward", "compute", fused=fused):
                with tracer.span("loss_backward", "compute"):
                    grad = self.loss.backward()
                with tracer.span("model_backward", "compute"):
                    self.model.backward(grad)
            with tracer.span("optimizer_step", "compute", fused=fused):
                self.optimizer.step()
            if self._tiered_tables:
                self._publish_tier_metrics(getattr(batch, "plans", None))
        self._step_index += 1
        return loss_value

    def _publish_tier_metrics(self, plans=None) -> None:
        """Emit per-table tier counters/gauges and a ``tier`` trace span.

        Counters carry the per-step *delta* (so they accumulate correctly
        and merge across trainers); gauges carry run totals.  Runs without
        a metrics registry still get the trace span — tier placement is
        part of the step timeline either way.

        Pipelined batches carry their tier accounting in the plan
        (captured on the prep thread at plan time); the live-stats delta
        would otherwise blend in whatever future batches the prep thread
        has already ingested.
        """
        for table in self._tiered_tables:
            name = table.spec.name
            plan = plans.get(name) if plans is not None else None
            if plan is not None and plan.tier_delta is not None:
                delta = plan.tier_delta
            else:
                delta = table.stats.delta(self._tier_snapshots[name])
            self._tier_snapshots[name] = table.stats.snapshot()
            with self.tracer.span(
                "tier", "tier",
                table=name, step=self._step_index,
                hits=delta.hot_hits, misses=delta.cold_misses,
                promotions=delta.promotions,
                overhead_s=delta.overhead_s,
            ):
                pass
            if self.metrics is None:
                continue
            labels = {"table": name}
            m = self.metrics
            m.counter("tier_hot_hits").labels(**labels).inc(delta.hot_hits)
            m.counter("tier_cold_misses").labels(**labels).inc(delta.cold_misses)
            m.counter("tier_promotions").labels(**labels).inc(delta.promotions)
            m.counter("tier_rejected").labels(**labels).inc(delta.rejected)
            m.counter("tier_overhead_s").labels(**labels).inc(delta.overhead_s)
            m.gauge("tier_hit_rate").labels(**labels).set(table.stats.hit_rate)
            m.gauge("tier_hot_rows").labels(**labels).set(
                len(table.hot) * table.chunk_rows
            )

    def train(
        self,
        batches: Iterator[Batch],
        max_examples: int | None = None,
        max_steps: int | None = None,
    ) -> TrainResult:
        """Train until an example or step budget is exhausted.

        Figure 15's protocol fixes the *example* budget so that larger batch
        sizes take proportionally fewer optimizer steps — the mechanism
        behind the accuracy gap the paper reports.

        With ``pipeline=`` enabled on the trainer, batch preparation runs
        on a prefetch thread (see :mod:`repro.pipeline`): results are
        bit-identical, but the source iterator is pulled up to
        ``depth + 1`` batches ahead of the consuming step — callers
        sharing one iterator across multiple ``train`` calls (checkpoint
        resume) should account for the lookahead.
        """
        if max_examples is None and max_steps is None:
            raise ValueError("provide max_examples and/or max_steps")
        if self.pipeline_config is not None:
            from ..pipeline import PrefetchPipeline

            embeddings = self.model.embeddings

            def plan_fn(batch: Batch):
                return embeddings.plan_batch(batch.sparse)

            prefetch = PrefetchPipeline(
                iter(batches), plan_fn, self.pipeline_config, tracer=self.tracer
            )
            with prefetch:
                result = self._train_loop(prefetch, max_examples, max_steps)
            self.pipeline_stats = prefetch.stats
            result.pipeline = prefetch.stats.as_dict()
            if self.metrics is not None:
                m = self.metrics
                m.counter("pipeline_prep_busy_s").inc(prefetch.stats.prep_busy_s)
                m.counter("pipeline_prep_stall_s").inc(prefetch.stats.prep_stall_s)
                m.counter("pipeline_compute_stall_s").inc(
                    prefetch.stats.compute_stall_s
                )
                m.gauge("pipeline_overlap_fraction").set(
                    prefetch.stats.overlap_fraction
                )
            return result
        return self._train_loop(batches, max_examples, max_steps)

    def _train_loop(
        self,
        batches: Iterator[Batch],
        max_examples: int | None,
        max_steps: int | None,
    ) -> TrainResult:
        budget = " and ".join(
            part
            for part in (
                f"max_examples={max_examples}" if max_examples is not None else "",
                f"max_steps={max_steps}" if max_steps is not None else "",
            )
            if part
        )
        history: list[float] = []
        examples = 0
        steps = 0
        stream_ended = False
        batches = iter(batches)
        # Check budgets *before* pulling from the stream: the iterator may
        # be shared (e.g. resuming after a checkpoint restore), and pulling
        # a batch that is then discarded would silently skip data.
        while True:
            if max_steps is not None and steps >= max_steps:
                break
            if max_examples is not None and examples >= max_examples:
                break
            try:
                batch = next(batches)
            except StopIteration:
                stream_ended = True
                break
            history.append(self.train_step(batch))
            steps += 1
            # The final batch may overshoot the example budget; every one of
            # its examples contributed to the last gradient, so all of them
            # count toward ``examples_seen`` (it can exceed ``max_examples``
            # by at most one batch).
            examples += batch.size
        if steps == 0:
            if stream_ended:
                raise ValueError(
                    f"batch stream was empty before the first step (budget: {budget})"
                )
            raise ValueError(f"budget permits no training steps (budget: {budget})")
        if stream_ended:
            # Either budget being met counts as completion; otherwise the
            # stream ran dry early and silently returning would misreport
            # the run as having consumed its budget.
            steps_met = max_steps is not None and steps >= max_steps
            examples_met = max_examples is not None and examples >= max_examples
            if not (steps_met or examples_met):
                raise ValueError(
                    f"batch stream ended after {examples} examples ({steps} steps), "
                    f"short of the training budget ({budget})"
                )
        return TrainResult(
            steps=steps,
            examples_seen=examples,
            final_loss=history[-1],
            loss_history=history,
        )
