"""Fused dense-path kernels and the step-level workspace arena.

PR 2's sparse kernels (:mod:`repro.core.kernels`) moved the embedding half
of the train step off the profile; the measured hot path of every
functional-training experiment is now the *dense* half — ``Linear``/
``ReLU``/``DotInteraction`` backward, Adagrad's temporary-heavy updates and
the BCE loss.  That matches the paper's own characterization: on CPU
platforms the bottom/top MLP stacks dominate model compute (§III-A.4,
Fig 5), which is why Kalamkar et al. (arXiv:2005.04680) build fused,
allocation-free BLAS kernels for DLRM MLPs on CPU clusters.

This module provides the same treatment for our numpy training step:

* :class:`Workspace` — a per-model buffer arena.  Buffers are keyed by
  ``(key, shape, dtype)`` and reused across steps, so the steady-state
  train step performs **zero fresh large allocations** on the dense path
  (every matmul/elementwise op writes into a preallocated buffer via
  ``out=``).  Reuse is observable through the ``dense.workspace.hits`` /
  ``dense.workspace.misses`` counters.
* Fused kernels — ``linear_forward``/``linear_backward`` (GEMM into
  workspace buffers, gradient accumulation without the ``grad_out.T @ x``
  temporary), ``relu_forward``/``relu_backward`` (in-place ``np.maximum``
  forward, mask-free sign-based backward), ``bce_forward``/``bce_backward``
  (one ``exp(-|x|)`` pass shared between the loss value and the logit
  gradient — no double sigmoid), ``dot_backward`` (triangle scattered once
  into both halves, no dense zeros+symmetrize round trip), and fused
  in-place Adagrad/SGD steps with no ``grad*grad`` / ``sqrt`` temporaries.

Numerical contract
------------------
Every fused kernel is **bit-identical** to its ``naive_*`` reference (the
historical implementation), in both float64 and float32 compute modes, in
the :func:`numpy.array_equal` sense used by :mod:`repro.core.kernels`'s
fused sparse paths.  The fusions only (a) reuse output storage via
``out=`` — numpy ufuncs and ``matmul`` produce the same values regardless
of where the result lands — and (b) re-associate nothing: every fused
sequence applies the exact same elementwise operations in the exact same
order as the reference expression.  Two details worth calling out:

* the sign-based ReLU backward multiplies by a boolean mask, which maps a
  negative gradient at an inactive unit to ``-0.0`` where ``np.where``
  produces ``+0.0``; a final ``+ 0.0`` pass normalizes the zero sign so the
  result is bit-identical, not merely value-equal;
* the fused BCE evaluates the stable sigmoid from the shared
  ``e = exp(-|x|)``: for ``x >= 0``, ``exp(-x) == exp(-|x|)`` elementwise,
  so ``1/(1+e)`` and ``e/(1+e)`` reproduce the two branches of
  :func:`stable_sigmoid` exactly.

Opt-out: set ``ModelConfig(fused_dense=False)`` to fall back to the naive
layer implementations for debugging (the optimizers take ``fused=False``).
"""

from __future__ import annotations

import numpy as np

from ..obs.registry import MetricsRegistry

__all__ = [
    "Workspace",
    "stable_sigmoid",
    "linear_forward",
    "naive_linear_forward",
    "linear_backward",
    "naive_linear_backward",
    "relu_forward",
    "naive_relu_forward",
    "relu_backward",
    "naive_relu_backward",
    "bce_forward",
    "naive_bce_forward",
    "bce_backward",
    "naive_bce_backward",
    "dot_forward",
    "naive_dot_forward",
    "dot_backward",
    "naive_dot_backward",
    "adagrad_dense_step",
    "naive_adagrad_dense_step",
    "sgd_dense_step",
    "naive_sgd_dense_step",
    "adagrad_sparse_step",
    "naive_adagrad_sparse_step",
]


class Workspace:
    """A buffer arena for the fused dense train step.

    ``get(key, shape, dtype)`` returns a preallocated buffer, allocating on
    first use and reusing it on every subsequent call with the same
    ``(key, shape, dtype)``.  Callers use distinct keys per layer/slot so no
    two live tensors ever alias.  Distinct batch sizes get distinct buffers
    (exact-shape matching avoids reallocation ping-pong when two batch
    sizes interleave, e.g. a ragged final batch); the arena's footprint is
    bounded by the number of distinct shapes seen, which for a training run
    is the per-layer activation set times the number of batch sizes.

    The arena is observable: ``dense.workspace.hits`` / ``.misses``
    counters tick on every ``get`` (a *miss* is a fresh allocation), so a
    steady-state train step shows only hits.

    Pickling drops the buffers (they are pure caches), so models carrying a
    workspace remain cheap to ship through :class:`repro.runtime.SweepRunner`
    process pools — each worker re-warms its own arena.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._buffers: dict[tuple, np.ndarray] = {}
        self._owned: set[int] = set()
        # ``get`` runs several times per layer per step; resolve the two
        # counters once (registry lookup per call is measurable on small
        # models) and bump ``.value`` directly on the hot path.
        self._hits = self.metrics.counter("dense.workspace.hits")
        self._misses = self.metrics.counter("dense.workspace.misses")

    # -- allocation ----------------------------------------------------------

    def get(self, key, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Return a reusable buffer of exactly ``shape``/``dtype`` for ``key``.

        The buffer's contents are unspecified (callers must fully overwrite
        it); the first call allocates, subsequent calls reuse.
        """
        slot = (key, shape, np.dtype(dtype))
        buf = self._buffers.get(slot)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[slot] = buf
            self._owned.add(id(buf))
            self._misses.value += 1.0
        else:
            self._hits.value += 1.0
        return buf

    def get_rows(self, key, rows: int, trailing: tuple[int, ...], dtype) -> np.ndarray:
        """Return a ``(rows, *trailing)`` view of a capacity-grown buffer.

        For slots whose leading dimension varies every step (e.g. the number
        of unique embedding rows touched by a batch), exact-shape matching
        would allocate every step.  Instead the arena keeps one buffer per
        ``(key, trailing, dtype)`` whose capacity grows geometrically, and
        returns a leading-dimension slice — steady state reaches a high-water
        mark and stops allocating.
        """
        slot = ("rows", key, tuple(trailing), np.dtype(dtype))
        buf = self._buffers.get(slot)
        if buf is None or buf.shape[0] < rows:
            capacity = rows if buf is None else max(rows, 2 * buf.shape[0])
            buf = np.empty((capacity, *trailing), dtype=dtype)
            self._buffers[slot] = buf
            self._owned.add(id(buf))
            self._misses.value += 1.0
        else:
            self._hits.value += 1.0
        return buf[:rows]

    # -- introspection -------------------------------------------------------

    def owns(self, arr: np.ndarray) -> bool:
        """True if ``arr`` is an arena buffer (or a view of one).

        The in-place fusions (ReLU forward, ReLU backward on the incoming
        gradient) are only legal on arena-owned storage — never on arrays
        the caller handed us.
        """
        seen = 0
        while isinstance(arr, np.ndarray):
            if id(arr) in self._owned:
                return True
            base = arr.base
            if base is None or seen > 8:
                return False
            arr = base
            seen += 1
        return False

    def total_bytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def stats(self) -> dict[str, int]:
        """Arena counters + footprint (mirrors ``runtime.cache.stats``)."""
        return {
            "buffers": len(self._buffers),
            "bytes": self.total_bytes(),
            "hits": int(self._hits.value),
            "misses": int(self._misses.value),
        }

    def clear(self) -> None:
        self._buffers.clear()
        self._owned.clear()

    # -- pickling (SweepRunner process pools) --------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_buffers"] = {}
        state["_owned"] = set()
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)


# ---------------------------------------------------------------------------
# stable sigmoid (single shared implementation — see loss.py / mlp.py)
# ---------------------------------------------------------------------------


def stable_sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable logistic function, dtype-preserving.

    The single implementation behind both :class:`repro.core.mlp.Sigmoid`
    and :func:`repro.core.loss.sigmoid` (historically two copies, one of
    which silently upcast float32 logits to float64).  Float inputs keep
    their dtype; non-float inputs (ints/bools) compute in float64.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(np.float64)
    if out is None:
        out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


# ---------------------------------------------------------------------------
# Linear
# ---------------------------------------------------------------------------


def naive_linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray
) -> np.ndarray:
    """Reference: ``y = x @ W.T + b`` with fresh output/temporary."""
    return x @ weight.T + bias


def linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Fused: GEMM straight into ``out``, bias added in place.

    Bit-identity: ``matmul`` computes the same values regardless of output
    storage, and ``out += bias`` applies the identical broadcast add.
    """
    np.matmul(x, weight.T, out=out)
    out += bias
    return out


def naive_linear_backward(
    grad_out: np.ndarray, x: np.ndarray, weight: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference: returns ``(dW, db, dx)`` as fresh arrays."""
    return grad_out.T @ x, grad_out.sum(axis=0), grad_out @ weight


def linear_backward(
    grad_out: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    weight_grad: np.ndarray,
    bias_grad: np.ndarray,
    grad_in: np.ndarray,
    wg_buf: np.ndarray,
    bg_buf: np.ndarray,
) -> np.ndarray:
    """Fused: accumulate ``dW``/``db`` into the parameter gradients through
    reused scratch buffers (no fresh ``grad_out.T @ x`` temporary) and write
    ``dx`` into ``grad_in``.

    Bit-identity: ``+=`` of the buffered GEMM result matches ``+=`` of a
    fresh temporary holding the same values; ``np.sum(..., out=)`` and
    ``np.matmul(..., out=)`` likewise only change where results land.
    """
    np.matmul(grad_out.T, x, out=wg_buf)
    weight_grad += wg_buf
    np.sum(grad_out, axis=0, out=bg_buf)
    bias_grad += bg_buf
    np.matmul(grad_out, weight, out=grad_in)
    return grad_in


# ---------------------------------------------------------------------------
# ReLU
# ---------------------------------------------------------------------------


def naive_relu_forward(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Reference: returns ``(y, mask)`` the way the historical layer did."""
    mask = x > 0
    return np.where(mask, x, 0.0), mask


def relu_forward(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Fused: ``np.maximum(x, 0, out=out)`` — ``out`` may be ``x`` itself
    (in-place) when the caller owns the storage.

    Bit-identity: for any non-NaN ``v``, ``maximum(v, 0.0)`` equals
    ``where(v > 0, v, 0.0)`` including the sign of zero (both return
    ``+0.0`` for ``v = ±0.0``).  No mask is materialized: the backward
    recovers activity from the *output* sign (``y > 0  ⇔  x > 0``).
    """
    return np.maximum(x, 0.0, out=out)


def naive_relu_backward(grad_out: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Reference: ``np.where(mask, grad_out, 0.0)`` with a fresh output."""
    return np.where(mask, grad_out, 0.0)


def relu_backward(
    grad_out: np.ndarray, y: np.ndarray, out: np.ndarray, mask_buf: np.ndarray
) -> np.ndarray:
    """Fused mask-free backward: ``dx = grad_out * (y > 0)``.

    ``out`` may alias ``grad_out`` (in-place on the incoming gradient
    buffer).  The boolean multiply maps a negative gradient at an inactive
    unit to ``-0.0``; the final ``+ 0.0`` normalizes zero signs so the
    result is bit-identical to the ``np.where`` reference (for all finite
    ``v``, ``v + 0.0 == v`` with ``-0.0 → +0.0``).
    """
    np.greater(y, 0, out=mask_buf)
    np.multiply(grad_out, mask_buf, out=out)
    np.add(out, 0.0, out=out)
    return out


# ---------------------------------------------------------------------------
# Sigmoid + BCE (fused loss)
# ---------------------------------------------------------------------------


def naive_bce_forward(logits: np.ndarray, labels: np.ndarray) -> float:
    """Reference: stable BCE ``max(x,0) - x·y + log1p(exp(-|x|))``."""
    per_example = (
        np.maximum(logits, 0.0)
        - logits * labels
        + np.log1p(np.exp(-np.abs(logits)))
    )
    return float(per_example.mean())


def naive_bce_backward(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Reference: ``(sigmoid(x) - y) / batch`` with its own sigmoid pass."""
    return (stable_sigmoid(logits) - labels) / len(logits)


def bce_forward(
    logits: np.ndarray,
    labels: np.ndarray,
    e_buf: np.ndarray,
    per_buf: np.ndarray,
    tmp_buf: np.ndarray,
    sig_buf: np.ndarray,
    denom_buf: np.ndarray,
    pos_buf: np.ndarray,
) -> float:
    """Fused sigmoid+BCE forward: one ``e = exp(-|x|)`` pass serves both the
    loss value and the sigmoid needed by the backward (left in ``sig_buf``),
    eliminating the second sigmoid evaluation of the naive pair.

    Bit-identity: the loss accumulates ``max(x,0)``, ``- x·y`` and
    ``+ log1p(e)`` in the reference expression's association order; the
    sigmoid branches ``1/(1+e)`` (for ``x ≥ 0``) and ``e/(1+e)`` (else)
    evaluate exactly the same scalar expressions as :func:`stable_sigmoid`,
    since ``exp(-x) = exp(-|x|)`` when ``x ≥ 0`` and ``exp(x) = exp(-|x|)``
    when ``x < 0``.
    """
    np.abs(logits, out=e_buf)
    np.negative(e_buf, out=e_buf)
    np.exp(e_buf, out=e_buf)  # e = exp(-|x|)
    # loss = mean(max(x,0) - x*y + log1p(e)), same association as reference
    np.maximum(logits, 0.0, out=per_buf)
    np.multiply(logits, labels, out=tmp_buf)
    per_buf -= tmp_buf
    np.log1p(e_buf, out=tmp_buf)
    per_buf += tmp_buf
    # sigmoid from the same e, into sig_buf for the backward
    np.add(e_buf, 1.0, out=denom_buf)
    np.divide(e_buf, denom_buf, out=sig_buf)  # x < 0 branch: e / (1 + e)
    np.divide(1.0, denom_buf, out=denom_buf)  # x >= 0 branch: 1 / (1 + e)
    np.greater_equal(logits, 0, out=pos_buf)
    np.copyto(sig_buf, denom_buf, where=pos_buf)
    return float(per_buf.mean())


def bce_backward(
    sig: np.ndarray, labels: np.ndarray, grad_buf: np.ndarray
) -> np.ndarray:
    """Fused backward from the forward's saved sigmoid: ``(σ(x) - y) / B``.

    Bit-identity: the subtraction and scalar division match the reference's
    ``(sigmoid(x) - labels) / len(...)`` order exactly; the sigmoid values
    are the forward's, which are bit-identical to a fresh
    :func:`stable_sigmoid` pass (see :func:`bce_forward`).
    """
    np.subtract(sig, labels, out=grad_buf)
    np.divide(grad_buf, len(grad_buf), out=grad_buf)
    return grad_buf


# ---------------------------------------------------------------------------
# Dot interaction
# ---------------------------------------------------------------------------


def naive_dot_forward(
    stack: np.ndarray, tril: tuple[np.ndarray, np.ndarray], dense: np.ndarray
) -> np.ndarray:
    """Reference: fresh gram matrix, fancy-index gather, concatenate."""
    gram = stack @ stack.transpose(0, 2, 1)
    pairs = gram[:, tril[0], tril[1]]
    return np.concatenate([dense, pairs], axis=1)


def dot_forward(
    stack: np.ndarray,
    flat_tril: np.ndarray,
    dense: np.ndarray,
    gram_buf: np.ndarray,
    pairs_buf: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Fused: GEMM into ``gram_buf``, triangle gathered via ``np.take`` on
    the flattened gram (no fancy-index temporary), halves slice-assigned
    into ``out``.

    Bit-identity: ``take`` over ``i*n + j`` flat offsets reads exactly the
    elements ``gram[:, i, j]`` the reference gathers, and slice assignment
    reproduces ``concatenate`` element-for-element.
    """
    batch, n_vec, _ = stack.shape
    dim = dense.shape[1]
    np.matmul(stack, stack.transpose(0, 2, 1), out=gram_buf)
    np.take(gram_buf.reshape(batch, n_vec * n_vec), flat_tril, axis=1, out=pairs_buf)
    out[:, :dim] = dense
    out[:, dim:] = pairs_buf
    return out


def naive_dot_backward(
    stack: np.ndarray,
    tril: tuple[np.ndarray, np.ndarray],
    grad_pairs: np.ndarray,
) -> np.ndarray:
    """Reference: dense zeros + scatter + symmetrize + batched GEMM."""
    batch, n_vec, _ = stack.shape
    gram_grad = np.zeros((batch, n_vec, n_vec), dtype=stack.dtype)
    gram_grad[:, tril[0], tril[1]] = grad_pairs
    gram_grad = gram_grad + gram_grad.transpose(0, 2, 1)
    return gram_grad @ stack


def symmetric_pair_map(n_vec: int, tril: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    """Flat gather map building the symmetrized pair-gradient matrix in one
    ``np.take``: cell ``(i, j)`` maps to its pair index (both triangles map
    to the *same* index — the transpose is folded into the map) and the
    diagonal maps to slot ``P``, which callers keep at zero.
    """
    num_pairs = len(tril[0])
    full_map = np.full((n_vec, n_vec), num_pairs, dtype=np.intp)
    pair_idx = np.arange(num_pairs, dtype=np.intp)
    full_map[tril[0], tril[1]] = pair_idx
    full_map[tril[1], tril[0]] = pair_idx
    return full_map.reshape(-1)


def dot_backward(
    stack: np.ndarray,
    pair_map: np.ndarray,
    grad_pairs: np.ndarray,
    pairs_ext_buf: np.ndarray,
    gram_buf: np.ndarray,
    grad_stack_buf: np.ndarray,
) -> np.ndarray:
    """Fused: build the symmetrized pair-gradient matrix with a single
    ``np.take`` through :func:`symmetric_pair_map` (the transpose *and* the
    scatter are folded into the gather map — no dense zeros, no
    ``G + G^T`` round trip, no fancy-index scatters, which dominate the
    reference at large table counts), then one batched GEMM into
    ``grad_stack_buf``.

    ``pairs_ext_buf`` is a ``(batch, P+1)`` staging buffer whose last
    column is the diagonal's zero slot.

    Bit-identity: the reference's symmetrized ``G + G^T`` holds ``v + 0 =
    v`` at every triangle position and ``0.0`` on the diagonal (the
    triangle is strict); gathering ``v`` into both mirror positions and
    ``0.0`` onto the diagonal produces the identical matrix, and the GEMM
    is unchanged.
    """
    batch, n_vec, _ = stack.shape
    num_pairs = grad_pairs.shape[1]
    pairs_ext_buf[:, :num_pairs] = grad_pairs
    pairs_ext_buf[:, num_pairs] = 0.0
    np.take(pairs_ext_buf, pair_map, axis=1, out=gram_buf.reshape(batch, n_vec * n_vec))
    np.matmul(gram_buf, stack, out=grad_stack_buf)
    return grad_stack_buf


# ---------------------------------------------------------------------------
# Optimizer steps
# ---------------------------------------------------------------------------


def naive_adagrad_dense_step(
    value: np.ndarray, grad: np.ndarray, state: np.ndarray, lr: float, eps: float
) -> None:
    """Reference Adagrad update (temporary-per-operation)."""
    state += grad * grad
    value -= lr * grad / (np.sqrt(state) + eps)


def adagrad_dense_step(
    value: np.ndarray,
    grad: np.ndarray,
    state: np.ndarray,
    lr: float,
    eps: float,
    t_buf: np.ndarray,
    u_buf: np.ndarray,
) -> None:
    """Fused Adagrad: both temporaries replaced by reused scratch buffers.

    Bit-identity: the reference evaluates ``(lr * grad) / (sqrt(state) +
    eps)`` — numerator first — and the fused sequence preserves exactly
    that association (``u = grad * lr``; ``u /= t``), so no rounding
    differs.
    """
    np.multiply(grad, grad, out=t_buf)
    state += t_buf
    np.sqrt(state, out=t_buf)
    np.add(t_buf, eps, out=t_buf)
    np.multiply(grad, lr, out=u_buf)
    np.divide(u_buf, t_buf, out=u_buf)
    value -= u_buf


def naive_sgd_dense_step(
    value: np.ndarray,
    grad: np.ndarray,
    lr: float,
    weight_decay: float = 0.0,
    momentum: float = 0.0,
    velocity: np.ndarray | None = None,
) -> None:
    """Reference SGD update (temporary-per-operation)."""
    if weight_decay:
        grad = grad + weight_decay * value
    if velocity is not None:
        velocity *= momentum
        velocity += grad
        value -= lr * velocity
    else:
        value -= lr * grad


def sgd_dense_step(
    value: np.ndarray,
    grad: np.ndarray,
    lr: float,
    t_buf: np.ndarray,
    weight_decay: float = 0.0,
    momentum: float = 0.0,
    velocity: np.ndarray | None = None,
) -> None:
    """Fused SGD: the ``weight_decay * value``, effective-gradient and
    ``lr * v`` temporaries all land in one reused scratch buffer.

    Bit-identity: each fused line computes the same scalar expression in
    the same order as the reference (``wd*value`` then ``grad + ·``;
    ``v*m`` in place then ``+ grad``; ``lr * g`` then subtract).
    """
    if weight_decay:
        np.multiply(value, weight_decay, out=t_buf)
        np.add(grad, t_buf, out=t_buf)
        grad = t_buf
    if velocity is not None:
        velocity *= momentum
        velocity += grad
        np.multiply(velocity, lr, out=t_buf)
        value -= t_buf
    else:
        np.multiply(grad, lr, out=t_buf)
        value -= t_buf


def naive_adagrad_sparse_step(
    weight: np.ndarray,
    state: np.ndarray,
    rows: np.ndarray,
    values: np.ndarray,
    lr: float,
    eps: float,
) -> None:
    """Reference row-sparse Adagrad (the historical three-pass update):
    gather state, write it back, then a second gather/scatter round trip
    through ``weight[rows] -= ...`` plus five elementwise temporaries."""
    state_rows = state[rows]
    state_rows += values * values
    state[rows] = state_rows
    weight[rows] -= lr * values / (np.sqrt(state_rows) + eps)


def adagrad_sparse_step(
    weight: np.ndarray,
    state: np.ndarray,
    rows: np.ndarray,
    values: np.ndarray,
    lr: float,
    eps: float,
    t_buf: np.ndarray,
    u_buf: np.ndarray,
) -> None:
    """Fused row-sparse Adagrad: one gather and one scatter per array, with
    every elementwise temporary replaced by the two reused row buffers.

    ``rows`` must be unique (coalesced) — :class:`repro.core.embedding.
    SparseGrad` guarantees sorted-unique rows — so the in-place updates on
    the gathered slabs are exact.  A plain fancy gather is used rather than
    ``np.take(..., out=)``, which measures ~3x slower on this container;
    the zero-allocation guarantee is scoped to the dense arena path (the
    gathered row slab is one allocation per step, already required by the
    reference).

    Bit-identity: same gather, same ``+= v*v``, same scatter, and the
    weight update evaluates ``(lr*v) / (sqrt(s)+eps)`` in the reference's
    association order before one ``weight[rows] -= u`` round trip (numpy's
    fancy in-place subtract performs the identical gather/isub/scatter).
    """
    state_rows = state[rows]  # single gather of the state slab
    np.multiply(values, values, out=t_buf)
    state_rows += t_buf
    state[rows] = state_rows  # single scatter back
    np.sqrt(state_rows, out=t_buf)
    np.add(t_buf, eps, out=t_buf)
    np.multiply(values, lr, out=u_buf)
    np.divide(u_buf, t_buf, out=u_buf)
    weight[rows] -= u_buf  # single fancy round trip on the weights
