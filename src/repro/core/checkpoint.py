"""Model checkpointing and restore.

The paper's related work stresses that "making training infrastructures
reliable has a profound impact in the training workflow efficiency"
(§VII, citing CPR and DeepFreeze).  Long-running recommendation training
jobs checkpoint both halves of the model:

* the dense parameters (small — MBs) and their optimizer state;
* the embedding tables (large — GBs to TBs in production), whose save
  cost dominates and motivates partial/asynchronous checkpointing.

This module provides exact save/restore for a :class:`~repro.core.model.DLRM`
plus an optional Adagrad optimizer, and a *partial* checkpoint mode that
saves only rows touched since the last checkpoint (the CPR idea: most
embedding rows are cold between checkpoints).
"""

from __future__ import annotations

import io
import pathlib

import numpy as np

from .embedding import EmbeddingTable
from .model import DLRM
from .optim import Adagrad

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_bytes",
    "DirtyRowTracker",
    "save_partial_checkpoint",
    "apply_partial_checkpoint",
]

_FORMAT_KEY = "__repro_checkpoint_version"
_FORMAT_VERSION = 1


def _state_arrays(model: DLRM, optimizer: Adagrad | None) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {
        _FORMAT_KEY: np.array([_FORMAT_VERSION], dtype=np.int64)
    }
    for i, p in enumerate(model.dense_parameters()):
        arrays[f"dense/{i}"] = p.value
    for i, table in enumerate(model.embedding_tables()):
        arrays[f"table/{i}"] = table.weight
    if optimizer is not None:
        for i, state in enumerate(optimizer._dense_state):
            arrays[f"opt_dense/{i}"] = state
        for i, state in enumerate(optimizer._table_state):
            arrays[f"opt_table/{i}"] = state
    return arrays


def save_checkpoint(
    path: str | pathlib.Path,
    model: DLRM,
    optimizer: Adagrad | None = None,
) -> int:
    """Write a full checkpoint; returns the byte size written."""
    path = pathlib.Path(path)
    arrays = _state_arrays(model, optimizer)
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    return path.stat().st_size


def load_checkpoint(
    path: str | pathlib.Path,
    model: DLRM,
    optimizer: Adagrad | None = None,
) -> None:
    """Restore a full checkpoint in place.

    Raises:
        ValueError: on version or shape mismatch (wrong model config).
    """
    with np.load(pathlib.Path(path)) as data:
        if _FORMAT_KEY not in data or int(data[_FORMAT_KEY][0]) != _FORMAT_VERSION:
            raise ValueError("unrecognized checkpoint format")
        dense = model.dense_parameters()
        for i, p in enumerate(dense):
            key = f"dense/{i}"
            if key not in data:
                raise ValueError(f"checkpoint missing {key}")
            if data[key].shape != p.value.shape:
                raise ValueError(
                    f"{key}: shape {data[key].shape} != model {p.value.shape}"
                )
            p.value[...] = data[key]
        for i, table in enumerate(model.embedding_tables()):
            key = f"table/{i}"
            if key not in data:
                raise ValueError(f"checkpoint missing {key}")
            if data[key].shape != table.weight.shape:
                raise ValueError(
                    f"{key}: shape {data[key].shape} != table {table.weight.shape}"
                )
            table.weight[...] = data[key]
        if optimizer is not None:
            for i, state in enumerate(optimizer._dense_state):
                state[...] = data[f"opt_dense/{i}"]
            for i, state in enumerate(optimizer._table_state):
                state[...] = data[f"opt_table/{i}"]


def checkpoint_bytes(model: DLRM, optimizer: Adagrad | None = None) -> int:
    """In-memory size of a full checkpoint (dominated by embedding tables)."""
    total = sum(p.value.nbytes for p in model.dense_parameters())
    total += sum(t.weight.nbytes for t in model.embedding_tables())
    if optimizer is not None:
        total += sum(s.nbytes for s in optimizer._dense_state)
        total += sum(s.nbytes for s in optimizer._table_state)
    return total


class DirtyRowTracker:
    """Tracks which embedding rows changed since the last checkpoint.

    Partial recovery (CPR) observes that between checkpoints only the rows
    actually touched by training need re-saving; with Zipf-skewed access a
    short training window touches a small fraction of a huge table.
    """

    def __init__(self, model: DLRM) -> None:
        self._model = model
        self._dirty: list[set[int]] = [set() for _ in model.embedding_tables()]

    def record_batch(self, batch) -> None:
        """Mark the rows a batch will touch (call before/after each step)."""
        for i, table in enumerate(self._model.embedding_tables()):
            name = table.spec.name
            if name in batch.sparse:
                self._dirty[i].update(np.unique(batch.sparse[name].values).tolist())

    def dirty_counts(self) -> list[int]:
        return [len(d) for d in self._dirty]

    def total_dirty_fraction(self) -> float:
        total_rows = sum(t.weight.shape[0] for t in self._model.embedding_tables())
        return sum(self.dirty_counts()) / total_rows

    def clear(self) -> None:
        for d in self._dirty:
            d.clear()


def save_partial_checkpoint(
    path: str | pathlib.Path,
    model: DLRM,
    tracker: DirtyRowTracker,
) -> int:
    """Save dense params fully plus only the dirty embedding rows.

    Returns bytes written.  The tracker is cleared afterwards (the rows are
    now captured), matching incremental-checkpoint semantics.
    """
    arrays: dict[str, np.ndarray] = {
        _FORMAT_KEY: np.array([_FORMAT_VERSION], dtype=np.int64)
    }
    for i, p in enumerate(model.dense_parameters()):
        arrays[f"dense/{i}"] = p.value
    for i, table in enumerate(model.embedding_tables()):
        rows = np.array(sorted(tracker._dirty[i]), dtype=np.int64)
        arrays[f"rows/{i}"] = rows
        arrays[f"values/{i}"] = table.weight[rows] if len(rows) else np.empty(
            (0, table.weight.shape[1])
        )
    path = pathlib.Path(path)
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    tracker.clear()
    return path.stat().st_size


def apply_partial_checkpoint(path: str | pathlib.Path, model: DLRM) -> None:
    """Apply a partial checkpoint on top of the model's current state
    (typically: load the last full checkpoint first, then replay partials)."""
    with np.load(pathlib.Path(path)) as data:
        if _FORMAT_KEY not in data or int(data[_FORMAT_KEY][0]) != _FORMAT_VERSION:
            raise ValueError("unrecognized checkpoint format")
        for i, p in enumerate(model.dense_parameters()):
            p.value[...] = data[f"dense/{i}"]
        for i, table in enumerate(model.embedding_tables()):
            rows = data[f"rows/{i}"]
            if len(rows):
                table.weight[rows] = data[f"values/{i}"]
