"""Per-run training telemetry: metric time series and run reports.

Production training emits counters (loss, examples/s, learning rate) that
feed dashboards and the utilization studies of Figure 5.  ``MetricsLogger``
is the single-run analogue: it records step-indexed series during a
functional training run, computes summaries, and exports CSV for offline
analysis.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.registry import MetricsRegistry

__all__ = ["MetricsLogger", "MetricSeries", "InstrumentedTrainer"]


@dataclass
class MetricSeries:
    """One named, step-indexed series."""

    name: str
    steps: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, step: int, value: float) -> None:
        """Append ``(step, value)``.

        Steps must be non-decreasing; recording the *same* step twice
        overwrites the previous value (last-writer-wins), matching what a
        production metrics pipeline does when a step is re-reported, e.g.
        after a checkpoint restore replays the last step.
        """
        if self.steps and step < self.steps[-1]:
            raise ValueError(
                f"series {self.name!r}: step {step} < last step {self.steps[-1]}"
            )
        if self.steps and step == self.steps[-1]:
            self.values[-1] = float(value)
            return
        self.steps.append(step)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.steps)

    def latest(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return self.values[-1]

    def smoothed(self, window: int = 10) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        if window < 1:
            raise ValueError("window must be >= 1")
        return float(np.mean(self.values[-window:]))


class MetricsLogger:
    """Collects named series for one training run."""

    def __init__(self) -> None:
        self._series: dict[str, MetricSeries] = {}
        self.started_at = time.monotonic()

    def record(self, step: int, **metrics: float) -> None:
        for name, value in metrics.items():
            self._series.setdefault(name, MetricSeries(name)).record(step, value)

    def series(self, name: str) -> MetricSeries:
        if name not in self._series:
            raise KeyError(f"no series named {name!r}")
        return self._series[name]

    def names(self) -> list[str]:
        return sorted(self._series)

    def to_csv(self) -> str:
        """Long-form CSV: step,metric,value."""
        out = io.StringIO()
        out.write("step,metric,value\n")
        for name in self.names():
            s = self._series[name]
            for step, value in zip(s.steps, s.values):
                out.write(f"{step},{name},{value!r}\n")
        return out.getvalue()

    def to_registry(self, registry: MetricsRegistry | None = None) -> MetricsRegistry:
        """Bridge this run's series into a :class:`repro.obs.MetricsRegistry`.

        Per series ``name``: a histogram ``name`` over all recorded values, a
        gauge ``name:last`` holding the final value, and a shared counter
        ``telemetry_points`` counting every recorded observation.  Returns
        the (possibly newly created) registry so per-run metrics can be
        merged fleet-wide with :func:`repro.obs.merge_all`.
        """
        registry = registry if registry is not None else MetricsRegistry()
        points = registry.counter("telemetry_points")
        for name in self.names():
            series = self._series[name]
            hist = registry.histogram(name)
            for value in series.values:
                if np.isfinite(value):  # e.g. lr is NaN when the optimizer has none
                    hist.observe(value)
            registry.gauge(f"{name}:last").set(series.values[-1])
            points.inc(len(series))
        return registry

    def summary(self) -> dict[str, dict[str, float]]:
        report = {}
        for name in self.names():
            values = np.array(self._series[name].values)
            report[name] = {
                "count": float(len(values)),
                "first": float(values[0]),
                "last": float(values[-1]),
                "min": float(values.min()),
                "max": float(values.max()),
            }
        return report


class InstrumentedTrainer:
    """A :class:`~repro.core.training.Trainer` wrapper that logs loss,
    examples/s, and the effective learning rate every step."""

    def __init__(self, trainer) -> None:
        self.trainer = trainer
        self.logger = MetricsLogger()
        self._step = 0
        self._examples = 0

    def train_step(self, batch) -> float:
        t0 = time.monotonic()
        loss = self.trainer.train_step(batch)
        elapsed = max(time.monotonic() - t0, 1e-9)
        self._examples += batch.size
        lr = getattr(self.trainer.optimizer, "lr", None)
        if lr is None:
            lr = getattr(self.trainer.optimizer, "current_lr", float("nan"))
        self.logger.record(
            self._step,
            loss=loss,
            examples_per_s=batch.size / elapsed,
            lr=float(lr),
            examples_seen=float(self._examples),
        )
        self._step += 1
        return loss

    def train(self, batches, max_examples: int) -> None:
        if max_examples < 1:
            raise ValueError("max_examples must be >= 1")
        for batch in batches:
            if self._examples >= max_examples:
                break
            self.train_step(batch)

    def registry(self) -> MetricsRegistry:
        """This run's metrics as a mergeable registry (see
        :meth:`MetricsLogger.to_registry`)."""
        return self.logger.to_registry()
