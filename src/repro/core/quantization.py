"""Embedding-table quantization (paper §III-A.2's compression opportunity).

The paper points at "compression for these large embedding tables using
quantization" as an optimization opportunity.  This module implements
uniform row-wise integer quantization:

* :func:`quantize_rows` / :func:`dequantize_rows` — symmetric-range
  per-row quantization to ``bits`` (8/4/2), the standard scheme for
  embedding compression;
* :class:`QuantizedEmbeddingTable` — a frozen, quantized copy of a trained
  table that serves dequantized lookups (post-training quantization);
* :func:`quantized_table_bytes` — the capacity side, used by the placement
  what-ifs (a 4-bit M3 fits where the FP32 M3 did not).
"""

from __future__ import annotations

import numpy as np

from .config import PoolingType, TableSpec
from .embedding import EmbeddingTable, RaggedIndices

__all__ = [
    "quantize_rows",
    "dequantize_rows",
    "QuantizedEmbeddingTable",
    "quantized_table_bytes",
    "quantization_error",
]

_SUPPORTED_BITS = (2, 4, 8)


def _validate_bits(bits: int) -> None:
    if bits not in _SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {_SUPPORTED_BITS}, got {bits}")


def quantize_rows(weights: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-row quantization.

    Returns ``(codes, scales)`` where ``codes`` are signed integers in
    ``[-(2^(bits-1) - 1), 2^(bits-1) - 1]`` and ``scales`` has one entry
    per row; ``weights ~= codes * scales[:, None]``.
    """
    _validate_bits(bits)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {w.shape}")
    qmax = 2 ** (bits - 1) - 1
    row_absmax = np.abs(w).max(axis=1)
    scales = np.where(row_absmax > 0, row_absmax / qmax, 1.0)
    codes = np.clip(np.round(w / scales[:, None]), -qmax, qmax).astype(np.int8)
    return codes, scales


def dequantize_rows(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_rows`."""
    codes = np.asarray(codes)
    scales = np.asarray(scales, dtype=np.float64)
    if codes.ndim != 2 or scales.ndim != 1 or len(scales) != codes.shape[0]:
        raise ValueError("codes must be (rows, dim) with one scale per row")
    return codes.astype(np.float64) * scales[:, None]


def quantization_error(weights: np.ndarray, bits: int) -> float:
    """RMS relative reconstruction error of one quantization round trip."""
    codes, scales = quantize_rows(weights, bits)
    recon = dequantize_rows(codes, scales)
    denom = np.sqrt(np.mean(weights**2)) + 1e-12
    return float(np.sqrt(np.mean((weights - recon) ** 2)) / denom)


def quantized_table_bytes(spec: TableSpec, bits: int, scale_bytes: int = 4) -> float:
    """Storage footprint of a quantized table (codes + per-row scales)."""
    _validate_bits(bits)
    code_bytes = spec.hash_size * spec.dim * bits / 8.0
    return code_bytes + spec.hash_size * scale_bytes


class QuantizedEmbeddingTable:
    """A frozen quantized snapshot of a trained :class:`EmbeddingTable`.

    Serves pooled lookups by dequantizing the touched rows; no training
    (the paper's quantization use case is shrinking the stored table).
    """

    def __init__(self, table: EmbeddingTable, bits: int) -> None:
        _validate_bits(bits)
        self.spec = table.spec
        self.pooling = table.pooling
        self.bits = bits
        self.codes, self.scales = quantize_rows(table.weight, bits)

    @property
    def storage_bytes(self) -> float:
        return quantized_table_bytes(self.spec, self.bits)

    @property
    def row_bytes(self) -> float:
        """Stored bytes per row (codes + the per-row scale)."""
        return self.spec.dim * self.bits / 8.0 + 4.0

    def bytes_per_row(self) -> float:
        """Stored bytes per row — the quantized width, not fp32.

        Same contract as :meth:`EmbeddingTable.bytes_per_row`, so tier
        capacity planning (:mod:`repro.tiering`) prices int8/int4 rows
        correctly and a quantized cold tier holds proportionally more
        rows per byte.
        """
        return float(self.row_bytes)

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Dequantize the given row indices; returns ``(len(rows), dim)``.

        The serving hot-row cache (:mod:`repro.serving.cache`) fills cache
        lines through this when quantized backing storage is enabled.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) and (rows.min() < 0 or rows.max() >= self.spec.hash_size):
            raise IndexError(f"rows out of range for table {self.spec.name}")
        return self.codes[rows].astype(np.float64) * self.scales[rows][:, None]

    def forward(self, indices: RaggedIndices) -> np.ndarray:
        """Pooled lookup over dequantized rows; mirrors EmbeddingTable.forward."""
        if self.spec.truncation is not None:
            indices = indices.truncate(self.spec.truncation)
        if len(indices.values) and (
            indices.values.min() < 0 or indices.values.max() >= self.spec.hash_size
        ):
            raise IndexError(f"indices out of range for table {self.spec.name}")
        lengths = indices.lengths()
        pooled = np.zeros((indices.batch_size, self.spec.dim), dtype=np.float64)
        if len(indices.values):
            rows = indices.values
            gathered = self.codes[rows].astype(np.float64) * self.scales[rows][:, None]
            sample_of = np.repeat(np.arange(indices.batch_size), lengths)
            np.add.at(pooled, sample_of, gathered)
        if self.pooling is PoolingType.MEAN:
            pooled = pooled / np.maximum(lengths, 1).astype(np.float64)[:, None]
        return pooled
