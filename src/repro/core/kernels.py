"""Vectorized fast-path kernels for the sparse half of the model.

The hot operations of embedding-bag training — pooled segment reduction,
sparse-gradient coalescing, ragged truncation and index-bounds validation —
were originally written with ``np.add.at`` and per-sample Python loops.
Both are well-known numpy anti-patterns: ``np.add.at`` dispatches one
scalar-ish ufunc inner loop per index, and Python-loop truncation costs
O(batch) interpreter round trips per feature per step.

This module replaces them with contiguous, single-dispatch kernels:

* :func:`segment_sum` / :func:`segment_mean` — pooled reduction over a CSR
  ragged layout expressed as a sparse-matrix product ``S @ data`` where
  ``S`` is the (segments x lookups) indicator matrix sharing the ragged
  offsets as its ``indptr``.  SciPy's CSR matmat kernel runs one C loop
  with a dense inner loop over the embedding dim — an order of magnitude
  faster than both ``np.add.at`` and ``np.add.reduceat`` (whose inner loop
  is not vectorized across the trailing axis).  ``np.add.reduceat`` remains
  as the fallback when SciPy is unavailable or dtypes are exotic;
* :func:`gather_pool` — the *fused* embedding-bag forward: pooled lookup
  as ``S @ weight`` where the lookup indices are the sparse matrix's
  column indices.  The ``(total_lookups, dim)`` gathered-row temporary of
  the gather-then-pool formulation is never materialized — the CSR kernel
  streams rows of ``weight`` straight into the pooled output, which is
  what makes small batches fast (the temporaries, not the FLOPs, dominate
  there);
* :func:`coalesce_rows` — duplicate-row gradient summation via a stable
  sort + the same indicator-matrix product (the matrix's column order
  performs the permutation, so the sorted gradient copy is never
  materialized) instead of ``np.unique`` + ``np.add.at``;
* :func:`expand_coalesce` — the fused embedding-bag backward: for pooled
  bags every lookup in sample ``i`` receives ``grad_out[i]``, so the
  per-row gradient sums are ``T @ grad_out`` with ``T[r, sample_of[j]]
  += 1`` for each occurrence ``j`` of row ``r``.  The ``np.repeat``
  expansion of ``grad_out`` to one row per lookup is never materialized
  (the kernel re-reads the small ``(batch, dim)`` gradient, which stays
  cache-resident, instead of streaming a lookup-sized copy);
* :func:`truncate_ragged` — fully vectorized per-sample truncation using an
  ``arange(total) - repeat(starts)`` position mask;
* :func:`check_bounds` — single-pass index validation using an unsigned
  reinterpretation (negative indices become huge, so *one* comparison
  catches both underflow and overflow).

Numerical contract: within each segment/row group the additions cover the
same elements as the ``np.add.at`` originals, but ``reduceat``'s vectorized
inner loop may re-associate a sum, so individual outputs can differ from
the originals by ~1 ULP (the agreement is pinned at 1e-12 by
``tests/conformance/test_conformance_sparse.py``).  The kernels
themselves are deterministic:
identical inputs produce identical bits on every run and in every worker
process, which is what the runtime cache and the parallel-equals-serial
sweep contract rely on.  The ``naive_*`` reference implementations of the
replaced code paths are kept here for equivalence tests and the old-vs-new
benchmark (``python -m repro.bench --suite kernels``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

try:  # scipy is a normal dependency (repro.core.tuning uses scipy.special),
    # but the kernels degrade gracefully to pure-numpy without it.
    import scipy.sparse as _sparse
except ImportError:  # pragma: no cover - exercised only on scipy-less installs
    _sparse = None

#: Dtypes routed through the sparse-matmul fast path; anything else falls
#: back to ``np.add.reduceat``.
_MATMUL_DTYPES = (np.float32, np.float64, np.int32, np.int64)

__all__ = [
    "segment_sum",
    "segment_mean",
    "gather_pool",
    "CoalescePlan",
    "coalesce_plan",
    "coalesce_apply",
    "expand_apply",
    "coalesce_rows",
    "expand_coalesce",
    "truncate_ragged",
    "position_in_segment",
    "check_bounds",
    "naive_segment_sum",
    "naive_coalesce_rows",
    "naive_truncate_ragged",
]


# ---------------------------------------------------------------------------
# fast kernels
# ---------------------------------------------------------------------------


def _indicator_matmul(
    cols: np.ndarray, indptr: np.ndarray, data: np.ndarray, num_rows: int
) -> np.ndarray:
    """``S @ data`` for the CSR indicator matrix ``S[r, cols[j]] = 1``.

    One fused permute-and-reduce: row ``r`` of the result is the sum of
    ``data[cols[indptr[r]:indptr[r+1]]]`` accumulated in column order,
    i.e. exactly the scalar-accumulation order of ``np.add.at``.
    """
    ones = np.ones(len(cols), dtype=data.dtype)
    matrix = _sparse.csr_matrix(
        (ones, cols, indptr), shape=(num_rows, data.shape[0])
    )
    return matrix @ data


def _use_matmul(data: np.ndarray) -> bool:
    return (
        _sparse is not None
        and data.ndim == 2
        and data.dtype.type in _MATMUL_DTYPES
    )


def segment_sum(data: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum ``data[offsets[i]:offsets[i+1]]`` for every segment ``i``.

    ``data`` has shape ``(total, ...)`` and ``offsets`` is the CSR offset
    array of shape ``(num_segments + 1,)`` with ``offsets[-1] == total``.
    Empty segments produce zeros.

    Fast path: the reduction is one sparse-matrix product with the
    indicator matrix whose ``indptr`` *is* ``offsets`` — no scatter, no
    per-segment dispatch, dense SIMD inner loop over the trailing dim.
    Fallback (no scipy / exotic dtype / ndim != 2): ``np.add.reduceat``
    over the non-empty segment starts (empty segments have zero width, so
    the non-empty starts partition ``data`` exactly).
    """
    data = np.asarray(data)
    offsets = np.asarray(offsets, dtype=np.int64)
    num_segments = len(offsets) - 1
    if offsets[-1] != data.shape[0]:
        raise ValueError(
            f"offsets[-1]={offsets[-1]} must equal data length {data.shape[0]}"
        )
    if data.shape[0] == 0 or num_segments == 0:
        return np.zeros((num_segments,) + data.shape[1:], dtype=data.dtype)
    if _use_matmul(data):
        cols = np.arange(data.shape[0], dtype=np.int64)
        return _indicator_matmul(cols, offsets, data, num_segments)
    out = np.zeros((num_segments,) + data.shape[1:], dtype=data.dtype)
    starts = offsets[:-1]
    nonempty = offsets[1:] > starts
    if nonempty.all():
        # common case: one reduceat, no mask materialization
        np.add.reduceat(data, starts, axis=0, out=out)
        return out
    if nonempty.any():
        out[nonempty] = np.add.reduceat(data, starts[nonempty], axis=0)
    return out


def segment_mean(data: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Mean-pool each segment; empty segments produce zeros."""
    summed = segment_sum(data, offsets)
    lengths = np.diff(np.asarray(offsets, dtype=np.int64))
    divisor = np.maximum(lengths, 1).astype(summed.dtype)
    return summed / divisor.reshape((-1,) + (1,) * (summed.ndim - 1))


def gather_pool(
    weight: np.ndarray,
    values: np.ndarray,
    offsets: np.ndarray,
    *,
    check: bool = True,
) -> np.ndarray:
    """Fused pooled lookup: ``segment_sum(weight[values], offsets)`` without
    the gathered-row temporary.

    ``weight`` is ``(num_rows, dim)``, ``values`` the flat lookup indices,
    ``offsets`` the CSR segment boundaries.  Returns ``(num_segments, dim)``
    pooled sums; empty segments produce zeros.

    Fast path: one CSR matrix-matrix product ``S @ weight`` where
    ``values`` are the column indices and ``offsets`` the ``indptr`` — the
    C kernel reads each referenced weight row once and accumulates it
    directly into the output, in the same element order as the
    gather-then-:func:`segment_sum` formulation (bit-identical results).
    Fallback (no scipy / exotic dtype): materialized gather + reduceat.

    ``check=False`` skips index validation when the caller has already
    established ``0 <= values < len(weight)`` (e.g. via a ``safe_bound``
    certificate) — the sparse kernel does *not* bounds-check on its own,
    so the default revalidates rather than risk reading out of bounds.
    """
    weight = np.asarray(weight)
    values = np.asarray(values, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    num_segments = len(offsets) - 1
    if offsets[-1] != len(values):
        raise ValueError(
            f"offsets[-1]={offsets[-1]} must equal values length {len(values)}"
        )
    if check:
        check_bounds(values, weight.shape[0])
    if len(values) == 0 or num_segments == 0:
        return np.zeros((num_segments,) + weight.shape[1:], dtype=weight.dtype)
    if _use_matmul(weight):
        return _indicator_matmul(values, offsets, weight, num_segments)
    return segment_sum(weight[values], offsets)


@dataclass(frozen=True)
class CoalescePlan:
    """Precomputed grouping of an index stream for gradient coalescing.

    The sort/group half of :func:`coalesce_rows` depends only on the
    *indices* — not on the gradients — so it can be computed ahead of time
    (e.g. on a prefetch thread, while the previous batch is still in its
    backward pass) and applied to gradients later with
    :func:`coalesce_apply` / :func:`expand_apply`.  ``rows`` are the unique
    row ids sorted ascending; ``order`` is the stable argsort of the input
    stream; ``indptr[k]:indptr[k+1]`` delimits the occurrence positions
    (into ``order``) contributing to ``rows[k]``.
    """

    rows: np.ndarray  # int64, shape (k,) — unique row ids, ascending
    order: np.ndarray  # int64, shape (total,) — stable argsort of indices
    indptr: np.ndarray  # int64, shape (k + 1,) — group boundaries in order

    @property
    def num_rows(self) -> int:
        return len(self.rows)


def coalesce_plan(indices: np.ndarray) -> CoalescePlan:
    """Precompute the stable sort + group starts of a coalesce.

    Pure function of the index stream: two plans built from equal indices
    are bit-identical, and applying a plan reproduces
    :func:`coalesce_rows` exactly (same kernel, same accumulation order).
    """
    indices = np.asarray(indices, dtype=np.int64)
    if len(indices) == 0:
        zero = np.zeros(1, dtype=np.int64)
        return CoalescePlan(rows=indices[:0], order=indices[:0], indptr=zero)
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    # group starts: positions where the sorted row id changes
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_idx)) + 1])
    rows = sorted_idx[starts]
    indptr = np.concatenate([starts, [len(indices)]])
    return CoalescePlan(rows=rows, order=order, indptr=indptr)


def coalesce_apply(plan: CoalescePlan, grads: np.ndarray) -> np.ndarray:
    """Sum duplicate-row contributions using a precomputed plan.

    ``grads[j]`` is the contribution of occurrence ``j`` of the index
    stream the plan was built from.  Bit-identical to the summed half of
    ``coalesce_rows(indices, grads)``.
    """
    grads = np.asarray(grads)
    if not np.issubdtype(grads.dtype, np.floating):
        grads = grads.astype(np.float64)
    if plan.num_rows == 0:
        return grads[:0]
    if _use_matmul(grads):
        # The indicator matrix's columns are the stable-sorted occurrence
        # positions, so the product permutes *and* group-reduces in one C
        # pass — ``grads[order]`` is never materialized.
        return _indicator_matmul(plan.order, plan.indptr, grads, plan.num_rows)
    return np.add.reduceat(grads[plan.order], plan.indptr[:-1], axis=0)


def expand_apply(
    plan: CoalescePlan, lengths: np.ndarray, grad_out: np.ndarray
) -> np.ndarray:
    """Pooled-bag backward against a precomputed plan.

    Bit-identical to the summed half of ``expand_coalesce(indices,
    lengths, grad_out)`` for the index stream the plan was built from
    (``lengths`` must be that stream's per-sample lengths).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    grad_out = np.asarray(grad_out)
    if not np.issubdtype(grad_out.dtype, np.floating):
        grad_out = grad_out.astype(np.float64)
    if plan.num_rows == 0:
        return grad_out[:0]
    if not _use_matmul(grad_out):
        return coalesce_apply(plan, np.repeat(grad_out, lengths, axis=0))
    sample_of = np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)
    return _indicator_matmul(
        sample_of[plan.order], plan.indptr, grad_out, plan.num_rows
    )


def coalesce_rows(indices: np.ndarray, grads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum duplicate row contributions; returns ``(unique_rows, summed)``.

    ``unique_rows`` is sorted ascending (matching ``np.unique``); within
    each row group the contributions are gathered in occurrence order
    (stable sort) and summed, matching the ``np.add.at`` original to
    within ~1 ULP (see the module docstring's numerical contract).

    Implemented as :func:`coalesce_plan` + :func:`coalesce_apply`, so the
    inline path and any plan-ahead caller (the prefetch pipeline) share
    one implementation — equality is by construction, not by parallel
    maintenance.
    """
    plan = coalesce_plan(indices)
    return plan.rows, coalesce_apply(plan, grads)


def expand_coalesce(
    indices: np.ndarray, lengths: np.ndarray, grad_out: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Fused pooled-bag backward: coalesced per-row gradient sums without
    materializing the per-lookup gradient expansion.

    Equivalent to ``coalesce_rows(indices, np.repeat(grad_out, lengths,
    axis=0))`` — every lookup in sample ``i`` contributes ``grad_out[i]``
    to its embedding row — but the ``(total_lookups, dim)`` repeat is never
    built.  Fast path: ``T @ grad_out`` where ``T``'s column indices are
    the *sample* ids of the stable-sorted lookups, so the CSR kernel
    re-reads rows of the small ``(batch, dim)`` gradient in the exact
    occurrence order :func:`coalesce_rows` would have summed the expanded
    copies (bit-identical results).  Returns ``(unique_rows, summed)``.

    Implemented as :func:`coalesce_plan` + :func:`expand_apply` (see
    :func:`coalesce_rows` on why the split exists).
    """
    plan = coalesce_plan(indices)
    return plan.rows, expand_apply(plan, lengths, grad_out)


def position_in_segment(offsets: np.ndarray) -> np.ndarray:
    """For each element of a CSR layout, its 0-based rank within its segment.

    The vectorized form of "how deep into its sample is this lookup":
    ``arange(total) - repeat(starts, lengths)``.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.diff(offsets)
    total = int(offsets[-1])
    return np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], lengths)


def truncate_ragged(
    values: np.ndarray, offsets: np.ndarray, max_per_sample: int
) -> tuple[np.ndarray, np.ndarray]:
    """Cap every segment at ``max_per_sample`` leading elements.

    Returns ``(new_values, new_offsets)``.  Fully vectorized: an element
    survives iff its rank within its segment is below the cap.
    """
    if max_per_sample < 1:
        raise ValueError("max_per_sample must be >= 1")
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.diff(offsets)
    if len(lengths) == 0 or not len(values) or int(lengths.max()) <= max_per_sample:
        new_offsets = np.concatenate(
            [[0], np.cumsum(np.minimum(lengths, max_per_sample))]
        )
        return values, new_offsets
    new_lengths = np.minimum(lengths, max_per_sample)
    new_offsets = np.concatenate([[0], np.cumsum(new_lengths)])
    keep = position_in_segment(offsets) < max_per_sample
    return values[keep], new_offsets


def check_bounds(values: np.ndarray, upper: int, *, what: str = "indices") -> None:
    """Raise ``IndexError`` unless every value lies in ``[0, upper)``.

    Single pass: the int64 values are reinterpreted as uint64 (a free view,
    no copy), under which negatives become astronomically large, so one
    ``>= upper`` comparison catches both out-of-range directions.
    """
    if len(values) == 0:
        return
    values = np.ascontiguousarray(values, dtype=np.int64)
    if bool(np.any(values.view(np.uint64) >= np.uint64(upper))):
        raise IndexError(f"{what} out of range [0, {upper})")


# ---------------------------------------------------------------------------
# reference (pre-optimization) implementations — kept for equivalence tests
# and the old-vs-new benchmark; do not use on hot paths.
# ---------------------------------------------------------------------------


def naive_segment_sum(data: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """The original ``np.add.at`` pooling kernel."""
    data = np.asarray(data)
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.diff(offsets)
    out = np.zeros((len(lengths),) + data.shape[1:], dtype=data.dtype)
    if data.shape[0]:
        sample_of = np.repeat(np.arange(len(lengths)), lengths)
        np.add.at(out, sample_of, data)
    return out


def naive_coalesce_rows(
    indices: np.ndarray, grads: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The original ``np.unique`` + ``np.add.at`` coalesce."""
    rows, inverse = np.unique(np.asarray(indices, dtype=np.int64), return_inverse=True)
    grads = np.asarray(grads, dtype=np.float64)
    summed = np.zeros((len(rows),) + grads.shape[1:], dtype=np.float64)
    np.add.at(summed, inverse, grads)
    return rows, summed


def naive_truncate_ragged(
    values: np.ndarray, offsets: np.ndarray, max_per_sample: int
) -> tuple[np.ndarray, np.ndarray]:
    """The original per-sample Python-loop truncation."""
    if max_per_sample < 1:
        raise ValueError("max_per_sample must be >= 1")
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.minimum(np.diff(offsets), max_per_sample)
    new_offsets = np.concatenate([[0], np.cumsum(lengths)])
    keep = np.zeros(len(values), dtype=bool)
    for i in range(len(lengths)):
        start = offsets[i]
        keep[start : start + lengths[i]] = True
    return values[keep], new_offsets
