"""Multi-layer perceptron stacks with explicit forward/backward passes.

The two MLP stacks of a recommendation model (paper §III-A.4) — the bottom
stack over dense features and the top stack over the interaction output — are
built from these layers.  Everything is plain numpy with hand-written
backpropagation; no autograd framework is used.
"""

from __future__ import annotations

import numpy as np

from .config import MLPSpec
from .backends import Backend, get_backend, reference_backend
from .dense_kernels import Workspace, stable_sigmoid

__all__ = ["Parameter", "Linear", "ReLU", "Sigmoid", "MLP"]


class Parameter:
    """A learnable tensor with its accumulated gradient.

    Optimizers consume ``(value, grad)`` pairs; ``zero_grad`` resets the
    accumulator between iterations.
    """

    def __init__(
        self,
        value: np.ndarray,
        name: str = "",
        dtype: np.dtype | type = np.float64,
    ) -> None:
        self.value = np.ascontiguousarray(value, dtype=np.dtype(dtype))
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name or 'unnamed'}, shape={self.shape})"


class Linear:
    """Fully-connected layer ``y = x @ W.T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        name: str = "linear",
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("Linear dimensions must be positive")
        # He/Kaiming initialization, appropriate for the ReLU stacks used here.
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(out_features, in_features)),
            f"{name}.weight",
            dtype=dtype,
        )
        self.bias = Parameter(np.zeros(out_features), f"{name}.bias", dtype=dtype)
        self._input: np.ndarray | None = None
        self.backend: Backend = get_backend("fused")
        self.workspace: Workspace | None = None
        self._ws_key = name

    def set_workspace(self, workspace: Workspace | None, key: str | None = None) -> None:
        """Attach a buffer arena; forward/backward then run the fused
        allocation-free kernels (bit-identical to the naive path)."""
        self.workspace = workspace
        if key is not None:
            self._ws_key = key

    def set_backend(
        self,
        backend: Backend | str,
        workspace: Workspace | None = None,
        key: str | None = None,
    ) -> None:
        """Select the compute backend (and its arena, if it uses one)."""
        self.backend = backend if isinstance(backend, Backend) else get_backend(backend)
        self.workspace = workspace
        if key is not None:
            self._ws_key = key

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        if training:
            self._input = x
        be = self.backend
        if be.uses_workspace and (
            self.workspace is None or x.dtype != self.weight.value.dtype
        ):
            be = reference_backend()
        return be.linear_forward(
            x, self.weight.value, self.bias.value, self.workspace, self._ws_key
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        self._input = None
        dtype = self.weight.value.dtype
        be = self.backend
        if be.uses_workspace and (
            self.workspace is None
            or grad_out.dtype != dtype
            or x.dtype != dtype
            or grad_out.ndim != 2
        ):
            be = reference_backend()
        return be.linear_backward(
            grad_out, x, self.weight.value,
            self.weight.grad, self.bias.grad, self.workspace, self._ws_key,
        )

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class ReLU:
    """Rectified linear activation.

    With a workspace attached the fused path runs ``np.maximum`` in place
    on arena-owned inputs and recovers activity in the backward from the
    *output* sign (``y > 0  ⇔  x > 0``) — no boolean mask array is saved.
    Bit-identical to the mask-based path (see
    :mod:`repro.core.dense_kernels`).
    """

    def __init__(self) -> None:
        self._ctx: np.ndarray | None = None
        self._ctx_backend: Backend | None = None
        self.backend: Backend = get_backend("fused")
        self.workspace: Workspace | None = None
        self._ws_key = "relu"

    def set_workspace(self, workspace: Workspace | None, key: str | None = None) -> None:
        self.workspace = workspace
        if key is not None:
            self._ws_key = key

    def set_backend(
        self,
        backend: Backend | str,
        workspace: Workspace | None = None,
        key: str | None = None,
    ) -> None:
        self.backend = backend if isinstance(backend, Backend) else get_backend(backend)
        self.workspace = workspace
        if key is not None:
            self._ws_key = key

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        be = self.backend
        if be.uses_workspace and self.workspace is None:
            be = reference_backend()
        y, ctx = be.relu_forward(x, self.workspace, self._ws_key, training=training)
        if training:
            self._ctx = ctx
            # The backward must consume ctx with the backend that made it.
            self._ctx_backend = be
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        be = self._ctx_backend
        if be is None:
            raise RuntimeError("backward called before forward")
        ctx = self._ctx
        self._ctx = None
        self._ctx_backend = None
        return be.relu_backward(grad_out, ctx, self.workspace, self._ws_key)

    def parameters(self) -> list[Parameter]:
        return []


class Sigmoid:
    """Logistic activation (used only when a probability output is needed;
    training goes through the numerically-stable loss in :mod:`repro.core.loss`).

    Shares the single stable-sigmoid implementation
    (:func:`repro.core.dense_kernels.stable_sigmoid`) with
    :func:`repro.core.loss.sigmoid` — historically two copies with
    inconsistent dtype behaviour."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        out = stable_sigmoid(x)
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        grad = grad_out * self._out * (1.0 - self._out)
        self._out = None
        return grad

    def parameters(self) -> list[Parameter]:
        return []


class MLP:
    """A stack of ``Linear`` + ``ReLU`` layers described by an :class:`MLPSpec`.

    ``final_activation=False`` leaves the last layer linear, which is how the
    top stack feeds the scoring logit.
    """

    def __init__(
        self,
        in_features: int,
        spec: MLPSpec,
        rng: np.random.Generator,
        final_activation: bool = True,
        name: str = "mlp",
        dtype: np.dtype | type = np.float64,
    ) -> None:
        self.spec = spec
        self.name = name
        self.layers: list[object] = []
        prev = in_features
        for i, width in enumerate(spec.layer_sizes):
            self.layers.append(Linear(prev, width, rng, name=f"{name}.{i}", dtype=dtype))
            is_last = i == len(spec.layer_sizes) - 1
            if final_activation or not is_last:
                self.layers.append(ReLU())
            prev = width
        self.in_features = in_features
        self.out_features = prev

    def set_workspace(self, workspace: Workspace | None) -> None:
        """Attach a buffer arena to every layer (fused allocation-free path).

        Layer keys derive from the stack name and position, so one arena can
        serve several MLPs (e.g. a DLRM's bottom/top stacks) without buffer
        aliasing.
        """
        for idx, layer in enumerate(self.layers):
            if hasattr(layer, "set_workspace"):
                layer.set_workspace(workspace, key=f"{self.name}[{idx}]")

    def set_backend(self, backend: Backend | str, workspace: Workspace | None = None) -> None:
        """Select the compute backend (and arena) on every layer of the
        stack; keys derive from the stack name and position as in
        :meth:`set_workspace`."""
        for idx, layer in enumerate(self.layers):
            if hasattr(layer, "set_backend"):
                layer.set_backend(backend, workspace, key=f"{self.name}[{idx}]")

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        """Run the stack; ``training=False`` is the inference fast path that
        skips caching activations entirely (nothing to discard afterwards,
        and ``backward`` on an inference-only forward raises)."""
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params
