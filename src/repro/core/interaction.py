"""Feature-interaction combiners (paper §III-A.3).

Two combiners are implemented, matching the paper:

* **Concatenation** — pooled embeddings of each sparse feature are
  concatenated to the bottom-MLP output.
* **Pairwise dot product** — the bottom-MLP output is treated as one more
  d-dimensional embedding; all pairwise dot products between the ``n+1``
  vectors are computed, and the resulting triangle is concatenated with the
  original dense output.  This captures dense-sparse and sparse-sparse
  interactions.

The compute routes through the backend seam (:mod:`repro.core.backends`):
the ``"numpy"`` reference materializes fresh temporaries, the ``"fused"``
path runs the allocation-free kernels of :mod:`repro.core.dense_kernels`
through the attached workspace arena (bit-identical).
"""

from __future__ import annotations

import numpy as np

from . import dense_kernels
from .backends import Backend, get_backend, reference_backend
from .dense_kernels import Workspace

__all__ = ["ConcatInteraction", "DotInteraction", "make_interaction"]


class ConcatInteraction:
    """Concatenate ``[dense, emb_1, ..., emb_n]`` along the feature axis."""

    def __init__(self, num_sparse: int, dim: int) -> None:
        self.num_sparse = num_sparse
        self.dim = dim
        self._dense_width: int | None = None
        self.backend: Backend = get_backend("fused")
        self.workspace: Workspace | None = None
        self._ws_key = "concat"

    def set_workspace(self, workspace: Workspace | None, key: str | None = None) -> None:
        self.workspace = workspace
        if key is not None:
            self._ws_key = key

    def set_backend(
        self,
        backend: Backend | str,
        workspace: Workspace | None = None,
        key: str | None = None,
    ) -> None:
        self.backend = backend if isinstance(backend, Backend) else get_backend(backend)
        self.workspace = workspace
        if key is not None:
            self._ws_key = key

    def out_features(self, dense_width: int) -> int:
        return dense_width + self.num_sparse * self.dim

    def forward(
        self, dense: np.ndarray, embs: list[np.ndarray], *, training: bool = True
    ) -> np.ndarray:
        if len(embs) != self.num_sparse:
            raise ValueError(f"expected {self.num_sparse} embeddings, got {len(embs)}")
        if training:
            self._dense_width = dense.shape[1]
        be = self.backend
        if be.uses_workspace and (
            self.workspace is None or any(e.dtype != dense.dtype for e in embs)
        ):
            be = reference_backend()
        return be.concat_forward(dense, embs, self.dim, self.workspace, self._ws_key)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        if self._dense_width is None:
            raise RuntimeError("backward called before forward")
        w = self._dense_width
        self._dense_width = None
        grad_dense = grad_out[:, :w]
        grad_embs = [
            grad_out[:, w + i * self.dim : w + (i + 1) * self.dim]
            for i in range(self.num_sparse)
        ]
        return grad_dense, grad_embs


class DotInteraction:
    """Pairwise dot products among ``[dense, emb_1, ..., emb_n]``.

    The output is ``concat(dense, lower_triangle(T @ T^T))`` where ``T`` is
    the ``(batch, n+1, d)`` stack of feature vectors; the strictly-lower
    triangle has ``(n+1) * n / 2`` entries.
    """

    def __init__(self, num_sparse: int, dim: int) -> None:
        self.num_sparse = num_sparse
        self.dim = dim
        n_vec = num_sparse + 1
        self._tril = np.tril_indices(n_vec, k=-1)
        #: Flat offsets ``i * n + j`` of the strict lower triangle — the
        #: fused forward gathers them with ``np.take`` on the flattened
        #: gram matrix (no fancy-index temporary).
        self._flat_tril = (self._tril[0] * n_vec + self._tril[1]).astype(np.intp)
        #: Symmetrized gather map of the fused backward (see
        #: :func:`repro.core.dense_kernels.symmetric_pair_map`).
        self._pair_map = dense_kernels.symmetric_pair_map(n_vec, self._tril)
        self._stack: np.ndarray | None = None
        self.backend: Backend = get_backend("fused")
        self.workspace: Workspace | None = None
        self._ws_key = "dot"

    def set_workspace(self, workspace: Workspace | None, key: str | None = None) -> None:
        """Attach a buffer arena; forward/backward then run the fused
        kernels of :mod:`repro.core.dense_kernels` (bit-identical)."""
        self.workspace = workspace
        if key is not None:
            self._ws_key = key

    def set_backend(
        self,
        backend: Backend | str,
        workspace: Workspace | None = None,
        key: str | None = None,
    ) -> None:
        self.backend = backend if isinstance(backend, Backend) else get_backend(backend)
        self.workspace = workspace
        if key is not None:
            self._ws_key = key

    @property
    def num_pairs(self) -> int:
        n_vec = self.num_sparse + 1
        return n_vec * (n_vec - 1) // 2

    def out_features(self, dense_width: int) -> int:
        if dense_width != self.dim:
            raise ValueError(
                f"dot interaction needs dense width == embedding dim "
                f"({dense_width} != {self.dim})"
            )
        return self.dim + self.num_pairs

    def forward(
        self, dense: np.ndarray, embs: list[np.ndarray], *, training: bool = True
    ) -> np.ndarray:
        if len(embs) != self.num_sparse:
            raise ValueError(f"expected {self.num_sparse} embeddings, got {len(embs)}")
        if dense.shape[1] != self.dim:
            raise ValueError(
                f"dense width {dense.shape[1]} != embedding dim {self.dim}"
            )
        be = self.backend
        if be.uses_workspace and (
            self.workspace is None or any(e.dtype != dense.dtype for e in embs)
        ):
            be = reference_backend()
        out, stack = be.dot_forward(
            dense, embs, self._tril, self._flat_tril,
            self.workspace, self._ws_key, training=training,
        )
        if training:
            self._stack = stack
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        if self._stack is None:
            raise RuntimeError("backward called before forward")
        stack = self._stack
        self._stack = None
        be = self.backend
        if be.uses_workspace and (
            self.workspace is None or grad_out.dtype != stack.dtype
        ):
            be = reference_backend()
        return be.dot_backward(
            stack, grad_out, self.dim, self._tril, self._pair_map,
            self.workspace, self._ws_key,
        )


def make_interaction(kind, num_sparse: int, dim: int):
    """Factory mapping :class:`repro.core.config.InteractionType` to a combiner."""
    from .config import InteractionType

    if kind is InteractionType.CONCAT:
        return ConcatInteraction(num_sparse, dim)
    if kind is InteractionType.DOT:
        return DotInteraction(num_sparse, dim)
    raise ValueError(f"unknown interaction type: {kind!r}")
