"""Feature-interaction combiners (paper §III-A.3).

Two combiners are implemented, matching the paper:

* **Concatenation** — pooled embeddings of each sparse feature are
  concatenated to the bottom-MLP output.
* **Pairwise dot product** — the bottom-MLP output is treated as one more
  d-dimensional embedding; all pairwise dot products between the ``n+1``
  vectors are computed, and the resulting triangle is concatenated with the
  original dense output.  This captures dense-sparse and sparse-sparse
  interactions.
"""

from __future__ import annotations

import numpy as np

from . import dense_kernels
from .dense_kernels import Workspace

__all__ = ["ConcatInteraction", "DotInteraction", "make_interaction"]


class ConcatInteraction:
    """Concatenate ``[dense, emb_1, ..., emb_n]`` along the feature axis."""

    def __init__(self, num_sparse: int, dim: int) -> None:
        self.num_sparse = num_sparse
        self.dim = dim
        self._dense_width: int | None = None
        self.workspace: Workspace | None = None
        self._ws_key = "concat"

    def set_workspace(self, workspace: Workspace | None, key: str | None = None) -> None:
        self.workspace = workspace
        if key is not None:
            self._ws_key = key

    def out_features(self, dense_width: int) -> int:
        return dense_width + self.num_sparse * self.dim

    def forward(
        self, dense: np.ndarray, embs: list[np.ndarray], *, training: bool = True
    ) -> np.ndarray:
        if len(embs) != self.num_sparse:
            raise ValueError(f"expected {self.num_sparse} embeddings, got {len(embs)}")
        if training:
            self._dense_width = dense.shape[1]
        ws = self.workspace
        if ws is not None and all(e.dtype == dense.dtype for e in embs):
            w = dense.shape[1]
            out = ws.get(
                (self._ws_key, "out"),
                (dense.shape[0], w + self.num_sparse * self.dim),
                dense.dtype,
            )
            out[:, :w] = dense
            for i, emb in enumerate(embs):
                out[:, w + i * self.dim : w + (i + 1) * self.dim] = emb
            return out
        return np.concatenate([dense] + embs, axis=1)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        if self._dense_width is None:
            raise RuntimeError("backward called before forward")
        w = self._dense_width
        self._dense_width = None
        grad_dense = grad_out[:, :w]
        grad_embs = [
            grad_out[:, w + i * self.dim : w + (i + 1) * self.dim]
            for i in range(self.num_sparse)
        ]
        return grad_dense, grad_embs


class DotInteraction:
    """Pairwise dot products among ``[dense, emb_1, ..., emb_n]``.

    The output is ``concat(dense, lower_triangle(T @ T^T))`` where ``T`` is
    the ``(batch, n+1, d)`` stack of feature vectors; the strictly-lower
    triangle has ``(n+1) * n / 2`` entries.
    """

    def __init__(self, num_sparse: int, dim: int) -> None:
        self.num_sparse = num_sparse
        self.dim = dim
        n_vec = num_sparse + 1
        self._tril = np.tril_indices(n_vec, k=-1)
        #: Flat offsets ``i * n + j`` of the strict lower triangle — the
        #: fused forward gathers them with ``np.take`` on the flattened
        #: gram matrix (no fancy-index temporary).
        self._flat_tril = (self._tril[0] * n_vec + self._tril[1]).astype(np.intp)
        #: Symmetrized gather map of the fused backward (see
        #: :func:`repro.core.dense_kernels.symmetric_pair_map`).
        self._pair_map = dense_kernels.symmetric_pair_map(n_vec, self._tril)
        self._stack: np.ndarray | None = None
        self.workspace: Workspace | None = None
        self._ws_key = "dot"

    def set_workspace(self, workspace: Workspace | None, key: str | None = None) -> None:
        """Attach a buffer arena; forward/backward then run the fused
        kernels of :mod:`repro.core.dense_kernels` (bit-identical)."""
        self.workspace = workspace
        if key is not None:
            self._ws_key = key

    @property
    def num_pairs(self) -> int:
        n_vec = self.num_sparse + 1
        return n_vec * (n_vec - 1) // 2

    def out_features(self, dense_width: int) -> int:
        if dense_width != self.dim:
            raise ValueError(
                f"dot interaction needs dense width == embedding dim "
                f"({dense_width} != {self.dim})"
            )
        return self.dim + self.num_pairs

    def forward(
        self, dense: np.ndarray, embs: list[np.ndarray], *, training: bool = True
    ) -> np.ndarray:
        if len(embs) != self.num_sparse:
            raise ValueError(f"expected {self.num_sparse} embeddings, got {len(embs)}")
        if dense.shape[1] != self.dim:
            raise ValueError(
                f"dense width {dense.shape[1]} != embedding dim {self.dim}"
            )
        ws = self.workspace
        if ws is not None and all(e.dtype == dense.dtype for e in embs):
            batch = dense.shape[0]
            n_vec = self.num_sparse + 1
            key = self._ws_key
            dt = dense.dtype
            stack = ws.get((key, "stack"), (batch, n_vec, self.dim), dt)
            stack[:, 0, :] = dense
            for i, emb in enumerate(embs):
                stack[:, i + 1, :] = emb
            if training:
                self._stack = stack
            return dense_kernels.dot_forward(
                stack,
                self._flat_tril,
                dense,
                ws.get((key, "gram"), (batch, n_vec, n_vec), dt),
                ws.get((key, "pairs"), (batch, self.num_pairs), dt),
                ws.get((key, "out"), (batch, self.dim + self.num_pairs), dt),
            )
        stack = np.stack([dense] + embs, axis=1)  # (B, n+1, d)
        if training:
            self._stack = stack
        gram = stack @ stack.transpose(0, 2, 1)  # (B, n+1, n+1)
        pairs = gram[:, self._tril[0], self._tril[1]]  # (B, num_pairs)
        return np.concatenate([dense, pairs], axis=1)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        if self._stack is None:
            raise RuntimeError("backward called before forward")
        stack = self._stack
        self._stack = None
        batch, n_vec, _ = stack.shape
        grad_dense_direct = grad_out[:, : self.dim]
        grad_pairs = grad_out[:, self.dim :]
        ws = self.workspace
        if ws is not None and grad_out.dtype == stack.dtype:
            key = self._ws_key
            dt = stack.dtype
            # The forward's gram buffer is dead by now — reuse it for the
            # symmetrized pair gradients (transpose and scatter folded into
            # one gather map; no dense zeros+symmetrize round trip).
            grad_stack = dense_kernels.dot_backward(
                stack,
                self._pair_map,
                grad_pairs,
                ws.get((key, "pairs_ext"), (batch, self.num_pairs + 1), dt),
                ws.get((key, "gram"), (batch, n_vec, n_vec), dt),
                ws.get((key, "gstack"), (batch, n_vec, self.dim), dt),
            )
            grad_dense = ws.get((key, "gdense"), (batch, self.dim), dt)
            np.add(grad_stack[:, 0, :], grad_dense_direct, out=grad_dense)
            grad_embs = [grad_stack[:, i + 1, :] for i in range(self.num_sparse)]
            return grad_dense, grad_embs
        # Scatter pair gradients into a symmetric (n+1, n+1) matrix; since
        # gram = T @ T^T, dT = (G + G^T) @ T, with G holding the triangle.
        # Follow the activation dtype so float32 compute mode stays float32
        # end-to-end (float64 inputs are unchanged).
        gram_grad = np.zeros((batch, n_vec, n_vec), dtype=stack.dtype)
        gram_grad[:, self._tril[0], self._tril[1]] = grad_pairs
        gram_grad = gram_grad + gram_grad.transpose(0, 2, 1)
        grad_stack = gram_grad @ stack  # (B, n+1, d)
        grad_dense = grad_stack[:, 0, :] + grad_dense_direct
        grad_embs = [grad_stack[:, i + 1, :] for i in range(self.num_sparse)]
        return grad_dense, grad_embs


def make_interaction(kind, num_sparse: int, dim: int):
    """Factory mapping :class:`repro.core.config.InteractionType` to a combiner."""
    from .config import InteractionType

    if kind is InteractionType.CONCAT:
        return ConcatInteraction(num_sparse, dim)
    if kind is InteractionType.DOT:
        return DotInteraction(num_sparse, dim)
    raise ValueError(f"unknown interaction type: {kind!r}")
