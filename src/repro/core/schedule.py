"""Learning-rate schedules.

Section III of the paper lists "number of warm-up iterations" among the
hyper-parameters that matter for model quality (excluded from the
*performance* study, but part of the training system).  Schedules compose
with the optimizers here by mutating ``optimizer.lr`` per step through
:class:`ScheduledOptimizer`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ConstantLR",
    "WarmupLR",
    "PolynomialDecayLR",
    "ScheduledOptimizer",
]


class ConstantLR:
    """Flat schedule (the default behaviour made explicit)."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr

    def at(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        return self.lr


class WarmupLR:
    """Linear warm-up from ``start_factor * lr`` to ``lr`` over
    ``warmup_steps``, then flat — the standard large-batch recipe the paper
    cites ([19], Goyal et al.)."""

    def __init__(self, lr: float, warmup_steps: int, start_factor: float = 0.1) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if warmup_steps < 1:
            raise ValueError(f"warmup_steps must be >= 1, got {warmup_steps}")
        if not 0 < start_factor <= 1:
            raise ValueError(f"start_factor must be in (0, 1], got {start_factor}")
        self.lr = lr
        self.warmup_steps = warmup_steps
        self.start_factor = start_factor

    def at(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        if step >= self.warmup_steps:
            return self.lr
        progress = step / self.warmup_steps
        factor = self.start_factor + (1.0 - self.start_factor) * progress
        return self.lr * factor


class PolynomialDecayLR:
    """Decay from ``lr`` to ``end_lr`` over ``total_steps`` with exponent
    ``power`` (power=1 is linear decay), flat afterwards."""

    def __init__(
        self, lr: float, total_steps: int, end_lr: float = 0.0, power: float = 1.0
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1, got {total_steps}")
        if end_lr < 0 or end_lr > lr:
            raise ValueError(f"end_lr must be in [0, lr], got {end_lr}")
        if power <= 0:
            raise ValueError(f"power must be positive, got {power}")
        self.lr = lr
        self.total_steps = total_steps
        self.end_lr = end_lr
        self.power = power

    def at(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        if step >= self.total_steps:
            return self.end_lr
        remaining = 1.0 - step / self.total_steps
        return self.end_lr + (self.lr - self.end_lr) * remaining**self.power


@dataclass
class ScheduledOptimizer:
    """Wrap an optimizer so its ``lr`` follows a schedule per step.

    Duck-compatible with the optimizers consumed by
    :class:`~repro.core.training.Trainer` (``zero_grad`` / ``step``).
    """

    optimizer: object
    schedule: object
    step_count: int = 0

    def zero_grad(self) -> None:
        self.optimizer.zero_grad()

    def step(self) -> None:
        self.optimizer.lr = self.schedule.at(self.step_count)
        self.optimizer.step()
        self.step_count += 1

    @property
    def current_lr(self) -> float:
        return self.schedule.at(self.step_count)
