"""Double-buffered prefetch pipeline for the training data path.

The paper's efficiency taxonomy (§IV–V) charges a DLRM step not just for
its FLOPs but for everything serialized around them: batch materialization,
ragged truncation, index bounds checks, the CSR/coalesce bookkeeping of the
embedding ops, and frequency-stats ingestion for the tiered store.  All of
that work is a pure function of the *data stream* — it never reads a weight
— so it can run concurrently with the previous step's compute without
changing a single bit of the result.

:class:`PrefetchPipeline` does exactly that: a background prep thread pulls
batches from the source iterator (in order — the stream's rng consumption
is untouched), builds every table's
:class:`~repro.core.embedding.TablePlan` via the *same*
``plan_forward`` code path the inline trainer uses, and hands
:class:`PreparedBatch` objects to the consumer through a bounded two-slot
buffer.  Bit-identity with the unpipelined run is therefore by
construction, not by test alone (though ``tests/test_pipeline.py`` pins it
property-style anyway).

The pipeline also keeps the ledger that makes runs self-diagnosing
(:class:`PipelineStats`):

* ``compute_stall_s`` — time the consumer blocked on an empty buffer: the
  run is **prep-bound** (the paper's "data ingestion dominates" regime);
* ``prep_stall_s`` — time the producer blocked on a full buffer: the run
  is **compute-bound** and prefetch is pure win;
* ``overlap_fraction`` — the share of prep work hidden behind compute.

Prep-thread activity is recorded as complete spans and drained into the
consumer's :class:`~repro.obs.tracer.Tracer` on a separate Chrome-trace
thread lane (``tid=1``), so ``python -m repro trace pipeline`` shows the
two timelines interleaving.

While a pipeline is running it holds one core reservation
(:func:`repro.runtime.reserve_core`), so
:func:`repro.runtime.default_workers` won't oversubscribe a small CI
machine by handing the prep thread's core to a sweep pool.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from .core.embedding import TablePlan
from .core.model import Batch
from .obs.tracer import NULL_TRACER
from .runtime.runner import release_core, reserve_core

__all__ = [
    "PipelineConfig",
    "PipelineStats",
    "PreparedBatch",
    "PrefetchPipeline",
    "as_pipeline_config",
]

#: Chrome-trace thread lane for prep-thread spans (consumer spans stay on 0).
PREP_TID = 1


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs of the prefetch stage.

    ``depth`` is the bounded buffer's slot count — 2 is classic double
    buffering: one batch being consumed, one being prepared, and the
    producer blocks rather than running unboundedly ahead (which would
    both hoard memory and, for tiered tables, let frequency stats drift
    arbitrarily far ahead of the step consuming them).
    """

    depth: int = 2

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {self.depth}")


def as_pipeline_config(
    pipeline: "bool | PipelineConfig | None",
) -> PipelineConfig | None:
    """Normalize the ``pipeline=`` argument accepted across the repo:
    ``False``/``None`` -> off, ``True`` -> default config, or an explicit
    :class:`PipelineConfig`."""
    if pipeline is None or pipeline is False:
        return None
    if pipeline is True:
        return PipelineConfig()
    if isinstance(pipeline, PipelineConfig):
        return pipeline
    raise TypeError(
        f"pipeline must be bool or PipelineConfig, got {type(pipeline).__name__}"
    )


@dataclass
class PipelineStats:
    """The stall ledger of one pipelined run.

    All times are wall-clock seconds measured with ``time.perf_counter``
    on the thread that experienced the wait.
    """

    #: Seconds the prep thread spent doing useful work (generation + plans).
    prep_busy_s: float = 0.0
    #: Seconds the prep thread blocked on a full buffer (compute-bound).
    prep_stall_s: float = 0.0
    #: Seconds the consumer blocked on an empty buffer (prep-bound).
    compute_stall_s: float = 0.0
    #: Batches fully prepared by the prep thread.
    batches: int = 0

    @property
    def overlap_fraction(self) -> float:
        """Share of prep work hidden behind compute: 1.0 means every
        second of preparation ran concurrently with a step; 0.0 means the
        consumer waited for all of it (no better than inline)."""
        if self.prep_busy_s <= 0.0:
            return 0.0
        hidden = self.prep_busy_s - self.compute_stall_s
        return max(0.0, min(1.0, hidden / self.prep_busy_s))

    def as_dict(self) -> dict[str, float]:
        return {
            "prep_busy_s": self.prep_busy_s,
            "prep_stall_s": self.prep_stall_s,
            "compute_stall_s": self.compute_stall_s,
            "overlap_fraction": self.overlap_fraction,
            "batches": self.batches,
        }


class PreparedBatch:
    """A :class:`~repro.core.model.Batch` plus its precomputed lookup plans.

    Duck-types the batch surface the model and trainer touch (``dense``,
    ``sparse``, ``labels``, ``size``, ``total_lookups``) and carries
    ``plans`` — table name -> :class:`~repro.core.embedding.TablePlan` —
    which :meth:`repro.core.model.DLRM.forward` picks up via
    ``getattr(batch, "plans", None)``.
    """

    __slots__ = ("batch", "plans", "seq")

    def __init__(
        self,
        batch: Batch,
        plans: dict[str, TablePlan] | None,
        seq: int = 0,
    ) -> None:
        self.batch = batch
        self.plans = plans
        self.seq = seq

    @property
    def dense(self) -> np.ndarray:
        return self.batch.dense

    @property
    def sparse(self):
        return self.batch.sparse

    @property
    def labels(self) -> np.ndarray:
        return self.batch.labels

    @property
    def size(self) -> int:
        return self.batch.size

    def total_lookups(self) -> int:
        return self.batch.total_lookups()


class _Closed(Exception):
    """Internal: the buffer was closed under a blocked producer/consumer."""


class _Buffer:
    """A bounded FIFO with separate producer/consumer wait accounting.

    ``queue.Queue`` would force polling to stay interruptible on close;
    condition variables give immediate wakeups, which matters because the
    producer's handoff latency lands directly on ``prep_stall_s``.
    """

    def __init__(self, depth: int) -> None:
        self._items: deque = deque()
        self._depth = depth
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._closed = False

    def put(self, item) -> float:
        """Append, blocking while full; returns seconds spent blocked.

        Raises :class:`_Closed` if the buffer is closed before space frees
        (the consumer abandoned the stream)."""
        t0 = time.perf_counter()
        with self._changed:
            while len(self._items) >= self._depth and not self._closed:
                self._changed.wait()
            if self._closed:
                raise _Closed
            self._items.append(item)
            self._changed.notify_all()
        return time.perf_counter() - t0

    def get(self) -> tuple[object, float]:
        """Pop the oldest item, blocking while empty; returns
        ``(item, seconds_blocked)``.  Raises :class:`_Closed` once closed
        and drained."""
        t0 = time.perf_counter()
        with self._changed:
            while not self._items and not self._closed:
                self._changed.wait()
            if not self._items:
                raise _Closed
            item = self._items.popleft()
            self._changed.notify_all()
        return item, time.perf_counter() - t0

    def close(self) -> None:
        with self._changed:
            self._closed = True
            self._changed.notify_all()


class _Done:
    """Sentinel: the source iterator is exhausted."""


class _Failure:
    """Sentinel: the prep thread raised; the exception re-raises on the
    consumer, annotated with the pipeline stage (satellite of the PR 8
    crash-attribution work)."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class PrefetchPipeline:
    """Background batch preparation behind a bounded two-slot buffer.

    Wraps a batch iterator; iterating the pipeline yields
    :class:`PreparedBatch` objects in exactly the source order.  ``plan_fn``
    maps a batch to its per-table plans (typically
    ``lambda b: collection.plan_batch(b.sparse)``); ``None`` prefetches
    batches without planning (generation-only overlap).

    Use as a context manager (or call :meth:`close`); the prep thread,
    core reservation and span drain are all released on exit.  Exceptions
    raised by the source iterator or ``plan_fn`` surface on the consumer
    at the position in the stream where they occurred, annotated with the
    pipeline stage.
    """

    def __init__(
        self,
        source: Iterator[Batch],
        plan_fn: Callable[[Batch], dict[str, TablePlan]] | None = None,
        config: PipelineConfig | None = None,
        tracer=None,
        stage: str = "prep",
    ) -> None:
        self.config = config if config is not None else PipelineConfig()
        self.stats = PipelineStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stage = stage
        self._source = iter(source)
        self._plan_fn = plan_fn
        self._buffer = _Buffer(self.config.depth)
        # Prep-thread span records; the Tracer is single-threaded (strict
        # nesting stack), so the prep thread logs (name, t0, dur, attrs)
        # tuples and the consumer replays them onto lane PREP_TID.  Both
        # threads read the same perf_counter clock, so the lanes align.
        self._spans: deque = deque()
        self._thread: threading.Thread | None = None
        self._started = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "PrefetchPipeline":
        if self._started:
            return self
        self._started = True
        reserve_core()
        self._thread = threading.Thread(
            target=self._prep_loop, name=f"pipeline-{self.stage}", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._buffer.close()
        if self._thread is not None:
            self._thread.join()
        if self._started:
            release_core()
        self._drain_spans()

    def __enter__(self) -> "PrefetchPipeline":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- producer ------------------------------------------------------------

    def _prep_loop(self) -> None:
        try:
            for seq, batch in enumerate(self._source):
                t0 = time.perf_counter()
                plans = self._plan_fn(batch) if self._plan_fn is not None else None
                busy = time.perf_counter() - t0
                self.stats.prep_busy_s += busy
                self.stats.batches += 1
                self._spans.append(
                    (f"pipeline.{self.stage}", t0, busy, {"seq": seq})
                )
                t1 = time.perf_counter()
                stalled = self._buffer.put(PreparedBatch(batch, plans, seq))
                self.stats.prep_stall_s += stalled
                if stalled > 1e-6:
                    self._spans.append(
                        (f"pipeline.{self.stage}_stall", t1, stalled, {"seq": seq})
                    )
        except _Closed:
            return  # consumer went away first; nothing to report
        except BaseException as exc:  # noqa: BLE001 - replayed on the consumer
            try:
                self._buffer.put(_Failure(exc))
            except _Closed:
                pass
        else:
            try:
                self._buffer.put(_Done())
            except _Closed:
                pass

    # -- consumer ------------------------------------------------------------

    def __iter__(self) -> "PrefetchPipeline":
        return self.start()

    def __next__(self) -> PreparedBatch:
        if not self._started:
            self.start()
        try:
            item, waited = self._buffer.get()
        except _Closed:
            raise StopIteration
        self.stats.compute_stall_s += waited
        if waited > 1e-6:
            self.tracer.record(
                "pipeline.compute_stall",
                "pipeline",
                time.perf_counter() - waited,
                waited,
            )
        self._drain_spans()
        if isinstance(item, _Done):
            raise StopIteration
        if isinstance(item, _Failure):
            exc = item.exc
            if hasattr(exc, "add_note"):  # 3.11+
                exc.add_note(
                    f"raised on the pipeline prep thread (stage={self.stage!r})"
                )
            raise exc
        return item

    def _drain_spans(self) -> None:
        """Replay prep-thread spans onto the tracer's prep lane."""
        while True:
            try:
                name, t0, dur, attrs = self._spans.popleft()
            except IndexError:
                return
            self.tracer.record(name, "pipeline", t0, dur, tid=PREP_TID, **attrs)
