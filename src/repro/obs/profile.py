"""Ambient-tracer hooks: decorator and context-manager instrumentation.

Some call sites can't thread a ``tracer=`` argument through every layer
(e.g. a deeply nested helper).  This module provides an *ambient* tracer —
a stack whose top is the currently-active tracer, defaulting to the no-op
:data:`~repro.obs.tracer.NULL_TRACER` — plus a decorator and a block
context manager that record against it:

    with use_tracer(tracer):
        run_experiment()          # @profiled functions now emit spans

    @profiled(category="compute")
    def dense_forward(...): ...

    with profile_block("pack_indices", "memory", tables=n):
        ...
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, Iterator, TypeVar

from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = ["current_tracer", "use_tracer", "profiled", "profile_block"]

_F = TypeVar("_F", bound=Callable[..., Any])

# The ambient tracer stack; the bottom element is permanent.
_STACK: list[Tracer | NullTracer] = [NULL_TRACER]


def current_tracer() -> Tracer | NullTracer:
    """The innermost active tracer (``NULL_TRACER`` when none is in use)."""
    return _STACK[-1]


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Make ``tracer`` the ambient tracer for the enclosed block."""
    _STACK.append(tracer)
    try:
        yield tracer
    finally:
        popped = _STACK.pop()
        if popped is not tracer:  # pragma: no cover - defensive
            raise RuntimeError("use_tracer stack corrupted")


def profiled(name: str | None = None, category: str = "compute") -> Callable[[_F], _F]:
    """Decorator: record a wall-clock span around each call, on the ambient
    tracer.  Zero-cost (one attribute check) when no tracer is active."""

    def decorate(func: _F) -> _F:
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = _STACK[-1]
            if not tracer.enabled:
                return func(*args, **kwargs)
            with tracer.span(span_name, category):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


@contextmanager
def profile_block(name: str, category: str = "compute", **attrs: Any) -> Iterator[None]:
    """Context manager: a wall-clock span on the ambient tracer."""
    tracer = _STACK[-1]
    if not tracer.enabled:
        yield
        return
    with tracer.span(name, category, **attrs):
        yield
