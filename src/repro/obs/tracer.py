"""Span tracing with Chrome-trace export.

The reproduction's performance claims are *time attributions*: which
operator, which resource, which placement ate the iteration.  This module
makes those attributions first-class: a :class:`Tracer` collects nestable
:class:`Span` records — on either a wall-clock timeline (functional
training) or a synthetic timeline (the analytical model and the event
simulators, which compute times rather than spend them) — and exports them
in the Chrome ``chrome://tracing`` / Perfetto JSON format.

Every instrumented hot path defaults to the :class:`NullTracer`, whose
methods are no-ops, so instrumentation is free when disabled (an invariant
pinned by ``tests/test_obs.py::TestOverheadGuard``).

Span taxonomy (categories):

``compute``    dense MLP / interaction / optimizer arithmetic
``memory``     embedding lookups, host-side packing, PCIe staging
``comm``       all-to-all, allreduce, NIC transfers, PS round trips
``runtime``    fixed per-iteration software overheads
``iteration``  one whole training iteration (parent of the above)
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "ensure_tracer"]


@dataclass
class Span:
    """One timed, categorized interval.

    ``parent`` is the index (into ``Tracer.spans``) of the enclosing span,
    or ``None`` for a root.  ``t1 is None`` while the span is open.
    """

    name: str
    category: str
    t0: float
    t1: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    parent: int | None = None
    tid: int = 0

    @property
    def duration(self) -> float:
        if self.t1 is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.t1 - self.t0


class Tracer:
    """Collects strictly-nested spans on an explicit or wall-clock timeline.

    Three entry points:

    * :meth:`span` — context manager, wall-clock (``time.perf_counter``);
    * :meth:`begin` / :meth:`end` — manual pairs, optionally with explicit
      times (synthetic timelines);
    * :meth:`record` — a complete span with explicit ``t0``/``duration``,
      parented under whatever span is currently open.

    Strict nesting is enforced: :meth:`end` must close the innermost open
    span.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._clock = clock
        self._cursor = 0.0  # synthetic-timeline allocator (see reserve())

    # -- core span lifecycle ------------------------------------------------

    def begin(
        self, name: str, category: str, t0: float | None = None, *, tid: int = 0, **attrs: Any
    ) -> Span:
        """Open a span; it becomes the parent of subsequent spans."""
        span = Span(
            name=name,
            category=category,
            t0=self._clock() if t0 is None else float(t0),
            attributes=attrs,
            parent=self._stack[-1] if self._stack else None,
            tid=tid,
        )
        self.spans.append(span)
        self._stack.append(len(self.spans) - 1)
        return span

    def end(self, span: Span, t1: float | None = None) -> None:
        """Close ``span``; raises unless it is the innermost open span."""
        if not self._stack or self.spans[self._stack[-1]] is not span:
            raise ValueError(
                f"span {span.name!r} is not the innermost open span "
                "(strict nesting violated)"
            )
        span.t1 = self._clock() if t1 is None else float(t1)
        if span.t1 < span.t0:
            raise ValueError(f"span {span.name!r}: t1 {span.t1} < t0 {span.t0}")
        self._stack.pop()

    class _SpanContext:
        __slots__ = ("_tracer", "_span")

        def __init__(self, tracer: "Tracer", span: Span) -> None:
            self._tracer = tracer
            self._span = span

        def __enter__(self) -> Span:
            return self._span

        def __exit__(self, *exc: Any) -> None:
            self._tracer.end(self._span)

    def span(self, name: str, category: str = "compute", *, tid: int = 0, **attrs: Any):
        """Wall-clock context manager: ``with tracer.span("fwd", "compute"):``."""
        return Tracer._SpanContext(self, self.begin(name, category, tid=tid, **attrs))

    def record(
        self,
        name: str,
        category: str,
        t0: float,
        duration: float,
        *,
        tid: int = 0,
        **attrs: Any,
    ) -> Span:
        """A complete span on an explicit timeline (simulated/analytic time)."""
        if duration < 0:
            raise ValueError(f"span {name!r}: duration must be >= 0, got {duration}")
        span = Span(
            name=name,
            category=category,
            t0=float(t0),
            t1=float(t0) + float(duration),
            attributes=attrs,
            parent=self._stack[-1] if self._stack else None,
            tid=tid,
        )
        self.spans.append(span)
        return span

    def reserve(self, duration: float) -> float:
        """Allocate ``duration`` seconds on the synthetic timeline and return
        its start offset.  Lets independent analytic evaluations (e.g. the six
        placement points of Figure 14) lay their spans out sequentially in one
        trace instead of stacking at t=0."""
        if duration < 0:
            raise ValueError("duration must be >= 0")
        t0 = self._cursor
        self._cursor = t0 + duration
        return t0

    # -- introspection ------------------------------------------------------

    def finished(self) -> list[Span]:
        return [s for s in self.spans if s.t1 is not None]

    def categories(self) -> set[str]:
        return {s.category for s in self.spans}

    def total_by_category(self) -> dict[str, float]:
        """Summed duration per category over finished spans."""
        out: dict[str, float] = {}
        for s in self.finished():
            out[s.category] = out.get(s.category, 0.0) + s.duration
        return dict(sorted(out.items()))

    # -- Chrome-trace export ------------------------------------------------

    def to_chrome(self) -> dict:
        """Chrome ``chrome://tracing`` / Perfetto ``traceEvents`` JSON object.

        Times are exported in microseconds ("X" complete events).  Open spans
        are skipped.
        """
        events = []
        for s in self.finished():
            args = dict(s.attributes)
            if s.parent is not None:
                args["parent"] = self.spans[s.parent].name
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": s.t0 * 1e6,
                    "dur": s.duration * 1e6,
                    "pid": 0,
                    "tid": s.tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> int:
        """Write the Chrome trace JSON to ``path``; returns the event count."""
        payload = self.to_chrome()
        with open(path, "w") as fh:
            json.dump(payload, fh)
        return len(payload["traceEvents"])


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc: Any) -> None:
        pass


class NullTracer:
    """No-op tracer: the default for every instrumented hot path.

    All methods are O(1) no-ops so that passing ``NULL_TRACER`` (or nothing)
    leaves instrumented code bit-identical — and within noise as fast — as
    uninstrumented code.
    """

    enabled = False
    spans: list[Span] = []  # intentionally shared: always empty

    def begin(self, name: str, category: str, t0: float | None = None, *, tid: int = 0, **attrs: Any) -> Span:
        return _NULL_SPAN

    def end(self, span: Span, t1: float | None = None) -> None:
        pass

    def span(self, name: str, category: str = "compute", *, tid: int = 0, **attrs: Any):
        return _NULL_CONTEXT

    def record(self, name: str, category: str, t0: float, duration: float, *, tid: int = 0, **attrs: Any) -> Span:
        return _NULL_SPAN

    def reserve(self, duration: float) -> float:
        return 0.0

    def finished(self) -> list[Span]:
        return []

    def categories(self) -> set[str]:
        return set()

    def total_by_category(self) -> dict[str, float]:
        return {}

    def to_chrome(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> int:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
        return 0


_NULL_SPAN = Span(name="null", category="null", t0=0.0, t1=0.0)
_NULL_CONTEXT = _NullSpanContext()

#: Shared no-op tracer instance; the default everywhere.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize an optional tracer argument to a usable tracer object."""
    return NULL_TRACER if tracer is None else tracer
