"""Observability layer: span tracing, metrics registry, profiling hooks.

``repro.obs`` gives the reproduction the internal visibility the paper's
methodology is built on: per-operator time attribution (:mod:`.tracer`),
aggregate utilization/latency distributions (:mod:`.registry`), and
ambient instrumentation hooks (:mod:`.profile`).

Everything defaults off via :data:`NULL_TRACER`; see ``DESIGN.md``
("Observability layer") for the span taxonomy and how traces relate to the
paper's figures.
"""

from .profile import current_tracer, profile_block, profiled, use_tracer
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_all,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, ensure_tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ensure_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "merge_all",
    "current_tracer",
    "use_tracer",
    "profiled",
    "profile_block",
]
