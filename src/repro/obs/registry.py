"""Metrics registry: counters, gauges, histograms with labels and merging.

The production stack aggregates telemetry from many servers (trainers,
parameter servers, readers) into fleet-wide views; the reproduction's
analogue is a :class:`MetricsRegistry` per simulated run that can be
combined across runs/trainers with :func:`merge_all`.

Merging is **associative and commutative** (a property pinned in
``tests/test_property_based.py``), which is what makes hierarchical
aggregation order-independent: per-trainer -> per-run -> fleet gives the
same registry regardless of grouping.  The per-metric merge rules are:

* :class:`Counter` — values add;
* :class:`Gauge` — element-wise ``max`` (a deliberate choice: "peak
  observed" is the only last-value-free reduction that is associative,
  commutative, and idempotent);
* :class:`Histogram` — bucket counts, totals and min/max combine.

Histograms store fixed exponential buckets (not raw samples), so memory is
O(buckets) regardless of observation count and quantiles are interpolated
within a bucket, clamped to the observed ``[min, max]``.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "merge_all",
]

#: Default histogram bucket upper bounds: 1e-9 .. 1e12 decades with two
#: sub-decade points, covering nanosecond spans through fleet byte counts.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    round(m * 10.0**e, 12) for e in range(-9, 13) for m in (1.0, 2.5, 5.0)
)


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _LabeledMetric:
    """Shared machinery: a parent metric owning labeled children."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._children: dict[tuple[tuple[str, str], ...], "_LabeledMetric"] = {}

    def _new_child(self) -> "_LabeledMetric":
        raise NotImplementedError

    def labels(self, **labels: object) -> "_LabeledMetric":
        """Get or create the child metric for a label set."""
        if not labels:
            raise ValueError(f"metric {self.name!r}: labels() requires labels")
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def children(self) -> dict[tuple[tuple[str, str], ...], "_LabeledMetric"]:
        return dict(self._children)

    def _merge_children_from(self, other: "_LabeledMetric") -> None:
        for key, theirs in other._children.items():
            mine = self._children.get(key)
            if mine is None:
                mine = self._new_child()
                self._children[key] = mine
            mine.update(theirs)

    def update(self, other: "_LabeledMetric") -> None:  # pragma: no cover
        raise NotImplementedError


class Counter(_LabeledMetric):
    """Monotonically-increasing count; merge adds."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = 0.0

    def _new_child(self) -> "Counter":
        return Counter(self.name)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: amount must be >= 0")
        self.value += float(amount)

    def update(self, other: "Counter") -> None:
        self.value += other.value
        self._merge_children_from(other)

    def to_dict(self) -> dict:
        out: dict = {"type": "counter", "value": self.value}
        if self._children:
            out["children"] = {
                "|".join(f"{k}={v}" for k, v in key): child.to_dict()
                for key, child in sorted(self._children.items())
            }
        return out


class Gauge(_LabeledMetric):
    """Last-set value; merge takes the element-wise maximum."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value: float | None = None

    def _new_child(self) -> "Gauge":
        return Gauge(self.name)

    def set(self, value: float) -> None:
        self.value = float(value)

    def update(self, other: "Gauge") -> None:
        if other.value is not None:
            self.value = other.value if self.value is None else max(self.value, other.value)
        self._merge_children_from(other)

    def to_dict(self) -> dict:
        out: dict = {"type": "gauge", "value": self.value}
        if self._children:
            out["children"] = {
                "|".join(f"{k}={v}" for k, v in key): child.to_dict()
                for key, child in sorted(self._children.items())
            }
        return out


class Histogram(_LabeledMetric):
    """Fixed-bucket histogram with clamped quantile interpolation."""

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name)
        if len(buckets) < 1:
            raise ValueError(f"histogram {self.name!r}: need at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(buckets, buckets[1:])):
            raise ValueError(f"histogram {self.name!r}: buckets must be increasing")
        self.buckets = tuple(float(b) for b in buckets)
        # counts[i] counts observations <= buckets[i]; the final slot is the
        # +Inf overflow bucket.
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def _new_child(self) -> "Histogram":
        return Histogram(self.name, self.buckets)

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r}: cannot observe NaN")
        # binary search for the first bucket bound >= value
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile: linear interpolation within the bucket
        holding the rank, clamped to the observed ``[min, max]``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        assert self.min is not None and self.max is not None
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= rank and c > 0:
                lower = self.buckets[i - 1] if i >= 1 else self.min
                upper = self.buckets[i] if i < len(self.buckets) else self.max
                frac = 0.5 if c == 0 else (rank - (cum - c)) / c
                est = lower + (upper - lower) * min(max(frac, 0.0), 1.0)
                return min(max(est, self.min), self.max)
        return self.max

    def update(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge different bucket bounds"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        self._merge_children_from(other)

    def to_dict(self) -> dict:
        out: dict = {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "counts": list(self.counts),
        }
        if self._children:
            out["children"] = {
                "|".join(f"{k}={v}" for k, v in key): child.to_dict()
                for key, child in sorted(self._children.items())
            }
        return out


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, _LabeledMetric] = {}

    def _get_or_create(self, name: str, cls, *args) -> _LabeledMetric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, buckets if buckets is not None else DEFAULT_BUCKETS)
            self._metrics[name] = metric
        elif type(metric) is not Histogram:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric  # type: ignore[return-value]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> _LabeledMetric:
        if name not in self._metrics:
            raise KeyError(f"no metric named {name!r}")
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def update(self, other: "MetricsRegistry") -> None:
        """In-place merge of ``other`` into this registry."""
        for name, theirs in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = Histogram(name, theirs.buckets)
                else:
                    mine = type(theirs)(name)
                self._metrics[name] = mine
            elif type(mine) is not type(theirs):
                raise TypeError(
                    f"metric {name!r}: cannot merge {type(theirs).__name__} "
                    f"into {type(mine).__name__}"
                )
            mine.update(theirs)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Pure merge: a new registry combining self and other."""
        out = MetricsRegistry()
        out.update(self)
        out.update(other)
        return out

    def to_dict(self) -> dict:
        """Deterministic JSON-serializable dump (sorted by metric name)."""
        return {name: self._metrics[name].to_dict() for name in self.names()}


def merge_all(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Fold any number of registries into one (order-independent)."""
    out = MetricsRegistry()
    for reg in registries:
        out.update(reg)
    return out
