"""Discrete-event serving simulation: queue -> batcher -> replica pool.

One shared FIFO :class:`~repro.serving.batcher.DynamicBatcher` feeds a
pool of :class:`~repro.serving.replica.Replica` s in virtual time — the
single-queue/multi-server shape production inference tiers use.  The
event loop is a seeded heap with deterministic tie-breaking, so the same
configuration reproduces the same latency sample bit-for-bit.

Event kinds:

* ``arrival`` — a request enters the queue;
* ``timeout`` — the batcher's oldest-wait deadline fires;
* ``done`` — a replica finishes a batch (stale if the replica crashed
  mid-service);
* ``crash`` / ``restore`` — hard failures from a
  :class:`~repro.resilience.faults.FaultPlan` (replicas map to
  ``ComponentKind.TRAINER``); in-flight requests are retried under the
  :class:`~repro.resilience.retry.RetryPolicy` or dropped, and the
  replica is down for the checkpoint-restore time
  (:func:`repro.resilience.recovery.restore_time_s`);
* ``requeue`` — a retried request re-enters the queue after backoff;
* ``refresh`` — a checkpoint refresh swaps model weights mid-traffic
  (staleness experiments), invalidating caches and pausing replicas in a
  staggered rollout.

The loop also integrates the number of in-system requests over time, so
results self-check against Little's law (``L = lambda W``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..core.config import ModelConfig
from ..core.model import DLRM
from ..hardware.specs import DUAL_SOCKET_CPU, PLATFORMS, PlatformSpec
from ..obs import MetricsRegistry
from ..resilience.faults import ComponentKind, FaultInjector, FaultPlan
from ..resilience.recovery import model_checkpoint_bytes, restore_time_s
from ..resilience.retry import RetryPolicy
from .batcher import BatchPolicy, DynamicBatcher
from .cache import CacheConfig
from .replica import Replica
from .traffic import Request, TrafficConfig, generate_requests

__all__ = ["ServingConfig", "ServingResult", "simulate_serving", "resolve_platform"]


def resolve_platform(name: str) -> PlatformSpec:
    """Map a serving platform name (``cpu`` or a Table I platform)."""
    if name == "cpu":
        return DUAL_SOCKET_CPU
    if name in PLATFORMS:
        return PLATFORMS[name]
    raise ValueError(f"unknown platform {name!r}; use 'cpu' or one of {sorted(PLATFORMS)}")


@dataclass(frozen=True)
class ServingConfig:
    """One serving deployment to simulate.

    Attributes:
        num_replicas: servers in the pool.
        platform: ``"cpu"`` (dual-socket server per replica) or a GPU
            platform name (one GPU per replica).
        policy: dynamic batching policy.
        cache: hot-row cache sizing (``capacity_rows=0`` disables).
        execute: run real model math (scores per request) instead of the
            pricing-only path.  Pricing is identical either way; execute
            adds functional outputs for accuracy/staleness work.
        fault_plan: optional replica-crash plan (``trainer`` components).
        retry: retry policy for requests in-flight on a crashed replica;
            ``None`` drops them.
        refresh_at_s: virtual times at which a checkpoint refresh rolls
            over the replica pool.
        refresh_path: checkpoint to load at each refresh (``execute``
            mode; pricing-only refreshes still pay the pause and cache
            invalidation).
        seed: engine seed (model init in execute mode, retry jitter).
    """

    num_replicas: int = 2
    platform: str = "cpu"
    policy: BatchPolicy = field(default_factory=BatchPolicy)
    cache: CacheConfig = field(default_factory=CacheConfig)
    execute: bool = False
    fault_plan: FaultPlan | None = None
    retry: RetryPolicy | None = None
    refresh_at_s: tuple[float, ...] = ()
    refresh_path: str | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {self.num_replicas}")
        resolve_platform(self.platform)


@dataclass
class ServingResult:
    """Outcome of one simulated serving window."""

    model_name: str
    config: ServingConfig
    horizon_s: float
    end_s: float
    offered_qps: float
    arrived: int
    completed: int
    dropped: int
    retried: int
    crashes: int
    refreshes: int
    latencies_s: np.ndarray  # completion order
    batch_sizes: np.ndarray
    scores: np.ndarray  # empty unless execute
    labels: np.ndarray  # aligned with scores
    cache_hits: int
    cache_accesses: int
    cache_compulsory_misses: int
    predicted_cache_hit_rate: float
    mean_in_system: float
    metrics: MetricsRegistry

    @property
    def completed_qps(self) -> float:
        return self.completed / self.end_s if self.end_s > 0 else 0.0

    @property
    def measured_cache_hit_rate(self) -> float:
        return self.cache_hits / self.cache_accesses if self.cache_accesses else 0.0

    @property
    def warm_cache_hit_rate(self) -> float:
        """Hit rate excluding cold-start (first-touch) misses — the
        optimistic bound of the ``[measured, warm]`` bracket around the
        steady-state hit rate (see
        :attr:`repro.serving.cache.HotRowCache.warm_hit_rate`)."""
        warm = self.cache_accesses - self.cache_compulsory_misses
        return self.cache_hits / warm if warm else 0.0

    @property
    def mean_latency_s(self) -> float:
        return float(self.latencies_s.mean()) if len(self.latencies_s) else 0.0

    def latency_quantile(self, q: float) -> float:
        if not len(self.latencies_s):
            return 0.0
        return float(np.quantile(self.latencies_s, q))

    @property
    def p50_ms(self) -> float:
        return self.latency_quantile(0.50) * 1e3

    @property
    def p95_ms(self) -> float:
        return self.latency_quantile(0.95) * 1e3

    @property
    def p99_ms(self) -> float:
        return self.latency_quantile(0.99) * 1e3

    def littles_law_gap(self) -> float:
        """Relative gap between the time-averaged in-system count ``L``
        and ``lambda * W`` — an internal-consistency check on the event
        loop (small unless many requests dropped mid-sojourn)."""
        lam = self.completed / self.end_s if self.end_s > 0 else 0.0
        lw = lam * self.mean_latency_s
        if max(self.mean_in_system, lw) <= 0:
            return 0.0
        return abs(self.mean_in_system - lw) / max(self.mean_in_system, lw)

    def to_dict(self) -> dict:
        return {
            "model": self.model_name,
            "platform": self.config.platform,
            "replicas": self.config.num_replicas,
            "offered_qps": self.offered_qps,
            "completed_qps": self.completed_qps,
            "arrived": self.arrived,
            "completed": self.completed,
            "dropped": self.dropped,
            "retried": self.retried,
            "crashes": self.crashes,
            "refreshes": self.refreshes,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_latency_ms": self.mean_latency_s * 1e3,
            "mean_batch_size": float(self.batch_sizes.mean())
            if len(self.batch_sizes)
            else 0.0,
            "cache_hit_rate": self.measured_cache_hit_rate,
            "warm_cache_hit_rate": self.warm_cache_hit_rate,
            "predicted_cache_hit_rate": self.predicted_cache_hit_rate,
            "littles_law_gap": self.littles_law_gap(),
            "mean_in_system": self.mean_in_system,
        }


# Event kinds (heap entries are (time, seq, kind, payload); seq makes
# ordering total and deterministic).
_ARRIVAL = "arrival"
_TIMEOUT = "timeout"
_DONE = "done"
_CRASH = "crash"
_RESTORE = "restore"
_REQUEUE = "requeue"
_REFRESH = "refresh"


def simulate_serving(
    model_cfg: ModelConfig,
    traffic: TrafficConfig,
    cfg: ServingConfig = ServingConfig(),
    model: DLRM | None = None,
    requests: list[Request] | None = None,
    teacher=None,
    tracer=None,
) -> ServingResult:
    """Run one serving window and return its measured behaviour.

    ``requests`` overrides traffic generation (tests inject exact
    streams); ``model`` supplies a trained DLRM for ``execute`` mode
    (a fresh one is initialized from ``cfg.seed`` otherwise).
    """
    platform = resolve_platform(cfg.platform)
    if cfg.execute and model is None:
        model = DLRM(model_cfg, rng=cfg.seed)
    if requests is None:
        requests = generate_requests(model_cfg, traffic, teacher=teacher)
    replicas = [
        Replica(
            i,
            model_cfg,
            cfg.cache,
            platform,
            model=model if cfg.execute else None,
        )
        for i in range(cfg.num_replicas)
    ]
    batcher = DynamicBatcher(cfg.policy)
    metrics = MetricsRegistry()
    retry_rng = np.random.default_rng(cfg.seed + 0x5E21)

    events: list[tuple[float, int, str, object]] = []
    seq = 0

    def push(t: float, kind: str, payload: object = None) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, kind, payload))
        seq += 1

    for i, req in enumerate(requests):
        push(req.arrival_s, _ARRIVAL, i)

    # -- faults ---------------------------------------------------------------
    crash_count = 0
    restore_s = restore_time_s(
        model_checkpoint_bytes(model_cfg, include_optimizer=False), platform
    )
    if cfg.fault_plan is not None:
        injector = FaultInjector(cfg.fault_plan)
        for event in injector.sample_crashes(
            {ComponentKind.TRAINER: cfg.num_replicas}, traffic.duration_s
        ):
            if event.kind == ComponentKind.TRAINER and event.index < cfg.num_replicas:
                push(event.time_s, _CRASH, event.index)
    else:
        injector = None

    # -- checkpoint refreshes (staggered one replica at a time) ---------------
    refreshes = 0
    for t_refresh in cfg.refresh_at_s:
        for r in range(cfg.num_replicas):
            push(t_refresh + r * restore_s, _REFRESH, r)

    # -- bookkeeping ----------------------------------------------------------
    completed = dropped = retried = 0
    latencies: list[float] = []
    scores: list[float] = []
    labels: list[float] = []
    batch_sizes: list[int] = []
    in_system = 0
    area = 0.0
    last_t = 0.0
    c_completed = metrics.counter("serving.completed")
    c_dropped = metrics.counter("serving.dropped")
    c_retried = metrics.counter("serving.retried")
    c_crashes = metrics.counter("serving.crashes")
    h_latency = metrics.histogram("serving.latency_s")
    h_batch = metrics.histogram("serving.batch_size")
    h_service = metrics.histogram("serving.service_s")

    def advance(t: float) -> None:
        nonlocal area, last_t
        if t > last_t:
            area += in_system * (t - last_t)
            last_t = t

    def begin_service(rep: Replica, reqs: list[Request], now: float) -> None:
        if cfg.execute and cfg.cache.enabled:
            before_h, before_m = rep.cache_hits, rep.cache_misses
            batch_scores = rep.predict(reqs)
            hits = rep.cache_hits - before_h
            lookups = hits + (rep.cache_misses - before_m)
        elif cfg.execute:
            batch_scores = rep.predict(reqs)
            hits, lookups = 0, sum(r.total_lookups for r in reqs)
        else:
            batch_scores = None
            hits, lookups = rep.touch_cache(reqs)
        slowdown = (
            injector.slowdown_at(ComponentKind.TRAINER, rep.index, now)
            if injector is not None
            else 1.0
        )
        svc = rep.service_time(len(reqs), lookups, hits, slowdown)
        rep.inflight = reqs
        batch_sizes.append(len(reqs))
        h_batch.observe(len(reqs))
        h_service.observe(svc)
        if tracer is not None and tracer.enabled:
            tracer.record(
                f"serve_batch[{len(reqs)}]",
                "serving",
                t0=now,
                duration=svc,
                tid=rep.index,
            )
        push(now + svc, _DONE, (rep.index, rep.epoch, reqs, batch_scores))

    def dispatch(now: float) -> None:
        while True:
            idle = [
                r
                for r in replicas
                if r.alive and r.inflight is None and r.pause_until <= now
            ]
            if not idle or not batcher.ready(now, idle_replica=True):
                break
            begin_service(idle[0], batcher.pop_batch(now), now)
        if len(batcher):
            deadline = batcher.next_deadline()
            if deadline is not None and deadline > now:
                push(deadline, _TIMEOUT)

    # -- event loop -----------------------------------------------------------
    while events:
        now, _, kind, payload = heapq.heappop(events)
        advance(now)
        if kind == _ARRIVAL:
            req = requests[payload]  # type: ignore[index]
            in_system += 1
            batcher.enqueue(req, now)
            dispatch(now)
        elif kind == _TIMEOUT:
            dispatch(now)
        elif kind == _DONE:
            r_idx, epoch, reqs, batch_scores = payload  # type: ignore[misc]
            rep = replicas[r_idx]
            if rep.epoch != epoch:
                continue  # replica crashed mid-service; batch was requeued
            rep.inflight = None
            for j, req in enumerate(reqs):
                latencies.append(now - req.arrival_s)
                h_latency.observe(now - req.arrival_s)
                if batch_scores is not None:
                    scores.append(float(batch_scores[j]))
                    labels.append(req.label)
            completed += len(reqs)
            c_completed.inc(len(reqs))
            in_system -= len(reqs)
            dispatch(now)
        elif kind == _CRASH:
            rep = replicas[payload]  # type: ignore[index]
            if not rep.alive:
                continue  # already down; coincident crash is a no-op
            rep.alive = False
            rep.epoch += 1
            crash_count += 1
            c_crashes.inc()
            if rep.inflight is not None:
                for req in rep.inflight:
                    req.attempts += 1
                    if (
                        cfg.retry is not None
                        and req.attempts < cfg.retry.max_attempts
                    ):
                        delay = cfg.retry.backoff_s(req.attempts, retry_rng)
                        push(now + delay, _REQUEUE, req)
                        retried += 1
                        c_retried.inc()
                    else:
                        dropped += 1
                        c_dropped.inc()
                        in_system -= 1
                rep.inflight = None
            push(now + restore_s, _RESTORE, rep.index)
        elif kind == _RESTORE:
            rep = replicas[payload]  # type: ignore[index]
            rep.alive = True
            rep.invalidate_cache()  # cold restart
            dispatch(now)
        elif kind == _REQUEUE:
            batcher.enqueue(payload, now)  # type: ignore[arg-type]
            dispatch(now)
        elif kind == _REFRESH:
            rep = replicas[payload]  # type: ignore[index]
            if payload == 0 and cfg.execute and cfg.refresh_path is not None:
                from ..core.checkpoint import load_checkpoint

                assert model is not None
                load_checkpoint(cfg.refresh_path, model)
            rep.invalidate_cache()
            rep.pause_until = now + restore_s
            refreshes += 1
            push(rep.pause_until, _TIMEOUT)

    end_s = max(last_t, traffic.duration_s)
    cache_hits = sum(r.cache_hits for r in replicas)
    cache_accesses = cache_hits + sum(r.cache_misses for r in replicas)
    cache_compulsory = sum(r.cache_compulsory_misses for r in replicas)
    predicted = 0.0
    if cfg.cache.enabled:
        bank = replicas[0].bank
        if bank is not None:
            predicted = bank.predicted_hit_rate(skew=traffic.skew)
        else:
            from .cache import CacheBank

            predicted = CacheBank(model_cfg, cfg.cache).predicted_hit_rate(
                skew=traffic.skew
            )
    metrics.gauge("serving.cache_hit_rate").set(
        cache_hits / cache_accesses if cache_accesses else 0.0
    )
    metrics.gauge("serving.mean_in_system").set(area / end_s if end_s > 0 else 0.0)
    return ServingResult(
        model_name=model_cfg.name,
        config=cfg,
        horizon_s=traffic.duration_s,
        end_s=end_s,
        offered_qps=len(requests) / traffic.duration_s,
        arrived=len(requests),
        completed=completed,
        dropped=dropped,
        retried=retried,
        crashes=crash_count,
        refreshes=refreshes,
        latencies_s=np.asarray(latencies),
        batch_sizes=np.asarray(batch_sizes, dtype=np.int64),
        scores=np.asarray(scores),
        labels=np.asarray(labels),
        cache_hits=cache_hits,
        cache_accesses=cache_accesses,
        cache_compulsory_misses=cache_compulsory,
        predicted_cache_hit_rate=predicted,
        mean_in_system=area / end_s if end_s > 0 else 0.0,
        metrics=metrics,
    )
