"""Online inference serving: queues, dynamic batching, caches, SLOs.

Training efficiency (the paper's subject) is half of a recommendation
model's life; the other half is serving the trained snapshot online.
This package closes the loop with a discrete-event simulation priced by
the *same* operator cost catalog as training (:mod:`repro.perf`):

* :mod:`repro.serving.traffic` — seeded Poisson/diurnal request streams
  with Zipf-skewed sparse ids;
* :mod:`repro.serving.batcher` — dynamic batching (fill-or-timeout,
  size-adaptive under load);
* :mod:`repro.serving.cache` — functional LRU/LFU hot-row embedding
  caches (optionally int8-quantized rows);
* :mod:`repro.serving.replica` — replicas priced via the platform
  roofline, optionally executing real inference through the shared
  :class:`~repro.core.model.DLRM`;
* :mod:`repro.serving.engine` — the event loop: arrivals, dispatch,
  crashes + retries (:mod:`repro.resilience`), checkpoint refreshes;
* :mod:`repro.serving.slo` — tail-latency SLOs, throughput-latency
  curves, and SLO-constrained capacity planning.
"""

from __future__ import annotations

from .batcher import BatchPolicy, DynamicBatcher
from .cache import (
    CacheBank,
    CacheConfig,
    CachedEmbeddingBagCollection,
    HotRowCache,
    predicted_hit_rate,
)
from .engine import ServingConfig, ServingResult, resolve_platform, simulate_serving
from .replica import CACHE_HIT_SPEEDUP, Replica, serving_device
from .slo import (
    DEFAULT_CURVE_LOADS,
    SLO,
    ServingCapacityPlan,
    plan_serving_capacity,
    replica_capacity_qps,
    throughput_latency_curve,
)
from .traffic import Request, TrafficConfig, generate_requests, requests_to_batch

__all__ = [
    # traffic
    "TrafficConfig",
    "Request",
    "generate_requests",
    "requests_to_batch",
    # batcher
    "BatchPolicy",
    "DynamicBatcher",
    # cache
    "CacheConfig",
    "HotRowCache",
    "CacheBank",
    "CachedEmbeddingBagCollection",
    "predicted_hit_rate",
    # replica
    "Replica",
    "serving_device",
    "CACHE_HIT_SPEEDUP",
    # engine
    "ServingConfig",
    "ServingResult",
    "simulate_serving",
    "resolve_platform",
    # slo
    "SLO",
    "DEFAULT_CURVE_LOADS",
    "replica_capacity_qps",
    "throughput_latency_curve",
    "ServingCapacityPlan",
    "plan_serving_capacity",
]
