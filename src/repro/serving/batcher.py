"""Dynamic request batching for serving replicas.

Inference efficiency follows the same batch-size economics as training
(§V-B: larger batches amortize per-launch overheads) but serving cannot
wait forever: every queued millisecond is user-visible latency.  The
standard resolution is **dynamic batching**: dispatch when a batch fills
*or* when the oldest request has waited a timeout, whichever comes first,
and — when a replica is idle anyway — dispatch greedily with whatever is
queued (waiting would add latency without improving utilization).  The
batch size therefore adapts to load by itself: near-empty queues serve
singletons, saturated queues serve full batches.

The batcher is a pure data structure in virtual time (the engine owns the
clock), which keeps its invariants directly testable:

* FIFO: requests dispatch in enqueue order, never reordered or lost;
* ``len(batch) <= max_batch_requests``;
* a ready batch exists whenever the oldest wait reaches ``max_wait_s``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .traffic import Request

__all__ = ["BatchPolicy", "DynamicBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Dispatch policy of the dynamic batcher.

    Attributes:
        max_batch_requests: hard cap on requests per dispatched batch.
        max_wait_s: oldest-request wait bound; at this age a batch is
            dispatched even if not full (the tail-latency guard).
        adaptive: dispatch partial batches immediately when a replica is
            idle (self-adapting batch size; disabling it forces strict
            fill-or-timeout batching).
    """

    max_batch_requests: int = 8
    max_wait_s: float = 0.005
    adaptive: bool = True

    def __post_init__(self) -> None:
        if self.max_batch_requests < 1:
            raise ValueError(
                f"max_batch_requests must be >= 1, got {self.max_batch_requests}"
            )
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")


class DynamicBatcher:
    """FIFO queue that forms batches under a :class:`BatchPolicy`."""

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self._queue: deque[tuple[Request, float]] = deque()
        self.enqueued = 0
        self.dispatched = 0

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, request: Request, now: float) -> None:
        """Append a request (arrival or retry) to the queue tail."""
        self._queue.append((request, now))
        self.enqueued += 1

    def requeue_front(self, requests: list[Request], now: float) -> None:
        """Put a failed batch back at the queue *head*, preserving its
        internal order (crash retries should not leapfrog behind traffic
        that arrived after them)."""
        for req in reversed(requests):
            self._queue.appendleft((req, now))
        self.enqueued += len(requests)

    def oldest_wait(self, now: float) -> float:
        """Seconds the head request has been queued (0 when empty)."""
        if not self._queue:
            return 0.0
        return now - self._queue[0][1]

    def ready(self, now: float, idle_replica: bool = False) -> bool:
        """Should a batch dispatch right now?

        True when the queue holds a full batch, the head request has
        aged past ``max_wait_s``, or (adaptive policy) a replica is idle
        and anything at all is queued.
        """
        if not self._queue:
            return False
        if len(self._queue) >= self.policy.max_batch_requests:
            return True
        if self.oldest_wait(now) >= self.policy.max_wait_s:
            return True
        return self.policy.adaptive and idle_replica

    def next_deadline(self) -> float | None:
        """Virtual time at which the head request hits ``max_wait_s``
        (None when empty) — the engine schedules a timeout event here."""
        if not self._queue:
            return None
        return self._queue[0][1] + self.policy.max_wait_s

    def pop_batch(self, now: float) -> list[Request]:
        """Dequeue up to ``max_batch_requests`` requests in FIFO order."""
        take = min(len(self._queue), self.policy.max_batch_requests)
        batch = [self._queue.popleft()[0] for _ in range(take)]
        self.dispatched += len(batch)
        return batch
